"""Shared fixtures for the tracing/EXPLAIN tests."""

import math
import random

import pytest

from repro.core import DirectionalQuery
from repro.datasets import POI, POICollection

KEYWORD_POOL = ["cafe", "food", "gas", "atm", "pizza", "bank", "hotel",
                "park"]
EXTENT = 100.0


def make_collection(n=400, seed=42):
    rng = random.Random(seed)
    pois = []
    for i in range(n):
        kws = rng.sample(KEYWORD_POOL, rng.randint(1, 3))
        pois.append(POI.make(i, rng.uniform(0, EXTENT),
                             rng.uniform(0, EXTENT), kws))
    return POICollection(pois)


def make_query(alpha=0.3, width=math.pi / 3, x=40.0, y=55.0,
               keywords=("cafe",), k=5):
    return DirectionalQuery.make(x, y, alpha, alpha + width,
                                 list(keywords), k)


def make_queries(count, seed=0, k=5):
    rng = random.Random(seed)
    queries = []
    for _ in range(count):
        lower = rng.uniform(0, 2 * math.pi)
        queries.append(DirectionalQuery.make(
            rng.uniform(0, EXTENT), rng.uniform(0, EXTENT),
            lower, lower + rng.uniform(0.3, 5.0),
            rng.sample(KEYWORD_POOL, rng.randint(1, 2)), k))
    return queries


@pytest.fixture(scope="module")
def collection():
    return make_collection()
