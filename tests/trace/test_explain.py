"""explain() must account for exactly the cost the counters saw.

The acceptance bar: on wide, narrow, and wraparound sectors, the span
totals reconcile *exactly* with the ``SearchStats`` pruning counters and
the ``IOStats`` page reads of an identical untraced search.
"""

import math

import pytest

from repro.core import DesksIndex, DesksSearcher, PruningMode
from repro.storage import SearchStats
from repro.trace import ExplainReport, Tracer, explain

from .conftest import make_collection, make_query

#: The acceptance criterion's >= 3 sector shapes, wraparound included.
SECTORS = [
    pytest.param(0.3, 2 * math.pi, id="full-circle"),
    pytest.param(0.3, math.pi, id="wide"),
    pytest.param(0.8, math.pi / 16, id="narrow"),
    pytest.param(2 * math.pi - 0.2, 0.7, id="wraparound"),
]


@pytest.fixture(scope="module")
def disk_index(tmp_path_factory):
    collection = make_collection(n=400, seed=42)
    prefix = str(tmp_path_factory.mktemp("explain") / "idx")
    return DesksIndex(collection, num_bands=4, num_wedges=6,
                      disk_based=True, disk_path_prefix=prefix,
                      buffer_capacity=8)


class TestReconciliation:
    @pytest.mark.parametrize("alpha,width", SECTORS)
    @pytest.mark.parametrize("mode", [PruningMode.RD, PruningMode.R,
                                      PruningMode.D])
    def test_exact_reconciliation(self, disk_index, alpha, width, mode):
        report = explain(disk_index, make_query(alpha=alpha, width=width),
                         mode=mode)
        assert report.reconciled, report.render()
        quantities = {row["quantity"] for row in report.reconciliation}
        assert quantities == {"pois_fetched", "pois_verified",
                              "subregions_examined", "bands_scanned",
                              "pages_read"}

    @pytest.mark.parametrize("alpha,width", SECTORS)
    def test_matches_identical_untraced_search(self, disk_index, alpha,
                                               width):
        query = make_query(alpha=alpha, width=width)
        report = explain(disk_index, query)

        stats = SearchStats()
        io_before = disk_index.io_stats.snapshot()
        untraced = DesksSearcher(disk_index).search(query, stats=stats)
        pages = io_before.delta(disk_index.io_stats.snapshot()
                                ).logical_reads

        assert [r["poi_id"] for r in report.results] == \
            untraced.poi_ids()
        actuals = report.actuals
        assert actuals["pois_fetched"] == stats.pois_examined
        assert actuals["pois_verified"] == stats.candidates_verified
        assert actuals["subregions_examined"] == \
            stats.subregions_examined
        assert actuals["bands_scanned"] == stats.regions_examined
        assert actuals["pages_read"] == pages

    def test_pages_actually_flow_through_spans(self, disk_index):
        report = explain(disk_index, make_query(width=math.pi))
        assert report.actuals["pages_read"] > 0
        root = report.trace.find("desks.search")
        prepare = root.find("desks.prepare")
        bands = root.find_all("desks.band")
        assert prepare.attrs["pages_read"] + \
            sum(b.attrs.get("pages_read", 0) for b in bands) == \
            root.attrs["pages_read"]


class TestReportShape:
    def test_plan_names_decomposition_and_pruning(self, disk_index):
        alpha = 2 * math.pi - 0.2
        report = explain(disk_index, make_query(alpha=alpha, width=0.7))
        assert report.plan["pruning"] == {"region": True,
                                          "direction": True}
        # A wraparound interval decomposes across >= 2 quadrants.
        assert len(report.plan["subqueries"]) >= 2
        assert report.plan["index"]["num_bands"] == 4
        assert report.plan["index"]["disk_based"] is True

    def test_mode_accepts_string_names(self, disk_index):
        report = explain(disk_index, make_query(), mode="D")
        assert report.mode == "D"
        assert report.plan["pruning"] == {"region": False,
                                          "direction": True}

    def test_to_dict_is_json_ready(self, disk_index):
        import json

        report = explain(disk_index, make_query())
        doc = json.loads(report.to_json())
        assert doc["reconciled"] is True
        assert doc["trace"]["spans"][0]["name"] == "desks.search"
        assert isinstance(doc["results"], list)

    def test_render_flags_status(self, disk_index):
        report = explain(disk_index, make_query())
        assert isinstance(report, ExplainReport)
        assert "reconciliation (OK)" in report.render()

    def test_sink_receives_the_tracer(self, disk_index):
        class Recorder:
            observed = None

            def observe(self, tracer):
                Recorder.observed = tracer

        report = explain(disk_index, make_query(), sink=Recorder())
        assert Recorder.observed is report.trace

    def test_in_memory_index_reconciles_with_zero_pages(self):
        collection = make_collection(n=200, seed=7)
        index = DesksIndex(collection, num_bands=3, num_wedges=5)
        report = explain(index, make_query())
        assert report.reconciled
        assert report.actuals["pages_read"] == 0


class TestExplicitQueryTrace:
    def test_trace_kwarg_still_fills_while_traced(self, disk_index):
        """The legacy trace= object and the span tree coexist."""
        from repro.core import QueryTrace

        qtrace = QueryTrace()
        tracer = Tracer()
        with tracer.activate():
            DesksSearcher(disk_index).search(make_query(), trace=qtrace)
        root = tracer.find("desks.search")
        assert qtrace.bands_scanned == root.attrs["bands_scanned"]
        assert qtrace.total_pages_read == root.attrs["pages_read"]
        assert qtrace.total_pois_fetched == root.attrs["pois_fetched"]
