"""Regression lock on the PR-4 D-mode accounting fix.

D mode (direction-only pruning) once under-attributed fetched POIs in
the span aggregates, so ``explain()`` could not reconcile against the
untraced counters.  This pins the repaired contract — *exact* equality,
row by row — under fixed seeds, so the determinism the DAL006 rule
enforces on the core makes any future drift reproduce identically.
"""

import pytest

from repro.core import DesksIndex, PruningMode
from repro.trace import explain

from .conftest import make_collection, make_queries

SEEDS = [7, 21, 1234]


@pytest.mark.parametrize("seed", SEEDS)
def test_dmode_reconciles_exactly_under_fixed_seeds(tmp_path, seed):
    collection = make_collection(n=350, seed=seed)
    index = DesksIndex(collection, num_bands=4, num_wedges=6,
                       disk_based=True,
                       disk_path_prefix=str(tmp_path / f"idx{seed}"),
                       buffer_capacity=8)
    for query in make_queries(8, seed=seed):
        report = explain(index, query, mode=PruningMode.D)
        assert report.mode == "D"
        assert report.reconciled, report.render()
        for row in report.reconciliation:
            # The acceptance bar is exact equality, not tolerance: the
            # span totals must equal the untraced counters to the unit.
            assert row["span"] == row["independent"], (seed, row)


@pytest.mark.parametrize("seed", SEEDS)
def test_dmode_explain_is_deterministic(tmp_path, seed):
    """Two explains of the same query agree on every reconciled count —
    the replayability DAL006 exists to protect."""
    collection = make_collection(n=350, seed=seed)
    index = DesksIndex(collection, num_bands=4, num_wedges=6,
                       disk_based=True,
                       disk_path_prefix=str(tmp_path / f"idx{seed}"),
                       buffer_capacity=8)
    (query,) = make_queries(1, seed=seed + 1)
    first = explain(index, query, mode=PruningMode.D)
    second = explain(index, query, mode=PruningMode.D)
    strip = {"pages_read"}  # cache state differs between passes
    rows_first = [r for r in first.reconciliation
                  if r["quantity"] not in strip]
    rows_second = [r for r in second.reconciliation
                   if r["quantity"] not in strip]
    assert rows_first == rows_second
