"""Trace context must survive thread pools — and cost nothing when off."""

import pytest

from repro.cluster import ShardRouter
from repro.core import DesksIndex, DesksSearcher, MutableDesksIndex
from repro.service import MetricsRegistry, QueryEngine
from repro.trace import Tracer
import repro.trace.spans as spans_mod

from .conftest import make_collection, make_queries, make_query


class TestEnginePropagation:
    def test_submit_runs_under_submitters_trace(self, collection):
        index = DesksIndex(collection, num_bands=4, num_wedges=6)
        query = make_query()
        tracer = Tracer()
        with QueryEngine(index, num_workers=2) as engine:
            with tracer.activate():
                engine.submit(query).result(timeout=30)
        worker = tracer.find("engine.worker")
        assert worker is not None
        assert worker in tracer.roots  # parented at the submit point
        assert worker.attrs["queue_wait_seconds"] >= 0.0
        execute = worker.children[0]
        assert execute.name == "engine.execute"
        assert execute.attrs["cache_hit"] is False
        # The search's own span tree sits under the engine span.
        search = execute.children[0]
        assert search.name == "desks.search"
        assert search.find("desks.prepare") is not None

    def test_batch_spans_one_per_unique_execution(self, collection):
        index = DesksIndex(collection, num_bands=4, num_wedges=6)
        query = make_query()
        tracer = Tracer()
        with QueryEngine(index, num_workers=2) as engine:
            with tracer.activate():
                for future in engine.submit_batch([query, query, query]):
                    future.result(timeout=30)
        # Three futures, one execution: exactly one worker span.
        assert len(tracer.find_all("engine.worker")) == 1

    def test_cache_hit_annotated_without_search_child(self, collection):
        index = DesksIndex(collection, num_bands=4, num_wedges=6)
        query = make_query()
        tracer = Tracer()
        with QueryEngine(index) as engine:
            engine.execute(query)  # warm, untraced
            with tracer.activate():
                response = engine.execute(query)
        assert response.cached
        execute = tracer.find("engine.execute")
        assert execute.attrs["cache_hit"] is True
        assert execute.find("desks.search") is None

    def test_tracing_option_feeds_metrics_without_caller_tracer(
            self, collection):
        index = DesksIndex(collection, num_bands=4, num_wedges=6)
        registry = MetricsRegistry()
        with QueryEngine(index, metrics=registry, tracing=True) as engine:
            engine.execute(make_query())
        histograms = registry.to_dict()["histograms"]
        assert "span_engine_execute_seconds" in histograms
        assert "span_desks_search_seconds" in histograms

    def test_untraced_engine_records_no_span_metrics(self, collection):
        index = DesksIndex(collection, num_bands=4, num_wedges=6)
        registry = MetricsRegistry()
        with QueryEngine(index, metrics=registry) as engine:
            engine.execute(make_query())
        assert not any(name.startswith("span_")
                       for name in registry.to_dict()["histograms"])


class TestRouterPropagation:
    def test_shard_spans_land_under_their_wave(self, collection):
        query = make_query(keywords=("cafe",), k=3)
        tracer = Tracer()
        with ShardRouter(collection, num_shards=4, max_fanout=2,
                         num_bands=4, num_wedges=5) as router:
            with tracer.activate():
                response = router.execute(query)
        root = tracer.find("router.execute")
        assert root is not None
        plan = root.find("router.plan")
        assert plan.attrs["shards_total"] == 4
        waves = root.find_all("router.wave")
        assert len(waves) == root.attrs["waves"] >= 1
        shard_spans = root.find_all("router.shard")
        assert len(shard_spans) == response.shards_dispatched
        for wave in waves:
            for child in wave.children:
                assert child.name == "router.shard"
                assert child.attrs["queue_wait_seconds"] >= 0.0
                # Each shard call ran the engine under this wave span.
                assert child.find("engine.execute") is not None
        # Fanout bounds the spans per wave.
        assert all(len(w.children) <= 2 for w in waves)

    def test_root_annotations_match_response(self, collection):
        queries = make_queries(10, seed=5)
        with ShardRouter(collection, num_shards=4, num_bands=4,
                         num_wedges=5) as router:
            for query in queries:
                tracer = Tracer()
                with tracer.activate():
                    response = router.execute(query)
                attrs = tracer.find("router.execute").attrs
                assert attrs["shards_dispatched"] == \
                    response.shards_dispatched
                assert attrs["shards_skipped"] == response.shards_skipped
                assert attrs["shards_sector_pruned"] == \
                    response.shards_pruned
                assert attrs["shards_keyword_pruned"] == \
                    response.shards_keyword_pruned
                assert attrs["results"] == len(response.result)


class TestDisabledAllocatesNothing:
    @pytest.fixture()
    def span_allocation_trap(self, monkeypatch):
        """Make any Span construction an immediate failure."""

        def explode(self, *args, **kwargs):
            raise AssertionError(
                "Span allocated while tracing was disabled")

        monkeypatch.setattr(spans_mod.Span, "__init__", explode)

    def test_search_allocates_no_spans(self, collection,
                                       span_allocation_trap):
        searcher = DesksSearcher(
            DesksIndex(collection, num_bands=4, num_wedges=6))
        result = searcher.search(make_query())
        assert len(result) > 0

    def test_engine_allocates_no_spans(self, collection,
                                       span_allocation_trap):
        index = DesksIndex(collection, num_bands=4, num_wedges=6)
        with QueryEngine(index, num_workers=2) as engine:
            assert engine.submit(make_query()).result(timeout=30) \
                .result.entries

    def test_router_allocates_no_spans(self, collection,
                                       span_allocation_trap):
        with ShardRouter(collection, num_shards=2, num_bands=4,
                         num_wedges=5) as router:
            router.execute(make_query())

    def test_durable_mutations_allocate_no_spans(self, tmp_path,
                                                 span_allocation_trap):
        from repro.durability import DurableMutableIndex

        index = DurableMutableIndex.create(make_collection(40),
                                           str(tmp_path / "d"))
        index.insert(1.0, 2.0, ["cafe"])
        index.checkpoint()
        index.close()


class TestMutableIndexTracing:
    def test_mutable_search_traces_inner_searches(self, collection):
        index = MutableDesksIndex(collection, num_bands=4, num_wedges=6)
        index.insert(40.5, 55.5, ["cafe"])
        tracer = Tracer()
        with tracer.activate():
            result = index.search(make_query())
        assert len(result) > 0
        assert tracer.find("desks.search") is not None
