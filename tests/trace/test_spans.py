"""Span/Tracer mechanics: nesting, context-locality, export, sinks."""

import json
import threading

import pytest

from repro.trace import (
    Span,
    TraceSink,
    Tracer,
    current_span,
    current_tracer,
    traced,
)
from repro.trace.spans import _SPAN


class TestSpanTree:
    def test_nesting_follows_with_blocks(self):
        tracer = Tracer()
        with tracer.activate():
            with tracer.span("root"):
                with tracer.span("child.a"):
                    with tracer.span("leaf"):
                        pass
                with tracer.span("child.b"):
                    pass
        root = tracer.root
        assert root.name == "root"
        assert [c.name for c in root.children] == ["child.a", "child.b"]
        assert root.children[0].children[0].name == "leaf"

    def test_current_span_tracks_innermost(self):
        tracer = Tracer()
        assert current_span() is None
        with tracer.activate():
            with tracer.span("outer") as outer:
                assert current_span() is outer
                with tracer.span("inner") as inner:
                    assert current_span() is inner
                assert current_span() is outer
        assert current_span() is None

    def test_activate_restores_previous_tracer(self):
        outer, inner = Tracer(), Tracer()
        with outer.activate():
            assert current_tracer() is outer
            with inner.activate():
                assert current_tracer() is inner
            assert current_tracer() is outer
        assert current_tracer() is None

    def test_annotate_add_and_total(self):
        tracer = Tracer()
        with tracer.activate():
            with tracer.span("op") as span:
                span.annotate(kind="scan")
                span.add("pages_read", 3)
                span.add("pages_read", 2)
                tracer.record("op.stage", parent=span, pages_read=4)
        assert tracer.root.attrs["pages_read"] == 5
        assert tracer.root.total("pages_read") == 9
        assert tracer.root.attrs["kind"] == "scan"

    def test_record_defaults_to_context_parent(self):
        tracer = Tracer()
        with tracer.activate():
            with tracer.span("parent"):
                recorded = tracer.record("measured", seconds=0.25, n=1)
        assert tracer.root.children[0] is recorded
        assert recorded.seconds == pytest.approx(0.25)

    def test_find_and_walk(self):
        tracer = Tracer()
        with tracer.activate():
            with tracer.span("a"):
                with tracer.span("b"):
                    pass
                with tracer.span("b"):
                    pass
        assert tracer.find("b") is tracer.root.children[0]
        assert len(tracer.find_all("b")) == 2
        assert [s.name for s in tracer.walk()] == ["a", "b", "b"]

    def test_json_round_trip(self):
        tracer = Tracer()
        with tracer.activate():
            with tracer.span("op", mode="RD"):
                with tracer.span("stage"):
                    pass
        doc = json.loads(tracer.to_json())
        assert doc["spans"][0]["name"] == "op"
        assert doc["spans"][0]["attrs"]["mode"] == "RD"
        assert doc["spans"][0]["children"][0]["name"] == "stage"
        assert doc["spans"][0]["seconds"] >= 0.0

    def test_render_mentions_every_span(self):
        tracer = Tracer()
        with tracer.activate():
            with tracer.span("op"):
                with tracer.span("stage"):
                    pass
        text = tracer.render()
        assert "op" in text and "stage" in text


class TestDisabledPath:
    def test_no_tracer_means_no_current(self):
        assert current_tracer() is None
        assert current_span() is None

    def test_traced_returns_fn_unchanged_without_tracer(self):
        def fn():
            return 41

        assert traced("x", fn) is fn

    def test_exception_inside_span_still_closes_it(self):
        tracer = Tracer()
        with tracer.activate():
            with pytest.raises(RuntimeError):
                with tracer.span("boom"):
                    raise RuntimeError("nope")
        assert current_span() is None
        assert tracer.root.name == "boom"
        assert tracer.root.seconds >= 0.0


class TestThreadPropagation:
    def test_traced_carries_context_to_thread(self):
        tracer = Tracer()
        seen = {}

        def work():
            seen["tracer"] = current_tracer()
            with current_tracer().span("inner"):
                pass
            return 7

        with tracer.activate():
            with tracer.span("outer"):
                wrapped = traced("worker", work, record_queue_wait=True)
            thread = threading.Thread(target=wrapped)
            thread.start()
            thread.join()
        assert seen["tracer"] is tracer
        worker = tracer.find("worker")
        assert worker is not None
        # The worker span landed under the span current at wrap time.
        assert worker in tracer.find("outer").children
        assert worker.children[0].name == "inner"
        assert worker.attrs["queue_wait_seconds"] >= 0.0

    def test_concurrent_spans_do_not_corrupt_tree(self):
        tracer = Tracer()

        def work(i):
            with tracer.span(f"job{i}"):
                pass

        with tracer.activate():
            with tracer.span("root"):
                threads = [
                    threading.Thread(target=traced(f"w{i}", work),
                                     args=(i,))
                    for i in range(8)
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
        root = tracer.root
        assert len(root.children) == 8
        assert tracer.spans_started == 1 + 8 * 2

    def test_plain_thread_without_traced_sees_no_context(self):
        tracer = Tracer()
        seen = {}

        def work():
            seen["tracer"] = current_tracer()

        with tracer.activate():
            thread = threading.Thread(target=work)
            thread.start()
            thread.join()
        assert seen["tracer"] is None


class TestSink:
    def test_sink_observes_on_activation_exit(self):
        class Recorder:
            def __init__(self):
                self.observed = []

            def observe(self, tracer):
                self.observed.append(tracer)

        sink = Recorder()
        tracer = Tracer(sink=sink)
        with tracer.activate():
            with tracer.span("op"):
                pass
        assert sink.observed == [tracer]

    def test_trace_sink_feeds_metrics_registry(self):
        from repro.service import MetricsRegistry

        registry = MetricsRegistry()
        tracer = Tracer(sink=TraceSink(registry))
        with tracer.activate():
            with tracer.span("desks.search", pages_read=7,
                             pois_fetched=20):
                with tracer.span("desks.band", pages_read=7):
                    pass
        snapshot = registry.to_dict()
        counters = snapshot["counters"]
        assert counters["span_desks_search_pages_read_total"] == 7
        assert counters["span_desks_search_pois_fetched_total"] == 20
        assert counters["span_desks_band_pages_read_total"] == 7
        assert "span_desks_search_seconds" in snapshot["histograms"]

    def test_sink_skips_bools_and_non_ints(self):
        from repro.service import MetricsRegistry

        registry = MetricsRegistry()
        tracer = Tracer(sink=TraceSink(registry))
        with tracer.activate():
            with tracer.span("op", pages_read=True, pois_fetched="many"):
                pass
        assert not registry.to_dict()["counters"]


class TestHygiene:
    def test_span_context_var_is_clean_between_tests(self):
        # A leaked span would silently reparent every later test's spans.
        assert _SPAN.get() is None

    def test_spans_are_slotted(self):
        span = Span("x")
        with pytest.raises(AttributeError):
            span.arbitrary = 1
