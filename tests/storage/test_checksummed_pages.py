"""Tests for CRC32C page frames and deterministic corruption injection."""

import pytest

from repro.storage import (
    FRAME_OVERHEAD,
    ChecksummedPageStore,
    CorruptionInjector,
    FilePageStore,
    InMemoryPageStore,
    PAGE_CORRUPTION_KINDS,
    PageCorruptionError,
)

INNER_SIZE = 128


@pytest.fixture(params=["memory", "file"])
def store(request, tmp_path):
    if request.param == "memory":
        inner = InMemoryPageStore(page_size=INNER_SIZE)
    else:
        inner = FilePageStore(str(tmp_path / "pages.bin"),
                              page_size=INNER_SIZE)
    s = ChecksummedPageStore(inner)
    yield s
    s.close()


class TestFrameBasics:
    def test_logical_page_size_excludes_frame(self, store):
        assert store.page_size == INNER_SIZE - FRAME_OVERHEAD

    def test_round_trip(self, store):
        pid = store.allocate()
        store.write_page(pid, b"payload bytes")
        data = store.read_page(pid)
        assert data[:13] == b"payload bytes"
        assert len(data) == store.page_size

    def test_fresh_page_reads_zeroed(self, store):
        pid = store.allocate()
        assert store.read_page(pid) == bytes(store.page_size)
        assert store.verify_page(pid) is None

    def test_full_payload_round_trip(self, store):
        pid = store.allocate()
        payload = bytes(range(store.page_size % 256)) * 1
        payload = (payload + bytes(store.page_size))[:store.page_size]
        store.write_page(pid, payload)
        assert store.read_page(pid) == payload

    def test_oversized_payload_rejected(self, store):
        pid = store.allocate()
        with pytest.raises(ValueError):
            store.write_page(pid, bytes(store.page_size + 1))

    def test_inner_too_small_for_frame(self):
        with pytest.raises(ValueError, match="frame"):
            ChecksummedPageStore(InMemoryPageStore(page_size=FRAME_OVERHEAD))

    def test_rewrites_advance_epoch_and_stay_valid(self, store):
        pid = store.allocate()
        for round_no in range(5):
            store.write_page(pid, f"round {round_no}".encode())
            assert store.verify_page(pid) is None
        assert store.read_page(pid)[:7] == b"round 4"


class TestCorruptionDetection:
    @pytest.mark.parametrize("kind", PAGE_CORRUPTION_KINDS)
    def test_injected_corruption_raises_on_read(self, store, kind):
        pid = store.allocate()
        store.write_page(pid, b"precious data")
        CorruptionInjector(seed=7).corrupt_page(store, page_id=pid,
                                                kind=kind)
        with pytest.raises(PageCorruptionError) as err:
            store.read_page(pid)
        assert err.value.page_id == pid

    def test_tear_reports_torn_write(self, store):
        pid = store.allocate()
        store.write_page(pid, b"half flushed")
        CorruptionInjector(seed=1).corrupt_page(store, page_id=pid,
                                                kind="tear")
        assert "torn write" in store.verify_page(pid)

    def test_flip_reports_checksum_or_structural_damage(self, store):
        pid = store.allocate()
        store.write_page(pid, b"bits")
        CorruptionInjector(seed=2).corrupt_page(store, page_id=pid,
                                                kind="flip")
        assert store.verify_page(pid) is not None

    def test_scrub_localizes_damage(self, store):
        pids = [store.allocate() for _ in range(4)]
        for pid in pids:
            store.write_page(pid, b"page %d" % pid)
        CorruptionInjector(seed=3).corrupt_page(store, page_id=pids[2],
                                                kind="flip")
        report = store.scrub()
        assert report.pages_checked == 4
        assert not report.clean
        assert [pid for pid, _ in report.corrupt] == [pids[2]]
        assert "corrupt" in report.summary()

    def test_clean_scrub(self, store):
        for _ in range(3):
            store.write_page(store.allocate(), b"fine")
        report = store.scrub()
        assert report.clean
        assert report.pages_checked == 3

    def test_restore_heals(self, store):
        pid = store.allocate()
        store.write_page(pid, b"original")
        saved = store.inner.read_page(pid)
        CorruptionInjector(seed=4).corrupt_page(store, page_id=pid)
        assert store.verify_page(pid) is not None
        store.inner.write_page(pid, saved)
        assert store.verify_page(pid) is None
        assert store.read_page(pid)[:8] == b"original"


class TestInjectorDeterminism:
    def test_same_seed_same_corruption_log(self, tmp_path):
        def run(seed):
            store = ChecksummedPageStore(InMemoryPageStore(page_size=96))
            for i in range(6):
                store.write_page(store.allocate(), b"page %d" % i)
            injector = CorruptionInjector(seed=seed)
            injector.corrupt_store(store, count=4)
            return [(c.kind, c.page_id, c.detail) for c in injector.log]

        assert run(11) == run(11)
        assert run(11) != run(12)

    def test_file_level_corruption(self, tmp_path):
        path = tmp_path / "blob.bin"
        path.write_bytes(bytes(64))
        injector = CorruptionInjector(seed=5)
        injector.corrupt_file(str(path))
        assert path.read_bytes() != bytes(64)
        injector.truncate_file(str(path), keep_bytes=10)
        assert path.stat().st_size == 10
