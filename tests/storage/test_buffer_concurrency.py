"""BufferPool thread-safety: the serving layer hammers it concurrently.

Before the lock, concurrent readers raced on the OrderedDict (corrupting
recency order or crashing mid-``move_to_end``) and on the I/O counters
(dropping increments).  These tests drive many threads through a small
pool and assert the invariants that only hold when accesses serialise.
"""

import threading

from repro.storage import BufferPool, InMemoryPageStore, PAGE_SIZE


def make_pool(num_pages=64, capacity=8):
    store = InMemoryPageStore()
    pages = [store.allocate() for _ in range(num_pages)]
    for page_id in pages:
        store.write_page(page_id,
                         page_id.to_bytes(4, "little") * (PAGE_SIZE // 4))
    store.stats.reset()
    return BufferPool(store, capacity=capacity), pages


def hammer(pool, pages, num_threads, reads_per_thread):
    errors = []

    def reader(tid):
        try:
            for i in range(reads_per_thread):
                page_id = pages[(tid * 31 + i * 7) % len(pages)]
                data = pool.read_page(page_id)
                # Every page is stamped with its id: a torn/misfiled frame
                # would surface here.
                assert data[:4] == page_id.to_bytes(4, "little")
        except Exception as exc:  # noqa: BLE001 - surfaced via errors list
            errors.append(exc)

    threads = [threading.Thread(target=reader, args=(t,))
               for t in range(num_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return errors


class TestConcurrentReads:
    def test_no_errors_and_exact_accounting(self):
        pool, pages = make_pool()
        num_threads, per_thread = 8, 400
        errors = hammer(pool, pages, num_threads, per_thread)
        assert errors == []
        stats = pool.stats
        # Every logical read is accounted exactly once: lost updates on
        # the counters would make this sum fall short.
        assert stats.logical_reads == num_threads * per_thread
        assert stats.physical_reads + stats.cache_hits == \
            stats.logical_reads
        assert pool.num_cached <= pool.capacity

    def test_concurrent_reads_and_writes(self):
        pool, pages = make_pool(num_pages=32, capacity=4)
        stop = threading.Event()
        errors = []

        def writer():
            i = 0
            try:
                while not stop.is_set():
                    page_id = pages[i % len(pages)]
                    pool.write_page(
                        page_id,
                        page_id.to_bytes(4, "little") * (PAGE_SIZE // 4))
                    i += 1
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        try:
            errors.extend(hammer(pool, pages, 4, 300))
        finally:
            stop.set()
            writer_thread.join()
        assert errors == []
        pool.flush()
        # After a flush every page still round-trips its own stamp.
        for page_id in pages:
            assert pool.read_page(page_id)[:4] == \
                page_id.to_bytes(4, "little")

    def test_concurrent_clear_is_safe(self):
        pool, pages = make_pool(num_pages=16, capacity=4)
        errors = []
        done = threading.Event()

        def clearer():
            try:
                while not done.is_set():
                    pool.clear()
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        thread = threading.Thread(target=clearer)
        thread.start()
        try:
            errors.extend(hammer(pool, pages, 4, 200))
        finally:
            done.set()
            thread.join()
        assert errors == []
