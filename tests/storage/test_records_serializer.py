"""Tests for varint serialization and the record file."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.storage import (
    InMemoryPageStore,
    RecordFile,
    RecordPointer,
    decode_floats,
    decode_sorted_ids,
    decode_uint_list,
    decode_varint,
    encode_floats,
    encode_sorted_ids,
    encode_uint_list,
    encode_varint,
)


class TestVarint:
    @pytest.mark.parametrize("value,encoded", [
        (0, b"\x00"), (1, b"\x01"), (127, b"\x7f"),
        (128, b"\x80\x01"), (300, b"\xac\x02"),
    ])
    def test_known_encodings(self, value, encoded):
        assert encode_varint(value) == encoded
        assert decode_varint(encoded) == (value, len(encoded))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_varint(-1)

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            decode_varint(b"\x80")

    def test_overlong_rejected(self):
        with pytest.raises(ValueError):
            decode_varint(b"\xff" * 11)

    @given(st.integers(min_value=0, max_value=2**60))
    def test_round_trip(self, value):
        data = encode_varint(value)
        assert decode_varint(data) == (value, len(data))

    @given(st.integers(0, 2**40), st.integers(0, 2**40))
    def test_concatenation(self, a, b):
        data = encode_varint(a) + encode_varint(b)
        va, off = decode_varint(data)
        vb, end = decode_varint(data, off)
        assert (va, vb, end) == (a, b, len(data))


class TestIdListCodecs:
    def test_sorted_round_trip(self):
        ids = [3, 3, 7, 100, 100000]
        data = encode_sorted_ids(ids)
        assert decode_sorted_ids(data) == (ids, len(data))

    def test_empty(self):
        assert decode_sorted_ids(encode_sorted_ids([])) == ([], 1)

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError):
            encode_sorted_ids([5, 3])

    def test_delta_compression_effective(self):
        # Dense sorted ids compress to ~1 byte each.
        ids = list(range(1000, 2000))
        assert len(encode_sorted_ids(ids)) < 1100

    @given(st.lists(st.integers(0, 2**40)))
    def test_sorted_round_trip_property(self, raw):
        ids = sorted(raw)
        data = encode_sorted_ids(ids)
        assert decode_sorted_ids(data)[0] == ids

    @given(st.lists(st.integers(0, 2**40)))
    def test_uint_list_round_trip(self, values):
        data = encode_uint_list(values)
        assert decode_uint_list(data) == (values, len(data))

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False,
                              width=64)))
    def test_floats_round_trip(self, values):
        data = encode_floats(values)
        assert decode_floats(data) == (values, len(data))

    def test_floats_truncated_rejected(self):
        data = encode_floats([1.0, 2.0])
        with pytest.raises(ValueError):
            decode_floats(data[:-1])


class TestRecordFile:
    def make(self, page_size=32):
        return RecordFile(InMemoryPageStore(page_size=page_size))

    def test_round_trip_small(self):
        rf = self.make()
        ptr = rf.append(b"hello")
        assert rf.read(ptr) == b"hello"

    def test_round_trip_spanning_pages(self):
        rf = self.make(page_size=16)
        payload = bytes(range(100))
        ptr = rf.append(payload)
        assert rf.read(ptr) == payload

    def test_multiple_records_packed(self):
        rf = self.make(page_size=32)
        ptrs = [rf.append(bytes([i]) * 10) for i in range(5)]
        for i, ptr in enumerate(ptrs):
            assert rf.read(ptr) == bytes([i]) * 10
        # 50 bytes fit in 2 pages of 32.
        assert rf.size_in_pages == 2

    def test_empty_record(self):
        rf = self.make()
        ptr = rf.append(b"")
        assert ptr.length == 0
        assert rf.read(ptr) == b""

    def test_read_past_end_rejected(self):
        rf = self.make()
        rf.append(b"abc")
        with pytest.raises(ValueError):
            rf.read(RecordPointer(0, 100))

    def test_read_span(self):
        rf = self.make(page_size=16)
        p1 = rf.append(b"aaaa")
        p2 = rf.append(b"bbbb")
        combined = rf.read_span(p1, p2.offset + p2.length)
        assert combined == b"aaaabbbb"

    def test_read_span_backwards_rejected(self):
        rf = self.make()
        p1 = rf.append(b"abc")
        with pytest.raises(ValueError):
            rf.read_span(RecordPointer(2, 0), 1)

    def test_io_accounting_proportional_to_span(self):
        rf = self.make(page_size=32)
        small = rf.append(b"x" * 8)
        big = rf.append(b"y" * 300)
        rf.flush()
        rf.drop_cache()
        rf.stats.reset()
        rf.read(small)
        small_reads = rf.stats.logical_reads
        rf.drop_cache()
        rf.stats.reset()
        rf.read(big)
        big_reads = rf.stats.logical_reads
        assert small_reads == 1
        assert big_reads >= 10  # 300 bytes over 32-byte pages

    def test_invalid_pointer_rejected(self):
        with pytest.raises(ValueError):
            RecordPointer(-1, 0)

    @given(st.lists(st.binary(min_size=0, max_size=200),
                    min_size=1, max_size=30))
    def test_many_records_round_trip(self, payloads):
        rf = self.make(page_size=16)
        ptrs = [rf.append(p) for p in payloads]
        rf.flush()
        rf.drop_cache()
        for ptr, p in zip(ptrs, payloads):
            assert rf.read(ptr) == p

    def test_persists_through_file_store(self, tmp_path):
        from repro.storage import FilePageStore
        store = FilePageStore(str(tmp_path / "rec.bin"), page_size=32)
        rf = RecordFile(store)
        ptr = rf.append(b"durable" * 20)
        rf.flush()
        rf.drop_cache()
        assert rf.read(ptr) == b"durable" * 20
        rf.close()
