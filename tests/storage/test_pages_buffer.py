"""Tests for page stores and the LRU buffer pool."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.storage import (
    BufferPool,
    FilePageStore,
    IOStats,
    InMemoryPageStore,
)


@pytest.fixture(params=["memory", "file"])
def store(request, tmp_path):
    if request.param == "memory":
        s = InMemoryPageStore(page_size=64)
    else:
        s = FilePageStore(str(tmp_path / "pages.bin"), page_size=64)
    yield s
    s.close()


class TestPageStore:
    def test_allocate_sequential_ids(self, store):
        assert store.allocate() == 0
        assert store.allocate() == 1
        assert store.num_pages == 2

    def test_fresh_page_zeroed(self, store):
        pid = store.allocate()
        assert store.read_page(pid) == bytes(64)

    def test_write_read_round_trip(self, store):
        pid = store.allocate()
        store.write_page(pid, b"hello")
        data = store.read_page(pid)
        assert data[:5] == b"hello"
        assert data[5:] == bytes(59)

    def test_full_page_round_trip(self, store):
        pid = store.allocate()
        payload = bytes(range(64))
        store.write_page(pid, payload)
        assert store.read_page(pid) == payload

    def test_oversized_write_rejected(self, store):
        pid = store.allocate()
        with pytest.raises(ValueError):
            store.write_page(pid, bytes(65))

    def test_bad_page_id_rejected(self, store):
        with pytest.raises(IndexError):
            store.read_page(0)
        store.allocate()
        with pytest.raises(IndexError):
            store.read_page(5)
        with pytest.raises(IndexError):
            store.write_page(-1, b"")

    def test_io_stats_counted(self, store):
        pid = store.allocate()
        store.write_page(pid, b"x")
        store.read_page(pid)
        store.read_page(pid)
        assert store.stats.physical_writes == 1
        assert store.stats.physical_reads == 2

    def test_invalid_page_size(self):
        with pytest.raises(ValueError):
            InMemoryPageStore(page_size=0)

    @given(st.lists(st.binary(max_size=64), min_size=1, max_size=20))
    def test_many_pages_round_trip(self, payloads):
        with InMemoryPageStore(page_size=64) as s:
            ids = []
            for p in payloads:
                pid = s.allocate()
                s.write_page(pid, p)
                ids.append(pid)
            for pid, p in zip(ids, payloads):
                assert s.read_page(pid)[:len(p)] == p


class TestFilePageStore:
    def test_unlink_removes_file(self, tmp_path):
        path = tmp_path / "u.bin"
        s = FilePageStore(str(path), page_size=32)
        s.allocate()
        assert path.exists()
        s.unlink()
        assert not path.exists()


class TestBufferPool:
    def test_read_through_then_hit(self):
        store = InMemoryPageStore(page_size=32)
        pool = BufferPool(store, capacity=4)
        pid = pool.allocate()
        pool.write_page(pid, b"abc")
        pool.flush()
        store.stats.reset()
        pool.clear()
        pool.read_page(pid)   # miss
        pool.read_page(pid)   # hit
        assert store.stats.physical_reads == 1
        assert store.stats.cache_hits == 1
        assert store.stats.logical_reads == 2

    def test_write_back_on_eviction(self):
        store = InMemoryPageStore(page_size=32)
        pool = BufferPool(store, capacity=2)
        ids = [pool.allocate() for _ in range(3)]
        for i, pid in enumerate(ids):
            pool.write_page(pid, bytes([i + 1]))
        # Capacity 2: writing the third page evicts the first (dirty).
        assert store.read_page(ids[0])[0] == 1

    def test_lru_order(self):
        store = InMemoryPageStore(page_size=32)
        pool = BufferPool(store, capacity=2)
        a, b, c = (pool.allocate() for _ in range(3))
        pool.write_page(a, b"a")
        pool.write_page(b, b"b")
        pool.read_page(a)          # a most-recent; b is LRU
        pool.write_page(c, b"c")   # evicts b
        store.stats.reset()
        pool.read_page(a)          # hit
        pool.read_page(b)          # miss
        assert store.stats.cache_hits == 1
        assert store.stats.physical_reads == 1

    def test_flush_writes_dirty_only_once(self):
        store = InMemoryPageStore(page_size=32)
        pool = BufferPool(store, capacity=4)
        pid = pool.allocate()
        pool.write_page(pid, b"z")
        pool.flush()
        writes = store.stats.physical_writes
        pool.flush()  # nothing dirty now
        assert store.stats.physical_writes == writes

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            BufferPool(InMemoryPageStore(), capacity=0)

    def test_oversized_write_rejected(self):
        pool = BufferPool(InMemoryPageStore(page_size=16), capacity=2)
        pool.allocate()
        with pytest.raises(ValueError):
            pool.write_page(0, bytes(17))

    def test_close_flushes(self):
        store = InMemoryPageStore(page_size=32)
        with BufferPool(store, capacity=4) as pool:
            pid = pool.allocate()
            pool.write_page(pid, b"q")
        assert store.stats.physical_writes >= 1

    @given(st.lists(st.tuples(st.integers(0, 9), st.binary(max_size=32)),
                    min_size=1, max_size=60))
    def test_pool_semantics_match_direct_store(self, ops):
        """The pool must be a transparent cache: same contents as no cache."""
        mirror = {}
        store = InMemoryPageStore(page_size=32)
        pool = BufferPool(store, capacity=3)
        for _ in range(10):
            pool.allocate()
        for slot, payload in ops:
            pool.write_page(slot, payload)
            mirror[slot] = payload + bytes(32 - len(payload))
        for slot, expect in mirror.items():
            assert pool.read_page(slot) == expect
        pool.flush()
        for slot, expect in mirror.items():
            assert store.read_page(slot) == expect


class TestIOStats:
    def test_snapshot_delta(self):
        stats = IOStats()
        stats.record_read(hit=False)
        before = stats.snapshot()
        stats.record_read(hit=True)
        stats.record_write()
        delta = before.delta(stats.snapshot())
        assert delta.physical_reads == 0
        assert delta.cache_hits == 1
        assert delta.physical_writes == 1
        assert delta.logical_reads == 1

    def test_reset(self):
        stats = IOStats()
        stats.record_read(hit=False)
        stats.record_write()
        stats.reset()
        assert stats.logical_reads == 0
        assert stats.physical_writes == 0
