"""Tests for the segmented write-ahead log: replay, tearing, failpoints."""

import os

import pytest

from repro.storage import (
    IOStats,
    SimulatedCrash,
    WriteAheadLog,
)


def replay_all(directory):
    with WriteAheadLog(str(directory)) as wal:
        return [(rectype, payload) for rectype, payload in wal.replay()]


class TestAppendReplay:
    def test_round_trip(self, tmp_path):
        with WriteAheadLog(str(tmp_path)) as wal:
            for i in range(20):
                assert wal.append(b"record %d" % i) == i
        assert replay_all(tmp_path) == [
            (1, b"record %d" % i) for i in range(20)]

    def test_record_types_preserved(self, tmp_path):
        with WriteAheadLog(str(tmp_path)) as wal:
            wal.append(b"a", rectype=1)
            wal.append(b"b", rectype=7)
        assert replay_all(tmp_path) == [(1, b"a"), (7, b"b")]

    def test_empty_payload_round_trips(self, tmp_path):
        with WriteAheadLog(str(tmp_path)) as wal:
            wal.append(b"")
        assert replay_all(tmp_path) == [(1, b"")]

    def test_bad_rectype_rejected(self, tmp_path):
        with WriteAheadLog(str(tmp_path)) as wal:
            with pytest.raises(ValueError):
                wal.append(b"x", rectype=0)
            with pytest.raises(ValueError):
                wal.append(b"x", rectype=256)

    def test_constructor_validation(self, tmp_path):
        with pytest.raises(ValueError, match="sync"):
            WriteAheadLog(str(tmp_path), sync="eventually")
        with pytest.raises(ValueError, match="segment_bytes"):
            WriteAheadLog(str(tmp_path), segment_bytes=4)
        with pytest.raises(ValueError, match="sync_interval"):
            WriteAheadLog(str(tmp_path), sync_interval=0)


class TestSegments:
    def test_rotation_splits_and_replay_spans_segments(self, tmp_path):
        with WriteAheadLog(str(tmp_path), segment_bytes=256) as wal:
            for i in range(40):
                wal.append(b"payload-%04d" % i)
            assert len(wal.segments()) > 1
        records = replay_all(tmp_path)
        assert [p for _, p in records] == [b"payload-%04d" % i
                                           for i in range(40)]

    def test_checkpoint_drops_all_segments(self, tmp_path):
        with WriteAheadLog(str(tmp_path), segment_bytes=256) as wal:
            for i in range(40):
                wal.append(b"payload-%04d" % i)
            wal.checkpoint()
            assert wal.segments() == [wal._segment_path(wal._segment_no)]
        assert replay_all(tmp_path) == []

    def test_appends_resume_after_checkpoint(self, tmp_path):
        with WriteAheadLog(str(tmp_path)) as wal:
            wal.append(b"before")
            wal.checkpoint()
            wal.append(b"after")
        assert [p for _, p in replay_all(tmp_path)] == [b"after"]


class TestSyncPolicies:
    def test_always_fsyncs_each_append(self, tmp_path):
        stats = IOStats()
        with WriteAheadLog(str(tmp_path), sync="always",
                           stats=stats) as wal:
            for _ in range(5):
                wal.append(b"x")
        assert stats.fsyncs == 5

    def test_batch_fsyncs_every_interval(self, tmp_path):
        stats = IOStats()
        with WriteAheadLog(str(tmp_path), sync="batch", sync_interval=4,
                           stats=stats) as wal:
            for _ in range(8):
                wal.append(b"x")
            assert stats.fsyncs == 2

    def test_checkpoint_policy_defers_to_lifecycle_points(self, tmp_path):
        stats = IOStats()
        with WriteAheadLog(str(tmp_path), sync="checkpoint",
                           stats=stats) as wal:
            for _ in range(50):
                wal.append(b"x")
            assert stats.fsyncs == 0
            wal.checkpoint()
            assert stats.fsyncs == 1


class TestTornTails:
    def test_flipped_byte_ends_replay_at_corruption(self, tmp_path):
        with WriteAheadLog(str(tmp_path)) as wal:
            for i in range(10):
                wal.append(b"record %d" % i)
            path = wal.segments()[0]
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.seek(size // 2)
            byte = handle.read(1)[0]
            handle.seek(size // 2)
            handle.write(bytes([byte ^ 0x40]))
        records = replay_all(tmp_path)
        assert 0 < len(records) < 10
        assert records == [(1, b"record %d" % i)
                           for i in range(len(records))]

    def test_truncated_tail_repaired_on_reopen(self, tmp_path):
        with WriteAheadLog(str(tmp_path)) as wal:
            for i in range(10):
                wal.append(b"record %d" % i)
            path = wal.segments()[0]
        os.truncate(path, os.path.getsize(path) - 3)
        with WriteAheadLog(str(tmp_path)) as wal:
            wal.append(b"resumed")
        records = [p for _, p in replay_all(tmp_path)]
        assert records == [b"record %d" % i for i in range(9)] + [b"resumed"]

    def test_scrub_reports_torn_offset(self, tmp_path):
        with WriteAheadLog(str(tmp_path)) as wal:
            for i in range(10):
                wal.append(b"record %d" % i)
            assert wal.scrub().clean
            path = wal.segments()[0]
        os.truncate(path, os.path.getsize(path) - 3)
        # Scan directly — reopening the log would repair the tail first.
        from repro.storage.wal import _scan_segment_extent
        good, torn = _scan_segment_extent(path)
        assert good == 9
        assert torn is not None


class TestFailpoints:
    def test_crash_mid_record_leaves_recoverable_prefix(self, tmp_path):
        torn_firings = {"n": 0}

        def failpoint(stage):
            if stage == "append.torn":
                torn_firings["n"] += 1
                if torn_firings["n"] == 2:  # crash inside the 2nd record
                    raise SimulatedCrash(stage)

        wal = WriteAheadLog(str(tmp_path), failpoint=failpoint)
        wal.append(b"whole record zero")
        with pytest.raises(SimulatedCrash):
            wal.append(b"this one tears mid-write")
        wal._file.close()  # what a crash leaves: no sync, no cleanup
        records = [p for _, p in replay_all(tmp_path)]
        assert records == [b"whole record zero"]
        # Reopening repairs the tail and appends continue cleanly.
        with WriteAheadLog(str(tmp_path)) as wal:
            wal.append(b"after recovery")
        assert [p for _, p in replay_all(tmp_path)] == [
            b"whole record zero", b"after recovery"]

    def test_crash_before_checkpoint_truncation_keeps_log(self, tmp_path):
        def failpoint(stage):
            if stage == "checkpoint.before":
                raise SimulatedCrash(stage)

        wal = WriteAheadLog(str(tmp_path), failpoint=failpoint)
        wal.append(b"survives")
        with pytest.raises(SimulatedCrash):
            wal.checkpoint()
        wal._file.close()
        assert [p for _, p in replay_all(tmp_path)] == [b"survives"]

    def test_failpoint_stages_fire_in_order(self, tmp_path):
        stages = []
        wal = WriteAheadLog(str(tmp_path), sync="always",
                            failpoint=stages.append)
        wal.append(b"x")
        wal.close()
        assert stages == ["append.header", "append.torn",
                          "append.complete", "sync"]
