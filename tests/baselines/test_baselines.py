"""Tests for the baseline competitors: correctness and pruning behaviour."""

import math
import random

import pytest

from repro.baselines import FilterThenVerify, IRTree, MIR2Tree
from repro.core import DirectionalQuery, brute_force_search
from repro.geometry import (
    DirectionInterval,
    MBR,
    Point,
    direction_overlaps_mbr,
    subtended_interval,
)
from repro.storage import SearchStats

from ..core.conftest import make_collection, random_query_params

BASELINE_CLASSES = [FilterThenVerify, MIR2Tree, IRTree]


@pytest.fixture(scope="module")
def collection():
    return make_collection(350, seed=61)


@pytest.fixture(scope="module", params=BASELINE_CLASSES,
                ids=lambda c: c.name)
def baseline(request, collection):
    return request.param(collection, fanout=8)


class TestSubtendedInterval:
    def test_center_inside_is_none(self):
        assert subtended_interval(Point(5, 5), MBR(0, 0, 10, 10)) is None

    def test_east_of_square(self):
        iv = subtended_interval(Point(20, 5), MBR(0, 0, 10, 10))
        # The square sits west of the viewpoint: directions near pi.
        assert iv.contains(math.pi)
        assert not iv.contains(0.0)

    def test_interval_covers_all_corner_directions(self):
        q = Point(-3, 17)
        box = MBR(2, 2, 9, 6)
        iv = subtended_interval(q, box)
        for corner in box.corners():
            assert iv.contains(q.direction_to(corner))

    def test_wrapping_case(self):
        # Box east of viewpoint straddling the x-axis: arc wraps 0.
        iv = subtended_interval(Point(0, 0), MBR(5, -2, 8, 2))
        assert iv.contains(0.0)
        assert iv.width < math.pi

    def test_interval_is_minimal_arc(self):
        q = Point(20, 5)
        box = MBR(0, 0, 10, 10)
        iv = subtended_interval(q, box)
        assert iv.width < math.pi  # a finite box never subtends a half turn
        # Sampled interior points stay inside the subtended arc.
        rng = random.Random(0)
        for _ in range(50):
            p = Point(rng.uniform(0, 10), rng.uniform(0, 10))
            assert iv.contains(q.direction_to(p))


class TestDirectionOverlapsMBR:
    def test_full_interval_always_overlaps(self):
        assert direction_overlaps_mbr(Point(100, 100),
                                      DirectionInterval.full(),
                                      MBR(0, 0, 1, 1))

    def test_center_inside_always_overlaps(self):
        assert direction_overlaps_mbr(Point(5, 5),
                                      DirectionInterval(0, 0.1),
                                      MBR(0, 0, 10, 10))

    def test_disjoint_direction(self):
        # Box due east; query pointing due west.
        assert not direction_overlaps_mbr(
            Point(0, 0), DirectionInterval(math.pi - 0.3, math.pi + 0.3),
            MBR(5, -1, 8, 1))

    def test_never_prunes_boxes_with_answers(self):
        """Soundness: if some point of the box is in-direction, no prune."""
        rng = random.Random(4)
        for _ in range(200):
            q = Point(rng.uniform(-20, 20), rng.uniform(-20, 20))
            x1, y1 = rng.uniform(-15, 15), rng.uniform(-15, 15)
            box = MBR(x1, y1, x1 + rng.uniform(0.1, 8),
                      y1 + rng.uniform(0.1, 8))
            a = rng.uniform(0, 2 * math.pi)
            iv = DirectionInterval(a, a + rng.uniform(0.1, 3.0))
            # Sample points of the box; if any is within direction, the
            # overlap test must say True.
            any_inside = False
            for _ in range(40):
                p = Point(rng.uniform(box.min_x, box.max_x),
                          rng.uniform(box.min_y, box.max_y))
                if p != q and iv.contains(q.direction_to(p)):
                    any_inside = True
                    break
            if any_inside:
                assert direction_overlaps_mbr(q, iv, box)


class TestBaselineCorrectness:
    def test_matches_brute_force(self, collection, baseline):
        rng = random.Random(13)
        for _ in range(50):
            x, y, a, b, kws, k = random_query_params(rng)
            q = DirectionalQuery.make(x, y, a, b, kws, k)
            got = baseline.search(q)
            expect = brute_force_search(collection, q)
            assert [round(d, 9) for d in got.distances()] == \
                [round(d, 9) for d in expect.distances()]

    def test_unknown_keyword(self, baseline):
        q = DirectionalQuery.make(50, 50, 0, 1, ["zzz"], 5)
        assert len(baseline.search(q)) == 0

    def test_narrow_direction(self, collection, baseline):
        q = DirectionalQuery.make(50, 50, 1.0, 1.05, ["food"], 10)
        got = baseline.search(q)
        expect = brute_force_search(collection, q)
        assert got.distances() == pytest.approx(expect.distances())

    def test_build_time_recorded(self, baseline):
        assert baseline.build_seconds > 0

    def test_size_positive(self, baseline):
        assert baseline.size_bytes > baseline.tree_size_bytes or \
            isinstance(baseline, FilterThenVerify)


class TestTextualPruning:
    def test_mir2_prunes_nodes(self, collection):
        """Signature pruning must reduce examined nodes for rare keywords."""
        plain = FilterThenVerify(collection, fanout=8)
        mir2 = MIR2Tree(collection, fanout=8)
        # Pick the rarest keyword present.
        vocab = collection.vocabulary
        rare = min(vocab.terms(),
                   key=lambda t: vocab.doc_frequency(vocab.id_of(t)))
        q = DirectionalQuery.undirected(50, 50, [rare], 1000)
        s_plain, s_mir2 = SearchStats(), SearchStats()
        plain.search(q, s_plain)
        mir2.search(q, s_mir2, prune_direction=True)
        assert s_mir2.pois_examined <= s_plain.pois_examined

    def test_irtree_prunes_at_least_as_well_as_signatures(self, collection):
        """Exact inverted files never examine more than signatures."""
        mir2 = MIR2Tree(collection, fanout=8, signature_bits=64)
        irt = IRTree(collection, fanout=8)
        rng = random.Random(21)
        total_mir2 = total_irt = 0
        for _ in range(20):
            x, y, a, b, kws, k = random_query_params(rng)
            q = DirectionalQuery.make(x, y, a, b, kws, k)
            s1, s2 = SearchStats(), SearchStats()
            mir2.search(q, s1)
            irt.search(q, s2)
            total_mir2 += s1.pois_examined
            total_irt += s2.pois_examined
        assert total_irt <= total_mir2

    def test_direction_pruning_helps_narrow_queries(self, collection):
        mir2 = MIR2Tree(collection, fanout=8)
        q = DirectionalQuery.make(50, 50, 1.0, 1.1, ["food"], 10)
        with_dir, without_dir = SearchStats(), SearchStats()
        mir2.search(q, with_dir, prune_direction=True)
        mir2.search(q, without_dir, prune_direction=False)
        assert with_dir.pois_examined <= without_dir.pois_examined

    def test_lkt_index_larger_than_mir2(self):
        """Table III's size ordering: LkT >> MIR2-tree.

        The ordering depends on vocabulary richness (inverted files grow
        with distinct terms, signatures are fixed-width), so it needs a
        realistically skewed dataset, not the 8-keyword toy pool.
        """
        from repro.datasets import generate, virginia_like
        realistic = generate(virginia_like(scale=1000.0))
        mir2 = MIR2Tree(realistic, fanout=16)
        irt = IRTree(realistic, fanout=16)
        assert irt.size_bytes > mir2.size_bytes


class TestFilterThenVerifyVariants:
    def test_two_step_equals_integrated(self, collection):
        ftv = FilterThenVerify(collection, fanout=8)
        rng = random.Random(31)
        for _ in range(15):
            x, y, a, b, kws, k = random_query_params(rng)
            q = DirectionalQuery.make(x, y, a, b, kws, k)
            two_step = ftv.search(q, prune_direction=False)
            integrated = ftv.search(q, prune_direction=True)
            assert two_step.distances() == pytest.approx(
                integrated.distances())

    def test_two_step_examines_more(self, collection):
        ftv = FilterThenVerify(collection, fanout=8)
        q = DirectionalQuery.make(50, 50, 1.0, 1.2, ["food"], 10)
        s_two, s_int = SearchStats(), SearchStats()
        ftv.search(q, s_two, prune_direction=False)
        ftv.search(q, s_int, prune_direction=True)
        assert s_int.pois_examined <= s_two.pois_examined


class TestGridIndex:
    def test_validation(self, collection):
        from repro.baselines import GridIndex
        with pytest.raises(ValueError):
            GridIndex(collection, target_pois_per_cell=0)

    def test_matches_brute_force(self, collection):
        from repro.baselines import GridIndex
        grid = GridIndex(collection, target_pois_per_cell=10)
        rng = random.Random(91)
        for _ in range(40):
            x, y, a, b, kws, k = random_query_params(rng)
            q = DirectionalQuery.make(x, y, a, b, kws, k)
            got = grid.search(q).distances()
            expect = brute_force_search(collection, q).distances()
            assert [round(d, 9) for d in got] == \
                [round(d, 9) for d in expect]

    def test_matches_brute_force_any_mode(self, collection):
        from repro.baselines import GridIndex
        from repro.core import MatchMode

        grid = GridIndex(collection, target_pois_per_cell=10)
        rng = random.Random(92)
        for _ in range(20):
            x, y, a, b, kws, k = random_query_params(rng)
            q = DirectionalQuery.make(x, y, a, b, kws, k,
                                      match_mode=MatchMode.ANY)
            got = grid.search(q).distances()
            expect = brute_force_search(collection, q).distances()
            assert [round(d, 9) for d in got] == \
                [round(d, 9) for d in expect]

    def test_direction_pruning_option(self, collection):
        from repro.baselines import GridIndex
        grid = GridIndex(collection, target_pois_per_cell=10)
        q = DirectionalQuery.make(50, 50, 1.0, 1.3, ["food"], 5)
        s_on, s_off = SearchStats(), SearchStats()
        on = grid.search(q, s_on, prune_direction=True)
        off = grid.search(q, s_off, prune_direction=False)
        assert on.distances() == pytest.approx(off.distances())
        assert s_on.pois_examined <= s_off.pois_examined

    def test_cell_mbrs_tile_dataset(self, collection):
        from repro.baselines import GridIndex
        grid = GridIndex(collection, target_pois_per_cell=20)
        for poi in collection:
            cell = grid._cell_of(poi.location.x, poi.location.y)
            assert grid.cell_mbr(cell).contains_point(poi.location)

    def test_unknown_keyword(self, collection):
        from repro.baselines import GridIndex
        grid = GridIndex(collection, target_pois_per_cell=10)
        q = DirectionalQuery.make(50, 50, 0, 1, ["zzz"], 5)
        assert len(grid.search(q)) == 0

    def test_size_positive(self, collection):
        from repro.baselines import GridIndex
        assert GridIndex(collection).size_bytes > 0

    def test_single_cell_degenerate(self):
        from repro.baselines import GridIndex
        from repro.datasets import POI, POICollection

        col = POICollection([POI.make(i, float(i), 2.0, ["x"])
                             for i in range(5)])  # collinear
        grid = GridIndex(col, target_pois_per_cell=100)
        q = DirectionalQuery.make(0.0, 2.0, 0.0, 0.1, ["x"], 3)
        expect = brute_force_search(col, q).distances()
        assert grid.search(q).distances() == pytest.approx(expect)
