"""Shared fixtures for the network serving layer tests.

The server fixtures run :class:`~repro.net.ShardServer` on a background
thread inside the test process (cheap, deterministic); only the launcher
tests fork real OS processes.
"""

import random

import pytest

from repro.core import DesksIndex, DesksSearcher, DirectionalQuery
from repro.datasets import POI, POICollection
from repro.net import RemoteShardClient, ShardServer

KEYWORD_POOL = ["cafe", "food", "gas", "atm", "pizza", "bank", "hotel",
                "park"]


def make_collection(n=300, seed=23, extent=100.0):
    rng = random.Random(seed)
    return POICollection([
        POI.make(i, rng.uniform(0, extent), rng.uniform(0, extent),
                 rng.sample(KEYWORD_POOL, rng.randint(1, 3)))
        for i in range(n)
    ])


def random_queries(rng, count, extent=100.0, pool=KEYWORD_POOL):
    """Mixed random workload: locations inside and outside the data."""
    import math

    queries = []
    for _ in range(count):
        margin = 0.3 * extent
        x = rng.uniform(-margin, extent + margin)
        y = rng.uniform(-margin, extent + margin)
        alpha = rng.uniform(0.0, 2 * math.pi)
        width = rng.uniform(0.05, 2 * math.pi)
        keywords = rng.sample(pool, rng.randint(1, 2))
        k = rng.choice([1, 3, 10])
        queries.append(DirectionalQuery.make(x, y, alpha, alpha + width,
                                             keywords, k))
    return queries


def entries_of(result):
    """Comparable (poi_id, distance) pairs of a QueryResult."""
    return [(e.poi_id, e.distance) for e in result.entries]


@pytest.fixture(scope="module")
def collection():
    return make_collection()


@pytest.fixture(scope="module")
def index(collection):
    return DesksIndex(collection, num_bands=4, num_wedges=5)


@pytest.fixture(scope="module")
def reference(index):
    """Unsharded searcher — the equivalence oracle."""
    return DesksSearcher(index)


@pytest.fixture(scope="module")
def server(index):
    """A ShardServer on an ephemeral port, shared across a module."""
    srv = ShardServer(index, shard_id=0, num_workers=2).start()
    yield srv
    srv.stop()


@pytest.fixture()
def client(server):
    with RemoteShardClient(server.address) as cli:
        yield cli
