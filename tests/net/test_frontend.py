"""ClusterFrontend: the asyncio front door over an in-process router."""

import random
import threading

import pytest

from repro.cluster import FaultInjector, ShardRouter
from repro.net import (
    ClusterFrontend,
    OverloadError,
    RemoteShardClient,
)

from .conftest import entries_of, random_queries


@pytest.fixture(scope="module")
def router(collection):
    with ShardRouter(collection, num_shards=4, partitioner="grid") as r:
        yield r


@pytest.fixture(scope="module")
def frontend(router):
    front = ClusterFrontend(router, num_workers=4).start()
    yield front
    front.stop()


@pytest.fixture()
def front_client(frontend):
    with RemoteShardClient(frontend.address) as cli:
        yield cli


def test_frontend_search_equals_local(front_client, reference):
    for query in random_queries(random.Random(31), 20):
        remote = front_client.search(query)
        assert not remote.partial and not remote.degraded
        assert entries_of(remote.result) == \
            entries_of(reference.search(query))


def test_frontend_health_describes_the_cluster(front_client, collection):
    report = front_client.health()
    assert report.ok
    assert report.shard_id == 4  # by convention: the shard count
    assert report.num_pois == len(collection)


def test_frontend_stats_include_cluster_counters(front_client):
    query = random_queries(random.Random(32), 1)[0]
    front_client.search(query)
    stats = front_client.stats()
    assert stats["num_shards"] == 4
    assert stats["net_frontend_requests_total"] >= 1
    assert "max_inflight" in stats


def test_frontend_expired_budget_is_partial_and_immediate(front_client,
                                                          frontend):
    before = frontend.metrics.counter("net_deadline_expired_total").value
    query = random_queries(random.Random(33), 1)[0]
    remote = front_client.search(query, budget=0.0)
    assert remote.partial
    assert remote.result.entries == []
    assert frontend.metrics.counter("net_deadline_expired_total").value \
        == before + 1


def test_frontend_forwards_typed_brownout(collection):
    """A lost shard answers as a typed partial naming the shard.

    With every replica of every shard hard-failed, the router browns out
    instead of erroring; the frontend must forward the loss *typed* —
    ``degraded`` with ``unavailable_shards`` on the wire — so a remote
    client knows exactly which shards its partial answer is missing.
    """
    injector = FaultInjector()
    injector.set_fault(replica_id=0, error_rate=1.0)
    with ShardRouter(collection, num_shards=2, partitioner="grid",
                     fault_injector=injector) as router:
        frontend = ClusterFrontend(router, num_workers=2).start()
        try:
            query = random_queries(random.Random(35), 1)[0]
            with RemoteShardClient(frontend.address) as cli:
                remote = cli.search(query)
            assert remote.degraded
            assert remote.unavailable_shards
            assert remote.unavailable_shards == \
                tuple(sorted(remote.unavailable_shards))
            assert remote.failure_cause is not None
            assert "unavailable" in remote.failure_cause
            assert frontend.metrics.counter(
                "net_frontend_brownouts_total").value >= 1
        finally:
            frontend.stop()


def test_frontend_sheds_typed_overload(collection):
    """At max_inflight the front door sheds *before* the executor hop."""
    with ShardRouter(collection, num_shards=2, partitioner="grid") as router:
        entered = threading.Event()
        release = threading.Event()
        real_execute = router.execute

        def stalled_execute(query, timeout=None):
            entered.set()
            release.wait(timeout=10.0)
            return real_execute(query, timeout)

        router.execute = stalled_execute
        frontend = ClusterFrontend(router, max_inflight=1,
                                   num_workers=2).start()
        try:
            query = random_queries(random.Random(34), 1)[0]
            first_result = []

            def first():
                with RemoteShardClient(frontend.address) as cli:
                    first_result.append(cli.search(query))

            holder = threading.Thread(target=first)
            holder.start()
            assert entered.wait(timeout=5.0)
            with RemoteShardClient(frontend.address) as cli:
                for _ in range(3):
                    with pytest.raises(OverloadError):
                        cli.search(query)
            release.set()
            holder.join(timeout=10.0)
            assert first_result and not first_result[0].partial
            assert frontend.metrics.counter("net_overload_total").value >= 3
        finally:
            release.set()
            frontend.stop()


def test_frontend_survives_garbage_frames(front_client, frontend,
                                          reference):
    import socket

    with socket.create_connection(frontend.address, timeout=5.0) as conn:
        conn.sendall(b"\xff" * 12)
        conn.shutdown(socket.SHUT_WR)
        answer = conn.recv(4096)  # best-effort typed error (or drop)
        assert answer == b"" or answer[:2] != b"\xff\xff"
    query = random_queries(random.Random(35), 1)[0]
    assert entries_of(front_client.search(query).result) == \
        entries_of(reference.search(query))


def test_frontend_statement_equals_local(front_client, reference):
    from repro.lang import plan_from_query

    for query in random_queries(random.Random(43), 10):
        remote = front_client.execute_statement(
            plan_from_query(query).render())
        assert remote.kind == "search"
        assert entries_of(remote.search.result) == \
            entries_of(reference.search(query))


def test_frontend_statement_show_shards(front_client, router):
    remote = front_client.execute_statement("SHOW SHARDS")
    assert remote.kind == "table"
    assert remote.table["shards.total"] == float(router.num_shards)


def test_frontend_statement_explain_is_plan_only(front_client):
    remote = front_client.execute_statement(
        "EXPLAIN SELECT 3 NEAR (50.0, 50.0) MATCHING 'cafe'")
    assert remote.kind == "text"
    assert "cluster plan" in remote.text
    assert "dispatch shard=" in remote.text


def test_frontend_statement_parse_error_has_caret(front_client):
    from repro.net import RpcError

    with pytest.raises(RpcError) as info:
        front_client.execute_statement("EXPLAIN SHOW METRICS")
    assert "^" in str(info.value)
