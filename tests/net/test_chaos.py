"""ChaosProxy faults against a real ShardServer, one kind at a time.

Each test proxies a live in-process server through
:class:`repro.net.chaos.ChaosProxy` with exactly one fault armed, and
asserts both sides of the reconciliation contract: the client surfaces
the *typed* failure (never a hang, never a wrong answer) and the
client-side failure counter matches the proxy's activation counter
exactly.  The full plan-matrix acceptance run over real OS processes
lives in ``benchmarks/test_netchaos.py``.
"""

import random
import time

import pytest

from repro.net import (
    ChecksumMismatch,
    RemoteReplicaSet,
    RemoteShardClient,
    ResilienceConfig,
    ShardServer,
    TransportError,
)
from repro.net.chaos import ChaosProxy, FaultPlan
from repro.service import MetricsRegistry

from .conftest import entries_of, random_queries


@pytest.fixture()
def query():
    return random_queries(random.Random(41), 1)[0]


def counters(metrics):
    return metrics.to_dict()["counters"]


def make_client(proxy, **kw):
    kw.setdefault("connect_timeout", 2.0)
    kw.setdefault("backoff", 0.02)
    kw.setdefault("metrics", MetricsRegistry())
    return RemoteShardClient(proxy.address, **kw)


# -- transparency and latency -------------------------------------------------


def test_transparent_proxy_is_invisible(server, reference, query):
    with ChaosProxy(server.address) as proxy:
        with make_client(proxy) as client:
            got = client.search(query)
            assert entries_of(got.result) == \
                entries_of(reference.search(query))
    log = proxy.log.to_dict()
    assert log["frames_forwarded"] >= 1
    assert log["corruptions_injected"] == 0
    assert log["resets_injected"] == 0
    assert log["blackholes_activated"] == 0


def test_latency_plan_delays_every_response(server, reference, query):
    plan = FaultPlan("latency", latency_seconds=0.08)
    with ChaosProxy(server.address, plan) as proxy:
        with make_client(proxy) as client:
            started = time.monotonic()
            got = client.search(query)
            elapsed = time.monotonic() - started
            assert entries_of(got.result) == \
                entries_of(reference.search(query))
            assert elapsed >= 0.08
    assert proxy.log.to_dict()["latencies_injected"] == 1


def test_plan_validation():
    with pytest.raises(ValueError):
        FaultPlan("bad", corrupt_probability=1.5)
    with pytest.raises(ValueError):
        FaultPlan("bad", blackhole_probability=-0.1)
    with pytest.raises(ValueError):
        FaultPlan("bad", reset_after_bytes=-1)


# -- corruption: the CRC layer must catch every flipped byte ------------------


def test_corruption_is_caught_by_the_crc(server, query):
    plan = FaultPlan("corrupt", corrupt_probability=1.0, seed=3)
    with ChaosProxy(server.address, plan) as proxy:
        with make_client(proxy) as client:
            with pytest.raises(ChecksumMismatch):
                client.search(query)
            observed = counters(client.metrics)
    assert observed["net_client_crc_errors_total"] == 1
    assert proxy.log.to_dict()["corruptions_injected"] == 1


# -- resets: mid-header and mid-payload cuts ----------------------------------


@pytest.mark.parametrize("cut_at", [5, 14],
                         ids=["mid-header", "mid-payload"])
def test_reset_mid_frame_truncates_a_fresh_connection(server, query, cut_at):
    """_recv_exactly's short-read path, cut inside header and payload."""
    plan = FaultPlan("reset", reset_probability=1.0,
                     reset_after_bytes=cut_at)
    with ChaosProxy(server.address, plan) as proxy:
        with make_client(proxy) as client:
            with pytest.raises(TransportError):
                client.search(query)
            observed = counters(client.metrics)
    # A fresh connection died mid-frame: that is the server's failure,
    # surfaced (not silently retried) and counted as a truncation.
    assert observed["net_client_truncated_total"] == 1
    assert observed.get("net_client_stale_retries_total", 0) == 0
    assert proxy.log.to_dict()["resets_injected"] == 1


def test_rst_reset_surfaces_as_transport_error(server, query):
    plan = FaultPlan("rst", reset_probability=1.0, reset_after_bytes=6,
                     reset_rst=True)
    with ChaosProxy(server.address, plan) as proxy:
        with make_client(proxy) as client:
            with pytest.raises(TransportError):
                client.search(query)
            observed = counters(client.metrics)
    # Depending on timing the kernel surfaces ECONNRESET or a short read;
    # either way exactly one injected reset became one observed failure.
    assert (observed.get("net_client_reset_total", 0)
            + observed.get("net_client_truncated_total", 0)) == 1
    assert proxy.log.to_dict()["resets_injected"] == 1


# -- stale pooled connections: retried once, silently -------------------------


def test_severed_pooled_connection_is_retried_once(server, reference, query):
    with ChaosProxy(server.address) as proxy:
        with make_client(proxy) as client:
            client.search(query)            # pools one live connection
            assert proxy.drop_connections() >= 1
            # The pooled socket is now dead.  The client must detect the
            # stale connection, count it, and silently retry once on a
            # fresh one — the caller never sees the failure.
            got = client.search(query)
            assert entries_of(got.result) == \
                entries_of(reference.search(query))
            observed = counters(client.metrics)
    assert observed["net_client_stale_retries_total"] == 1
    assert observed.get("net_client_truncated_total", 0) == 0
    assert proxy.log.to_dict()["connections_dropped"] >= 1


# -- blackhole: only the deadline ends the request ----------------------------


def test_blackhole_times_out_within_budget_plus_grace(server, query):
    plan = FaultPlan("blackhole", blackhole_probability=1.0)
    with ChaosProxy(server.address, plan) as proxy:
        with make_client(proxy, deadline_grace=0.2) as client:
            started = time.monotonic()
            with pytest.raises(TransportError):
                client.search(query, budget=0.3)
            elapsed = time.monotonic() - started
            observed = counters(client.metrics)
    # The proxy accepted and went silent; nothing but the deadline can
    # end the request, and it must do so promptly: budget + grace, plus
    # scheduling slack.
    assert 0.3 <= elapsed < 2.0
    assert observed["net_client_timeouts_total"] == 1
    assert proxy.log.to_dict()["blackholes_activated"] == 1


def test_same_seed_same_connection_order_injects_identically(server, query):
    plan = FaultPlan("flaky", reset_probability=0.5, seed=7)
    outcomes = []
    for _ in range(2):
        with ChaosProxy(server.address, plan) as proxy:
            run = []
            for _ in range(6):
                # One fresh connection per request: connection index —
                # not wall clock — drives every draw.
                with make_client(proxy) as client:
                    try:
                        client.search(query)
                        run.append("ok")
                    except TransportError:
                        run.append("reset")
            outcomes.append((run, proxy.log.to_dict()["resets_injected"]))
    assert outcomes[0] == outcomes[1]
    assert "reset" in outcomes[0][0] and "ok" in outcomes[0][0]


# -- replica set over a faulty proxy: correctness survives --------------------


def test_replica_set_answers_exactly_despite_a_corrupting_replica(
        index, server, reference):
    plan = FaultPlan("corrupt", corrupt_probability=1.0, seed=11)
    queries = random_queries(random.Random(43), 8)
    with ChaosProxy(server.address, plan) as proxy:
        direct = ShardServer(index, shard_id=0, num_workers=1).start()
        replica_set = RemoteReplicaSet(
            0, [proxy.address, direct.address], health_threshold=2,
            metrics=MetricsRegistry())
        try:
            for query in queries:
                response, _ = replica_set.execute(query, timeout=10.0)
                assert entries_of(response.result) == \
                    entries_of(reference.search(query))
        finally:
            replica_set.close()
            direct.stop()
    assert proxy.log.to_dict()["corruptions_injected"] >= 1


def test_restarted_server_returns_to_healthy_first_rotation(
        index, reference):
    """Probe recovery against a real restarted server process.

    The breaker's reset timeout is set far beyond the test so recovery
    can only come from the explicit health probe — the regression this
    guards is a permanently-excluded replica after its server restarts.
    """
    server_a = ShardServer(index, shard_id=0, num_workers=1).start()
    server_b = ShardServer(index, shard_id=0, num_workers=1).start()
    port_a = server_a.address[1]
    query = random_queries(random.Random(47), 1)[0]
    replica_set = RemoteReplicaSet(
        0, [server_a.address, server_b.address], health_threshold=2,
        metrics=MetricsRegistry(),
        client_factory=lambda address: RemoteShardClient(
            address, connect_timeout=0.5, connect_attempts=1),
        resilience=ResilienceConfig(breaker_reset_timeout=3600.0))
    restarted = None
    try:
        server_a.stop()
        # Rotation attempts the dead replica on queries 1 and 3; two
        # failures open its breaker and mark it unhealthy.
        for _ in range(4):
            response, _ = replica_set.execute(query, timeout=10.0)
            assert entries_of(response.result) == \
                entries_of(reference.search(query))
        summary = replica_set.health_summary()
        assert not summary[0]["healthy"]
        assert summary[0]["breaker"] == "open"
        # A failed probe keeps it excluded...
        assert replica_set.probe_unavailable() == []
        # ...then the server comes back on the same port and one probe
        # restores it to healthy-first rotation.
        restarted = ShardServer(index, host="127.0.0.1", port=port_a,
                                shard_id=0, num_workers=1).start()
        assert replica_set.probe_unavailable() == [0]
        summary = replica_set.health_summary()
        assert summary[0]["healthy"]
        assert summary[0]["breaker"] == "closed"
        before = replica_set.replicas[0].client.health().requests_total
        for _ in range(4):
            response, retried = replica_set.execute(query, timeout=10.0)
            assert retried == 0
            assert entries_of(response.result) == \
                entries_of(reference.search(query))
        after = replica_set.replicas[0].client.health().requests_total
        # The restarted server is serving search traffic again, not just
        # answering probes: rotation sent it half the queries.
        assert after - before >= 2
        observed = counters(replica_set.metrics)
        assert observed["net_probe_recoveries_total"] == 1
    finally:
        replica_set.close()
        server_b.stop()
        if restarted is not None:
            restarted.stop()
