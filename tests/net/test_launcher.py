"""ClusterLauncher: real OS processes, kept deliberately tiny.

One two-shard deployment, one replica each — enough to prove launch,
readiness, probing, connect_router equivalence, kill, and teardown with
real forked servers.  The full 240-query multi-partitioner sweep (and
the R=2 kill-a-replica failover run) lives in
``benchmarks/test_cluster_scatter_gather.py`` under the ``network``
marker.
"""

import os
import random

import pytest

from repro.cluster import ShardRouter
from repro.net import ClusterLauncher, LaunchError, connect_router
from repro.net.launcher import _read_manifest

from .conftest import entries_of, make_collection, random_queries


@pytest.fixture(scope="module")
def deployment(tmp_path_factory):
    collection = make_collection(n=200, seed=47)
    path = str(tmp_path_factory.mktemp("net") / "deploy")
    with ShardRouter(collection, num_shards=2, partitioner="grid") as router:
        router.save(path)
    return path, collection


def test_manifest_unwraps_nested_meta(deployment):
    path, collection = deployment
    meta = _read_manifest(path)
    assert len(meta["shard_global_ids"]) == 2
    assert meta["num_pois"] == len(collection)


def test_launch_probe_query_kill_stop(deployment, reference_for):
    path, collection = deployment
    reference = reference_for(collection)
    with ClusterLauncher(path, replication=1, num_workers=1,
                         startup_timeout=60.0) as launcher:
        addresses = launcher.start()
        assert sorted(addresses) == [0, 1]
        assert launcher.alive() == [(0, 0), (1, 0)]

        router = connect_router(path, addresses, num_workers=2)
        try:
            for query in random_queries(random.Random(41), 10):
                response = router.execute(query)
                assert not response.degraded
                assert entries_of(response.result) == \
                    entries_of(reference.search(query))
        finally:
            router.close()

        dead = launcher.kill(0, 0)
        assert not dead.alive
        assert launcher.alive() == [(1, 0)]
    assert launcher.alive() == []  # context exit stopped the rest


def test_missing_manifest_is_a_launch_error(tmp_path):
    os.makedirs(tmp_path / "empty" / "x", exist_ok=True)
    with open(tmp_path / "empty" / "meta.json", "w",
              encoding="utf-8") as handle:
        handle.write("{}")
    with pytest.raises(LaunchError, match="manifest"):
        ClusterLauncher(str(tmp_path / "empty"))


def test_kill_unknown_replica_is_a_key_error(deployment):
    path, _ = deployment
    launcher = ClusterLauncher(path)
    with pytest.raises(KeyError):
        launcher.kill(7, 7)


@pytest.fixture(scope="module")
def reference_for():
    from repro.core import DesksIndex, DesksSearcher

    def build(collection):
        return DesksSearcher(DesksIndex(collection, num_bands=4,
                                        num_wedges=5))

    return build
