"""Wire format: round-trips, typed rejection of every corruption class.

Satellite of the network PR: truncated frames, oversized length
prefixes, corrupted CRCs, and version mismatches must each surface as
their own :class:`~repro.net.ProtocolError` subclass — never as a hang,
a misparse, or an unhandled crash.
"""

import math
import random
import struct

import pytest

from repro.core import DirectionalQuery, MatchMode, QueryResult, ResultEntry
from repro.net import (
    HEADER_SIZE,
    MAGIC,
    MAX_PAYLOAD,
    WIRE_VERSION,
    BadMagic,
    ChecksumMismatch,
    ErrorCode,
    FrameTooLarge,
    HealthReport,
    MessageType,
    OverloadError,
    ProtocolError,
    RpcError,
    TruncatedFrame,
    VersionMismatch,
)
from repro.net.protocol import (
    HEADER_FORMAT,
    check_payload,
    decode_error,
    decode_health_response,
    decode_search_request,
    decode_search_response,
    decode_stats_response,
    encode_error,
    encode_frame,
    encode_health_response,
    encode_search_request,
    encode_search_response,
    encode_stats_response,
    read_frame,
)
from repro.storage import SearchStats


def frame_reader(blob):
    """A ``recv_exactly`` over a byte string: short reads at the end."""
    state = {"pos": 0}

    def recv_exactly(count):
        start = state["pos"]
        state["pos"] = min(len(blob), start + count)
        return blob[start:state["pos"]]

    return recv_exactly


def read_blob(blob):
    return read_frame(frame_reader(blob))


# -- framing round-trip -------------------------------------------------------


def test_frame_round_trip():
    payload = b"\x00\x01\x02 directional"
    msg_type, got = read_blob(encode_frame(MessageType.STATS_REQUEST,
                                           payload))
    assert msg_type is MessageType.STATS_REQUEST
    assert got == payload


def test_empty_payload_round_trip():
    msg_type, got = read_blob(encode_frame(MessageType.HEALTH_REQUEST))
    assert msg_type is MessageType.HEALTH_REQUEST
    assert got == b""


def test_encode_rejects_oversized_payload():
    class FakeLen(bytes):
        def __len__(self):
            return MAX_PAYLOAD + 1

    with pytest.raises(FrameTooLarge):
        encode_frame(MessageType.ERROR, FakeLen())


# -- header corruption classes ------------------------------------------------


def test_bad_magic_is_typed():
    blob = bytearray(encode_frame(MessageType.HEALTH_REQUEST))
    blob[0] ^= 0xFF
    with pytest.raises(BadMagic):
        read_blob(bytes(blob))


def test_http_request_is_bad_magic():
    """A text client poking the port fails fast, not mysteriously."""
    with pytest.raises(BadMagic):
        read_blob(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n")


def test_version_mismatch_is_typed():
    header = struct.pack(HEADER_FORMAT, MAGIC, WIRE_VERSION + 1,
                         int(MessageType.HEALTH_REQUEST), 0, 0)
    with pytest.raises(VersionMismatch):
        read_blob(header)


def test_oversized_length_prefix_is_rejected_before_allocation():
    """A hostile length prefix must not make the peer read gigabytes."""
    header = struct.pack(HEADER_FORMAT, MAGIC, WIRE_VERSION,
                         int(MessageType.SEARCH_REQUEST),
                         MAX_PAYLOAD + 1, 0)
    reads = []

    def recv_exactly(count):
        reads.append(count)
        return (header if count == HEADER_SIZE else b"x" * count)

    with pytest.raises(FrameTooLarge):
        read_frame(recv_exactly)
    assert reads == [HEADER_SIZE]  # payload was never requested


def test_unknown_message_type_is_typed():
    header = struct.pack(HEADER_FORMAT, MAGIC, WIRE_VERSION, 200, 0, 0)
    with pytest.raises(ProtocolError):
        read_blob(header)


def test_corrupted_crc_is_typed():
    blob = bytearray(encode_frame(MessageType.STATS_REQUEST, b"payload"))
    blob[-1] ^= 0x01  # flip one payload bit; header CRC now disagrees
    with pytest.raises(ChecksumMismatch):
        read_blob(bytes(blob))


def test_check_payload_accepts_matching_crc():
    import zlib
    seed = zlib.crc32(bytes([int(MessageType.STATS_REQUEST)]))
    crc = zlib.crc32(b"ok", seed) & 0xFFFFFFFF
    assert check_payload(b"ok", crc, MessageType.STATS_REQUEST) == b"ok"


def test_crc_is_seeded_with_the_type_byte():
    """The same payload under a different type must not share a CRC."""
    import zlib
    seed = zlib.crc32(bytes([int(MessageType.STATS_REQUEST)]))
    crc = zlib.crc32(b"ok", seed) & 0xFFFFFFFF
    with pytest.raises(ChecksumMismatch):
        check_payload(b"ok", crc, MessageType.HEALTH_REQUEST)
    with pytest.raises(ChecksumMismatch):
        check_payload(b"ok", zlib.crc32(b"ok") & 0xFFFFFFFF,
                      MessageType.STATS_REQUEST)


@pytest.mark.parametrize("cut", [0, 1, HEADER_SIZE - 1])
def test_truncated_header_is_typed(cut):
    blob = encode_frame(MessageType.HEALTH_REQUEST)
    with pytest.raises(TruncatedFrame):
        read_blob(blob[:cut])


def test_truncated_payload_is_typed():
    blob = encode_frame(MessageType.STATS_REQUEST, b"0123456789")
    for cut in range(HEADER_SIZE, len(blob)):
        with pytest.raises(TruncatedFrame):
            read_blob(blob[:cut])


def test_every_single_bit_flip_in_header_is_detected():
    """Exhaustive: no single-bit header corruption parses silently.

    All 96 header bits — including the type byte, which the CRC seed
    covers as of wire version 2 — must surface as a typed
    :class:`ProtocolError`.  Wire v1 left the type byte unprotected: a
    flip to another *valid* type parsed cleanly and dispatched the
    payload as the wrong message.
    """
    blob = encode_frame(MessageType.SEARCH_REQUEST, b"body")
    for byte_index in range(HEADER_SIZE):
        for bit in range(8):
            mutated = bytearray(blob)
            mutated[byte_index] ^= 1 << bit
            with pytest.raises(ProtocolError):
                read_blob(bytes(mutated))


def test_type_byte_flipped_to_valid_type_is_checksum_mismatch():
    """A type flip that still spells a valid type fails the CRC, typed.

    SEARCH_REQUEST (1) with bit 1 flipped is HEALTH_REQUEST (3): magic,
    version, and length all still validate, and the type is known — only
    the type-seeded CRC can catch it.
    """
    assert int(MessageType.SEARCH_REQUEST) ^ 0x02 == \
        int(MessageType.HEALTH_REQUEST)
    blob = bytearray(encode_frame(MessageType.SEARCH_REQUEST, b"body"))
    blob[3] ^= 0x02
    with pytest.raises(ChecksumMismatch):
        read_blob(bytes(blob))


def test_random_garbage_never_hangs_or_misparses():
    rng = random.Random(0xD35C)
    for _ in range(200):
        blob = bytes(rng.randrange(256)
                     for _ in range(rng.randrange(0, 64)))
        try:
            read_blob(blob)
        except ProtocolError:
            continue  # typed rejection is the contract
        # Parsing "succeeded": only possible if garbage spelled a full
        # valid frame — vanishingly unlikely; treat it as a finding.
        raise AssertionError(f"garbage parsed as a frame: {blob!r}")


# -- search request payload ---------------------------------------------------


def query_of(keywords=("cafe", "atm"), k=5, mode=MatchMode.ALL):
    return DirectionalQuery.make(12.5, -3.25, 0.1, 2.9, list(keywords), k,
                                 match_mode=mode)


def test_search_request_round_trip_bit_exact():
    query = query_of()
    decoded, budget = decode_search_request(encode_search_request(query,
                                                                  1.5))
    assert decoded.location.x == query.location.x
    assert decoded.location.y == query.location.y
    assert decoded.interval.lower == query.interval.lower
    assert decoded.interval.upper == query.interval.upper
    assert decoded.k == query.k
    assert decoded.match_mode is query.match_mode
    assert sorted(decoded.keywords) == sorted(query.keywords)
    assert budget == 1.5


def test_search_request_match_any_round_trip():
    decoded, _ = decode_search_request(
        encode_search_request(query_of(mode=MatchMode.ANY)))
    assert decoded.match_mode is MatchMode.ANY


@pytest.mark.parametrize("budget,expected", [
    (None, None),          # unbounded stays unbounded
    (math.inf, None),      # inf normalises to unbounded
    (0.0, 0.0),            # already-expired crosses as zero
    (-3.0, 0.0),           # negative clamps to zero, not to "unbounded"
    (0.25, 0.25),
])
def test_budget_sentinel(budget, expected):
    _, got = decode_search_request(
        encode_search_request(query_of(), budget))
    assert got == expected


def test_unicode_keywords_round_trip():
    query = query_of(keywords=("café", "東京"))
    decoded, _ = decode_search_request(encode_search_request(query))
    assert sorted(decoded.keywords) == sorted(query.keywords)


def test_too_many_keywords_is_typed():
    query = query_of(keywords=tuple(f"kw{i}" for i in range(256)))
    with pytest.raises(ProtocolError):
        encode_search_request(query)


def test_overlong_string_is_typed():
    query = query_of(keywords=("k" * 70000,))
    with pytest.raises(ProtocolError):
        encode_search_request(query)


def test_truncated_request_payload_is_typed():
    blob = encode_search_request(query_of())
    for cut in (0, 8, len(blob) // 2, len(blob) - 1):
        with pytest.raises(ProtocolError):
            decode_search_request(blob[:cut])


def test_trailing_bytes_are_typed():
    with pytest.raises(ProtocolError):
        decode_search_request(encode_search_request(query_of()) + b"\x00")


def test_invalid_utf8_keyword_is_typed():
    blob = bytearray(encode_search_request(query_of(keywords=("zzzz",))))
    blob.reverse()  # guaranteed to scramble the length-prefixed strings
    with pytest.raises(ProtocolError):
        decode_search_request(bytes(blob))


def test_invalid_query_fields_are_typed_not_crashes():
    """A payload whose floats decode but violate query invariants."""
    blob = bytearray(encode_search_request(query_of()))
    struct.pack_into("!I", blob, 32, 0)  # k = 0 is invalid
    with pytest.raises(ProtocolError):
        decode_search_request(bytes(blob))


# -- search response payload --------------------------------------------------


def result_of(n=3, partial=False):
    return QueryResult([ResultEntry(i * 7, i * 1.25) for i in range(n)],
                       partial=partial)


def test_search_response_round_trip():
    stats = SearchStats(regions_examined=4, subregions_examined=9,
                        nodes_examined=31, pois_examined=120,
                        distance_computations=77, candidates_verified=55)
    blob = encode_search_response(
        result_of(5), cached=True, generation=42, server_latency=0.0125,
        stats=stats, degraded=True, failure_cause="shard 3 down")
    remote = decode_search_response(blob)
    assert [(e.poi_id, e.distance) for e in remote.result.entries] == \
        [(i * 7, i * 1.25) for i in range(5)]
    assert remote.cached and remote.degraded
    assert not remote.partial
    assert remote.generation == 42
    assert remote.server_latency == 0.0125
    assert remote.stats == stats
    assert remote.failure_cause == "shard 3 down"


def test_unavailable_shards_round_trip():
    """The typed brownout trailer survives the wire bit-exactly."""
    blob = encode_search_response(result_of(2, partial=True),
                                  failure_cause="shards 1, 4 unavailable",
                                  unavailable_shards=[4, 1])
    remote = decode_search_response(blob)
    assert remote.unavailable_shards == (4, 1)
    assert remote.partial
    assert remote.failure_cause == "shards 1, 4 unavailable"


def test_unavailable_shards_default_is_empty_and_flagless():
    """Full answers carry no trailer: old decoders keep working."""
    with_field = encode_search_response(result_of(3),
                                        unavailable_shards=())
    without = encode_search_response(result_of(3))
    assert with_field == without
    assert decode_search_response(without).unavailable_shards == ()


def test_partial_flag_and_empty_result_round_trip():
    remote = decode_search_response(
        encode_search_response(result_of(0, partial=True)))
    assert remote.partial
    assert remote.result.entries == []
    assert remote.stats is None
    assert remote.failure_cause is None


def test_distances_cross_bit_exactly():
    """No JSON float drift: equivalence suites need exact distances."""
    entries = [ResultEntry(1, 0.1 + 0.2), ResultEntry(2, 1e-308),
               ResultEntry(3, math.pi)]
    remote = decode_search_response(
        encode_search_response(QueryResult(entries)))
    assert [e.distance for e in remote.result.entries] == \
        [0.1 + 0.2, 1e-308, math.pi]


def test_truncated_response_payload_is_typed():
    blob = encode_search_response(result_of(4))
    for cut in (0, 5, len(blob) - 3):
        with pytest.raises(ProtocolError):
            decode_search_response(blob[:cut])


# -- health / stats / error ---------------------------------------------------


def test_health_round_trip():
    report = HealthReport(ok=True, shard_id=3, generation=17,
                          num_pois=1920, requests_total=12345,
                          uptime_seconds=6.5)
    assert decode_health_response(encode_health_response(report)) == report


def test_stats_round_trip():
    values = {"net_requests_total": 10.0, "query_latency_p95": 0.004,
              "uptime_seconds": 12.25}
    assert decode_stats_response(encode_stats_response(values)) == values


def test_stats_truncated_is_typed():
    blob = encode_stats_response({"a": 1.0, "b": 2.0})
    with pytest.raises(ProtocolError):
        decode_stats_response(blob[:-4])


def test_error_round_trip_overload_is_its_own_type():
    error = decode_error(encode_error(ErrorCode.OVERLOAD, "full up"))
    assert isinstance(error, OverloadError)
    assert error.code is ErrorCode.OVERLOAD
    assert "full up" in str(error)


def test_error_round_trip_other_codes():
    for code in (ErrorCode.BAD_REQUEST, ErrorCode.INTERNAL,
                 ErrorCode.SHUTTING_DOWN):
        error = decode_error(encode_error(code, "detail"))
        assert isinstance(error, RpcError)
        assert not isinstance(error, OverloadError)
        assert error.code is code


def test_unknown_error_code_is_typed():
    with pytest.raises(ProtocolError):
        decode_error(b"\xfe" + b"\x00\x00")


# -- statement frames (DQL over the wire) -------------------------------------


def statement_codec():
    from repro.net.protocol import (
        decode_statement_request,
        decode_statement_response,
        encode_statement_request,
        encode_statement_response,
    )
    return (encode_statement_request, decode_statement_request,
            encode_statement_response, decode_statement_response)


def test_statement_request_round_trip():
    enc, dec, _, _ = statement_codec()
    statement = "SELECT 5 NEAR (1.5, -2.5) MATCHING 'café'"
    assert dec(enc(statement, 0.25)) == (statement, 0.25)


@pytest.mark.parametrize("budget,expected",
                         [(None, None), (math.inf, None), (1.5, 1.5),
                          (0.0, 0.0)])
def test_statement_budget_sentinel(budget, expected):
    enc, dec, _, _ = statement_codec()
    assert dec(enc("SHOW METRICS", budget))[1] == expected


def test_statement_longer_than_u16_round_trips():
    # Statements use the u32 long-string form, not the u16 _pack_str.
    enc, dec, _, _ = statement_codec()
    statement = "SELECT 1 NEAR (0, 0) MATCHING '" + "x " * 40000 + "'"
    assert len(statement) > 0xFFFF
    assert dec(enc(statement, None))[0] == statement


def test_statement_search_response_nests_search_payload():
    _, _, enc, dec = statement_codec()
    result = QueryResult(
        [ResultEntry(7, 1.25), ResultEntry(3, 2.5)], partial=True)
    nested = encode_search_response(result, cached=True, generation=4,
                                    server_latency=0.125)
    remote = dec(enc("SELECT 2 NEAR (0.0, 0.0) MATCHING 'cafe'",
                     "search", search=nested))
    assert remote.kind == "search"
    assert remote.search.cached is True
    assert remote.search.generation == 4
    assert [(e.poi_id, e.distance) for e in remote.search.result.entries] \
        == [(7, 1.25), (3, 2.5)]
    assert remote.search.result.partial is True


def test_statement_table_response_round_trip():
    _, _, enc, dec = statement_codec()
    table = {"shards.total": 2.0, "shard.0.pois": 150.0}
    remote = dec(enc("SHOW SHARDS", "table", table=table))
    assert remote.kind == "table"
    assert remote.table == table


def test_statement_text_response_round_trip():
    _, _, enc, dec = statement_codec()
    report = "plan:\n  subquery quadrant=0\nreconciliation (OK)\n" * 100
    remote = dec(enc("EXPLAIN SELECT ...", "text", text=report))
    assert remote.kind == "text"
    assert remote.text == report


def test_statement_unknown_kind_byte_is_typed():
    _, _, enc, dec = statement_codec()
    blob = bytearray(enc("SHOW METRICS", "table", table={}))
    kind_at = 4 + len("SHOW METRICS")  # u32 length prefix + text
    assert blob[kind_at] == 2
    blob[kind_at] = 0x7F
    with pytest.raises(ProtocolError):
        dec(bytes(blob))


def test_statement_truncated_is_typed():
    enc, dec, _, _ = statement_codec()
    blob = enc("SELECT 1 NEAR (0, 0) MATCHING 'cafe'", 1.0)
    for cut in (1, 3, 10, len(blob) - 1):
        with pytest.raises(ProtocolError):
            dec(blob[:cut])


def test_statement_outcome_encoder_matches_response_encoder():
    from repro.net.protocol import (
        decode_statement_response,
        encode_statement_outcome,
    )

    class Outcome:
        statement = "SELECT 1 NEAR (0.0, 0.0) MATCHING 'cafe'"
        kind = "search"
        entries = (ResultEntry(9, 3.75),)
        partial = False
        cached = False
        generation = 2
        latency_seconds = 0.5

    remote = decode_statement_response(encode_statement_outcome(Outcome()))
    assert remote.statement == Outcome.statement
    assert remote.search.generation == 2
    assert [(e.poi_id, e.distance) for e in remote.search.result.entries] \
        == [(9, 3.75)]
