"""ShardServer + RemoteShardClient: equivalence, shedding, robustness.

The server fixtures run in-process on background threads; every test
still crosses a real TCP socket through the real wire format.
"""

import random
import socket
import struct
import threading

import pytest

from repro.cluster import ShardUnavailableError
from repro.net import (
    OverloadError,
    RemoteReplicaSet,
    RemoteShardClient,
    RpcError,
    ShardServer,
    TransportError,
)
from repro.net.protocol import (
    HEADER_FORMAT,
    MAGIC,
    MessageType,
    WIRE_VERSION,
    encode_frame,
    encode_search_request,
)

from .conftest import entries_of, random_queries


# -- correctness --------------------------------------------------------------


def test_remote_search_equals_local(client, reference):
    queries = random_queries(random.Random(11), 25)
    for query in queries:
        remote = client.search(query)
        assert not remote.partial
        assert entries_of(remote.result) == \
            entries_of(reference.search(query))


def test_remote_search_carries_stats_and_generation(client, server):
    query = random_queries(random.Random(5), 1)[0]
    remote = client.search(query)
    assert remote.generation == server.engine.generation
    assert remote.stats is not None
    assert remote.stats.pois_examined >= len(remote.result.entries)
    assert remote.server_latency >= 0.0


def test_health_rpc(client, server, collection):
    report = client.health()
    assert report.ok
    assert report.shard_id == server.shard_id
    assert report.num_pois == len(collection)
    assert report.uptime_seconds >= 0.0


def test_stats_rpc(client):
    query = random_queries(random.Random(6), 1)[0]
    client.search(query)
    stats = client.stats()
    assert stats["net_requests_total"] >= 1
    assert "net_connections_total" in stats
    assert "uptime_seconds" in stats


def test_shared_client_is_thread_safe(client, reference):
    queries = random_queries(random.Random(21), 12)
    failures = []

    def worker(offset):
        for query in queries[offset::3]:
            got = client.search(query)
            if entries_of(got.result) != \
                    entries_of(reference.search(query)):
                failures.append(query)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(3)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not failures


# -- deadline propagation -----------------------------------------------------


def test_expired_budget_returns_partial_without_searching(client, server):
    """Budget 0 at arrival → empty partial now, no index work queued."""
    before = server.metrics.counter("net_deadline_expired_total").value
    query = random_queries(random.Random(8), 1)[0]
    remote = client.search(query, budget=0.0)
    assert remote.partial
    assert remote.result.entries == []
    after = server.metrics.counter("net_deadline_expired_total").value
    assert after == before + 1


def test_generous_budget_still_answers_fully(client, reference):
    query = random_queries(random.Random(9), 1)[0]
    remote = client.search(query, budget=30.0)
    assert not remote.partial
    assert entries_of(remote.result) == entries_of(reference.search(query))


# -- admission control --------------------------------------------------------


def test_overload_sheds_with_typed_error(index):
    """One slot + a stalled engine: concurrent searches shed typed."""
    server = ShardServer(index, shard_id=0, num_workers=2,
                         max_inflight=1).start()
    try:
        entered = threading.Event()
        release = threading.Event()
        real_submit = server.engine.submit

        def stalled_submit(query, timeout=None):
            entered.set()
            release.wait(timeout=10.0)
            return real_submit(query, timeout)

        server.engine.submit = stalled_submit
        query = random_queries(random.Random(3), 1)[0]
        first_result = []

        def first():
            with RemoteShardClient(server.address) as cli:
                first_result.append(cli.search(query))

        holder = threading.Thread(target=first)
        holder.start()
        assert entered.wait(timeout=5.0)
        with RemoteShardClient(server.address) as cli:
            for _ in range(3):
                with pytest.raises(OverloadError):
                    cli.search(query)
        release.set()
        holder.join(timeout=10.0)
        assert first_result and not first_result[0].partial
        assert server.metrics.counter("net_overload_total").value == 3
    finally:
        release.set()
        server.stop()


# -- robustness: the connection is the unit of damage -------------------------


def raw_exchange(address, blob, recv_bytes=4096):
    """Send raw bytes, return whatever the server answers (or b'').

    The server closes a poisoned connection right after its best-effort
    error frame; depending on timing our half-close or read can race the
    server's close (ENOTCONN/ECONNRESET).  Those races are fine — the
    assertion that matters is typed-error-or-drop, never a hang.
    """
    with socket.create_connection(address, timeout=5.0) as conn:
        conn.sendall(blob)
        try:
            conn.shutdown(socket.SHUT_WR)
        except OSError:
            pass  # server already closed on us
        chunks = []
        while True:
            try:
                chunk = conn.recv(recv_bytes)
            except (ConnectionResetError, socket.timeout):
                break
            if not chunk:
                break
            chunks.append(chunk)
        return b"".join(chunks)


def test_garbage_bytes_get_typed_error_and_server_survives(server, client,
                                                           reference):
    # Exactly one header's worth of garbage: the server consumes it all,
    # so its error frame and close arrive cleanly (no RST from unread
    # bytes making the answer racy).
    answer = raw_exchange(server.address, b"\x00" * 12)
    # Best-effort typed ERROR frame before the drop.
    magic, version, msg_type = struct.unpack_from(HEADER_FORMAT[:4],
                                                  answer)[:3]
    assert (magic, version, msg_type) == (MAGIC, WIRE_VERSION,
                                          int(MessageType.ERROR))
    # The damage stopped at that connection: fresh requests still work.
    query = random_queries(random.Random(14), 1)[0]
    assert entries_of(client.search(query).result) == \
        entries_of(reference.search(query))


def test_version_mismatch_gets_typed_error(server, client):
    query = random_queries(random.Random(15), 1)[0]
    frame = bytearray(encode_frame(MessageType.SEARCH_REQUEST,
                                   encode_search_request(query)))
    frame[2] = WIRE_VERSION + 1
    # Send only the header: version is rejected before the payload is
    # read, and an empty receive buffer keeps the server's answer clean.
    answer = raw_exchange(server.address, bytes(frame[:12]))
    assert struct.unpack_from("!HBB", answer)[2] == int(MessageType.ERROR)
    assert client.health().ok  # server is still serving


def test_half_frame_then_eof_is_survived(server, client):
    query = random_queries(random.Random(16), 1)[0]
    frame = encode_frame(MessageType.SEARCH_REQUEST,
                         encode_search_request(query))
    assert raw_exchange(server.address, frame[:len(frame) // 2]) == b""
    assert client.health().ok


def test_non_request_frame_type_is_rejected_typed(server):
    with RemoteShardClient(server.address) as cli:
        frame = encode_frame(MessageType.SEARCH_RESPONSE, b"")
        with pytest.raises(RpcError) as excinfo:
            cli._expect(frame, MessageType.SEARCH_RESPONSE, timeout=5.0)
        assert "not a request type" in str(excinfo.value)


def test_dead_server_raises_transport_error(index):
    server = ShardServer(index, shard_id=0, num_workers=1).start()
    address = server.address
    server.stop()
    with RemoteShardClient(address, connect_timeout=0.5,
                           connect_attempts=2, backoff=0.01) as cli:
        with pytest.raises(TransportError):
            cli.health(timeout=1.0)


def test_client_reconnects_across_server_restart(index, reference):
    server = ShardServer(index, shard_id=0, num_workers=1).start()
    port = server.address[1]
    query = random_queries(random.Random(17), 1)[0]
    with RemoteShardClient(server.address, connect_timeout=1.0,
                           backoff=0.05) as cli:
        assert entries_of(cli.search(query).result) == \
            entries_of(reference.search(query))
        server.stop()
        restarted = ShardServer(index, host="127.0.0.1", port=port,
                                shard_id=0, num_workers=1).start()
        try:
            # The pooled connection is stale; the client must notice and
            # reconnect rather than hang or fail permanently.
            got = cli.search(query)
            assert entries_of(got.result) == \
                entries_of(reference.search(query))
        finally:
            restarted.stop()


# -- replica failover ---------------------------------------------------------


def test_replica_set_fails_over_and_marks_unhealthy(index, reference):
    alive = ShardServer(index, shard_id=0, num_workers=1).start()
    doomed = ShardServer(index, shard_id=0, num_workers=1).start()
    doomed_address = doomed.address
    try:
        replicas = RemoteReplicaSet(
            0, [doomed_address, alive.address], health_threshold=2,
            request_timeout=5.0)
        try:
            doomed.stop()
            queries = random_queries(random.Random(19), 6)
            retried = 0
            for query in queries:
                response, retries = replicas.execute(query, timeout=5.0)
                retried += retries
                assert entries_of(response.result) == \
                    entries_of(reference.search(query))
            assert retried > 0, "the dead replica was never even tried"
            # Dead ≠ corrupt: the replica goes *unhealthy* (tried last,
            # recovers on success) rather than sticky-quarantined.
            summary = {row["address"]: row
                       for row in replicas.health_summary()}
            doomed_row = summary[
                f"{doomed_address[0]}:{doomed_address[1]}"]
            assert not doomed_row["healthy"]
            assert doomed_row["consecutive_failures"] >= 2
            assert replicas.quarantined_replicas() == []
        finally:
            replicas.close()
    finally:
        alive.stop()
        doomed.stop()


def test_all_replicas_down_raises_shard_unavailable(index):
    server = ShardServer(index, shard_id=0, num_workers=1).start()
    address = server.address
    server.stop()
    replicas = RemoteReplicaSet(0, [address], health_threshold=3,
                                request_timeout=1.0)
    try:
        query = random_queries(random.Random(20), 1)[0]
        with pytest.raises(ShardUnavailableError):
            replicas.execute(query, timeout=1.0)
    finally:
        replicas.close()


# -- DQL statement frames -----------------------------------------------------


def test_statement_select_equals_binary_search(client, reference):
    from repro.lang import plan_from_query

    for query in random_queries(random.Random(41), 10):
        remote = client.execute_statement(plan_from_query(query).render())
        assert remote.kind == "search"
        local = reference.search(query)
        assert entries_of(remote.search.result) == entries_of(local)


def test_statement_show_metrics(client):
    remote = client.execute_statement("SHOW METRICS")
    assert remote.kind == "table"
    assert remote.table["queries_total"] >= 0.0


def test_statement_explain_reconciles_remotely(client):
    remote = client.execute_statement(
        "EXPLAIN SELECT 3 NEAR (50.0, 50.0) HEADING [0.5, 2.0] "
        "MATCHING 'cafe'")
    assert remote.kind == "text"
    assert "reconciliation (OK)" in remote.text


def test_statement_parse_error_is_bad_request_with_caret(client):
    with pytest.raises(RpcError) as info:
        client.execute_statement("SELEKT 1 FROM nowhere")
    assert not isinstance(info.value, OverloadError)
    assert "^" in str(info.value)


def test_statement_counts_in_server_metrics(server, client):
    before = server.metrics.counter("net_statements_total").value
    client.execute_statement("SHOW METRICS")
    assert server.metrics.counter("net_statements_total").value > before
