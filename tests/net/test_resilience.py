"""Unit tests for the client resilience layer: breakers, budgets, hedging.

Everything here runs without sockets — the breaker takes an injected
clock, and :class:`RemoteReplicaSet` takes a ``client_factory`` whose
fakes script each replica's behavior.  The same machinery is exercised
against real servers and injected faults in ``test_chaos.py`` and the
``benchmarks/test_netchaos.py`` acceptance suite.
"""

import threading
import time

import pytest

from repro.cluster import ShardUnavailableError
from repro.core import DirectionalQuery, QueryResult, ResultEntry
from repro.net import (
    BreakerState,
    CircuitBreaker,
    HedgePolicy,
    RemoteReplicaSet,
    ResilienceConfig,
    RetryBudget,
    TransportError,
)
from repro.net import protocol
from repro.net.protocol import RemoteSearchResult
from repro.service import MetricsRegistry

QUERY = DirectionalQuery.make(5.0, 5.0, 0.0, 3.0, ["cafe"], 3)


class FakeClock:
    """A hand-cranked monotonic clock."""

    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# ---------------------------------------------------------------------------
# CircuitBreaker


class TestCircuitBreaker:

    def make(self, **kw):
        clock = FakeClock()
        kw.setdefault("failure_threshold", 3)
        kw.setdefault("reset_timeout", 5.0)
        return CircuitBreaker(clock=clock, **kw), clock

    def test_starts_closed_and_admits(self):
        breaker, _ = self.make()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.try_acquire()

    def test_opens_after_threshold_consecutive_failures(self):
        breaker, _ = self.make(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.try_acquire()

    def test_success_resets_the_failure_run(self):
        breaker, _ = self.make(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_after_reset_timeout_admits_one_trial(self):
        breaker, clock = self.make(failure_threshold=1, reset_timeout=5.0)
        breaker.record_failure()
        assert not breaker.try_acquire()
        clock.advance(4.9)
        assert not breaker.try_acquire()
        clock.advance(0.2)
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.try_acquire()       # the single trial slot
        assert not breaker.try_acquire()   # a concurrent second is refused

    def test_half_open_trial_success_closes(self):
        breaker, clock = self.make(failure_threshold=1, reset_timeout=1.0)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.try_acquire()
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.try_acquire()

    def test_half_open_trial_failure_reopens_and_restarts_timer(self):
        breaker, clock = self.make(failure_threshold=1, reset_timeout=5.0)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.try_acquire()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        clock.advance(4.9)                  # old timer would have expired
        assert not breaker.try_acquire()
        clock.advance(0.2)
        assert breaker.try_acquire()

    def test_transitions_are_reported(self):
        seen = []
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0,
                                 clock=clock,
                                 on_transition=lambda a, b: seen.append(
                                     (a.value, b.value)))
        breaker.record_failure()
        clock.advance(1.0)
        breaker.try_acquire()
        breaker.record_success()
        assert seen == [("closed", "open"), ("open", "half_open"),
                        ("half_open", "closed")]

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout=-1.0)
        with pytest.raises(ValueError):
            CircuitBreaker(half_open_max_trials=0)


# ---------------------------------------------------------------------------
# RetryBudget / HedgePolicy


class TestRetryBudget:

    def test_spend_until_empty_then_denied(self):
        budget = RetryBudget(max_tokens=2.0, earn_per_success=0.0)
        assert budget.try_spend()
        assert budget.try_spend()
        assert not budget.try_spend()
        assert budget.spent == 2
        assert budget.denied == 1
        assert budget.tokens == 0.0

    def test_successes_earn_tokens_back(self):
        budget = RetryBudget(max_tokens=10.0, earn_per_success=0.5,
                             initial=0.5)
        assert not budget.try_spend()
        budget.record_success()
        assert budget.tokens == pytest.approx(1.0)
        assert budget.try_spend()

    def test_earning_caps_at_max(self):
        budget = RetryBudget(max_tokens=2.0, earn_per_success=5.0)
        budget.record_success()
        assert budget.tokens == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryBudget(max_tokens=0.5)
        with pytest.raises(ValueError):
            RetryBudget(earn_per_success=-0.1)


class TestHedgePolicy:

    def test_validation(self):
        with pytest.raises(ValueError):
            HedgePolicy(delay=-0.01)
        with pytest.raises(ValueError):
            HedgePolicy(delay=0.05, max_hedges=0)
        assert HedgePolicy(delay=0.0).max_hedges == 1


# ---------------------------------------------------------------------------
# RemoteReplicaSet against scripted fake clients


def ok_result(poi_id):
    return RemoteSearchResult(
        result=QueryResult([ResultEntry(poi_id, 1.0)]))


class FakeShardClient:
    """Scripted stand-in for RemoteShardClient.

    ``behavior(call_index)`` returns a RemoteSearchResult or raises; it
    can be swapped at any time to model a server dying or recovering.
    """

    def __init__(self, address, behavior, health_ok=True, delay=0.0):
        self.address = address
        self.behavior = behavior
        self.health_ok = health_ok
        self.delay = delay
        self.calls = 0
        self.health_calls = 0
        self.budgets = []
        self._lock = threading.Lock()

    def search(self, query, budget=None):
        with self._lock:
            index = self.calls
            self.calls += 1
            self.budgets.append(budget)
        if self.delay:
            time.sleep(self.delay)
        outcome = self.behavior(index)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome

    def health(self, timeout=5.0):
        self.health_calls += 1
        if not self.health_ok:
            raise TransportError(self.address, "probe refused")
        return protocol.HealthReport(ok=True, shard_id=0, generation=0,
                                     num_pois=1, requests_total=1,
                                     uptime_seconds=1.0)

    def close(self):
        pass


def make_set(behaviors, **kw):
    """A RemoteReplicaSet over FakeShardClients, one per behavior."""
    clients = {}
    addresses = [("10.0.0.%d" % i, 9000 + i) for i in range(len(behaviors))]
    by_address = dict(zip(addresses, behaviors))

    def factory(address):
        spec = by_address[address]
        client = (FakeShardClient(address, **spec) if isinstance(spec, dict)
                  else FakeShardClient(address, spec))
        clients[address[1] - 9000] = client
        return client

    kw.setdefault("resilience", ResilienceConfig())
    replica_set = RemoteReplicaSet(0, addresses, client_factory=factory,
                                   **kw)
    return replica_set, clients


def always(exc_or_result):
    return lambda index: exc_or_result


class TestBadRequestIsFatal:
    """Satellite: BAD_REQUEST re-raises immediately, untouched health."""

    def test_bad_request_reraises_without_failover(self):
        bad = protocol.RpcError(protocol.ErrorCode.BAD_REQUEST,
                                "unparseable query")
        replica_set, clients = make_set([always(bad), always(ok_result(7))])
        with pytest.raises(protocol.RpcError) as info:
            replica_set.execute(QUERY)
        assert info.value.code is protocol.ErrorCode.BAD_REQUEST
        # The error is the request's fault: replica 0 keeps its health
        # and breaker, and replica 1 was never bothered.
        assert replica_set.replicas[0].healthy
        assert replica_set.replicas[0].consecutive_failures == 0
        assert replica_set.replicas[0].breaker.state is BreakerState.CLOSED
        assert clients[1].calls == 0
        replica_set.close()

    def test_overload_still_fails_over(self):
        shed = protocol.OverloadError("queue full")
        replica_set, clients = make_set([always(shed), always(ok_result(7))])
        response, retried = replica_set.execute(QUERY)
        assert response.result.poi_ids() == [7]
        assert retried == 1
        assert replica_set.replicas[0].consecutive_failures == 1
        replica_set.close()


class TestRetryBudgetBoundsFailover:

    def test_exhausted_budget_stops_retrying(self):
        down = TransportError(("10.0.0.0", 9000), "down")
        budget = RetryBudget(max_tokens=1.0, earn_per_success=0.0)
        metrics = MetricsRegistry()
        replica_set, clients = make_set(
            [always(down), always(down)],
            retry_budget=budget, metrics=metrics,
            resilience=ResilienceConfig(breaker_failure_threshold=100))
        # Query 1: first attempt free, the failover spends the only token.
        with pytest.raises(ShardUnavailableError) as info:
            replica_set.execute(QUERY)
        assert info.value.attempts == 2
        # Query 2: first attempt still free, but no token for a second.
        with pytest.raises(ShardUnavailableError) as info:
            replica_set.execute(QUERY)
        assert info.value.attempts == 1
        assert budget.spent == 1
        assert budget.denied >= 1
        counters = metrics.to_dict()["counters"]
        assert counters["net_retry_tokens_spent_total"] == 1
        assert counters["net_retries_denied_total"] >= 1
        assert metrics.to_dict()["gauges"]["net_retry_tokens"] == 0.0
        replica_set.close()

    def test_successes_replenish_the_budget(self):
        budget = RetryBudget(max_tokens=2.0, earn_per_success=1.0,
                             initial=0.0)
        replica_set, clients = make_set([always(ok_result(1))],
                                        retry_budget=budget)
        for _ in range(3):
            replica_set.execute(QUERY)
        assert budget.tokens == 2.0
        replica_set.close()


class TestBreakerInTheLoop:

    def test_open_breaker_leaves_the_attempt_order(self):
        down = TransportError(("10.0.0.0", 9000), "down")
        clock = FakeClock()
        replica_set, clients = make_set(
            [always(down), always(ok_result(3))],
            health_threshold=2, clock=clock,
            resilience=ResilienceConfig(breaker_reset_timeout=60.0))
        # Rotation alternates the starting replica, so replica 0 is
        # attempted (and fails) on queries 1 and 3 — opening its breaker
        # at the threshold of 2.
        for _ in range(3):
            replica_set.execute(QUERY)
        assert replica_set.replicas[0].breaker.state is BreakerState.OPEN
        calls_before = clients[0].calls
        for _ in range(4):
            response, retried = replica_set.execute(QUERY)
            assert retried == 0
        # The open circuit was never attempted again.
        assert clients[0].calls == calls_before
        summary = replica_set.health_summary()
        assert summary[0]["breaker"] == "open"
        assert summary[1]["breaker"] == "closed"
        replica_set.close()

    def test_all_breakers_open_still_attempts_as_last_resort(self):
        down = TransportError(("10.0.0.0", 9000), "down")
        clock = FakeClock()
        replica_set, clients = make_set(
            [always(down)], health_threshold=1, clock=clock,
            resilience=ResilienceConfig(breaker_reset_timeout=60.0))
        with pytest.raises(ShardUnavailableError):
            replica_set.execute(QUERY)
        assert replica_set.replicas[0].breaker.state is BreakerState.OPEN
        # The sole replica's circuit is open, but the shard must degrade
        # through a real attempt, not wedge behind its own breaker.
        with pytest.raises(ShardUnavailableError) as info:
            replica_set.execute(QUERY)
        assert info.value.attempts == 1
        assert clients[0].calls == 2
        replica_set.close()

    def test_half_open_trial_recovers_the_replica(self):
        def flaky(index):
            return (TransportError(("10.0.0.0", 9000), "down")
                    if index < 1 else ok_result(9))

        clock = FakeClock()
        replica_set, clients = make_set(
            [flaky], health_threshold=1, clock=clock,
            resilience=ResilienceConfig(breaker_reset_timeout=5.0))
        with pytest.raises(ShardUnavailableError):
            replica_set.execute(QUERY)
        assert replica_set.replicas[0].breaker.state is BreakerState.OPEN
        clock.advance(5.0)
        response, retried = replica_set.execute(QUERY)
        assert response.result.poi_ids() == [9]
        assert replica_set.replicas[0].breaker.state is BreakerState.CLOSED
        assert replica_set.replicas[0].healthy
        replica_set.close()


class TestProbeRecovery:
    """Satellite: probe-based recovery of excluded replicas."""

    def test_probe_closes_breaker_and_restores_rotation(self):
        down = TransportError(("10.0.0.0", 9000), "down")
        client0 = {}

        def recovering(index):
            if client0.get("recovered"):
                return ok_result(1)
            raise down

        clock = FakeClock()
        metrics = MetricsRegistry()
        replica_set, clients = make_set(
            [recovering, always(ok_result(2))],
            health_threshold=2, clock=clock, metrics=metrics,
            resilience=ResilienceConfig(breaker_reset_timeout=3600.0))
        # Rotation attempts replica 0 on queries 1 and 3: two failures
        # in a row trip both the health threshold and the breaker.
        for _ in range(3):
            replica_set.execute(QUERY)
        assert not replica_set.replicas[0].healthy
        assert replica_set.replicas[0].breaker_open
        # Server 0 comes back; a probe (not an in-band gamble) finds it.
        client0["recovered"] = True
        recovered = replica_set.probe_unavailable()
        assert recovered == [0]
        assert replica_set.replicas[0].healthy
        assert replica_set.replicas[0].breaker.state is BreakerState.CLOSED
        assert clients[0].health_calls == 1
        counters = metrics.to_dict()["counters"]
        assert counters["net_probe_recoveries_total"] == 1
        # Back in healthy-first rotation: both replicas serve, no retries.
        calls_before = clients[0].calls
        for _ in range(4):
            response, retried = replica_set.execute(QUERY)
            assert retried == 0
        assert clients[0].calls > calls_before
        replica_set.close()

    def test_failed_probe_keeps_the_replica_excluded(self):
        down = TransportError(("10.0.0.0", 9000), "down")
        clock = FakeClock()
        replica_set, clients = make_set(
            [{"behavior": always(down), "health_ok": False},
             always(ok_result(2))],
            health_threshold=1, clock=clock,
            resilience=ResilienceConfig(breaker_reset_timeout=3600.0))
        replica_set.execute(QUERY)
        assert replica_set.probe_unavailable() == []
        assert not replica_set.replicas[0].healthy
        assert clients[0].health_calls == 1
        replica_set.close()


class TestHedging:

    def test_hedge_fires_and_wins_against_a_straggler(self):
        metrics = MetricsRegistry()
        replica_set, clients = make_set(
            [{"behavior": always(ok_result(1)), "delay": 0.4},
             always(ok_result(2))],
            metrics=metrics,
            resilience=ResilienceConfig(hedge=HedgePolicy(delay=0.05)))
        started = time.monotonic()
        response, retried = replica_set.execute(QUERY)
        elapsed = time.monotonic() - started
        # The hedge's answer (replica 1) came back first, well before the
        # straggler's 0.4s sleep finished.
        assert response.result.poi_ids() == [2]
        assert retried == 1
        assert elapsed < 0.35
        counters = metrics.to_dict()["counters"]
        assert counters["net_hedges_fired_total"] == 1
        assert counters["net_hedges_won_total"] == 1
        assert counters["net_retry_tokens_spent_total"] == 1
        replica_set.close()

    def test_fast_primary_never_hedges(self):
        metrics = MetricsRegistry()
        replica_set, clients = make_set(
            [always(ok_result(1)), always(ok_result(2))],
            metrics=metrics,
            resilience=ResilienceConfig(hedge=HedgePolicy(delay=0.2)))
        for _ in range(4):
            response, retried = replica_set.execute(QUERY)
            assert retried == 0
        assert "net_hedges_fired_total" not in metrics.to_dict()["counters"]
        replica_set.close()

    def test_hedged_failover_still_succeeds_when_primary_errors(self):
        down = TransportError(("10.0.0.0", 9000), "down")
        replica_set, clients = make_set(
            [always(down), always(ok_result(5))],
            resilience=ResilienceConfig(hedge=HedgePolicy(delay=0.2)))
        response, retried = replica_set.execute(QUERY)
        assert response.result.poi_ids() == [5]
        assert retried == 1
        replica_set.close()

    def test_hedged_bad_request_is_still_fatal(self):
        bad = protocol.RpcError(protocol.ErrorCode.BAD_REQUEST, "nope")
        replica_set, clients = make_set(
            [always(bad), always(ok_result(5))],
            resilience=ResilienceConfig(hedge=HedgePolicy(delay=0.2)))
        with pytest.raises(protocol.RpcError):
            replica_set.execute(QUERY)
        assert clients[1].calls == 0
        replica_set.close()


class TestDeadlineBoundsFailover:

    def test_expired_deadline_stops_the_failover_loop(self):
        slow_down = {"behavior": always(
            TransportError(("10.0.0.0", 9000), "down")), "delay": 0.15}
        replica_set, clients = make_set(
            [slow_down, slow_down],
            resilience=ResilienceConfig(breaker_failure_threshold=100))
        started = time.monotonic()
        with pytest.raises(ShardUnavailableError) as info:
            replica_set.execute(QUERY, timeout=0.1)
        elapsed = time.monotonic() - started
        # The first attempt consumed the whole budget; the deadline check
        # refused a second, so the failure is bounded by ~one attempt.
        assert info.value.attempts == 1
        assert clients[0].calls + clients[1].calls == 1
        assert elapsed < 1.0
        replica_set.close()

    def test_attempts_carry_the_remaining_budget(self):
        replica_set, clients = make_set([always(ok_result(1))])
        replica_set.execute(QUERY, timeout=5.0)
        budget = clients[0].budgets[0]
        assert budget is not None and 0.0 < budget <= 5.0
        replica_set.close()
