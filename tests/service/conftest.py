"""Shared fixtures for the serving-layer tests."""

import math
import random

import pytest

from repro.core import DesksIndex, DirectionalQuery, MutableDesksIndex
from repro.datasets import POI, POICollection

KEYWORD_POOL = ["cafe", "food", "gas", "atm", "pizza", "bank", "hotel",
                "park"]
EXTENT = 100.0


def make_collection(n=400, seed=42):
    rng = random.Random(seed)
    pois = []
    for i in range(n):
        kws = rng.sample(KEYWORD_POOL, rng.randint(1, 3))
        pois.append(POI.make(i, rng.uniform(0, EXTENT),
                             rng.uniform(0, EXTENT), kws))
    return POICollection(pois)


def make_queries(count, seed=0, k=5):
    rng = random.Random(seed)
    queries = []
    for _ in range(count):
        lower = rng.uniform(0, 2 * math.pi)
        queries.append(DirectionalQuery.make(
            rng.uniform(0, EXTENT), rng.uniform(0, EXTENT),
            lower, lower + rng.uniform(0.3, 5.0),
            rng.sample(KEYWORD_POOL, rng.randint(1, 2)), k))
    return queries


@pytest.fixture(scope="module")
def collection():
    return make_collection()


@pytest.fixture(scope="module")
def static_index(collection):
    return DesksIndex(collection, num_bands=4, num_wedges=6)


@pytest.fixture()
def mutable_index(collection):
    # Function-scoped: tests mutate it.
    return MutableDesksIndex(collection, num_bands=4, num_wedges=6)
