"""ResultCache: canonical keying, LRU behaviour, generation staleness."""

import math

import pytest

from repro.core import DirectionalQuery, QueryResult, ResultEntry
from repro.service import ResultCache


def q(x=0.0, y=0.0, lower=0.5, width=1.0, keywords=("cafe",), k=5):
    return DirectionalQuery.make(x, y, lower, lower + width,
                                 list(keywords), k)


def result(*poi_ids):
    return QueryResult([ResultEntry(pid, float(i))
                        for i, pid in enumerate(poi_ids)])


class TestBasics:
    def test_miss_then_hit(self):
        cache = ResultCache(capacity=4)
        assert cache.get(q()) is None
        cache.put(q(), result(1, 2))
        got = cache.get(q())
        assert got is not None and got.poi_ids() == [1, 2]
        stats = cache.stats
        assert stats.hits == 1 and stats.misses == 1
        assert stats.hit_rate == 0.5

    def test_canonically_equal_queries_share_entry(self):
        cache = ResultCache(capacity=4)
        cache.put(q(keywords=("cafe", "atm")), result(1))
        two_pi = 2 * math.pi
        other = DirectionalQuery.make(0.0, 0.0, 0.5 + two_pi,
                                      1.5 + two_pi, ["atm", "cafe"], 5)
        assert cache.get(other) is not None

    def test_distinct_queries_distinct_entries(self):
        cache = ResultCache(capacity=4)
        cache.put(q(), result(1))
        assert cache.get(q(k=6)) is None
        assert cache.get(q(x=1.0)) is None

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=0)


class TestLRU:
    def test_eviction_order_is_lru(self):
        cache = ResultCache(capacity=2)
        a, b, c = q(x=1), q(x=2), q(x=3)
        cache.put(a, result(1))
        cache.put(b, result(2))
        cache.get(a)           # a is now most recent
        cache.put(c, result(3))  # evicts b
        assert cache.get(a) is not None
        assert cache.get(b) is None
        assert cache.get(c) is not None
        assert cache.stats.evictions == 1

    def test_reinsert_same_key_does_not_evict(self):
        cache = ResultCache(capacity=2)
        cache.put(q(x=1), result(1))
        cache.put(q(x=2), result(2))
        cache.put(q(x=1), result(9))  # overwrite, not a growth
        assert len(cache) == 2
        assert cache.stats.evictions == 0


class TestGenerations:
    def test_stale_generation_is_a_miss(self):
        cache = ResultCache(capacity=4)
        cache.put(q(), result(1), generation=3)
        assert cache.get(q(), generation=4) is None
        assert cache.stats.invalidations == 1
        # ...and the stale entry is gone for good.
        assert len(cache) == 0

    def test_matching_generation_served(self):
        cache = ResultCache(capacity=4)
        cache.put(q(), result(1), generation=3)
        assert cache.get(q(), generation=3) is not None

    def test_put_refuses_to_shadow_newer_entry(self):
        cache = ResultCache(capacity=4)
        cache.put(q(), result(2), generation=5)
        assert not cache.put(q(), result(1), generation=4)
        assert cache.get(q(), generation=5).poi_ids() == [2]

    def test_invalidate_older_than(self):
        cache = ResultCache(capacity=8)
        cache.put(q(x=1), result(1), generation=1)
        cache.put(q(x=2), result(2), generation=2)
        cache.put(q(x=3), result(3), generation=3)
        dropped = cache.invalidate_older_than(3)
        assert dropped == 2
        assert len(cache) == 1
        assert cache.get(q(x=3), generation=3) is not None

    def test_clear(self):
        cache = ResultCache(capacity=4)
        cache.put(q(), result(1))
        cache.clear()
        assert len(cache) == 0


class TestPartialResults:
    def test_partial_results_never_cached(self):
        cache = ResultCache(capacity=4)
        partial = QueryResult([ResultEntry(1, 0.0)], partial=True)
        assert not cache.put(q(), partial)
        assert cache.get(q()) is None


class TestQuantization:
    def test_quantum_merges_nearby_locations(self):
        cache = ResultCache(capacity=4, location_quantum=0.5)
        cache.put(q(x=10.01, y=20.02), result(1))
        assert cache.get(q(x=10.04, y=19.98)) is not None
        # A query a whole cell away still misses.
        assert cache.get(q(x=11.0, y=20.0)) is None
