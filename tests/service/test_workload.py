"""The closed-loop load generator: determinism, accounting, scaling hooks."""

import pytest

from repro.service import QueryEngine, run_closed_loop

from .conftest import make_queries


@pytest.fixture()
def engine(static_index):
    with QueryEngine(static_index, num_workers=4) as eng:
        yield eng


class TestClosedLoop:
    def test_fixed_request_count(self, engine):
        queries = make_queries(10, seed=30)
        report = run_closed_loop(engine, queries, num_clients=3,
                                 requests_per_client=7)
        assert report.total_queries == 21
        assert report.per_client_queries == [7, 7, 7]
        assert report.errors == 0
        assert report.qps > 0
        assert report.elapsed_seconds > 0

    def test_cache_warm_repeat_hits(self, engine):
        queries = make_queries(5, seed=31)
        # Each client walks the 5 queries 4 times: everything past the
        # first pass is a hit.
        report = run_closed_loop(engine, queries, num_clients=1,
                                 requests_per_client=20)
        assert report.cache_lookups == 20
        assert report.cache_hits == 15
        assert report.cache_hit_rate == pytest.approx(0.75)

    def test_latency_snapshot_present(self, engine):
        report = run_closed_loop(engine, make_queries(4, seed=32),
                                 num_clients=2, requests_per_client=4)
        assert set(report.latency) >= {"p50", "p95", "p99", "mean"}
        assert report.latency["p50"] >= 0.0

    def test_duration_bound_stops(self, engine):
        report = run_closed_loop(engine, make_queries(4, seed=33),
                                 num_clients=2, duration_seconds=0.15)
        assert report.elapsed_seconds < 5.0
        assert report.errors == 0

    def test_summary_renders(self, engine):
        report = run_closed_loop(engine, make_queries(3, seed=34),
                                 num_clients=2, requests_per_client=3)
        line = report.summary()
        assert "qps=" in line and "hit_rate=" in line

    def test_validation(self, engine):
        queries = make_queries(2, seed=35)
        with pytest.raises(ValueError):
            run_closed_loop(engine, [], num_clients=1,
                            requests_per_client=1)
        with pytest.raises(ValueError):
            run_closed_loop(engine, queries, num_clients=0,
                            requests_per_client=1)
        with pytest.raises(ValueError):
            run_closed_loop(engine, queries, num_clients=1)
        with pytest.raises(ValueError):
            run_closed_loop(engine, queries, num_clients=1,
                            requests_per_client=1, duration_seconds=1.0)
