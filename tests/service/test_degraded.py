"""Degraded responses: page corruption surfaces, never silently answers."""

from repro.service import QueryEngine
from repro.storage import PageCorruptionError

from .conftest import make_queries


def poisoned_engine(static_index, monkeypatch):
    engine = QueryEngine(static_index, num_workers=1)
    error = PageCorruptionError(5, "checksum mismatch at epoch 3",
                                "anchor0.pages")

    def boom(query, stats, deadline):
        raise error

    monkeypatch.setattr(engine, "_search", boom)
    return engine


class TestDegradedResponses:
    def test_corruption_becomes_degraded_not_exception(self, static_index,
                                                       monkeypatch):
        engine = poisoned_engine(static_index, monkeypatch)
        query = make_queries(1, seed=3)[0]
        try:
            response = engine.execute(query)
        finally:
            engine.close()
        assert response.degraded
        assert response.partial
        assert response.result.entries == []
        assert "page 5" in response.failure_cause
        assert "checksum mismatch" in response.failure_cause

    def test_degraded_answers_never_cached(self, static_index, monkeypatch):
        engine = poisoned_engine(static_index, monkeypatch)
        query = make_queries(1, seed=4)[0]
        try:
            first = engine.execute(query)
            second = engine.execute(query)  # the page may heal; re-check
        finally:
            engine.close()
        assert first.degraded and second.degraded
        assert not first.cached and not second.cached

    def test_degraded_metric_counts(self, static_index, monkeypatch):
        engine = poisoned_engine(static_index, monkeypatch)
        try:
            for query in make_queries(3, seed=5):
                engine.execute(query)
            assert engine.metrics.counter(
                "degraded_results_total").value == 3
        finally:
            engine.close()

    def test_healthy_engine_sets_no_degraded_flag(self, static_index):
        engine = QueryEngine(static_index, num_workers=1)
        try:
            response = engine.execute(make_queries(1, seed=6)[0])
        finally:
            engine.close()
        assert not response.degraded
        assert response.failure_cause is None
