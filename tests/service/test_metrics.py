"""Counters, histograms, percentile estimation, and rendering."""

import threading

import pytest

from repro.service import Counter, Histogram, MetricsRegistry


class TestCounter:
    def test_increment(self):
        c = Counter("x")
        c.increment()
        c.increment(4)
        assert c.value == 5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter("x").increment(-1)

    def test_concurrent_increments_all_land(self):
        c = Counter("x")

        def worker():
            for _ in range(1000):
                c.increment()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000


class TestHistogram:
    def test_empty(self):
        h = Histogram("lat")
        assert h.count == 0
        assert h.mean == 0.0
        assert h.percentile(95.0) == 0.0

    def test_mean_and_count(self):
        h = Histogram("lat", buckets=[1.0, 2.0, 4.0])
        for v in (0.5, 1.5, 3.0, 10.0):
            h.observe(v)
        assert h.count == 4
        assert h.mean == pytest.approx(3.75)

    def test_percentiles_bracket_the_data(self):
        h = Histogram("lat", buckets=[float(i) for i in range(1, 101)])
        for v in range(1, 101):
            h.observe(float(v) - 0.5)
        # With unit buckets the estimate is within one bucket of truth.
        assert h.percentile(50.0) == pytest.approx(50.0, abs=1.5)
        assert h.percentile(95.0) == pytest.approx(95.0, abs=1.5)
        assert h.percentile(99.0) == pytest.approx(99.0, abs=1.5)

    def test_monotone_in_q(self):
        h = Histogram("lat")
        for v in (1e-4, 5e-4, 2e-3, 0.1, 1.0):
            h.observe(v)
        ps = [h.percentile(float(p)) for p in range(0, 101, 10)]
        assert ps == sorted(ps)

    def test_overflow_bucket(self):
        h = Histogram("lat", buckets=[1.0])
        h.observe(100.0)
        assert h.count == 1
        assert h.percentile(99.0) <= 100.0

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("lat", buckets=[2.0, 1.0])

    def test_snapshot_keys(self):
        h = Histogram("lat")
        h.observe(0.25)
        snap = h.snapshot()
        assert set(snap) == {"count", "mean", "min", "max", "p50", "p95",
                             "p99"}
        assert snap["min"] == snap["max"] == 0.25


class TestRegistry:
    def test_same_name_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_render_contains_everything(self):
        reg = MetricsRegistry()
        reg.counter("queries_total").increment(3)
        reg.histogram("query_latency_seconds").observe(0.002)
        reg.histogram("pages_per_query", buckets=[1.0, 10.0]).observe(4.0)
        text = reg.render()
        assert "queries_total 3" in text
        assert "query_latency_seconds" in text
        assert "ms" in text           # latency shown in milliseconds
        assert "pages_per_query" in text
        assert "uptime" in text

    def test_concurrent_mixed_use(self):
        reg = MetricsRegistry()

        def worker(i):
            for j in range(500):
                reg.counter("c").increment()
                reg.histogram("h").observe(0.001 * ((i + j) % 7 + 1))

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("c").value == 3000
        assert reg.histogram("h").count == 3000


class TestToDict:
    def test_json_ready_snapshot(self):
        import json

        reg = MetricsRegistry()
        reg.counter("queries_total").increment(7)
        for value in (0.001, 0.002, 0.004):
            reg.histogram("query_latency_seconds").observe(value)
        snap = reg.to_dict()
        assert snap["counters"] == {"queries_total": 7}
        latency = snap["histograms"]["query_latency_seconds"]
        assert latency["count"] == 3
        assert latency["min"] == pytest.approx(0.001)
        assert latency["max"] == pytest.approx(0.004)
        assert snap["uptime_seconds"] >= 0.0
        json.dumps(snap)  # must round-trip through the json module as-is

    def test_empty_registry(self):
        snap = MetricsRegistry().to_dict()
        assert snap["counters"] == {}
        assert snap["histograms"] == {}

    def test_matches_render_names(self):
        reg = MetricsRegistry()
        reg.counter("a_total").increment()
        reg.histogram("b_seconds").observe(0.5)
        snap = reg.to_dict()
        text = reg.render()
        for name in list(snap["counters"]) + list(snap["histograms"]):
            assert name in text
