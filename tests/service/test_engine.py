"""QueryEngine: concurrency, caching, invalidation, deadlines, metrics."""

import math

import pytest

from repro.core import brute_force_search
from repro.service import QueryEngine, ResultCache

from .conftest import make_queries


def live_oracle(mutable_index, query):
    """Brute-force top-k over the index's current live POIs.

    Scans the POI list directly (POICollection would renumber ids).
    """
    matches = []
    for poi in mutable_index.live_pois():
        if query.matches(poi.location, poi.keywords):
            matches.append(
                (query.location.distance_to(poi.location), poi.poi_id))
    matches.sort()
    return [poi_id for _, poi_id in matches[:query.k]]


class TestStaticServing:
    def test_concurrent_answers_match_oracle(self, collection,
                                             static_index):
        queries = make_queries(40, seed=11)
        with QueryEngine(static_index, num_workers=4) as engine:
            futures = [engine.submit(q) for q in queries]
            for query, future in zip(queries, futures):
                response = future.result(timeout=30)
                expect = brute_force_search(collection, query)
                assert response.result.poi_ids() == expect.poi_ids()
                assert not response.partial

    def test_second_ask_is_a_cache_hit(self, static_index):
        query = make_queries(1, seed=12)[0]
        with QueryEngine(static_index) as engine:
            first = engine.execute(query)
            second = engine.execute(query)
        assert not first.cached
        assert second.cached
        assert second.result.poi_ids() == first.result.poi_ids()
        assert engine.cache.stats.hits == 1

    def test_cache_hit_same_canonical_key(self, static_index):
        query = make_queries(1, seed=13)[0]
        reordered = type(query).make(
            query.location.x, query.location.y, query.interval.lower,
            query.interval.upper, sorted(query.keywords, reverse=True),
            query.k)
        with QueryEngine(static_index) as engine:
            engine.execute(query)
            assert engine.execute(reordered).cached

    def test_batch_dedupes_identical_queries(self, static_index):
        queries = make_queries(5, seed=14)
        batch = queries + queries + [queries[0]]
        with QueryEngine(static_index, num_workers=4) as engine:
            futures = engine.submit_batch(batch)
            assert len(futures) == len(batch)
            # Duplicates share the same future object.
            for i, _query in enumerate(queries):
                assert futures[i] is futures[len(queries) + i]
            assert futures[-1] is futures[0]
            responses = [f.result(timeout=30) for f in futures]
        assert engine.metrics.counter("batch_unique_total").value == 5
        assert engine.metrics.counter("batch_deduped_total").value == 6
        # At most one actual search per distinct query.
        assert engine.cache.stats.misses <= 5
        for query, response in zip(batch, responses):
            assert response.query.canonical_key() == query.canonical_key()

    def test_submit_after_close_raises(self, static_index):
        engine = QueryEngine(static_index)
        engine.close()
        with pytest.raises(RuntimeError):
            engine.submit(make_queries(1)[0])

    def test_metrics_recorded(self, static_index):
        queries = make_queries(8, seed=15)
        with QueryEngine(static_index) as engine:
            for query in queries:
                engine.execute(query)
                engine.execute(query)
        assert engine.metrics.counter("queries_total").value == 16
        assert engine.metrics.counter("cache_hits_total").value == 8
        assert engine.metrics.counter("cache_misses_total").value == 8
        assert engine.metrics.histogram(
            "query_latency_seconds").count == 16


class TestMutableServing:
    def test_insert_invalidates_affected_cached_result(self,
                                                       mutable_index):
        """THE staleness contract: after an insert that changes a query's
        answer, the engine must not serve the old cached answer."""
        query = make_queries(1, seed=16)[0]
        with QueryEngine(mutable_index, num_workers=2) as engine:
            before = engine.execute(query)
            assert engine.execute(query).cached
            # Insert a matching POI a hair away from the query location,
            # *inside* the direction interval — guaranteed top-1.
            loc, mid = query.location, query.interval.midpoint()
            new_id = mutable_index.insert(
                loc.x + 1e-3 * math.cos(mid), loc.y + 1e-3 * math.sin(mid),
                sorted(query.keywords))
            after = engine.execute(query)
            assert not after.cached
            assert new_id in after.result.poi_ids()
            assert after.result.poi_ids() == live_oracle(
                mutable_index, query)
            assert before.generation < after.generation

    def test_delete_invalidates(self, mutable_index):
        query = make_queries(1, seed=17)[0]
        with QueryEngine(mutable_index, num_workers=2) as engine:
            first = engine.execute(query)
            if not first.result.entries:
                pytest.skip("query found nothing to delete")
            victim = first.result.poi_ids()[0]
            assert mutable_index.delete(victim)
            after = engine.execute(query)
            assert not after.cached
            assert victim not in after.result.poi_ids()
            assert after.result.poi_ids() == live_oracle(
                mutable_index, query)

    def test_eager_purge_via_subscription(self, mutable_index):
        queries = make_queries(6, seed=18)
        with QueryEngine(mutable_index) as engine:
            for query in queries:
                engine.execute(query)
            assert len(engine.cache) == 6
            mutable_index.insert(1.0, 1.0, ["cafe"])
            # The subscription purged everything tagged with the old
            # generation without waiting for lookups.
            assert len(engine.cache) == 0

    def test_unaffected_queries_still_correct_after_many_updates(
            self, mutable_index):
        queries = make_queries(10, seed=19)
        with QueryEngine(mutable_index, num_workers=4) as engine:
            for query in queries:
                engine.execute(query)
            for i in range(5):
                mutable_index.insert(50.0 + i, 50.0, ["park", "cafe"])
            for future in [engine.submit(q) for q in queries]:
                future.result(timeout=30)
            for query in queries:
                got = engine.execute(query)
                assert got.result.poi_ids() == live_oracle(
                    mutable_index, query)


class TestDeadlines:
    def test_zero_timeout_degrades_gracefully(self, static_index):
        query = make_queries(1, seed=20)[0]
        with QueryEngine(static_index, default_timeout=0.0) as engine:
            response = engine.execute(query)
            assert response.partial
            # Partial responses are not admitted to the cache...
            assert len(engine.cache) == 0
            assert engine.metrics.counter(
                "partial_results_total").value == 1
            # ...so a healthier follow-up recomputes in full (an explicit
            # generous timeout; timeout=None falls back to the default).
            full = engine.execute(query, timeout=60.0)
            assert not full.partial

    def test_per_call_timeout_overrides_default(self, static_index):
        query = make_queries(1, seed=21)[0]
        with QueryEngine(static_index, default_timeout=None) as engine:
            assert engine.execute(query, timeout=0.0).partial


class TestValidation:
    def test_bad_worker_count(self, static_index):
        with pytest.raises(ValueError):
            QueryEngine(static_index, num_workers=0)

    def test_custom_cache_object_used(self, static_index):
        cache = ResultCache(capacity=2)
        with QueryEngine(static_index, cache=cache) as engine:
            assert engine.cache is cache
