"""Deadline semantics and graceful degradation of the core search."""

import math

import pytest

from repro.core import (
    DesksSearcher,
    brute_force_search,
)
from repro.service import Deadline

from .conftest import make_queries


class TestDeadline:
    def test_after_expires(self):
        d = Deadline.after(0.0)
        assert d.expired()
        assert d.remaining() == 0.0

    def test_generous_budget_not_expired(self):
        d = Deadline.after(60.0)
        assert not d.expired()
        assert 0.0 < d.remaining() <= 60.0

    def test_unbounded(self):
        d = Deadline.unbounded()
        assert not d.expired()
        assert d.remaining() == math.inf
        assert d.is_unbounded

    def test_from_timeout(self):
        assert Deadline.from_timeout(None).is_unbounded
        assert Deadline.from_timeout(0.0).expired()

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline.after(-1.0)


class TestGracefulDegradation:
    def test_expired_deadline_yields_partial(self, static_index):
        searcher = DesksSearcher(static_index)
        query = make_queries(1, seed=5)[0]
        result = searcher.search(query, deadline=Deadline.after(0.0))
        assert result.partial

    def test_partial_entries_are_genuine_answers(self, collection,
                                                 static_index):
        """Everything returned under an expired deadline still satisfies
        the query predicate — degradation truncates, never corrupts."""
        searcher = DesksSearcher(static_index)
        for query in make_queries(10, seed=6):
            result = searcher.search(query, deadline=Deadline.after(0.0))
            assert result.partial
            for entry in result.entries:
                poi = collection[entry.poi_id]
                assert query.matches(poi.location, poi.keywords)
                assert entry.distance == pytest.approx(
                    query.location.distance_to(poi.location))

    def test_unbounded_deadline_matches_oracle(self, collection,
                                               static_index):
        searcher = DesksSearcher(static_index)
        for query in make_queries(10, seed=7):
            result = searcher.search(query,
                                     deadline=Deadline.unbounded())
            assert not result.partial
            expect = brute_force_search(collection, query)
            assert result.poi_ids() == expect.poi_ids()

    def test_partial_is_prefix_consistent(self, collection, static_index):
        """Partial answers never contain a POI farther than an answer the
        full search would place at the same rank... weaker but checkable:
        partial distances are a subset of matching POIs' distances and
        sorted non-decreasing."""
        searcher = DesksSearcher(static_index)
        query = make_queries(1, seed=8)[0]
        result = searcher.search(query, deadline=Deadline.after(0.0))
        distances = result.distances()
        assert distances == sorted(distances)
        assert len(result) <= query.k
