"""Corruption quarantine and deadline propagation in the cluster layer."""

import math

import pytest

from repro.cluster import ReplicaSet, ShardRouter, ShardUnavailableError
from repro.core import DesksIndex, DirectionalQuery
from repro.storage import PageCorruptionError

from .conftest import make_collection


def make_query(k=5):
    return DirectionalQuery.make(50, 50, 0.0, 2 * math.pi, ["cafe"], k)


def poison_engine(replica, calls=None):
    """Make a replica's engine raise PageCorruptionError on execute."""
    def corrupt_execute(query, timeout=None):
        if calls is not None:
            calls.append(replica.replica_id)
        raise PageCorruptionError(3, "torn write (header epoch 9, "
                                  "trailing stamp 8)", "anchor1.pages")

    replica.engine.execute = corrupt_execute


class TestReplicaQuarantine:
    def test_corruption_fails_over_and_quarantines(self):
        coll = make_collection(n=200, seed=31)
        rs = ReplicaSet(0, DesksIndex(coll), replication=2)
        try:
            poison_engine(rs.replicas[0])
            rs._rotation = 0           # attempt the poisoned replica first
            response, _ = rs.execute(make_query())
            assert response.result.entries     # replica 1 answered
            assert rs.quarantined_replicas() == [0]
            assert not rs.replicas[0].healthy
            assert "torn write" in rs.replicas[0].quarantine_cause
        finally:
            rs.close()

    def test_quarantine_is_sticky_unlike_unhealthy(self):
        coll = make_collection(n=200, seed=32)
        rs = ReplicaSet(0, DesksIndex(coll), replication=2)
        try:
            calls = []
            poison_engine(rs.replicas[0], calls)
            rs._rotation = 0           # attempt the poisoned replica first
            rs.execute(make_query())
            assert calls == [0]
            # Unhealthy replicas get recovery probes; quarantined ones
            # must never be attempted again until released.
            for _ in range(6):
                rs.execute(make_query())
            assert calls == [0]
        finally:
            rs.close()

    def test_release_restores_traffic(self):
        coll = make_collection(n=200, seed=33)
        rs = ReplicaSet(0, DesksIndex(coll), replication=2)
        try:
            rs.replicas[0].quarantine("scrub found damage")
            assert rs.quarantined_replicas() == [0]
            rs.replicas[0].release()
            assert rs.quarantined_replicas() == []
            assert rs.replicas[0].healthy
            assert rs.replicas[0].quarantine_cause is None
        finally:
            rs.close()

    def test_degraded_response_also_quarantines(self):
        coll = make_collection(n=200, seed=34)
        rs = ReplicaSet(0, DesksIndex(coll), replication=2)
        try:
            import dataclasses

            real_execute = rs.replicas[0].engine.execute

            def degraded_execute(query, timeout=None):
                return dataclasses.replace(
                    real_execute(query, timeout), degraded=True,
                    failure_cause="page 7: checksum mismatch")

            rs.replicas[0].engine.execute = degraded_execute
            rs._rotation = 0           # attempt the poisoned replica first
            response, _ = rs.execute(make_query())
            assert not response.degraded       # failover found clean pages
            assert rs.quarantined_replicas() == [0]
            assert "checksum" in rs.replicas[0].quarantine_cause
        finally:
            rs.close()

    def test_all_replicas_quarantined_is_unavailable(self):
        coll = make_collection(n=100, seed=35)
        rs = ReplicaSet(2, DesksIndex(coll), replication=2)
        try:
            for replica in rs.replicas:
                poison_engine(replica)
            with pytest.raises(ShardUnavailableError) as err:
                rs.execute(make_query())
            assert isinstance(err.value.last_error, PageCorruptionError)
            assert rs.quarantined_replicas() == [0, 1]
        finally:
            rs.close()

    def test_quarantine_metric_counts(self):
        coll = make_collection(n=100, seed=36)
        from repro.service import MetricsRegistry
        metrics = MetricsRegistry()
        rs = ReplicaSet(0, DesksIndex(coll), replication=2, metrics=metrics)
        try:
            poison_engine(rs.replicas[0])
            rs.execute(make_query())
            assert metrics.counter(
                "cluster_replicas_quarantined_total").value == 1
        finally:
            rs.close()


class TestRouterQuarantine:
    def test_quarantined_shards_reported(self, collection):
        with ShardRouter(collection, num_shards=4,
                         replication=2) as router:
            shard = router.shards[1]
            poison_engine(shard.replicas.replicas[0])
            response = router.execute(make_query(k=10))
            assert response.result.entries
            assert response.quarantined_shards == [shard.spec.shard_id]
            # Intact shards report nothing.
            again = router.execute(make_query(k=10))
            assert again.quarantined_shards == [shard.spec.shard_id]


class TestDeadlinePropagation:
    def test_expired_deadline_skips_remaining_waves(self, collection):
        with ShardRouter(collection, num_shards=4) as router:
            response = router.execute(make_query(k=10), timeout=0.0)
            assert response.deadline_expired
            assert response.result.partial
            assert response.shards_dispatched == 0
            planned = len(router.plan(make_query(k=10))[0])
            assert response.shards_skipped >= planned

    def test_generous_deadline_completes(self, collection):
        with ShardRouter(collection, num_shards=4) as router:
            response = router.execute(make_query(k=10), timeout=60.0)
            assert not response.deadline_expired
            assert not response.result.partial
            assert response.result.entries

    def test_unbounded_deadline_unchanged(self, collection):
        with ShardRouter(collection, num_shards=4) as router:
            response = router.execute(make_query(k=10))
            assert not response.deadline_expired
            assert response.result.entries
