"""ShardRouter: equivalence with the unsharded index, pruning accounting."""

import math
import random

import pytest

from repro.cluster import PARTITIONERS, ShardRouter
from repro.core import DirectionalQuery

from .conftest import entries_of, random_queries


@pytest.mark.parametrize("partitioner", sorted(PARTITIONERS))
@pytest.mark.parametrize("num_shards", [1, 2, 4, 8])
def test_sharded_equals_unsharded(collection, reference, partitioner,
                                  num_shards):
    rng = random.Random(1000 + num_shards)
    queries = random_queries(rng, 25)
    with ShardRouter(collection, num_shards=num_shards,
                     partitioner=partitioner) as router:
        for query in queries:
            got = router.execute(query)
            assert not got.degraded
            assert entries_of(got.result) == \
                entries_of(reference.search(query))


def test_routing_accounting_is_consistent(collection):
    rng = random.Random(7)
    with ShardRouter(collection, num_shards=8, partitioner="grid") as router:
        for query in random_queries(rng, 40):
            r = router.execute(query)
            assert (r.shards_pruned + r.shards_keyword_pruned
                    + r.shards_dispatched + r.shards_skipped) \
                == r.shards_total == 8
            assert 0.0 <= r.pruning_rate <= 1.0
            assert r.latency_seconds >= 0.0
            assert r.failed_shards == []


def test_narrow_sector_prunes_more_shards(collection):
    """Direction-aware routing: narrower sectors dispatch fewer shards."""
    rng = random.Random(99)
    widths = [2 * math.pi, math.pi / 2, math.pi / 8]
    with ShardRouter(collection, num_shards=8, partitioner="grid") as router:
        dispatched = []
        for width in widths:
            total = 0
            for _ in range(30):
                x, y = rng.uniform(0, 100), rng.uniform(0, 100)
                alpha = rng.uniform(0, 2 * math.pi)
                q = DirectionalQuery.make(x, y, alpha, alpha + width,
                                          ["cafe"], 5)
                total += router.execute(q).shards_dispatched
            dispatched.append(total)
    assert dispatched[0] > dispatched[-1]


def test_zero_df_keyword_prunes_every_shard(collection, reference):
    with ShardRouter(collection, num_shards=4) as router:
        q = DirectionalQuery.make(50, 50, 0.0, 2 * math.pi,
                                  ["no-such-keyword"], 5)
        r = router.execute(q)
        assert r.shards_keyword_pruned == 4
        assert r.shards_dispatched == 0
        assert r.result.entries == []
        assert entries_of(r.result) == entries_of(reference.search(q))


def test_early_termination_skips_far_shards(collection, reference):
    """With max_fanout=1 the k-th bound from wave 1 can skip later shards."""
    rng = random.Random(5)
    skipped = 0
    with ShardRouter(collection, num_shards=8, partitioner="grid",
                     max_fanout=1) as router:
        for query in random_queries(rng, 60):
            r = router.execute(query)
            skipped += r.shards_skipped
            assert entries_of(r.result) == \
                entries_of(reference.search(query))
    assert skipped > 0


def test_plan_orders_by_mindist(collection):
    with ShardRouter(collection, num_shards=8, partitioner="grid") as router:
        q = DirectionalQuery.make(-10, -10, 0.0, 2 * math.pi, ["cafe"], 5)
        survivors, _, _ = router.plan(q)
        mindists = [mindist for mindist, _ in survivors]
        assert mindists == sorted(mindists)


def test_search_returns_bare_result(collection, reference):
    with ShardRouter(collection, num_shards=4) as router:
        q = DirectionalQuery.make(40, 60, 0.5, 2.0, ["food"], 3)
        assert entries_of(router.search(q)) == \
            entries_of(reference.search(q))


def test_metrics_snapshot_shape(collection):
    with ShardRouter(collection, num_shards=2, replication=2) as router:
        router.search(DirectionalQuery.make(10, 10, 0.0, 3.0, ["cafe"], 5))
        snap = router.metrics_snapshot()
        assert snap["cluster"]["counters"]["cluster_queries_total"] == 1
        assert set(snap["shards"]) == {"0", "1"}
        for info in snap["shards"].values():
            assert info["num_pois"] > 0
            assert len(info["replicas"]) == 2
        text = router.describe()
        assert "2 shards" in text and "replicas=2/2 healthy" in text


def test_router_rejects_bad_arguments(collection):
    with pytest.raises(ValueError):
        ShardRouter(collection, num_shards=4, num_workers=0)
    with pytest.raises(ValueError):
        ShardRouter(collection, num_shards=4, max_fanout=0)
    with pytest.raises(ValueError):
        ShardRouter(collection, num_shards=4, partitioner="voronoi")
