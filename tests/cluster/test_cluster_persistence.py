"""Sharded deployment persistence: round trips, refusal, corruption."""

import json
import os
import random

import pytest

from repro.cluster import ShardRouter, build_layout, shard_collection
from repro.core import DesksIndex, load_sharded, save_sharded
from repro.core.persistence import CLUSTER_FORMAT_VERSION

from .conftest import entries_of, make_collection, random_queries


def build_shard_indexes(collection, num_shards=4, partitioner="grid"):
    layout = build_layout(collection, num_shards, partitioner)
    return layout, [DesksIndex(shard_collection(collection, spec))
                    for spec in layout.shards]


class TestSaveLoadSharded:
    def test_round_trip_indexes_and_meta(self, tmp_path):
        coll = make_collection(n=120, seed=31)
        layout, indexes = build_shard_indexes(coll)
        path = str(tmp_path / "deploy")
        save_sharded(indexes, path, meta=layout.to_meta())
        assert sorted(os.listdir(path)) == \
            ["meta.json", "shard0", "shard1", "shard2", "shard3"]

        loaded, meta = load_sharded(path)
        assert meta["partitioner"] == "grid"
        assert meta["num_pois"] == len(coll)
        assert len(loaded) == 4
        for orig, back in zip(indexes, loaded):
            assert len(back.collection) == len(orig.collection)
            assert back.num_bands == orig.num_bands
            assert [p.keywords for p in back.collection] == \
                [p.keywords for p in orig.collection]

    def test_empty_deployment_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="at least one"):
            save_sharded([], str(tmp_path / "d"))

    def test_disk_based_shard_refused_before_writing(self, tmp_path):
        coll = make_collection(n=120, seed=32)
        _, indexes = build_shard_indexes(coll, num_shards=2)
        indexes[1] = DesksIndex(indexes[1].collection, disk_based=True)
        path = tmp_path / "deploy"
        with pytest.raises(ValueError, match="disk-based"):
            save_sharded(indexes, str(path))
        # Atomic refusal: nothing written, not even shard 0.
        assert not path.exists()

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="meta.json"):
            load_sharded(str(tmp_path / "nowhere"))

    def test_version_mismatch(self, tmp_path):
        path = tmp_path / "deploy"
        path.mkdir()
        (path / "meta.json").write_text(json.dumps(
            {"version": CLUSTER_FORMAT_VERSION + 1, "num_shards": 0,
             "meta": {}}))
        with pytest.raises(ValueError, match="format version"):
            load_sharded(str(path))


class TestRouterSaveLoad:
    def test_round_trip_answers_identically(self, tmp_path, collection,
                                            reference):
        path = str(tmp_path / "cluster")
        with ShardRouter(collection, num_shards=4,
                         partitioner="angular") as router:
            router.save(path)
        rng = random.Random(77)
        with ShardRouter.load(path, replication=2) as restored:
            assert restored.num_shards == 4
            assert restored.replication == 2
            assert restored.layout.partitioner == "angular"
            for query in random_queries(rng, 20):
                assert entries_of(restored.search(query)) == \
                    entries_of(reference.search(query))

    def test_load_rejects_shard_size_mismatch(self, tmp_path, collection):
        path = str(tmp_path / "cluster")
        with ShardRouter(collection, num_shards=2) as router:
            router.save(path)
        manifest = json.loads(
            (tmp_path / "cluster" / "meta.json").read_text())
        manifest["meta"]["shard_global_ids"][0] = [0, 1, 2]
        (tmp_path / "cluster" / "meta.json").write_text(
            json.dumps(manifest))
        with pytest.raises(ValueError, match="manifest lists"):
            ShardRouter.load(path)

    def test_load_rejects_missing_layout(self, tmp_path, collection):
        path = str(tmp_path / "cluster")
        _, indexes = build_shard_indexes(collection, num_shards=2)
        save_sharded(indexes, path)  # no layout meta at all
        with pytest.raises(ValueError, match="layout metadata"):
            ShardRouter.load(path)
