"""Partitioner unit tests: coverage, balance, metadata, determinism."""

import pytest

from repro.cluster import PARTITIONERS, build_layout, shard_collection
from repro.datasets import POI, POICollection

from .conftest import make_collection


@pytest.mark.parametrize("partitioner", sorted(PARTITIONERS))
@pytest.mark.parametrize("num_shards", [1, 2, 4, 8])
def test_layout_is_exact_partition(collection, partitioner, num_shards):
    layout = build_layout(collection, num_shards, partitioner)
    assert layout.partitioner == partitioner
    assert len(layout.shards) == num_shards
    seen = []
    for spec in layout.shards:
        assert len(spec) > 0
        assert list(spec.global_ids) == sorted(spec.global_ids)
        seen.extend(spec.global_ids)
    assert sorted(seen) == list(range(len(collection)))


@pytest.mark.parametrize("partitioner", sorted(PARTITIONERS))
def test_shard_mbr_and_df_describe_members(collection, partitioner):
    layout = build_layout(collection, 4, partitioner)
    for spec in layout.shards:
        df = {}
        for gid in spec.global_ids:
            poi = collection[gid]
            assert spec.mbr.contains_point(poi.location)
            for kw in poi.keywords:
                df[kw] = df.get(kw, 0) + 1
        assert dict(spec.keyword_df) == df


@pytest.mark.parametrize("partitioner", ["grid", "angular"])
def test_equi_depth_balance(collection, partitioner):
    layout = build_layout(collection, 8, partitioner)
    sizes = [len(spec) for spec in layout.shards]
    # Equi-depth: every shard within one row/chunk of the ideal size.
    assert max(sizes) - min(sizes) <= len(collection) // 8
    assert sum(sizes) == len(collection)


def test_grid_shards_are_spatially_disjoint_in_x_columns(collection):
    # STR-style: column extents may touch but members don't interleave
    # arbitrarily — each shard's MBR is much smaller than the dataset MBR.
    layout = build_layout(collection, 8, "grid")
    full_area = collection.mbr.area()
    shard_area = sum(spec.mbr.area() for spec in layout.shards)
    assert shard_area < full_area  # real spatial locality, not hash noise


def test_hash_assignment_matches_modulo(collection):
    layout = build_layout(collection, 4, "hash")
    for spec in layout.shards:
        for gid in spec.global_ids:
            assert gid % 4 == spec.shard_id


@pytest.mark.parametrize("partitioner", sorted(PARTITIONERS))
def test_layout_is_deterministic(collection, partitioner):
    a = build_layout(collection, 4, partitioner)
    b = build_layout(collection, 4, partitioner)
    assert [s.global_ids for s in a.shards] == \
        [s.global_ids for s in b.shards]


def test_shard_collection_preserves_global_order_and_payload(collection):
    layout = build_layout(collection, 4, "angular")
    spec = layout.shards[2]
    sub = shard_collection(collection, spec)
    assert len(sub) == len(spec)
    for local_id, gid in enumerate(spec.global_ids):
        orig, copy = collection[gid], sub[local_id]
        assert copy.poi_id == local_id
        assert copy.location == orig.location
        assert copy.keywords == orig.keywords


def test_keyword_may_match(collection):
    layout = build_layout(collection, 4, "grid")
    spec = layout.shards[0]
    present = next(iter(spec.keyword_df))
    assert spec.may_match_keywords([present], require_all=True)
    assert spec.may_match_keywords(["no-such-term"], require_all=False) \
        is False
    # Conjunctive query with one missing term is provably empty.
    assert spec.may_match_keywords([present, "no-such-term"],
                                   require_all=True) is False
    # Disjunctive query with one present term may still match.
    assert spec.may_match_keywords([present, "no-such-term"],
                                   require_all=False) is True


def test_layout_meta_round_trip_fields(collection):
    layout = build_layout(collection, 4, "grid")
    meta = layout.to_meta()
    assert meta["partitioner"] == "grid"
    assert meta["num_pois"] == len(collection)
    assert [tuple(ids) for ids in meta["shard_global_ids"]] == \
        [s.global_ids for s in layout.shards]


def test_build_layout_rejects_bad_arguments(collection):
    with pytest.raises(ValueError):
        build_layout(collection, 0, "grid")
    with pytest.raises(ValueError):
        build_layout(collection, 4, "voronoi")
    tiny = POICollection([POI.make(0, 1.0, 2.0, ["cafe"])])
    with pytest.raises(ValueError):
        build_layout(tiny, 2, "grid")


def test_angular_handles_centroid_resident_poi():
    # A POI exactly at the centroid has no defined direction; it must
    # still land in exactly one shard.
    pois = [POI.make(0, 0.0, 0.0, ["cafe"]), POI.make(1, 2.0, 0.0, ["gas"]),
            POI.make(2, -2.0, 0.0, ["atm"]), POI.make(3, 0.0, 2.0, ["bank"]),
            POI.make(4, 0.0, -2.0, ["park"])]
    coll = POICollection(pois)
    layout = build_layout(coll, 2, "angular")
    seen = sorted(gid for s in layout.shards for gid in s.global_ids)
    assert seen == [0, 1, 2, 3, 4]


def test_collection_factory_smoke():
    assert len(make_collection(n=50)) == 50
