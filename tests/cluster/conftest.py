"""Shared fixtures for the sharded scatter-gather layer tests."""

import random

import pytest

from repro.core import DesksIndex, DesksSearcher
from repro.datasets import POI, POICollection

KEYWORD_POOL = ["cafe", "food", "gas", "atm", "pizza", "bank", "hotel",
                "park"]


def make_collection(n=500, seed=23, extent=100.0):
    rng = random.Random(seed)
    return POICollection([
        POI.make(i, rng.uniform(0, extent), rng.uniform(0, extent),
                 rng.sample(KEYWORD_POOL, rng.randint(1, 3)))
        for i in range(n)
    ])


def random_queries(rng, count, extent=100.0, pool=KEYWORD_POOL):
    """Mixed random workload: locations inside and outside the data."""
    import math

    from repro.core import DirectionalQuery

    queries = []
    for _ in range(count):
        margin = 0.3 * extent
        x = rng.uniform(-margin, extent + margin)
        y = rng.uniform(-margin, extent + margin)
        alpha = rng.uniform(0.0, 2 * math.pi)
        width = rng.uniform(0.05, 2 * math.pi)
        keywords = rng.sample(pool, rng.randint(1, 2))
        k = rng.choice([1, 3, 10])
        queries.append(DirectionalQuery.make(x, y, alpha, alpha + width,
                                             keywords, k))
    return queries


def entries_of(result):
    """Comparable (poi_id, distance) pairs of a QueryResult."""
    return [(e.poi_id, e.distance) for e in result.entries]


@pytest.fixture(scope="module")
def collection():
    return make_collection()


@pytest.fixture(scope="module")
def reference(collection):
    """Unsharded searcher — the equivalence oracle."""
    return DesksSearcher(DesksIndex(collection, num_bands=4, num_wedges=5))
