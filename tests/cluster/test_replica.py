"""Replication, failover, health tracking, and fault injection."""

import math
import random

import pytest

from repro.cluster import (
    FaultInjector,
    FaultRule,
    InjectedFault,
    ReplicaSet,
    ShardRouter,
    ShardUnavailableError,
)
from repro.core import DesksIndex, DirectionalQuery

from .conftest import entries_of, make_collection, random_queries


def make_query(k=5):
    return DirectionalQuery.make(50, 50, 0.0, 2 * math.pi, ["cafe"], k)


def test_fault_rule_validation():
    with pytest.raises(ValueError):
        FaultRule(error_rate=1.5)
    with pytest.raises(ValueError):
        FaultRule(extra_latency=-0.1)


def test_injector_scope_precedence():
    inj = FaultInjector()
    inj.set_fault(error_rate=1.0)                        # global wildcard
    inj.set_fault(shard_id=1, replica_id=0, error_rate=0.0)  # exact override
    with pytest.raises(InjectedFault):
        inj.before_call(0, 0)
    inj.before_call(1, 0)  # exact rule wins: no fault
    assert inj.injected_faults == 1
    inj.clear()
    inj.before_call(0, 0)  # healed
    assert inj.injected_faults == 1


def test_failover_hides_single_replica_failure():
    coll = make_collection(n=200, seed=3)
    index = DesksIndex(coll)
    inj = FaultInjector()
    inj.set_fault(replica_id=0, error_rate=1.0)
    rs = ReplicaSet(0, index, replication=2, fault_injector=inj)
    try:
        response, retries = rs.execute(make_query())
        assert response.result.entries  # replica 1 answered
        assert retries in (0, 1)  # 0 when rotation tried replica 1 first
        total = sum(r.total_failures for r in rs.replicas)
        assert rs.replicas[0].total_failures == total  # only replica 0 fails
    finally:
        rs.close()


def test_all_replicas_down_raises_shard_unavailable():
    coll = make_collection(n=100, seed=4)
    inj = FaultInjector()
    inj.set_fault(error_rate=1.0)
    rs = ReplicaSet(3, DesksIndex(coll), replication=2, fault_injector=inj)
    try:
        with pytest.raises(ShardUnavailableError) as err:
            rs.execute(make_query())
        assert err.value.shard_id == 3
        assert err.value.attempts == 2
        assert isinstance(err.value.last_error, InjectedFault)
    finally:
        rs.close()


def test_health_threshold_and_recovery():
    coll = make_collection(n=100, seed=5)
    inj = FaultInjector()
    inj.set_fault(replica_id=0, error_rate=1.0)
    rs = ReplicaSet(0, DesksIndex(coll), replication=2,
                    fault_injector=inj, health_threshold=2)
    try:
        for _ in range(4):
            rs.execute(make_query())
        bad = rs.replicas[0]
        assert not bad.healthy
        assert bad.consecutive_failures >= 2
        # Unhealthy replicas go last: no more retries once demoted.
        _, retries = rs.execute(make_query())
        assert retries == 0
        # Recovery probe: heal the fault, unhealthy replica is retried
        # eventually and marked healthy on first success.
        inj.clear()
        for _ in range(4):
            rs.execute(make_query())
        # Probe only happens if the healthy replica fails first, so force it:
        bad.mark_success()
        assert bad.healthy and bad.consecutive_failures == 0
        summary = rs.health_summary()
        assert summary[0]["total_failures"] >= 2
        assert summary[1]["total_failures"] == 0
    finally:
        rs.close()


def test_replica_set_validation():
    coll = make_collection(n=50, seed=6)
    index = DesksIndex(coll)
    with pytest.raises(ValueError):
        ReplicaSet(0, index, replication=0)
    with pytest.raises(ValueError):
        ReplicaSet(0, index, replication=1, health_threshold=0)


def test_router_exact_under_single_replica_failure(collection, reference):
    """Acceptance: R=2 with one dead replica per shard stays exact."""
    inj = FaultInjector()
    inj.set_fault(replica_id=0, error_rate=1.0)
    rng = random.Random(11)
    with ShardRouter(collection, num_shards=4, partitioner="grid",
                     replication=2, fault_injector=inj) as router:
        retries = 0
        for query in random_queries(rng, 30):
            r = router.execute(query)
            assert not r.degraded
            retries += r.replica_retries
            assert entries_of(r.result) == \
                entries_of(reference.search(query))
        assert retries > 0  # failover actually happened
        snap = router.metrics_snapshot()
        assert snap["cluster"]["counters"][
            "cluster_replica_failures_total"] > 0


def test_router_degrades_when_whole_shard_dies(collection):
    inj = FaultInjector()
    inj.set_fault(shard_id=0, error_rate=1.0)
    with ShardRouter(collection, num_shards=4, partitioner="grid",
                     replication=2, fault_injector=inj) as router:
        q = make_query(k=400)  # forces dispatch to every shard
        r = router.execute(q)
        assert r.degraded
        assert r.failed_shards == [0]
        assert r.result.partial
        # The surviving shards still answer.
        lost = set(router.shards[0].spec.global_ids)
        got = {e.poi_id for e in r.result.entries}
        assert got and not (got & lost)
        snap = router.metrics_snapshot()
        assert snap["cluster"]["counters"][
            "cluster_degraded_answers_total"] == 1
        assert snap["shards"]["0"]["health"][0]["total_failures"] > 0


def test_injected_latency_slows_but_answers():
    coll = make_collection(n=100, seed=8)
    inj = FaultInjector()
    inj.set_fault(extra_latency=0.02)
    with ShardRouter(coll, num_shards=2, fault_injector=inj) as router:
        r = router.execute(make_query())
        assert not r.degraded
        assert r.latency_seconds >= 0.02
