"""Differential fuzzing: every engine, every config, one oracle.

A seeded generator produces random datasets (clustered, collinear,
duplicated locations), random index configurations (bands/wedges, memory /
sliced-disk / compressed-disk stores), and random queries (ALL and ANY
modes, in and out of the MBR, degenerate and wrapping intervals).  Every
engine must return the same answer distances as the linear-scan oracle.

This is the repository's last line of defence: anything the targeted unit
tests missed tends to surface here first.
"""

import math
import random

import pytest

from repro.baselines import FilterThenVerify, GridIndex, IRTree, MIR2Tree
from repro.core import (
    DesksIndex,
    DesksSearcher,
    DirectionalQuery,
    MatchMode,
    MutableDesksIndex,
    PruningMode,
    brute_force_search,
)
from repro.datasets import POI, POICollection
from repro.geometry import DirectionInterval, Point

KEYWORDS = ["cafe", "gas", "atm", "pizza", "park", "inn"]


def random_dataset(rng):
    style = rng.choice(["uniform", "clustered", "collinear", "dupes"])
    n = rng.randint(5, 120)
    pois = []
    for i in range(n):
        if style == "uniform":
            x, y = rng.uniform(0, 100), rng.uniform(0, 100)
        elif style == "clustered":
            cx, cy = rng.choice([(20, 20), (80, 30), (50, 90)])
            x, y = rng.gauss(cx, 5), rng.gauss(cy, 5)
        elif style == "collinear":
            x, y = rng.uniform(0, 100), 37.0
        else:  # duplicate locations
            x, y = rng.choice([(10.0, 10.0), (60.0, 60.0)])
        kws = rng.sample(KEYWORDS, rng.randint(1, 3))
        pois.append(POI.make(i, x, y, kws))
    return POICollection(pois)


def random_query(rng):
    x = rng.uniform(-30, 130)
    y = rng.uniform(-30, 130)
    alpha = rng.uniform(0, 2 * math.pi)
    width = rng.choice([0.0, 0.1, 1.0, math.pi, 1.9 * math.pi, 2 * math.pi])
    kws = rng.sample(KEYWORDS + ["missingkw"], rng.randint(1, 3))
    k = rng.choice([1, 3, 10, 50])
    mode = rng.choice([MatchMode.ALL, MatchMode.ANY])
    return DirectionalQuery(Point(x, y), DirectionInterval(alpha,
                                                           alpha + width),
                            frozenset(kws), k, mode)


def build_engines(rng, collection):
    bands = rng.randint(1, 8)
    wedges = rng.randint(1, 8)
    engines = {}
    desks_kind = rng.choice(["memory", "disk", "compressed"])
    if desks_kind == "memory":
        index = DesksIndex(collection, bands, wedges)
    else:
        index = DesksIndex(collection, bands, wedges, disk_based=True,
                           disk_format=("sliced" if desks_kind == "disk"
                                        else "compressed"))
    searcher = DesksSearcher(index)
    pruning = rng.choice(list(PruningMode))
    engines[f"desks-{desks_kind}-{pruning.name}"] = (
        lambda q, s=searcher, m=pruning: s.search(q, m))
    baseline_cls = rng.choice([FilterThenVerify, MIR2Tree, IRTree,
                               GridIndex])
    if baseline_cls is GridIndex:
        baseline = GridIndex(collection,
                             target_pois_per_cell=rng.choice([4, 16]))
    else:
        baseline = baseline_cls(collection, fanout=rng.choice([4, 8, 16]))
    engines[baseline.name] = lambda q, b=baseline: b.search(q)
    mutable = MutableDesksIndex(collection, bands, wedges,
                                rebuild_threshold=1.0)
    engines["mutable"] = lambda q, m=mutable: m.search(q)
    return engines


@pytest.mark.parametrize("seed", range(12))
def test_differential_fuzz(seed):
    rng = random.Random(1000 + seed)
    collection = random_dataset(rng)
    engines = build_engines(rng, collection)
    for _ in range(15):
        query = random_query(rng)
        expect = [round(d, 9)
                  for d in brute_force_search(collection, query).distances()]
        for name, engine in engines.items():
            got = [round(d, 9) for d in engine(query).distances()]
            assert got == expect, (
                f"{name} diverged on seed={seed} query={query}")
