"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture()
def csv_path(tmp_path):
    path = tmp_path / "pois.csv"
    code = main(["generate", str(path), "--pois", "300", "--terms", "200",
                 "--terms-per-poi", "3", "--seed", "4"])
    assert code == 0
    return path


class TestGenerate:
    def test_creates_csv(self, csv_path, capsys):
        assert csv_path.exists()
        header = csv_path.read_text().splitlines()[0]
        assert header == "id,x,y,keywords"

    def test_preset(self, tmp_path, capsys):
        path = tmp_path / "va.csv"
        assert main(["generate", str(path), "--preset", "VA",
                     "--scale", "5000"]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out


class TestStats:
    def test_prints_table(self, csv_path, capsys):
        assert main(["stats", str(csv_path)]) == 0
        out = capsys.readouterr().out
        assert "Total number of POIs" in out
        assert "300" in out


class TestQuery:
    def test_finds_answers(self, csv_path, capsys):
        code = main(["query", str(csv_path), "-x", "5000", "-y", "5000",
                     "--alpha", "0", "--beta", "360",
                     "--keywords", "restaurant", "-k", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "POIs examined" in out

    def test_direction_constrained(self, csv_path, capsys):
        code = main(["query", str(csv_path), "-x", "5000", "-y", "5000",
                     "--alpha", "0", "--beta", "45",
                     "--keywords", "restaurant", "-k", "3",
                     "--mode", "RD"])
        assert code == 0
        out = capsys.readouterr().out
        for line in out.splitlines():
            if "bearing=" in line:
                bearing = float(line.split("bearing=")[1].split()[0])
                assert 0.0 <= bearing <= 45.0 + 1e-6

    def test_no_answers_message(self, csv_path, capsys):
        code = main(["query", str(csv_path), "-x", "5000", "-y", "5000",
                     "--keywords", "keyword-that-does-not-exist"])
        assert code == 0
        assert "no answers" in capsys.readouterr().out

    def test_mode_flag(self, csv_path, capsys):
        for mode in ("R", "D", "RD"):
            assert main(["query", str(csv_path), "-x", "100", "-y", "100",
                         "--keywords", "restaurant", "--mode", mode]) == 0


class TestBench:
    def test_bench_runs(self, csv_path, capsys):
        code = main(["bench", str(csv_path), "--queries", "5",
                     "--width", "60"])
        assert code == 0
        out = capsys.readouterr().out
        assert "DESKS" in out
        assert "MIR2-tree" in out
        assert "LkT" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestBuildAndLoad:
    def test_build_then_query_saved_index(self, csv_path, tmp_path, capsys):
        index_dir = tmp_path / "idx"
        assert main(["build", str(csv_path), str(index_dir),
                     "--bands", "3", "--wedges", "3"]) == 0
        assert (index_dir / "meta.json").exists()
        capsys.readouterr()
        code = main(["query", str(index_dir), "--index",
                     "-x", "5000", "-y", "5000",
                     "--keywords", "restaurant", "-k", "3"])
        assert code == 0
        assert "POIs examined" in capsys.readouterr().out

    def test_query_match_any(self, csv_path, capsys):
        code = main(["query", str(csv_path), "-x", "5000", "-y", "5000",
                     "--keywords", "restaurant", "nosuchword",
                     "--match-any", "-k", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "no answers" not in out


class TestErrorHandling:
    def test_missing_csv(self, capsys):
        assert main(["stats", "/nonexistent/pois.csv"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_index_dir(self, capsys):
        assert main(["query", "/nonexistent/idx", "--index",
                     "-x", "0", "-y", "0", "--keywords", "a"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_csv_contents(self, tmp_path, capsys):
        bad = tmp_path / "bad.csv"
        bad.write_text("not,a,poi,file\n1,2\n")
        assert main(["stats", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err


class TestServeBench:
    def test_sweep_and_metrics_json(self, csv_path, tmp_path, capsys):
        import json

        metrics_path = tmp_path / "metrics.json"
        code = main(["serve-bench", str(csv_path),
                     "--clients", "1", "2", "--requests", "10",
                     "--queries", "5", "--think-ms", "0",
                     "--metrics-json", str(metrics_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "req/client" in out
        snapshot = json.loads(metrics_path.read_text())
        assert snapshot["counters"]["queries_total"] > 0
        assert "histograms" in snapshot


class TestClusterBench:
    def test_sweep_verifies_and_writes_metrics(self, csv_path, tmp_path,
                                               capsys):
        import json

        metrics_path = tmp_path / "cluster.json"
        code = main(["cluster-bench", str(csv_path),
                     "--shards", "1", "4", "--queries", "15",
                     "--partitioner", "angular",
                     "--metrics-json", str(metrics_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "mismatches" in out
        # Every sweep row must report zero mismatches.
        for line in out.splitlines():
            cells = line.split()
            if cells and cells[0] in {"1", "4"}:
                assert cells[-1] == "0"
        snapshot = json.loads(metrics_path.read_text())
        assert snapshot["cluster"]["counters"]["cluster_queries_total"] == 15
        assert len(snapshot["shards"]) == 4

    def test_replicated_with_faults(self, csv_path, capsys):
        code = main(["cluster-bench", str(csv_path),
                     "--shards", "2", "--queries", "10",
                     "--replicas", "2", "--fault-rate", "1.0"])
        assert code == 0
        out = capsys.readouterr().out
        row = [ln for ln in out.splitlines()
               if ln.split() and ln.split()[0] == "2"][-1]
        cells = row.split()
        assert int(cells[3]) > 0   # retries happened
        assert cells[4] == "0"     # but nothing degraded
        assert cells[5] == "0"     # and answers stayed exact

    def test_rejects_unknown_partitioner(self, csv_path):
        with pytest.raises(SystemExit):
            main(["cluster-bench", str(csv_path),
                  "--partitioner", "voronoi"])


class TestScrub:
    def test_clean_saved_index(self, csv_path, tmp_path, capsys):
        index_dir = tmp_path / "idx"
        assert main(["build", str(csv_path), str(index_dir)]) == 0
        capsys.readouterr()
        assert main(["scrub", str(index_dir)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_corrupt_saved_index_exits_nonzero(self, csv_path, tmp_path,
                                               capsys):
        from repro.storage import CorruptionInjector

        index_dir = tmp_path / "idx"
        assert main(["build", str(csv_path), str(index_dir)]) == 0
        CorruptionInjector(seed=3).corrupt_file(str(index_dir / "pois.csv"))
        capsys.readouterr()
        assert main(["scrub", str(index_dir)]) == 1
        captured = capsys.readouterr()
        assert "corrupt" in captured.out
        assert "pois.csv" in captured.err

    def test_durable_directory_scrubbed_end_to_end(self, tmp_path, capsys):
        import random

        from repro.datasets import POI, POICollection
        from repro.durability import DurableMutableIndex

        rng = random.Random(5)
        base = POICollection([
            POI.make(i, rng.uniform(0, 50), rng.uniform(0, 50), ["cafe"])
            for i in range(40)])
        root = tmp_path / "dur"
        with DurableMutableIndex.create(base, str(root)) as index:
            index.insert(1.0, 2.0, ["food"])
        assert main(["scrub", str(root)]) == 0
        assert "wal" in capsys.readouterr().out

    def test_missing_directory(self, tmp_path, capsys):
        assert main(["scrub", str(tmp_path / "nope")]) == 2
        assert "not a directory" in capsys.readouterr().err


class TestExplain:
    def test_reconciles_and_renders(self, csv_path, capsys):
        code = main(["explain", str(csv_path), "-x", "5000", "-y", "5000",
                     "--alpha", "0", "--beta", "90",
                     "--keywords", "restaurant", "-k", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "reconciliation (OK)" in out
        assert "desks.search" in out

    def test_json_report(self, csv_path, tmp_path, capsys):
        import json

        report = tmp_path / "explain.json"
        code = main(["explain", str(csv_path), "-x", "5000", "-y", "5000",
                     "--keywords", "restaurant", "--mode", "D",
                     "--json", str(report)])
        assert code == 0
        payload = json.loads(report.read_text())
        assert payload["reconciled"] is True
        assert payload["mode"] == "D"
        assert payload["trace"]["spans"][0]["name"] == "desks.search"

    def test_saved_index_target(self, csv_path, tmp_path, capsys):
        index_dir = tmp_path / "idx"
        assert main(["build", str(csv_path), str(index_dir)]) == 0
        capsys.readouterr()
        code = main(["explain", str(index_dir), "--index",
                     "-x", "5000", "-y", "5000",
                     "--keywords", "restaurant"])
        assert code == 0
        assert "pages_read" in capsys.readouterr().out


class TestTrace:
    def test_prints_span_tree(self, csv_path, capsys):
        code = main(["trace", str(csv_path), "-x", "5000", "-y", "5000",
                     "--alpha", "0", "--beta", "90",
                     "--keywords", "restaurant", "-k", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "desks.search" in out
        assert "desks.band" in out

    def test_engine_mode_wraps_search(self, csv_path, capsys):
        code = main(["trace", str(csv_path), "--engine",
                     "-x", "5000", "-y", "5000",
                     "--keywords", "restaurant"])
        assert code == 0
        out = capsys.readouterr().out
        assert "engine.worker" in out
        assert "engine.execute" in out
        assert "desks.search" in out

    def test_json_export(self, csv_path, tmp_path, capsys):
        import json

        trace_path = tmp_path / "trace.json"
        code = main(["trace", str(csv_path), "-x", "5000", "-y", "5000",
                     "--keywords", "restaurant", "--json", str(trace_path)])
        assert code == 0
        payload = json.loads(trace_path.read_text())
        spans = payload["spans"]
        assert spans[0]["name"] == "desks.search"
        names = {child["name"] for child in spans[0]["children"]}
        assert "desks.prepare" in names


class TestChaosBench:
    def test_small_run_passes_and_writes_json(self, tmp_path, capsys):
        import json

        report = tmp_path / "chaos.json"
        code = main(["chaos-bench", "--pois", "80", "--ops", "25",
                     "--crash-trials", "4", "--corruption-trials", "3",
                     "--seed", "2", "--json", str(report)])
        assert code == 0
        out = capsys.readouterr().out
        assert "crash trials" in out
        assert "corruption trials" in out
        assert "WAL overhead" in out
        payload = json.loads(report.read_text())
        assert payload["ok"] is True
        assert payload["crash"]["identical"] == 4
        assert payload["corruption"]["silent_wrong"] == 0


class TestDqlQuery:
    STATEMENT = ("SELECT 3 NEAR (5000.0, 5000.0) HEADING [0 DEG, 360 DEG] "
                 "MATCHING 'restaurant'")

    def test_execute_statement(self, csv_path, capsys):
        assert main(["query", str(csv_path), "-e", self.STATEMENT]) == 0
        out = capsys.readouterr().out
        assert out.startswith("-- SELECT 3 NEAR (5000.0, 5000.0)")
        assert "rows: 3" in out
        assert out.count("poi=") == 3

    def test_inproc_and_socket_render_identically(self, csv_path, capsys):
        assert main(["query", str(csv_path), "-e", self.STATEMENT,
                     "--transport", "inproc"]) == 0
        inproc = capsys.readouterr().out
        assert main(["query", str(csv_path), "-e", self.STATEMENT,
                     "--transport", "socket"]) == 0
        socket_out = capsys.readouterr().out
        assert inproc == socket_out

    def test_json_envelope(self, csv_path, capsys):
        import json

        assert main(["query", str(csv_path), "--json",
                     "-e", self.STATEMENT, "-e", "SHOW METRICS"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert [d["kind"] for d in data] == ["search", "table"]
        assert len(data[0]["rows"]) == 3

    def test_syntax_error_exits_2_with_caret(self, csv_path, capsys):
        assert main(["query", str(csv_path), "-e", "SELEKT 1"]) == 2
        err = capsys.readouterr().err
        assert "SELEKT 1" in err
        assert "^" in err

    def test_metrics_json_written(self, csv_path, tmp_path, capsys):
        import json

        out_path = tmp_path / "dql_metrics.json"
        assert main(["query", str(csv_path), "-e", self.STATEMENT,
                     "--metrics-json", str(out_path)]) == 0
        snapshot = json.loads(out_path.read_text())
        assert snapshot["queries_total"] >= 1.0

    def test_explain_statement(self, csv_path, capsys):
        assert main(["query", str(csv_path),
                     "-e", "EXPLAIN " + self.STATEMENT]) == 0
        out = capsys.readouterr().out
        assert "reconciliation (OK)" in out

    def test_flag_query_with_json_uses_envelope(self, csv_path, capsys):
        import json

        assert main(["query", str(csv_path), "-x", "5000", "-y", "5000",
                     "--alpha", "0", "--beta", "360",
                     "--keywords", "restaurant", "-k", "3", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data[0]["kind"] == "search"
        assert len(data[0]["rows"]) == 3

    def test_missing_flags_without_statement_exit_2(self, csv_path,
                                                    capsys):
        assert main(["query", str(csv_path)]) == 2
        assert "-e/--repl" in capsys.readouterr().err


class TestDqlRepl:
    SCRIPT = ("-- a comment, skipped\n"
              "\n"
              "SELECT 2 NEAR (5000.0, 5000.0) MATCHING 'restaurant'\n"
              "SELEKT nope\n"
              "SHOW SHARDS\n"
              "exit\n"
              "SELECT 1 NEAR (0, 0) MATCHING 'never reached'\n")

    def run_repl(self, csv_path, monkeypatch, capsys, *extra):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(self.SCRIPT))
        assert main(["query", str(csv_path), "--repl", *extra]) == 0
        return capsys.readouterr().out

    def test_repl_script_is_deterministic_golden(self, csv_path,
                                                 monkeypatch, capsys):
        first = self.run_repl(csv_path, monkeypatch, capsys)
        second = self.run_repl(csv_path, monkeypatch, capsys)
        assert first == second  # history-free, timing-free output
        lines = first.splitlines()
        # No prompt when stdin is not a tty; statements echo canonically.
        assert lines[0] == \
            "-- SELECT 2 NEAR (5000.0, 5000.0) MATCHING 'restaurant'"
        assert lines[1] == "rows: 2"
        # The parse error renders inline (stdout) and the REPL continues.
        assert "SELEKT nope" in first
        assert "^" in first
        assert "shards.total = 1" in first
        # EXIT stops the script before the last statement.
        assert "never reached" not in first

    def test_repl_over_socket_matches_inproc(self, csv_path, monkeypatch,
                                             capsys):
        inproc = self.run_repl(csv_path, monkeypatch, capsys)
        socket_out = self.run_repl(csv_path, monkeypatch, capsys,
                                   "--transport", "socket")
        assert inproc == socket_out
