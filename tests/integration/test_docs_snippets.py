"""Documentation freshness: the README/tutorial snippets must run.

Docs rot silently; these tests execute the Python code blocks from
README.md and docs/TUTORIAL.md in one shared namespace per document, so an
API rename that breaks a published snippet breaks the build.
"""

import re
from pathlib import Path


REPO_ROOT = Path(__file__).resolve().parents[2]

_CODE_BLOCK = re.compile(r"```python\n(.*?)```", re.DOTALL)


def python_blocks(path: Path):
    return _CODE_BLOCK.findall(path.read_text(encoding="utf-8"))


def run_blocks(blocks, namespace, speedup=True):
    for block in blocks:
        code = block
        if speedup:
            # Keep doc snippets honest but fast: shrink preset scales.
            code = code.replace('scale=500', 'scale=5000')
            code = code.replace('scale=1000', 'scale=5000')
        exec(compile(code, "<doc-snippet>", "exec"), namespace)


class TestReadmeSnippets:
    def test_all_python_blocks_execute(self):
        blocks = python_blocks(REPO_ROOT / "README.md")
        assert blocks, "README lost its quickstart code block?"
        run_blocks(blocks, {})


class TestTutorialSnippets:
    def test_all_python_blocks_execute(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)  # snippets write my_index_dir etc.
        blocks = python_blocks(REPO_ROOT / "docs" / "TUTORIAL.md")
        assert len(blocks) >= 8, "tutorial shrank unexpectedly"
        namespace = {}
        run_blocks(blocks, namespace)
        # The walkthrough must actually have produced things.
        assert "searcher" in namespace
        assert "live" in namespace

    def test_tutorial_mentions_every_public_entry_point(self):
        text = (REPO_ROOT / "docs" / "TUTORIAL.md").read_text()
        for name in ("DesksIndex", "DesksSearcher", "DirectionalQuery",
                     "IncrementalSearcher", "MutableDesksIndex",
                     "PruningMode", "save_index", "load_index",
                     "QueryTrace", "MatchMode"):
            assert name in text, f"tutorial no longer shows {name}"
