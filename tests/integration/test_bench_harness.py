"""Tests for the benchmark harness (workloads, runner, reporting)."""

import math
import os

import pytest

from repro.bench import (
    baseline_search_fn,
    brute_force_fn,
    check_agreement,
    desks_search_fn,
    format_series_table,
    generate_queries,
    paper_query_mix,
    run_workload,
    speedup,
    write_result,
)
from repro.baselines import FilterThenVerify
from repro.core import DesksIndex, DesksSearcher, PruningMode
from repro.storage import SearchStats

from ..core.conftest import make_collection


@pytest.fixture(scope="module")
def collection():
    return make_collection(250, seed=71)


class TestGenerateQueries:
    def test_count_and_shape(self, collection):
        queries = generate_queries(collection, 20, num_keywords=2,
                                   direction_width=math.pi / 3, k=7, seed=1)
        assert len(queries) == 20
        for q in queries:
            assert len(q.keywords) == 2
            assert q.k == 7
            assert q.interval.width == pytest.approx(math.pi / 3)
            assert collection.mbr.contains_point(q.location)

    def test_keywords_satisfiable(self, collection):
        """Every query's conjunction must exist in at least one POI."""
        queries = generate_queries(collection, 30, 2, math.pi, seed=2)
        for q in queries:
            assert any(q.keywords <= p.keywords for p in collection)

    def test_fixed_alpha(self, collection):
        queries = generate_queries(collection, 5, 1, 1.0, seed=3, alpha=0.0)
        assert all(q.interval.lower == 0.0 for q in queries)

    def test_deterministic(self, collection):
        a = generate_queries(collection, 10, 1, 1.0, seed=9)
        b = generate_queries(collection, 10, 1, 1.0, seed=9)
        assert [q.location for q in a] == [q.location for q in b]
        assert [q.keywords for q in a] == [q.keywords for q in b]

    def test_validation(self, collection):
        with pytest.raises(ValueError):
            generate_queries(collection, 0, 1, 1.0)
        with pytest.raises(ValueError):
            generate_queries(collection, 5, 0, 1.0)
        with pytest.raises(ValueError):
            generate_queries(collection, 5, 1, 10.0)

    def test_paper_mix(self, collection):
        queries = paper_query_mix(collection, per_set=4,
                                  direction_width=1.0,
                                  keyword_counts=(1, 2))
        assert len(queries) == 8
        assert sorted({len(q.keywords) for q in queries}) == [1, 2]


class TestRunWorkload:
    def test_measurement_fields(self, collection):
        index = DesksIndex(collection, num_bands=3, num_wedges=4)
        searcher = DesksSearcher(index)
        queries = generate_queries(collection, 10, 1, math.pi, seed=4)
        m = run_workload("desks", desks_search_fn(searcher, PruningMode.RD),
                         queries)
        assert m.method == "desks"
        assert m.num_queries == 10
        assert m.total_seconds > 0
        assert m.avg_ms > 0
        assert m.stats.pois_examined >= 0
        assert m.avg_pois_examined == m.stats.pois_examined / 10

    def test_methods_agree(self, collection):
        """All adapters must return identical answer distances."""
        index = DesksIndex(collection, num_bands=3, num_wedges=4)
        searcher = DesksSearcher(index)
        ftv = FilterThenVerify(collection, fanout=8)
        queries = generate_queries(collection, 15, 2, 2.0, seed=5)
        fns = [desks_search_fn(searcher, PruningMode.RD),
               baseline_search_fn(ftv),
               brute_force_fn(collection)]
        for q in queries:
            distances = [fn(q, SearchStats()).distances() for fn in fns]
            assert check_agreement(
                [round(d, 9) for d in distances[0]],
                [round(d, 9) for d in distances[1]])
            assert check_agreement(
                [round(d, 9) for d in distances[0]],
                [round(d, 9) for d in distances[2]])


class TestReporting:
    def test_format_series_table(self):
        table = format_series_table(
            "Fig X", "k", [1, 5], {"DESKS": [1.0, 2.0],
                                   "MIR2-tree": [10.0, 20.0]})
        assert "Fig X" in table
        assert "DESKS" in table
        assert "20.000" in table

    def test_format_rejects_ragged(self):
        with pytest.raises(ValueError):
            format_series_table("t", "x", [1, 2], {"a": [1.0]})

    def test_write_result(self, tmp_path):
        path = write_result("test_exp", "hello", results_dir=str(tmp_path))
        assert os.path.exists(path)
        assert open(path).read() == "hello\n"

    def test_speedup(self):
        assert speedup(10.0, 2.0) == 5.0
        assert speedup(1.0, 0.0) == math.inf


class TestAsciiChart:
    def test_basic_render(self):
        from repro.bench import ascii_chart
        out = ascii_chart("t", [1, 2], {"a": [1.0, 2.0], "b": [3.0, 4.0]})
        assert "t" in out
        assert "*=a" in out and "o=b" in out
        assert "+--" in out

    def test_log_scale_marker(self):
        from repro.bench import ascii_chart
        out = ascii_chart("t", [1], {"a": [10.0]}, log_scale=True)
        assert "(log scale)" in out

    def test_collision_glyph(self):
        from repro.bench import ascii_chart
        out = ascii_chart("t", [1], {"a": [5.0], "b": [5.0]})
        assert "=" in out.splitlines()[1] or "=" in out

    def test_validation(self):
        from repro.bench import ascii_chart
        with pytest.raises(ValueError):
            ascii_chart("t", [1], {"a": [1.0, 2.0]})
        with pytest.raises(ValueError):
            ascii_chart("t", [], {})
        with pytest.raises(ValueError):
            ascii_chart("t", [1], {"a": [1.0]}, height=1)

    def test_flat_series_no_crash(self):
        from repro.bench import ascii_chart
        out = ascii_chart("t", [1, 2, 3], {"a": [2.0, 2.0, 2.0]})
        assert "*" in out


class TestRunMeasurementIO:
    def test_avg_io_counts_disk_reads(self, collection):
        from repro.core import DesksIndex, DesksSearcher, PruningMode

        index = DesksIndex(collection, num_bands=3, num_wedges=4,
                           disk_based=True)
        searcher = DesksSearcher(index)
        queries = generate_queries(collection, 6, 1, math.pi, seed=14)

        def fn(query, stats):
            index.drop_caches()
            before = index.io_stats.snapshot()
            result = searcher.search(query, PruningMode.RD, stats)
            if stats is not None:
                delta = before.delta(index.io_stats.snapshot())
                stats.io.physical_reads += delta.physical_reads
                stats.io.cache_hits += delta.cache_hits
            return result

        m = run_workload("desks-disk", fn, queries)
        assert m.avg_io > 0

    def test_avg_io_zero_for_memory(self, collection):
        from repro.core import DesksIndex, DesksSearcher, PruningMode

        searcher = DesksSearcher(DesksIndex(collection, num_bands=3,
                                            num_wedges=4))
        queries = generate_queries(collection, 4, 1, math.pi, seed=15)
        m = run_workload(
            "desks-mem",
            lambda q, s: searcher.search(q, PruningMode.RD, s), queries)
        assert m.avg_io == 0.0
