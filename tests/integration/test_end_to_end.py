"""End-to-end integration: dataset -> CSV -> every index -> agreement."""

import math
import subprocess
import sys
from pathlib import Path

import pytest

from repro.baselines import FilterThenVerify, IRTree, MIR2Tree
from repro.bench import paper_query_mix
from repro.core import (
    DesksIndex,
    DesksSearcher,
    MutableDesksIndex,
    PruningMode,
    brute_force_search,
)
from repro.datasets import SyntheticConfig, generate, load_csv, save_csv
from repro.storage import SearchStats

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def pipeline(tmp_path_factory):
    """Generate, persist, reload, and index one dataset every way."""
    collection = generate(SyntheticConfig(
        name="e2e", num_pois=600, num_unique_terms=400,
        avg_terms_per_poi=4.0, seed=33))
    path = tmp_path_factory.mktemp("e2e") / "pois.csv"
    save_csv(collection, path)
    reloaded = load_csv(path)
    return reloaded


class TestFullPipeline:
    def test_all_methods_agree_on_paper_mix(self, pipeline):
        collection = pipeline
        desks = DesksSearcher(DesksIndex(collection, num_bands=4,
                                         num_wedges=4))
        desks_disk = DesksSearcher(DesksIndex(
            collection, num_bands=4, num_wedges=4, disk_based=True))
        mutable = MutableDesksIndex(collection, num_bands=4, num_wedges=4)
        baselines = [MIR2Tree(collection, fanout=10),
                     IRTree(collection, fanout=10),
                     FilterThenVerify(collection, fanout=10)]
        queries = paper_query_mix(collection, per_set=4,
                                  direction_width=math.pi / 2, k=10,
                                  seed=9, keyword_counts=(1, 2, 3))
        for query in queries:
            reference = brute_force_search(collection, query).distances()
            candidates = {
                "desks-RD": desks.search(query, PruningMode.RD).distances(),
                "desks-R": desks.search(query, PruningMode.R).distances(),
                "desks-D": desks.search(query, PruningMode.D).distances(),
                "desks-disk": desks_disk.search(query).distances(),
                "mutable": mutable.search(query).distances(),
            }
            for index in baselines:
                candidates[index.name] = index.search(query).distances()
            for method, distances in candidates.items():
                assert [round(d, 9) for d in distances] == \
                    [round(d, 9) for d in reference], method

    def test_stats_survive_round_trip(self, pipeline):
        assert len(pipeline) == 600
        assert pipeline.num_unique_terms > 0
        assert pipeline.avg_terms_per_poi == pytest.approx(4.0, rel=0.2)

    def test_effort_counters_consistent(self, pipeline):
        """candidates_verified never exceeds pois_examined for DESKS."""
        searcher = DesksSearcher(DesksIndex(pipeline, num_bands=4,
                                            num_wedges=4))
        queries = paper_query_mix(pipeline, per_set=3,
                                  direction_width=math.pi / 3, k=5,
                                  seed=10, keyword_counts=(1, 2))
        for query in queries:
            stats = SearchStats()
            searcher.search(query, stats=stats)
            assert stats.candidates_verified <= stats.pois_examined
            assert stats.subregions_examined >= 0


@pytest.mark.parametrize("script", [
    "quickstart.py",
    "highway_gas_stations.py",
    "walking_atm.py",
    "compass_rotation.py",
    "live_city_updates.py",
])
def test_example_scripts_run(script):
    """Every shipped example must execute cleanly end to end."""
    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "examples" / script)],
        capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()
