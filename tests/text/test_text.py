"""Tests for the text substrate."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text import (
    InvertedIndex,
    SignatureScheme,
    Vocabulary,
    intersect_sorted,
    join_keywords,
    keyword_set,
    tokenize,
)


class TestTokenizer:
    def test_lowercases_and_splits(self):
        assert tokenize("Chinese Food") == ["chinese", "food"]

    def test_strips_punctuation(self):
        assert tokenize("Joe's Diner, 24/7!") == ["joe", "s", "diner", "24", "7"]

    def test_drops_stop_words(self):
        assert tokenize("house of pancakes") == ["house", "pancakes"]

    def test_keeps_duplicates_in_order(self):
        assert tokenize("gas gas station") == ["gas", "gas", "station"]

    def test_keyword_set_dedupes(self):
        assert keyword_set("gas gas station") == frozenset({"gas", "station"})

    def test_empty(self):
        assert tokenize("") == []
        assert keyword_set("...") == frozenset()

    def test_join_keywords_sorted(self):
        assert join_keywords({"b", "a"}) == "a b"

    @given(st.text(max_size=100))
    def test_tokens_are_normalised(self, text):
        for token in tokenize(text):
            assert token == token.lower()
            assert token.isalnum()


class TestVocabulary:
    def test_add_is_idempotent(self):
        v = Vocabulary()
        first = v.add("cafe")
        assert v.add("cafe") == first
        assert len(v) == 1

    def test_round_trip(self):
        v = Vocabulary()
        tid = v.add("atm")
        assert v.term_of(tid) == "atm"
        assert v.id_of("atm") == tid
        assert "atm" in v

    def test_unknown_term(self):
        v = Vocabulary()
        assert v.id_of("nope") is None
        assert "nope" not in v

    def test_doc_frequency(self):
        v = Vocabulary()
        v.add_document(["atm", "bank"])
        v.add_document(["atm"])
        v.add_document(["atm", "atm"])  # duplicates within a doc count once
        assert v.doc_frequency(v.id_of("atm")) == 3
        assert v.doc_frequency(v.id_of("bank")) == 1

    def test_ids_of_all_known(self):
        v = Vocabulary()
        v.add_document(["a", "b"])
        ids = v.ids_of(["a", "b"])
        assert ids == frozenset({v.id_of("a"), v.id_of("b")})

    def test_ids_of_unknown_returns_none(self):
        v = Vocabulary()
        v.add_document(["a"])
        assert v.ids_of(["a", "zzz"]) is None

    def test_most_frequent(self):
        v = Vocabulary()
        for _ in range(5):
            v.add_document(["pizza"])
        for _ in range(2):
            v.add_document(["sushi"])
        v.add_document(["tapas"])
        top = v.most_frequent(2)
        assert v.term_of(top[0]) == "pizza"
        assert v.term_of(top[1]) == "sushi"

    @given(st.lists(st.text(min_size=1, max_size=8), max_size=50))
    def test_ids_unique_and_dense(self, terms):
        v = Vocabulary()
        ids = [v.add(t) for t in terms]
        assert sorted(set(ids)) == list(range(len(v)))


class TestIntersectSorted:
    def test_empty_input(self):
        assert intersect_sorted([]) == []

    def test_single_list(self):
        assert intersect_sorted([[1, 3, 5]]) == [1, 3, 5]

    def test_basic(self):
        assert intersect_sorted([[1, 2, 3, 9], [2, 3, 4], [0, 2, 3]]) == [2, 3]

    def test_disjoint(self):
        assert intersect_sorted([[1, 2], [3, 4]]) == []

    def test_one_empty(self):
        assert intersect_sorted([[1, 2], []]) == []

    @given(st.lists(st.sets(st.integers(0, 50)), min_size=1, max_size=5))
    def test_matches_set_intersection(self, sets):
        lists = [sorted(s) for s in sets]
        expect = sorted(set.intersection(*map(set, sets))) if sets else []
        assert intersect_sorted(lists) == expect


class TestInvertedIndex:
    def build(self, docs):
        idx = InvertedIndex()
        for doc_id, terms in docs.items():
            idx.add_document(doc_id, terms)
        idx.freeze()
        return idx

    def test_postings_sorted_unique(self):
        idx = InvertedIndex()
        idx.add(0, 5)
        idx.add(0, 1)
        idx.add(0, 5)
        idx.freeze()
        assert idx.postings(0) == [1, 5]

    def test_query_before_freeze_rejected(self):
        idx = InvertedIndex()
        with pytest.raises(RuntimeError):
            idx.postings(0)

    def test_add_after_freeze_rejected(self):
        idx = InvertedIndex()
        idx.freeze()
        with pytest.raises(RuntimeError):
            idx.add(0, 0)

    def test_conjunctive_match(self):
        idx = self.build({1: [10, 20], 2: [10], 3: [10, 20, 30]})
        assert idx.matching_documents([10, 20]) == [1, 3]

    def test_missing_term_gives_none(self):
        idx = self.build({1: [10]})
        assert idx.matching_documents([10, 99]) is None
        assert idx.matching_documents([]) is None

    def test_counts(self):
        idx = self.build({1: [10, 20], 2: [10]})
        assert idx.num_terms == 2
        assert idx.num_postings == 3
        assert idx.term_ids() == [10, 20]

    @given(st.dictionaries(st.integers(0, 20),
                           st.sets(st.integers(0, 10), min_size=1),
                           max_size=20),
           st.sets(st.integers(0, 10), min_size=1, max_size=3))
    def test_matches_brute_force(self, docs, query):
        idx = self.build(docs)
        got = idx.matching_documents(query)
        expect = sorted(d for d, terms in docs.items()
                        if query <= terms)
        if got is None:
            assert expect == []
        else:
            assert got == expect


class TestSignatures:
    def test_subset_never_false_negative(self):
        scheme = SignatureScheme(bits=128, hashes=3)
        node = scheme.signature_of([1, 2, 3])
        query = scheme.signature_of([2, 3])
        assert scheme.might_contain(node, query)

    def test_definite_miss(self):
        scheme = SignatureScheme(bits=4096, hashes=3)
        node = scheme.signature_of([1])
        query = scheme.signature_of([999])
        # With 4096 bits a collision of all 3 hash bits is vanishingly
        # unlikely for this fixed pair; the test pins the expected behaviour.
        assert not scheme.might_contain(node, query)

    def test_term_signature_deterministic(self):
        scheme = SignatureScheme()
        assert scheme.term_signature(42) == scheme.term_signature(42)

    def test_bits_bounded(self):
        scheme = SignatureScheme(bits=64, hashes=4)
        sig = scheme.signature_of(range(100))
        assert sig < (1 << 64)

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            SignatureScheme(bits=0)
        with pytest.raises(ValueError):
            SignatureScheme(hashes=0)

    def test_bytes_per_signature(self):
        assert SignatureScheme(bits=512).bytes_per_signature == 64
        assert SignatureScheme(bits=10).bytes_per_signature == 2

    @given(st.sets(st.integers(0, 10000), max_size=20),
           st.sets(st.integers(0, 10000), max_size=5))
    def test_no_false_negatives_property(self, node_terms, query_terms):
        scheme = SignatureScheme(bits=256, hashes=3)
        node = scheme.signature_of(node_terms)
        query = scheme.signature_of(query_terms)
        if query_terms <= node_terms:
            assert scheme.might_contain(node, query)
