"""Tests for DurableMutableIndex: WAL'd mutations, recovery, checkpoints."""

import json
import math
import os
import random

import pytest

from repro.core import DirectionalQuery
from repro.core.persistence import PersistenceError
from repro.datasets import POI, POICollection
from repro.durability import (
    DurableMutableIndex,
    is_durable_dir,
    scrub_durable,
)
from repro.storage import CorruptionInjector, SimulatedCrash

KEYWORDS = ["cafe", "food", "gas", "atm", "pizza", "bank"]


def make_collection(n=120, seed=9):
    rng = random.Random(seed)
    return POICollection([
        POI.make(i, rng.uniform(0, 100), rng.uniform(0, 100),
                 rng.sample(KEYWORDS, rng.randint(1, 3)))
        for i in range(n)
    ])


def probe(index, seed=0, count=8, k=6):
    rng = random.Random(seed)
    answers = []
    for _ in range(count):
        alpha = rng.uniform(0, 2 * math.pi)
        query = DirectionalQuery.make(
            rng.uniform(0, 100), rng.uniform(0, 100),
            alpha, alpha + rng.uniform(0.3, 5.5),
            rng.sample(KEYWORDS, rng.randint(1, 2)), k)
        result = index.search(query)
        answers.append([(e.poi_id, e.distance) for e in result.entries])
    return answers


@pytest.fixture()
def base():
    return make_collection()


class TestLifecycle:
    def test_constructor_refused(self, base):
        with pytest.raises(TypeError, match="create"):
            DurableMutableIndex(base)

    def test_create_recover_empty(self, base, tmp_path):
        root = str(tmp_path / "dur")
        with DurableMutableIndex.create(base, root) as index:
            before = probe(index)
        with DurableMutableIndex.recover(root) as recovered:
            assert recovered.op_seq == 0
            assert probe(recovered) == before

    def test_create_refuses_existing_directory(self, base, tmp_path):
        root = str(tmp_path / "dur")
        DurableMutableIndex.create(base, root).close()
        with pytest.raises(PersistenceError, match="recover"):
            DurableMutableIndex.create(base, root)

    def test_is_durable_dir(self, base, tmp_path):
        root = str(tmp_path / "dur")
        assert not is_durable_dir(root)
        DurableMutableIndex.create(base, root).close()
        assert is_durable_dir(root)
        assert not is_durable_dir(str(tmp_path))


class TestRecovery:
    def test_mutations_survive_clean_close(self, base, tmp_path):
        root = str(tmp_path / "dur")
        with DurableMutableIndex.create(base, root) as index:
            pid = index.insert(12.0, 34.0, ["cafe", "pizza"])
            index.delete(3)
            index.insert(55.0, 5.0, ["bank"])
            before = probe(index)
            op_seq = index.op_seq
        with DurableMutableIndex.recover(root) as recovered:
            assert recovered.op_seq == op_seq
            assert probe(recovered) == before
            assert recovered.delete(pid)  # replayed ids line up

    def test_non_ascii_and_empty_keyword_sets_replay(self, base, tmp_path):
        root = str(tmp_path / "dur")
        with DurableMutableIndex.create(base, root) as index:
            index.insert(10.0, 10.0, ["café", "北京烤鸭"])
            index.insert(20.0, 20.0, [])
            index.insert(30.0, 30.0, ["пекарня"])
            before = probe(index)
        with DurableMutableIndex.recover(root) as recovered:
            assert probe(recovered) == before
            query = DirectionalQuery.make(0, 0, 0, 2 * math.pi,
                                          ["café"], 3)
            entries = recovered.search(query).entries
            assert len(entries) == 1

    def test_recovery_replays_only_unabsorbed_suffix(self, base, tmp_path):
        root = str(tmp_path / "dur")
        with DurableMutableIndex.create(base, root) as index:
            for i in range(10):
                index.insert(float(i), float(i), ["gas"])
            index.checkpoint()
            assert index.snapshot_op_seq == 10
            index.insert(99.0, 99.0, ["atm"])
            before = probe(index)
        with DurableMutableIndex.recover(root) as recovered:
            assert recovered.snapshot_op_seq == 10
            assert recovered.op_seq == 11
            assert probe(recovered) == before

    def test_crash_between_snapshot_and_truncation(self, base, tmp_path):
        """The double-apply window: snapshot swapped in, WAL still full."""
        root = str(tmp_path / "dur")

        def crash_at_truncation(stage):
            if stage == "checkpoint.before":
                raise SimulatedCrash(stage)

        index = DurableMutableIndex.create(base, root,
                                           failpoint=crash_at_truncation)
        for i in range(6):
            index.insert(float(i), 1.0, ["cafe"])
        with pytest.raises(SimulatedCrash):
            index.checkpoint()
        before = probe(index)
        index.abandon()
        with DurableMutableIndex.recover(root) as recovered:
            # Snapshot absorbed all 6 ops; the un-truncated WAL records
            # must be skipped, not applied twice.
            assert recovered.snapshot_op_seq == 6
            assert recovered.op_seq == 6
            assert probe(recovered) == before

    def test_torn_wal_tail_loses_only_final_record(self, base, tmp_path):
        root = str(tmp_path / "dur")
        crash = {"armed": False}

        def tear_last(stage):
            if crash["armed"] and stage == "append.torn":
                raise SimulatedCrash(stage)

        index = DurableMutableIndex.create(base, root, sync="always",
                                           failpoint=tear_last)
        index.insert(1.0, 1.0, ["cafe"])
        index.insert(2.0, 2.0, ["food"])
        crash["armed"] = True
        with pytest.raises(SimulatedCrash):
            index.insert(3.0, 3.0, ["gas"])
        index.abandon()
        with DurableMutableIndex.recover(root) as recovered:
            assert recovered.op_seq == 2  # torn third record dropped

    def test_recover_missing_directory(self, tmp_path):
        with pytest.raises(PersistenceError, match="not a durable"):
            DurableMutableIndex.recover(str(tmp_path / "nothing"))

    def test_recover_rejects_bad_marker(self, base, tmp_path):
        root = tmp_path / "dur"
        DurableMutableIndex.create(base, str(root)).close()
        marker = root / "snapshot" / "durable.json"
        marker.write_text(json.dumps({"version": 1, "op_seq": -4}))
        with pytest.raises(PersistenceError, match="op_seq"):
            DurableMutableIndex.recover(str(root))


class TestCheckpointGuards:
    def test_bare_compact_refused(self, base, tmp_path):
        with DurableMutableIndex.create(base,
                                        str(tmp_path / "dur")) as index:
            with pytest.raises(PersistenceError, match="checkpoint"):
                index.compact()

    def test_failed_checkpoint_poisons_instance(self, base, tmp_path,
                                                monkeypatch):
        index = DurableMutableIndex.create(base, str(tmp_path / "dur"))
        monkeypatch.setattr(
            index, "_save_snapshot",
            lambda: (_ for _ in ()).throw(RuntimeError("disk full")))
        index.insert(1.0, 1.0, ["cafe"])
        with pytest.raises(RuntimeError, match="disk full"):
            index.checkpoint()
        with pytest.raises(PersistenceError, match="poisoned"):
            index.insert(2.0, 2.0, ["food"])
        with pytest.raises(PersistenceError, match="poisoned"):
            index.delete(0)
        index.abandon()
        # Recovery from disk is the documented remedy.
        with DurableMutableIndex.recover(str(tmp_path / "dur")) as fresh:
            assert fresh.op_seq == 1

    def test_checkpoint_truncates_wal(self, base, tmp_path):
        with DurableMutableIndex.create(base,
                                        str(tmp_path / "dur")) as index:
            for i in range(5):
                index.insert(float(i), 2.0, ["bank"])
            index.checkpoint()
            report = index.scrub()
            assert report.clean
            assert report.wal.records == 0


class TestScrub:
    def test_offline_scrub_clean(self, base, tmp_path):
        root = str(tmp_path / "dur")
        with DurableMutableIndex.create(base, root) as index:
            index.insert(5.0, 5.0, ["cafe"])
        report = scrub_durable(root)
        assert report.clean
        assert "clean" in report.summary()

    def test_offline_scrub_flags_snapshot_corruption(self, base, tmp_path):
        root = tmp_path / "dur"
        DurableMutableIndex.create(base, str(root)).close()
        CorruptionInjector(seed=2).corrupt_file(
            str(root / "snapshot" / "pois.csv"))
        report = scrub_durable(str(root))
        assert not report.clean
        assert any("pois.csv" in path for path, _ in report.snapshot.corrupt)

    def test_offline_scrub_refuses_non_durable_dir(self, tmp_path):
        with pytest.raises(PersistenceError):
            scrub_durable(str(tmp_path))


class TestOneShotIterables:
    def test_generator_keywords_hit_wal_and_index_alike(self, base,
                                                        tmp_path):
        """A one-shot iterable must not be drained by the WAL encoding,
        leaving the live index with an empty keyword set."""
        root = str(tmp_path / "dur")
        with DurableMutableIndex.create(base, root) as index:
            pid = index.insert(40.0, 40.0,
                               (kw for kw in ["café", "pizza"]))
            live = {p.poi_id: p for p in index.live_pois()}
            assert live[pid].keywords == frozenset(["café", "pizza"])
            before = probe(index)
        with DurableMutableIndex.recover(root) as recovered:
            live = {p.poi_id: p for p in recovered.live_pois()}
            assert live[pid].keywords == frozenset(["café", "pizza"])
            assert probe(recovered) == before


class TestSnapshotSwapCrashes:
    def crash_at(self, stage_name):
        def failpoint(stage):
            if stage == stage_name:
                raise SimulatedCrash(stage)
        return failpoint

    @pytest.mark.parametrize("stage", ["swap.staged", "swap.displaced",
                                       "swap.complete"])
    def test_checkpoint_crash_inside_swap_recovers(self, base, tmp_path,
                                                   stage):
        """The high-severity window: between the swap's two renames the
        snapshot directory does not exist at all."""
        root = str(tmp_path / "dur")
        index = DurableMutableIndex.create(base, root)
        for i in range(6):
            index.insert(float(i), 3.0, ["cafe"])
        before = probe(index)
        index._failpoint = self.crash_at(stage)
        index._wal._failpoint = index._failpoint
        with pytest.raises(SimulatedCrash):
            index.checkpoint()
        index.abandon()
        with DurableMutableIndex.recover(root) as recovered:
            assert recovered.op_seq == 6
            assert probe(recovered) == before

    def test_create_crash_before_meta_restarts_cleanly(self, base,
                                                       tmp_path):
        """durable.json lands last, so a crash during create() leaves a
        directory create() itself restarts — never a wedged one."""
        root = str(tmp_path / "dur")
        with pytest.raises(SimulatedCrash):
            DurableMutableIndex.create(
                base, root, failpoint=self.crash_at("swap.staged"))
        assert not is_durable_dir(root)
        with pytest.raises(PersistenceError, match="not a durable"):
            DurableMutableIndex.recover(root)
        with DurableMutableIndex.create(base, root) as index:  # restart
            assert index.op_seq == 0
        with DurableMutableIndex.recover(root) as recovered:
            assert recovered.op_seq == 0


class TestScrubIsReadOnly:
    def test_offline_scrub_reports_torn_tail_without_repairing(
            self, base, tmp_path):
        root = tmp_path / "dur"
        with DurableMutableIndex.create(base, str(root)) as index:
            index.insert(1.0, 1.0, ["cafe"])
            index.insert(2.0, 2.0, ["food"])
        wal_dir = root / "wal"
        segment = sorted(wal_dir.glob("segment-*.wal"))[-1]
        torn = segment.read_bytes()[:-3]  # tear the final record
        segment.write_bytes(torn)
        listing_before = sorted(p.name for p in wal_dir.iterdir())

        report = scrub_durable(str(root))
        assert not report.clean
        assert report.wal.torn_at is not None
        assert report.wal.records == 1
        assert "torn" in report.summary()
        # Strictly read-only: same files, same bytes, no new segment.
        assert sorted(p.name for p in wal_dir.iterdir()) == listing_before
        assert segment.read_bytes() == torn

        # recover() is what repairs: it truncates the tail and keeps the
        # intact prefix.
        with DurableMutableIndex.recover(str(root)) as recovered:
            assert recovered.op_seq == 1
        assert scrub_durable(str(root)).clean
