"""A scaled-down run of the chaos harness (full scale: benchmarks/)."""

import random

import pytest

from repro.datasets import POI, POICollection
from repro.durability import (
    CHAOS_TERMS,
    build_script,
    measure_wal_overhead,
    run_corruption_trials,
    run_crash_trials,
)

SEED = 77


@pytest.fixture(scope="module")
def base():
    rng = random.Random(SEED)
    return POICollection([
        POI.make(i, rng.uniform(0, 100), rng.uniform(0, 100),
                 rng.sample(CHAOS_TERMS, rng.randint(1, 3)))
        for i in range(120)
    ])


@pytest.fixture(scope="module")
def script(base):
    return build_script(base, 50, seed=SEED)


def test_script_is_deterministic(base, script):
    assert script == build_script(base, 50, seed=SEED)
    assert script != build_script(base, 50, seed=SEED + 1)


def test_crash_trials_recover_identically(base, script, tmp_path):
    report = run_crash_trials(base, script, 25, seed=SEED,
                              workdir=str(tmp_path))
    assert report.total == 25
    assert report.all_identical, [f.mismatches for f in report.failures()]
    # The countdown draw must actually spread crashes over stages.
    stages = {t.crashed_at for t in report.trials if t.crashed_at}
    assert len(stages) >= 2
    assert "25/25" in report.summary()


def test_corruption_trials_always_surface(base, tmp_path):
    report = run_corruption_trials(base, 8, seed=SEED,
                                   workdir=str(tmp_path))
    assert report.total == 8
    assert report.silent_wrong == 0
    assert report.undetected == 0
    assert report.all_surfaced
    kinds = {t.kind for t in report.trials}
    assert kinds  # every trial records what was injected


def test_overhead_measurement_reports_shape(base, script, tmp_path):
    overhead = measure_wal_overhead(base, script, str(tmp_path),
                                    sync="checkpoint", repeats=1)
    assert overhead["mutations"] == sum(
        1 for entry in script if entry[0] != "checkpoint")
    for key in ("plain_seconds", "durable_seconds", "overhead_fraction",
                "checkpoint_seconds_avg", "sync", "sync_interval"):
        assert key in overhead
