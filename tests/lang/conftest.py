"""Shared fixtures for the DQL language tests.

One deterministic collection/index pair, reused module-wide: the parser
tests don't need it, but the executor equivalence suite runs the same
statements against a direct searcher, an in-process executor, and a
socket server over this exact index.
"""

import random

import pytest

from repro.core import DesksIndex, DesksSearcher
from repro.datasets import POI, POICollection

KEYWORD_POOL = ["cafe", "food", "gas", "atm", "pizza", "bank", "hotel",
                "park", "sushi", "museum"]


def make_collection(n=400, seed=11, extent=1000.0):
    rng = random.Random(seed)
    return POICollection([
        POI.make(i, rng.uniform(0, extent), rng.uniform(0, extent),
                 rng.sample(KEYWORD_POOL, rng.randint(1, 3)))
        for i in range(n)
    ])


@pytest.fixture(scope="module")
def collection():
    return make_collection()


@pytest.fixture(scope="module")
def index(collection):
    return DesksIndex(collection, num_bands=4, num_wedges=6)


@pytest.fixture(scope="module")
def searcher(index):
    return DesksSearcher(index)
