"""Parser tests: grammar, caret positions, round-trip property, fuzz.

The robustness contract under test is the one :mod:`repro.lang.errors`
states: *every* failure — lexical garbage, a grammar violation, or a
statement that parses but describes an invalid plan — raises a
positioned :class:`DqlSyntaxError`, and nothing else ever escapes
:func:`repro.lang.parse`.
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MatchMode, PruningMode
from repro.lang import DqlSyntaxError, ExplainPlan, SelectPlan, ShowPlan, \
    parse

TWO_PI = 2.0 * math.pi


def fails_at(statement, position=None, fragment=None):
    with pytest.raises(DqlSyntaxError) as info:
        parse(statement)
    if position is not None:
        assert info.value.position == position, info.value.render()
    if fragment is not None:
        assert fragment in info.value.reason, info.value.render()
    return info.value


class TestGrammar:
    def test_minimal_select(self):
        plan = parse("SELECT 5 NEAR (1.5, -2.5) MATCHING 'cafe'")
        assert plan == SelectPlan(k=5, x=1.5, y=-2.5, keywords=("cafe",))

    def test_case_insensitive_keywords(self):
        assert parse("select 1 near (0, 0) matching 'cafe'") == \
            parse("SELECT 1 NEAR (0, 0) MATCHING 'cafe'")

    def test_heading_clause(self):
        plan = parse("SELECT 3 NEAR (0, 0) HEADING [0.5, 2.0] "
                     "MATCHING 'cafe'")
        assert (plan.alpha, plan.beta) == (0.5, 2.0)

    def test_heading_degrees_suffix(self):
        plan = parse("SELECT 3 NEAR (0, 0) HEADING [45 DEG, 90 DEG] "
                     "MATCHING 'cafe'")
        assert plan.alpha == pytest.approx(math.radians(45))
        assert plan.beta == pytest.approx(math.radians(90))

    def test_all_clauses_any_order(self):
        a = parse("SELECT 2 NEAR (0, 0) MATCHING 'cafe' "
                  "MODE R MATCH ANY WITHIN 10 TIMEOUT 50")
        b = parse("SELECT 2 NEAR (0, 0) MATCHING 'cafe' "
                  "TIMEOUT 50 WITHIN 10 MATCH ANY MODE R")
        assert a == b
        assert a.mode is PruningMode.R
        assert a.match_mode is MatchMode.ANY
        assert a.within == 10.0 and a.timeout_ms == 50.0

    def test_explain_wraps_select(self):
        plan = parse("EXPLAIN SELECT 1 NEAR (0, 0) MATCHING 'cafe'")
        assert isinstance(plan, ExplainPlan)
        assert plan.target.k == 1

    def test_show_forms(self):
        assert parse("SHOW METRICS") == ShowPlan("METRICS")
        assert parse("show shards") == ShowPlan("SHARDS")

    def test_multiple_keywords_canonicalized(self):
        plan = parse("SELECT 1 NEAR (0, 0) MATCHING 'Gas CAFE gas'")
        assert plan.keywords == ("cafe", "gas")


class TestPositionedErrors:
    def test_bad_verb(self):
        fails_at("SELEKT 1", position=0, fragment="SELECT")

    def test_missing_near(self):
        fails_at("SELECT 5 NEATS (0, 0) MATCHING 'cafe'", position=9,
                 fragment="NEAR")

    def test_truncated_statement(self):
        statement = "SELECT 5 NEAR (1,"
        err = fails_at(statement, position=len(statement))
        assert "end of statement" in err.reason

    def test_k_not_integer(self):
        fails_at("SELECT 2.5 NEAR (0, 0) MATCHING 'cafe'", position=7,
                 fragment="k must")

    def test_zero_k(self):
        fails_at("SELECT 0 NEAR (0, 0) MATCHING 'cafe'", position=7)

    def test_stopword_only_keywords_blame_the_string(self):
        statement = "SELECT 1 NEAR (0, 0) MATCHING 'the a'"
        fails_at(statement, position=statement.index("'"),
                 fragment="keyword")

    def test_backwards_heading_blames_heading(self):
        statement = "SELECT 1 NEAR (0, 0) HEADING [2.0, 1.0] " \
                    "MATCHING 'cafe'"
        fails_at(statement, position=statement.index("HEADING"))

    def test_negative_within_blames_the_value(self):
        statement = "SELECT 1 NEAR (0, 0) MATCHING 'cafe' WITHIN -4"
        fails_at(statement, position=statement.index("-4"),
                 fragment="WITHIN")

    def test_duplicate_clause(self):
        statement = "SELECT 1 NEAR (0, 0) MATCHING 'cafe' MODE R MODE D"
        fails_at(statement, position=statement.rindex("MODE"),
                 fragment="duplicate")

    def test_trailing_garbage(self):
        statement = "SHOW METRICS please"
        fails_at(statement, position=statement.index("please"),
                 fragment="trailing")

    def test_bad_mode_member(self):
        fails_at("SELECT 1 NEAR (0, 0) MATCHING 'cafe' MODE TURBO",
                 fragment="MODE expects")

    def test_empty_statement(self):
        fails_at("", position=0, fragment="empty")
        fails_at("   ", fragment="empty")

    def test_non_string_statement(self):
        with pytest.raises(DqlSyntaxError):
            parse(42)  # type: ignore[arg-type]


# -- property: parse(render(plan)) == plan ------------------------------------

finite = st.floats(min_value=-1e6, max_value=1e6,
                   allow_nan=False, allow_infinity=False)
keyword = st.sampled_from(
    ["cafe", "gas", "atm", "pizza", "bank", "hotel", "park", "sushi"])


@st.composite
def select_plans(draw):
    if draw(st.booleans()):
        alpha = draw(st.floats(min_value=-10.0, max_value=10.0,
                               allow_nan=False, allow_infinity=False))
        width = draw(st.floats(min_value=1e-6, max_value=TWO_PI,
                               allow_nan=False, allow_infinity=False))
        beta = alpha + width
    else:
        alpha = beta = None
    return SelectPlan(
        k=draw(st.integers(min_value=1, max_value=1000)),
        x=draw(finite), y=draw(finite),
        keywords=tuple(draw(st.sets(keyword, min_size=1, max_size=4))),
        alpha=alpha, beta=beta,
        match_mode=draw(st.sampled_from(list(MatchMode))),
        mode=draw(st.sampled_from(list(PruningMode))),
        within=draw(st.one_of(st.none(), st.floats(
            min_value=1e-3, max_value=1e6,
            allow_nan=False, allow_infinity=False))),
        timeout_ms=draw(st.one_of(st.none(), st.floats(
            min_value=1e-3, max_value=1e6,
            allow_nan=False, allow_infinity=False))))


class TestRoundTripProperty:
    @given(select_plans())
    @settings(max_examples=200, deadline=None)
    def test_parse_render_is_identity(self, plan):
        assert parse(plan.render()) == plan

    @given(select_plans())
    @settings(max_examples=50, deadline=None)
    def test_render_is_canonical_fixed_point(self, plan):
        assert parse(plan.render()).render() == plan.render()

    @given(select_plans())
    @settings(max_examples=50, deadline=None)
    def test_explain_round_trips_too(self, plan):
        wrapped = ExplainPlan(plan)
        assert parse(wrapped.render()) == wrapped


# -- fuzz: no exception but DqlSyntaxError ever escapes -----------------------

VALID_CORPUS = [
    "SELECT 5 NEAR (1.5, -2.5) MATCHING 'cafe'",
    "EXPLAIN SELECT 1 NEAR (0, 0) MATCHING 'cafe gas' MODE D",
    "SHOW METRICS",
]

#: Hand-picked near-misses: every historical parser bug class gets a row.
MALFORMED_CORPUS = [
    "", " ", "\t\n", ";", "SELECT", "SELECT k", "SELECT -1",
    "SELECT 1 NEAR", "SELECT 1 NEAR (", "SELECT 1 NEAR (1",
    "SELECT 1 NEAR (1,", "SELECT 1 NEAR (1, 2", "SELECT 1 NEAR (1, 2)",
    "SELECT 1 NEAR (1, 2) MATCHING", "SELECT 1 NEAR (1, 2) MATCHING cafe",
    "SELECT 1 NEAR (1, 2) MATCHING ''",
    "SELECT 1 NEAR (1, 2) MATCHING 'the'",
    "SELECT 1 NEAR (1, 2) MATCHING 'cafe' WITHIN",
    "SELECT 1 NEAR (1, 2) MATCHING 'cafe' WITHIN zero",
    "SELECT 1 NEAR (1, 2) MATCHING 'cafe' TIMEOUT 0",
    "SELECT 1 NEAR (1, 2) MATCHING 'cafe' EXTRA",
    "SELECT 1e500 NEAR (1, 2) MATCHING 'cafe'",
    "SELECT 1 NEAR (1e999, 2) MATCHING 'cafe'",
    "SELECT 1 NEAR (1, 2) HEADING MATCHING 'cafe'",
    "SELECT 1 NEAR (1, 2) HEADING [1.0 MATCHING 'cafe'",
    "SELECT 1 NEAR (1, 2) HEADING [9.0, 1.0] MATCHING 'cafe'",
    "EXPLAIN", "EXPLAIN SHOW METRICS", "EXPLAIN EXPLAIN",
    "SHOW", "SHOW TABLES", "SHOW METRICS SHARDS",
    "select 1 near (0 0) matching 'cafe'",
    "SELECT 1 NEAR (0, 0) MATCHING 'café'",
    "ВЫБРАТЬ 1", "select⋆", "'", '"', "((((((((", "]]]]",
    "SELECT 999999999999999999999 NEAR (0, 0) MATCHING 'cafe'",
]


class TestFuzz:
    @pytest.mark.parametrize("statement", MALFORMED_CORPUS)
    def test_malformed_corpus_is_typed_and_positioned(self, statement):
        try:
            plan = parse(statement)
        except DqlSyntaxError as exc:
            assert 0 <= exc.position <= len(statement)
            assert exc.reason
            assert exc.render()
        else:
            # A few rows are actually legal (unicode keywords survive
            # canonicalization); they must at least yield a plan.
            assert plan is not None

    def test_truncations_of_valid_statements(self):
        for statement in VALID_CORPUS:
            for cut in range(len(statement)):
                try:
                    parse(statement[:cut])
                except DqlSyntaxError as exc:
                    assert 0 <= exc.position <= cut
                except Exception as exc:  # pragma: no cover
                    pytest.fail(f"{statement[:cut]!r} leaked "
                                f"{type(exc).__name__}: {exc}")

    def test_random_token_soup_never_leaks(self):
        rng = random.Random(20120401)
        vocab = ["SELECT", "NEAR", "HEADING", "MATCHING", "MODE", "MATCH",
                 "WITHIN", "TIMEOUT", "SHOW", "EXPLAIN", "METRICS",
                 "(", ")", "[", "]", ",", "'cafe'", "'", "1", "-2.5",
                 "1e5", "DEG", "RD", "ANY", "x", "ß", ";"]
        for _ in range(500):
            soup = " ".join(rng.choices(vocab, k=rng.randint(1, 12)))
            try:
                parse(soup)
            except DqlSyntaxError as exc:
                assert 0 <= exc.position <= len(soup)
            except Exception as exc:  # pragma: no cover
                pytest.fail(f"{soup!r} leaked {type(exc).__name__}: {exc}")

    def test_random_byte_noise_never_leaks(self):
        rng = random.Random(7)
        for _ in range(300):
            noise = "".join(chr(rng.randint(1, 0x2FF))
                            for _ in range(rng.randint(1, 40)))
            try:
                parse(noise)
            except DqlSyntaxError as exc:
                assert 0 <= exc.position <= len(noise)
            except Exception as exc:  # pragma: no cover
                pytest.fail(f"{noise!r} leaked {type(exc).__name__}: {exc}")
