"""Executor tests: the uniform envelope, and backend equivalence.

The load-bearing suite is :class:`TestEquivalence`: a fixed statement
corpus (full circle, wraparound sector, narrow wedge, all three pruning
modes, WITHIN, MATCH ANY) must produce **bit-identical** entries via

* the direct API (``DesksSearcher.search`` on the same index),
* DQL through :class:`IndexBackend` and :class:`EngineBackend`
  in-process, and
* DQL shipped as text over a real socket to a ``ShardServer``.

That is the language layer's correctness claim: parsing, planning, and
transport never change an answer.
"""

import math

import pytest

from repro.core import PruningMode
from repro.lang import (
    DqlExecutionError,
    DqlExecutor,
    DqlSyntaxError,
    EngineBackend,
    IndexBackend,
    SocketBackend,
    StatementOutcome,
    parse,
)

TWO_PI = 2.0 * math.pi

#: The equivalence corpus.  Every statement is deterministic for a fixed
#: index; comments call out which regime each row exercises.
CORPUS = [
    # full circle, default everything
    "SELECT 5 NEAR (500.0, 500.0) MATCHING 'cafe'",
    # wraparound sector (crosses 0/2*pi)
    "SELECT 8 NEAR (500.0, 500.0) HEADING [-0.7853981633974483, "
    "0.7853981633974483] MATCHING 'cafe'",
    # narrow wedge
    "SELECT 3 NEAR (200.0, 800.0) HEADING [1.0, 1.02] MATCHING 'gas'",
    # quadrant-spanning sector, multiple keywords, ALL semantics
    "SELECT 10 NEAR (100.0, 100.0) HEADING [0.5, 4.0] "
    "MATCHING 'cafe food'",
    # MATCH ANY over two keywords
    "SELECT 10 NEAR (900.0, 100.0) MATCHING 'atm sushi' MATCH ANY",
    # the three pruning modes over one sector (mode never changes answers)
    "SELECT 6 NEAR (400.0, 600.0) HEADING [2.0, 5.0] MATCHING 'pizza' "
    "MODE RD",
    "SELECT 6 NEAR (400.0, 600.0) HEADING [2.0, 5.0] MATCHING 'pizza' "
    "MODE R",
    "SELECT 6 NEAR (400.0, 600.0) HEADING [2.0, 5.0] MATCHING 'pizza' "
    "MODE D",
    # degrees spelling of a sector
    "SELECT 4 NEAR (500.0, 500.0) HEADING [45 DEG, 135 DEG] "
    "MATCHING 'bank'",
    # radius cap
    "SELECT 20 NEAR (500.0, 500.0) MATCHING 'hotel' WITHIN 300.0",
    # query point outside the dataset extent
    "SELECT 5 NEAR (-250.0, 1500.0) HEADING [5.0, 7.0] MATCHING 'park'",
]


def rows(outcome):
    return [(e.poi_id, e.distance) for e in outcome.entries]


def direct_rows(searcher, statement):
    """The oracle: the parsed plan run straight through the API."""
    plan = parse(statement)
    result = searcher.search(plan.query(), plan.mode)
    entries = [(e.poi_id, e.distance) for e in result.entries]
    if plan.within is not None:
        entries = [(p, d) for p, d in entries if d <= plan.within]
    return entries


@pytest.fixture(scope="module")
def engine(index):
    from repro.service import QueryEngine

    with QueryEngine(index, num_workers=2) as eng:
        yield eng


@pytest.fixture(scope="module")
def socket_executor(index):
    from repro.net import RemoteShardClient, ShardServer

    server = ShardServer(index, num_workers=2).start()
    client = RemoteShardClient(server.address)
    yield DqlExecutor(SocketBackend(client))
    client.close()
    server.stop()


class TestEquivalence:
    @pytest.mark.parametrize("statement", CORPUS)
    def test_direct_vs_inproc_vs_socket(self, statement, searcher, index,
                                        engine, socket_executor):
        oracle = direct_rows(searcher, statement)
        via_index = DqlExecutor(IndexBackend(index)).execute(statement)
        via_engine = DqlExecutor(EngineBackend(engine)).execute(statement)
        via_socket = socket_executor.execute(statement)
        assert rows(via_index) == oracle, statement
        assert rows(via_engine) == oracle, statement
        assert rows(via_socket) == oracle, statement

    def test_modes_agree_with_each_other(self, index):
        executor = DqlExecutor(IndexBackend(index))
        base = "SELECT 6 NEAR (400.0, 600.0) HEADING [2.0, 5.0] " \
               "MATCHING 'pizza' MODE {}"
        answers = {mode: rows(executor.execute(base.format(mode)))
                   for mode in ("RD", "R", "D")}
        assert answers["RD"] == answers["R"] == answers["D"]

    def test_render_and_reparse_same_answers(self, index):
        executor = DqlExecutor(IndexBackend(index))
        for statement in CORPUS:
            plan = parse(statement)
            assert rows(executor.execute(plan)) == \
                rows(executor.execute(plan.render())), statement


class TestEnvelope:
    def test_search_outcome_shape(self, index):
        outcome = DqlExecutor(IndexBackend(index)).execute(CORPUS[0])
        assert isinstance(outcome, StatementOutcome)
        assert outcome.kind == "search"
        assert outcome.backend == "index"
        assert outcome.statement == parse(CORPUS[0]).render()
        assert len(outcome.entries) == 5

    def test_render_is_deterministic(self, index):
        executor = DqlExecutor(IndexBackend(index))
        first = executor.execute(CORPUS[0]).render()
        second = executor.execute(CORPUS[0]).render()
        assert first == second
        assert first.startswith("-- SELECT 5")
        assert "rows: 5" in first

    def test_to_dict_carries_volatile_fields(self, engine):
        outcome = DqlExecutor(EngineBackend(engine)).execute(CORPUS[0])
        data = outcome.to_dict()
        assert data["kind"] == "search"
        assert "latency_seconds" in data
        assert len(data["rows"]) == 5

    def test_within_filter_inclusive(self, index):
        executor = DqlExecutor(IndexBackend(index))
        outcome = executor.execute(
            "SELECT 50 NEAR (500.0, 500.0) MATCHING 'cafe'")
        assert outcome.entries, "corpus index has cafes"
        boundary = outcome.entries[0].distance
        capped = executor.execute(
            f"SELECT 50 NEAR (500.0, 500.0) MATCHING 'cafe' "
            f"WITHIN {boundary!r}")
        assert capped.entries[0].distance == boundary  # <=, not <

    def test_timeout_yields_partial_not_error(self, index):
        executor = DqlExecutor(IndexBackend(index))
        outcome = executor.execute(
            "SELECT 10 NEAR (500.0, 500.0) MATCHING 'cafe' "
            "TIMEOUT 0.000001")
        assert outcome.kind == "search"  # partial or complete, never raise

    def test_budget_combines_with_plan_timeout(self, index):
        executor = DqlExecutor(IndexBackend(index))
        outcome = executor.execute(CORPUS[0], budget=1e-9)
        assert outcome.kind == "search"


class TestShowAndExplain:
    def test_show_metrics_index(self, index):
        outcome = DqlExecutor(IndexBackend(index)).execute("SHOW METRICS")
        assert outcome.kind == "table"
        assert outcome.table["pois"] == 400.0
        assert outcome.table["num_bands"] == 4.0

    def test_show_shards_single_pseudo_shard(self, index):
        outcome = DqlExecutor(IndexBackend(index)).execute("SHOW SHARDS")
        assert outcome.table["shards.total"] == 1.0
        assert outcome.table["shard.0.pois"] == 400.0

    def test_show_metrics_engine_counts_queries(self, engine):
        executor = DqlExecutor(EngineBackend(engine))
        executor.execute(CORPUS[0])
        outcome = executor.execute("SHOW METRICS")
        assert outcome.table["queries_total"] >= 1.0

    def test_explain_reconciles(self, index):
        outcome = DqlExecutor(IndexBackend(index)).execute(
            "EXPLAIN " + CORPUS[1])
        assert outcome.kind == "text"
        assert "reconciliation (OK)" in outcome.text

    def test_explain_over_socket_matches_local(self, index,
                                               socket_executor):
        statement = "EXPLAIN " + CORPUS[3]
        local = DqlExecutor(IndexBackend(index)).execute(statement)
        remote = socket_executor.execute(statement)
        assert "reconciliation (OK)" in remote.text
        # Span timings differ run to run; the plan section must not.
        assert plan_section(local.text) == plan_section(remote.text)


def plan_section(text):
    lines = text.splitlines()
    return lines[:next(i for i, line in enumerate(lines)
                       if line.startswith("spans:"))]


class TestErrors:
    def test_syntax_error_passes_through(self, index):
        executor = DqlExecutor(IndexBackend(index))
        with pytest.raises(DqlSyntaxError):
            executor.execute("SELEKT 1")

    def test_backend_failure_wrapped(self):
        class Exploding:
            def select(self, plan, budget=None):
                raise RuntimeError("boom")

        executor = DqlExecutor(Exploding())
        with pytest.raises(DqlExecutionError, match="RuntimeError: boom"):
            executor.execute("SELECT 1 NEAR (0, 0) MATCHING 'cafe'")

    def test_execute_many_in_order(self, index):
        executor = DqlExecutor(IndexBackend(index))
        outcomes = executor.execute_many(["SHOW METRICS", CORPUS[0]])
        assert [o.kind for o in outcomes] == ["table", "search"]
