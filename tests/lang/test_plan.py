"""Logical-plan unit tests: validation, canonical render, derived query."""

import math

import pytest

from repro.core import DirectionalQuery, MatchMode, PruningMode
from repro.lang import (
    ExplainPlan,
    SelectPlan,
    ShowPlan,
    canonical_keywords,
    parse,
    plan_from_query,
)

TWO_PI = 2.0 * math.pi


def select(**overrides):
    base = dict(k=5, x=10.0, y=20.0, keywords=("cafe",))
    base.update(overrides)
    return SelectPlan(**base)


class TestCanonicalKeywords:
    def test_string_and_iterable_agree(self):
        assert canonical_keywords("Sushi  Cafe") == \
            canonical_keywords(["cafe", "SUSHI"])

    def test_sorted_and_deduplicated(self):
        assert canonical_keywords("zeta alpha zeta") == ("alpha", "zeta")

    def test_nothing_usable_raises(self):
        with pytest.raises(ValueError, match="no usable keywords"):
            canonical_keywords("&&&")


class TestSelectPlanValidation:
    def test_k_must_be_positive_integer(self):
        for bad in (0, -3, 2.5):
            with pytest.raises(ValueError, match="k must"):
                select(k=bad)

    def test_float_integral_k_coerced(self):
        assert select(k=3.0).k == 3

    def test_coordinates_must_be_finite(self):
        with pytest.raises(ValueError, match="x must be finite"):
            select(x=float("nan"))
        with pytest.raises(ValueError, match="y must be finite"):
            select(y=float("inf"))

    def test_heading_needs_both_bounds(self):
        with pytest.raises(ValueError, match="HEADING"):
            select(alpha=1.0)

    def test_interval_validated_but_stored_raw(self):
        plan = select(alpha=-1.0, beta=1.0)
        assert plan.alpha == -1.0 and plan.beta == 1.0  # raw, not wrapped
        interval = plan.interval()
        assert interval.lower == pytest.approx(TWO_PI - 1.0)

    def test_backwards_interval_rejected(self):
        with pytest.raises(ValueError, match="interval"):
            select(alpha=2.0, beta=1.0)

    def test_within_and_timeout_positive(self):
        with pytest.raises(ValueError, match="WITHIN"):
            select(within=0.0)
        with pytest.raises(ValueError, match="TIMEOUT"):
            select(timeout_ms=-5.0)


class TestRender:
    def test_defaults_omitted(self):
        assert select().render() == "SELECT 5 NEAR (10.0, 20.0) " \
            "MATCHING 'cafe'"

    def test_every_clause_rendered(self):
        plan = select(alpha=0.5, beta=2.5, mode=PruningMode.R,
                      match_mode=MatchMode.ANY, within=99.5,
                      timeout_ms=250.0)
        assert plan.render() == (
            "SELECT 5 NEAR (10.0, 20.0) HEADING [0.5, 2.5] "
            "MATCHING 'cafe' MODE R MATCH ANY WITHIN 99.5 TIMEOUT 250.0")

    def test_render_parses_back_equal(self):
        plan = select(alpha=-0.25, beta=0.25, within=500.0)
        assert parse(plan.render()) == plan

    def test_show_and_explain_render(self):
        assert ShowPlan("shards").render() == "SHOW SHARDS"
        assert ExplainPlan(select()).render().startswith("EXPLAIN SELECT")


class TestDerivedQuery:
    def test_query_matches_direct_construction(self):
        plan = select(alpha=0.5, beta=2.0, k=7)
        expected = DirectionalQuery.make(10.0, 20.0, 0.5, 2.0, ["cafe"], 7)
        assert plan.query() == expected

    def test_no_heading_means_full_circle(self):
        assert select().interval().is_full

    def test_two_spellings_one_query(self):
        # Plans differ (raw bounds kept), queries normalise identically.
        a = select(alpha=-1.0, beta=1.0)
        b = select(alpha=TWO_PI - 1.0, beta=TWO_PI + 1.0)
        assert a != b
        assert a.query() == b.query()

    def test_timeout_seconds(self):
        assert select(timeout_ms=250.0).timeout_seconds() == 0.25
        assert select().timeout_seconds() is None


class TestPlanFromQuery:
    def test_round_trips_through_query(self):
        query = DirectionalQuery.make(3.0, 4.0, 0.1, 2.2,
                                      ["cafe", "gas"], 9,
                                      match_mode=MatchMode.ANY)
        plan = plan_from_query(query, mode=PruningMode.D)
        assert plan.query() == query
        assert plan.mode is PruningMode.D

    def test_full_circle_drops_heading(self):
        query = DirectionalQuery.make(0.0, 0.0, 0.0, TWO_PI, ["cafe"], 1)
        plan = plan_from_query(query)
        assert plan.alpha is None and plan.beta is None


class TestShowPlan:
    def test_targets_case_insensitive(self):
        assert ShowPlan("metrics").target == "METRICS"

    def test_bad_target_rejected(self):
        with pytest.raises(ValueError, match="SHOW target"):
            ShowPlan("TABLES")


class TestExplainPlan:
    def test_wraps_select_only(self):
        with pytest.raises(ValueError, match="EXPLAIN"):
            ExplainPlan("SELECT 1")  # type: ignore[arg-type]
