"""Tokenizer unit tests: kinds, positions, and lexical failure modes."""

import pytest

from repro.lang import DqlSyntaxError, tokenize_statement
from repro.lang.lexer import END, NUMBER, PUNCT, STRING, WORD


def kinds(statement):
    return [t.kind for t in tokenize_statement(statement)]


def texts(statement):
    return [t.text for t in tokenize_statement(statement)]


class TestTokenKinds:
    def test_words_upper_cased(self):
        assert texts("select Near NEAR")[:3] == ["SELECT", "NEAR", "NEAR"]

    def test_stream_ends_with_end_token(self):
        tokens = tokenize_statement("SHOW METRICS")
        assert tokens[-1].kind is END
        assert tokens[-1].pos == len("SHOW METRICS")

    def test_empty_statement_is_just_end(self):
        assert kinds("") == [END]
        assert kinds("   \t ") == [END]

    def test_punctuation_split(self):
        assert kinds("( 1 , 2 )") == [PUNCT, NUMBER, PUNCT, NUMBER, PUNCT,
                                      END]
        assert kinds("(1,2)") == [PUNCT, NUMBER, PUNCT, NUMBER, PUNCT, END]

    def test_number_forms(self):
        for text in ("10", "-3.5", "+7", ".25", "1e-05",
                     "6.283185307179586", "2E6"):
            tokens = tokenize_statement(text)
            assert tokens[0].kind is NUMBER, text
            assert tokens[0].number == float(text)

    def test_word_beats_exponent_fragment(self):
        # `e5` must lex as a word, not half a number.
        tokens = tokenize_statement("e5")
        assert tokens[0].kind is WORD
        assert tokens[0].text == "E5"

    def test_quoted_strings_verbatim(self):
        tokens = tokenize_statement("MATCHING 'Sushi & Cafe'")
        assert tokens[1].kind is STRING
        assert tokens[1].text == "Sushi & Cafe"
        assert tokenize_statement('MATCHING "x y"')[1].text == "x y"

    def test_positions_are_source_offsets(self):
        statement = "SELECT 5 NEAR"
        tokens = tokenize_statement(statement)
        assert [t.pos for t in tokens] == [0, 7, 9, len(statement)]


class TestLexicalErrors:
    def test_unterminated_string(self):
        with pytest.raises(DqlSyntaxError) as info:
            tokenize_statement("MATCHING 'cafe")
        assert info.value.position == 9
        assert "unterminated" in info.value.reason

    def test_stray_character(self):
        with pytest.raises(DqlSyntaxError) as info:
            tokenize_statement("SELECT 5;")
        assert info.value.position == 8

    def test_error_renders_caret(self):
        with pytest.raises(DqlSyntaxError) as info:
            tokenize_statement("SELECT @")
        rendered = info.value.render()
        lines = rendered.splitlines()
        assert lines[0] == "SELECT @"
        assert lines[1] == "       ^"
