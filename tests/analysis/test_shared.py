"""The shared-state write sanitizer: runtime tracker + DAL012."""

import textwrap
import threading

import pytest

from repro.analysis import (
    LintEngine,
    LockTracker,
    WriteTracker,
    disable_lock_tracking,
    disable_write_tracking,
    enable_lock_tracking,
    enable_write_tracking,
    get_write_tracker,
    lock_tracking_enabled,
    make_lock,
    register_shared,
    write_tracking_enabled,
)
from repro.analysis.rules import SharedStateRule

SVC = "src/repro/service/example.py"


@pytest.fixture
def tracking():
    """Fresh write + lock tracking for one test, torn down after."""
    tracker = enable_write_tracking(WriteTracker())
    yield tracker
    disable_write_tracking()
    disable_lock_tracking()


class Thing:
    def __init__(self):
        self._lock = make_lock("test.thing")
        self.value = 0
        register_shared(self, "test.thing")

    def guarded_bump(self):
        with self._lock:
            self.value += 1

    def unguarded_bump(self):
        self.value += 1


# -- runtime tracker ----------------------------------------------------------


class TestWriteTracker:
    def test_register_is_a_no_op_when_disabled(self):
        thing = Thing()
        assert type(thing) is Thing
        assert not write_tracking_enabled()
        assert get_write_tracker() is None

    def test_enabling_implies_lock_tracking(self):
        assert not lock_tracking_enabled()
        enable_write_tracking()
        try:
            assert lock_tracking_enabled()
        finally:
            disable_write_tracking()
            disable_lock_tracking()

    def test_unguarded_write_is_a_violation(self, tracking):
        thing = Thing()
        thing.unguarded_bump()
        report = tracking.report()
        assert not report.clean
        assert [(v.role, v.attr) for v in report.violations] == \
            [("test.thing", "value")]
        assert report.violations[0].count == 1
        assert any("unguarded_bump" in frame
                   for frame in report.violations[0].stack)

    def test_guarded_write_is_clean(self, tracking):
        thing = Thing()
        thing.guarded_bump()
        thing.guarded_bump()
        report = tracking.report()
        assert report.clean
        assert report.writes == 2

    def test_init_writes_are_exempt_by_construction(self, tracking):
        Thing()  # __init__ assigns _lock and value before registering
        assert tracking.report().writes == 0

    def test_any_held_role_counts_as_guarded(self, tracking):
        other = make_lock("test.other")
        thing = Thing()
        with other:
            thing.unguarded_bump()
        assert tracking.report().clean

    def test_violations_aggregate_by_role_and_attr(self, tracking):
        thing = Thing()
        for _ in range(5):
            thing.unguarded_bump()
        report = tracking.report()
        assert len(report.violations) == 1
        assert report.violations[0].count == 5
        assert "UNGUARDED WRITE: test.thing.value" in report.render()

    def test_multiple_threads_are_counted(self, tracking):
        thing = Thing()
        barrier = threading.Barrier(4)  # all alive at once: distinct ids

        def bump():
            barrier.wait()
            thing.unguarded_bump()
            barrier.wait()

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert tracking.report().violations[0].threads == 4

    def test_double_registration_keeps_one_wrapper(self, tracking):
        thing = Thing()
        cls = type(thing)
        register_shared(thing, "test.thing")
        assert type(thing) is cls
        assert cls is not Thing and issubclass(cls, Thing)

    def test_slotted_classes_can_register(self, tracking):
        class Slotted:
            __slots__ = ("x",)

        obj = register_shared(Slotted(), "test.slotted")
        obj.x = 1
        report = tracking.report()
        assert [(v.role, v.attr) for v in report.violations] == \
            [("test.slotted", "x")]

    def test_disable_stops_recording(self, tracking):
        thing = Thing()
        disable_write_tracking()
        thing.unguarded_bump()  # wrapper still installed, tracker gone
        assert tracking.report().writes == 0


# -- static rule (DAL012) -----------------------------------------------------


def lint(source, path=SVC):
    engine = LintEngine([SharedStateRule])
    return engine.check_source(textwrap.dedent(source), path)


REGISTERED = """
    class Cache:
        def __init__(self):
            self._lock = make_lock("svc.cache")
            self.hits = 0
            register_shared(self, "svc.cache")

    {method}
"""


def registered_with(method):
    body = textwrap.indent(textwrap.dedent(method).strip(), "    ")
    return REGISTERED.format(method=body).replace("\n    {method}", "")


class TestSharedStateRule:
    def test_unguarded_write_fires(self):
        found = lint("""
            class Cache:
                def __init__(self):
                    self._lock = make_lock("svc.cache")
                    self.hits = 0
                    register_shared(self, "svc.cache")

                def bump(self):
                    self.hits += 1
        """)
        assert [f.code for f in found] == ["DAL012"]
        assert "`self.hits`" in found[0].message

    def test_guarded_write_is_silent(self):
        assert lint("""
            class Cache:
                def __init__(self):
                    self._lock = make_lock("svc.cache")
                    self.hits = 0
                    register_shared(self, "svc.cache")

                def bump(self):
                    with self._lock:
                        self.hits += 1
        """) == []

    def test_unregistered_class_is_ignored(self):
        assert lint("""
            class Plain:
                def __init__(self):
                    self.hits = 0

                def bump(self):
                    self.hits += 1
        """) == []

    def test_tuple_and_annotated_targets_fire(self):
        found = lint("""
            class Cache:
                def __init__(self):
                    register_shared(self, "svc.cache")

                def reset(self):
                    self.a, self.b = 0, 0
                    self.c: int = 0
        """)
        assert [f.code for f in found] == ["DAL012"] * 3

    def test_non_lock_with_does_not_guard(self):
        found = lint("""
            class Cache:
                def __init__(self):
                    register_shared(self, "svc.cache")

                def load(self):
                    with open("f") as handle:
                        self.data = handle.read()
        """)
        assert [f.code for f in found] == ["DAL012"]

    def test_nested_function_writes_are_skipped(self):
        assert lint("""
            class Cache:
                def __init__(self):
                    register_shared(self, "svc.cache")

                def make_cb(self):
                    def cb(self):
                        self.x = 1
                    return cb
        """) == []

    def test_noqa_suppresses(self):
        found = lint("""
            class Cache:
                def __init__(self):
                    register_shared(self, "svc.cache")

                def bump(self):
                    self.hits = 1  # desks: noqa-DAL012 - init-once pattern
        """)
        assert [f.code for f in found if f.suppressed] == ["DAL012"]
        assert not [f for f in found if not f.suppressed]
