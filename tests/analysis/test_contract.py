"""The declarative architecture contract (DAL010) and its legacy aliases."""

import textwrap

import pytest

from repro.analysis import Contract, ContractRule, LintEngine, default_contract
from repro.analysis.contract import (
    DEFAULT_CONTRACT_PATH,
    _fallback_parse,
    parse_toml,
)
from repro.analysis.rules import (
    ChaosContainmentRule,
    LanguagePurityRule,
    TransportRule,
)

CORE = "src/repro/core/example.py"
LANG = "src/repro/lang/example.py"


def lint(source, path=CORE, rules=(ContractRule,), contract=None):
    engine = LintEngine(list(rules), contract=contract)
    return engine.check_source(textwrap.dedent(source), path)


def facts(findings, code=None):
    """Comparable (code, line, message) facts, optionally one code only."""
    return [(f.code, f.line, f.message) for f in findings
            if not f.suppressed and (code is None or f.code == code)]


# -- parsing ------------------------------------------------------------------


class TestParsing:
    def test_fallback_parser_matches_tomllib_on_the_real_contract(self):
        text = open(DEFAULT_CONTRACT_PATH, encoding="utf-8").read()
        assert _fallback_parse(text) == parse_toml(text)

    def test_round_trip_toml_to_contract(self):
        contract = Contract.from_toml(
            open(DEFAULT_CONTRACT_PATH, encoding="utf-8").read())
        lang = contract.layer("lang")
        assert lang is not None and lang.alias == "DAL008"
        assert set(lang.deps) == {"core", "geometry", "text", "trace"}
        trace = contract.layer("trace")
        assert set(trace.deferred) == {"core", "storage"}

    def test_default_contract_is_cached(self):
        assert default_contract() is default_contract()

    def test_boundaries_cover_the_rpc_entry_points(self):
        contract = default_contract()
        assert contract.is_boundary("repro/net/server.py",
                                    "ShardServer._dispatch")
        boundary = contract.boundary("repro/lang/executor.py",
                                     "DqlExecutor.execute")
        assert boundary is not None and boundary.allowed == ("DqlError",)
        assert not contract.is_boundary("repro/net/server.py", "serve")

    def test_duplicate_layer_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Contract.from_toml(
                'schema = 1\n[[layer]]\nname = "a"\ndeps = []\n'
                '[[layer]]\nname = "a"\ndeps = []\n')

    def test_undeclared_dep_rejected(self):
        with pytest.raises(ValueError, match="undeclared"):
            Contract.from_toml(
                'schema = 1\n[[layer]]\nname = "a"\ndeps = ["ghost"]\n')

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            Contract.from_toml('schema = 2\n')


# -- the generic rule on a synthetic bad tree ---------------------------------


BAD_TREE_CONTRACT = Contract.from_toml(textwrap.dedent("""
    schema = 1

    [[layer]]
    name = "core"
    deps = ["storage"]

    [[layer]]
    name = "storage"
    deps = []

    [[layer]]
    name = "net"
    deps = ["core"]

    [[layer]]
    name = "trace"
    deps = []
    deferred = ["storage"]

    [[external]]
    modules = ["socket"]
    allowed_in = ["net"]

    [[restricted]]
    module = "repro.net.chaos"
    allowed_in = ["repro/net/chaos.py"]
"""))


class TestGenericRule:
    def test_layer_violation_fires(self):
        found = lint("from repro.net import server\n",
                     contract=BAD_TREE_CONTRACT)
        assert facts(found) == [(
            "DAL010", 1,
            "layer `core` may not import `repro.net` (module-level "
            "import); ARCHITECTURE.toml allows: storage")]

    def test_allowed_dep_is_silent(self):
        assert lint("from repro.storage import pages\n",
                    contract=BAD_TREE_CONTRACT) == []

    def test_deferred_dep_must_be_deferred(self):
        source = "from repro.storage import pages\n"
        assert facts(lint(source, path="src/repro/trace/example.py",
                          contract=BAD_TREE_CONTRACT)) != []
        deferred = ("def lazy():\n"
                    "    from repro.storage import pages\n"
                    "    return pages\n")
        assert lint(deferred, path="src/repro/trace/example.py",
                    contract=BAD_TREE_CONTRACT) == []

    def test_external_confinement_fires_generic_code(self):
        found = lint("import socket\n", contract=BAD_TREE_CONTRACT)
        assert [f.code for f in found] == ["DAL010"]
        assert "socket" in found[0].message

    def test_restricted_module_fires_generic_code(self):
        found = lint("import repro.net.chaos\n",
                     path="src/repro/net/example.py",
                     contract=BAD_TREE_CONTRACT)
        assert [f.code for f in found] == ["DAL010"]

    def test_undeclared_layer_is_reported(self):
        found = lint("from repro.core import query\n",
                     path="src/repro/mystery/example.py",
                     contract=BAD_TREE_CONTRACT)
        assert [f.code for f in found] == ["DAL010"]
        assert "not declared in ARCHITECTURE.toml" in found[0].message

    def test_noqa_suppresses(self):
        found = lint("from repro.net import server  # desks: noqa-DAL010\n",
                     contract=BAD_TREE_CONTRACT)
        assert [f.code for f in found if f.suppressed] == ["DAL010"]
        assert not [f for f in found if not f.suppressed]


# -- alias parity with the legacy v1 rules ------------------------------------


TRANSPORT_FIXTURES = (
    ("import socket\n", CORE),
    ("import asyncio\n", CORE),
    ("from socket import create_connection\n", CORE),
    ("from socket.whatever import x\n", CORE),
    ("import socketserver\nimport selectors\nimport ssl\n", CORE),
    ("import socket as sk\n", CORE),
    ("def probe(a):\n    import socket\n    return socket.c(a)\n", CORE),
    ("import socket\nimport asyncio\n", "src/repro/net/example.py"),
    ("import socket\n", "src/repro/net/sub/deep.py"),
    ("import threading\nimport socketish_helper\n", CORE),
)

PURITY_FIXTURES = (
    ("from repro.service import QueryEngine\n", LANG),
    ("import repro.cluster\n", LANG),
    ("from repro import service\n", LANG),
    ("from ..service import MetricsRegistry\n", LANG),
    ("from repro.geometry import angles\n", LANG),
    ("from .parser import parse\n", LANG),
    ("import math\n", LANG),
)

CHAOS_FIXTURES = (
    ("import repro.net.chaos\n", CORE),
    ("from repro.net.chaos import ChaosProxy\n", CORE),
    ("from repro.net import chaos\n", CORE),
    ("import repro.net.chaos\n", "src/repro/net/chaos.py"),
    ("from repro.net import protocol\n", "src/repro/net/example.py"),
)


class TestAliasParity:
    """ContractRule reports the v1 codes byte-identically to the v1 rules."""

    @pytest.mark.parametrize("source,path", TRANSPORT_FIXTURES)
    def test_dal007_matches_transport_rule(self, source, path):
        legacy = facts(lint(source, path, rules=[TransportRule]))
        merged = facts(lint(source, path), code="DAL007")
        assert merged == legacy

    @pytest.mark.parametrize("source,path", PURITY_FIXTURES)
    def test_dal008_matches_language_purity_rule(self, source, path):
        legacy = facts(lint(source, path, rules=[LanguagePurityRule]))
        merged = facts(lint(source, path), code="DAL008")
        assert merged == legacy

    @pytest.mark.parametrize("source,path", CHAOS_FIXTURES)
    def test_dal009_matches_chaos_containment_rule(self, source, path):
        legacy = facts(lint(source, path, rules=[ChaosContainmentRule]))
        merged = facts(lint(source, path), code="DAL009")
        assert merged == legacy

    def test_alias_codes_suppress_independently(self):
        found = lint("import socket  # desks: noqa-DAL007\n")
        assert [f.code for f in found if f.suppressed] == ["DAL007"]
        assert not [f for f in found if not f.suppressed]
