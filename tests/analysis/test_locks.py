"""Lock-order detector: inversions flagged, clean orders pass, zero-cost
contract of the factory."""

import threading

import pytest

from repro.analysis import (
    LockTracker,
    TrackedLock,
    disable_lock_tracking,
    enable_lock_tracking,
    get_lock_tracker,
    lock_tracking_enabled,
    make_lock,
)


@pytest.fixture()
def tracker():
    t = enable_lock_tracking(LockTracker())
    yield t
    disable_lock_tracking()


def locks(tracker, *names, reentrant=False):
    return [TrackedLock(n, tracker, reentrant=reentrant) for n in names]


class TestInversionDetection:
    def test_deliberate_two_lock_inversion_is_flagged(self, tracker):
        # The acceptance-criteria case: a -> b on one thread, b -> a on
        # another.  Sequential execution (thread two starts after thread
        # one finished) keeps the test deadlock-free while still writing
        # both orders into the graph.
        a, b = locks(tracker, "inv.a", "inv.b")

        def forward():
            with a:
                with b:
                    pass

        def backward():
            with b:
                with a:
                    pass

        t1 = threading.Thread(target=forward)
        t1.start()
        t1.join()
        t2 = threading.Thread(target=backward)
        t2.start()
        t2.join()

        report = tracker.report()
        assert not report.clean
        assert report.inversions == [("inv.a", "inv.b")]
        assert report.cycles == [["inv.a", "inv.b"]]
        rendered = report.render()
        assert "INVERSION: inv.a <-> inv.b" in rendered
        assert "CYCLE: inv.a -> inv.b -> inv.a" in rendered
        # The report points at code: each cycle edge carries the stack
        # of its first acquisition.
        assert "test_locks.py" in rendered

    def test_three_lock_cycle_without_any_inversion(self, tracker):
        a, b, c = locks(tracker, "cyc.a", "cyc.b", "cyc.c")
        for first, second in ((a, b), (b, c), (c, a)):
            with first:
                with second:
                    pass
        report = tracker.report()
        assert report.inversions == []  # no single pair reverses
        assert report.cycles == [["cyc.a", "cyc.b", "cyc.c"]]
        assert not report.clean

    def test_consistent_order_is_clean(self, tracker):
        a, b, c = locks(tracker, "ok.a", "ok.b", "ok.c")
        for _ in range(3):
            with a:
                with b:
                    with c:
                        pass
        report = tracker.report()
        assert report.clean
        assert {(e.src, e.dst) for e in report.edges} == {
            ("ok.a", "ok.b"), ("ok.a", "ok.c"), ("ok.b", "ok.c")}
        assert "no lock-order cycles detected" in report.render()

    def test_edges_count_threads_and_acquisitions(self, tracker):
        a, b = locks(tracker, "cnt.a", "cnt.b")

        def nest():
            with a:
                with b:
                    pass

        threads = [threading.Thread(target=nest) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        (edge,) = tracker.report().edges
        assert (edge.src, edge.dst) == ("cnt.a", "cnt.b")
        assert edge.count == 4
        assert len(edge.threads) >= 1  # distinct ids, possibly reused


class TestReentrancy:
    def test_rlock_reentry_is_not_an_edge(self, tracker):
        a = TrackedLock("re.a", tracker, reentrant=True)
        with a:
            with a:  # same lock, same thread: depth bump, no self-edge
                pass
        assert tracker.report().edges == []

    def test_same_role_two_instances_no_self_edge(self, tracker):
        # Two BufferPool instances share the role name; nesting them is
        # not an ordering fact about the role relative to itself.
        a1 = TrackedLock("pool", tracker, reentrant=True)
        a2 = TrackedLock("pool", tracker, reentrant=True)
        with a1:
            with a2:
                pass
        assert tracker.report().edges == []

    def test_release_order_restores_stack(self, tracker):
        a, b = locks(tracker, "st.a", "st.b")
        a.acquire()
        b.acquire()
        b.release()
        b.acquire()  # re-acquire after release: still just a -> b
        b.release()
        a.release()
        report = tracker.report()
        assert [(e.src, e.dst, e.count) for e in report.edges] == [
            ("st.a", "st.b", 2)]

    def test_unmatched_release_is_ignored(self, tracker):
        a = TrackedLock("um.a", tracker)
        a._inner.acquire()  # taken behind the tracker's back
        a.release()  # must not raise or corrupt the thread stack
        assert tracker.report().edges == []


class TestFactorySwitch:
    def test_off_by_default_returns_raw_locks(self):
        assert not lock_tracking_enabled()
        assert get_lock_tracker() is None
        lock = make_lock("raw.plain")
        rlock = make_lock("raw.re", reentrant=True)
        # The production objects, not wrappers: zero per-acquire cost.
        assert type(lock) is type(threading.Lock())
        assert type(rlock) is type(threading.RLock())

    def test_enabled_returns_tracked_locks(self, tracker):
        lock = make_lock("tracked.plain")
        assert isinstance(lock, TrackedLock)
        assert lock.name == "tracked.plain"
        with lock:
            pass
        assert tracker.report().acquisitions == 1

    def test_enable_is_idempotent(self, tracker):
        assert enable_lock_tracking() is tracker
        fresh = LockTracker()
        assert enable_lock_tracking(fresh) is fresh
        assert get_lock_tracker() is fresh

    def test_tracked_lock_supports_nonblocking_acquire(self, tracker):
        lock = make_lock("nb.lock")
        assert lock.acquire(False)
        try:
            got = []
            t = threading.Thread(
                target=lambda: got.append(lock.acquire(False)))
            t.start()
            t.join()
            assert got == [False]  # contended: failed acquire recorded? no
        finally:
            lock.release()
        # The failed non-blocking acquire must not have polluted the
        # other thread's held-stack.
        assert tracker.report().edges == []

    def test_env_flag_enables_at_import(self):
        import subprocess
        import sys
        code = ("import repro.analysis as a; "
                "print(a.lock_tracking_enabled())")
        out = subprocess.run(
            [sys.executable, "-c", code],
            env={"PYTHONPATH": "src", "DESKS_LOCK_TRACKING": "1"},
            capture_output=True, text=True, check=True)
        assert out.stdout.strip() == "True"
        out = subprocess.run(
            [sys.executable, "-c", code],
            env={"PYTHONPATH": "src", "DESKS_LOCK_TRACKING": "0"},
            capture_output=True, text=True, check=True)
        assert out.stdout.strip() == "False"
