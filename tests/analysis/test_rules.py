"""Per-rule fixtures: each DAL code fires on the seeded violation, stays
silent on the fixed form, and honours ``desks: noqa`` suppression."""

import json

import pytest

from repro.analysis import ALL_RULES, RULE_INDEX, LintEngine, rule_catalog
from repro.analysis.rules import (
    AngleArithmeticRule,
    BareAcquireRule,
    BufferBypassRule,
    ChaosContainmentRule,
    FloatEqualityRule,
    LanguagePurityRule,
    NondeterminismRule,
    StrayFileWriteRule,
    TransportRule,
)

CORE = "src/repro/core/example.py"
GEOMETRY = "src/repro/geometry/example.py"
STORAGE = "src/repro/storage/example.py"


def lint(source, path=CORE, rules=None):
    engine = LintEngine(rules or ALL_RULES)
    return engine.check_source(source, path)


def active(findings):
    return [f for f in findings if not f.suppressed]


def codes(findings):
    return sorted({f.code for f in active(findings)})


# -- DAL001: angle arithmetic outside repro.geometry -------------------------


class TestAngleArithmetic:
    RULE = [AngleArithmeticRule]

    def test_raw_atan2_fires(self):
        found = lint("import math\nt = math.atan2(y, x)\n", rules=self.RULE)
        assert codes(found) == ["DAL001"]
        assert found[0].line == 2

    def test_modulo_two_pi_fires(self):
        for two_pi in ("TWO_PI", "math.tau", "6.283185307179586",
                       "2 * math.pi"):
            found = lint(f"g = (a - b) % ({two_pi})\n", rules=self.RULE)
            assert codes(found) == ["DAL001"], two_pi

    def test_fmod_two_pi_fires(self):
        found = lint("import math\nt = math.fmod(t, TWO_PI)\n",
                     rules=self.RULE)
        assert codes(found) == ["DAL001"]

    def test_silent_inside_geometry(self):
        found = lint("import math\nt = math.atan2(y, x) % TWO_PI\n",
                     path=GEOMETRY, rules=self.RULE)
        assert found == []

    def test_silent_on_sanctioned_helpers(self):
        found = lint("t = signed_angle_of(dx, dy)\n"
                     "u = normalize_angle(a - b)\n", rules=self.RULE)
        assert found == []

    def test_modulo_other_constant_ok(self):
        found = lint("g = a % 7\nh = a % math.pi\n", rules=self.RULE)
        assert found == []

    def test_noqa_suppresses(self):
        found = lint("t = math.atan2(y, x)  # desks: noqa-DAL001\n",
                     rules=self.RULE)
        assert active(found) == []
        assert [f.code for f in found if f.suppressed] == ["DAL001"]


# -- DAL002: float equality on angles/distances ------------------------------


class TestFloatEquality:
    RULE = [FloatEqualityRule]

    def test_angle_name_fires(self):
        assert codes(lint("if theta == other:\n    pass\n",
                          rules=self.RULE)) == ["DAL002"]

    def test_distance_attribute_fires(self):
        assert codes(lint("if a.distance != b.distance:\n    pass\n",
                          rules=self.RULE)) == ["DAL002"]

    def test_nonzero_float_literal_fires(self):
        assert codes(lint("if weight == 0.25:\n    pass\n",
                          rules=self.RULE)) == ["DAL002"]

    def test_zero_literal_sentinel_ok(self):
        # Exact-zero guards (e.g. the zero-vector check in angle_of) are a
        # sanctioned sentinel pattern.
        assert lint("if dx == 0.0 and dy == 0.0:\n    pass\n",
                    rules=self.RULE) == []

    def test_int_comparison_ok(self):
        assert lint("if count == 3:\n    pass\n", rules=self.RULE) == []

    def test_noqa_suppresses(self):
        found = lint("same = theta == 0.5  # desks: noqa-DAL002\n",
                     rules=self.RULE)
        assert active(found) == []


# -- DAL003: bare lock.acquire() ---------------------------------------------


class TestBareAcquire:
    RULE = [BareAcquireRule]

    def test_bare_acquire_fires(self):
        src = "lock.acquire()\ndo_work()\nlock.release()\n"
        assert codes(lint(src, rules=self.RULE)) == ["DAL003"]

    def test_try_finally_ok(self):
        src = ("lock.acquire()\n"
               "try:\n    do_work()\nfinally:\n    lock.release()\n")
        assert lint(src, rules=self.RULE) == []

    def test_with_statement_ok(self):
        assert lint("with lock:\n    do_work()\n", rules=self.RULE) == []

    def test_mismatched_finally_still_fires(self):
        src = ("a.acquire()\n"
               "try:\n    do_work()\nfinally:\n    b.release()\n")
        assert codes(lint(src, rules=self.RULE)) == ["DAL003"]

    def test_noqa_suppresses(self):
        found = lint("ok = lock.acquire(False)  # desks: noqa-DAL003\n",
                     rules=self.RULE)
        assert active(found) == []


# -- DAL004: stray file writes -----------------------------------------------


class TestStrayFileWrite:
    RULE = [StrayFileWriteRule]

    def test_binary_write_open_fires(self):
        assert codes(lint('f = open(p, "wb")\n',
                          rules=self.RULE)) == ["DAL004"]

    def test_fsync_fires(self):
        assert codes(lint("import os\nos.fsync(fd)\n",
                          rules=self.RULE)) == ["DAL004"]

    def test_rename_fires(self):
        assert codes(lint("import os\nos.replace(a, b)\n",
                          rules=self.RULE)) == ["DAL004"]

    def test_read_open_ok(self):
        assert lint('f = open(p, "rb")\ng = open(p)\n',
                    rules=self.RULE) == []

    def test_silent_inside_storage(self):
        assert lint('import os\nf = open(p, "wb")\nos.fsync(f.fileno())\n',
                    path=STORAGE, rules=self.RULE) == []

    def test_silent_inside_durability(self):
        assert lint('f = open(p, "ab")\n',
                    path="src/repro/durability/wal.py",
                    rules=self.RULE) == []


# -- DAL005: buffer-pool bypass ----------------------------------------------


class TestBufferBypass:
    RULE = [BufferBypassRule]

    def test_inner_read_fires(self):
        assert codes(lint("data = store.inner.read_page(3)\n",
                          rules=self.RULE)) == ["DAL005"]

    def test_inner_write_fires(self):
        assert codes(lint("store.inner.write_page(3, data)\n",
                          rules=self.RULE)) == ["DAL005"]

    def test_pool_read_ok(self):
        assert lint("data = pool.read_page(3)\n", rules=self.RULE) == []

    def test_silent_inside_storage(self):
        assert lint("data = self._store.read_page(3)\n",
                    path=STORAGE, rules=self.RULE) == []

    def test_noqa_suppresses(self):
        found = lint("d = store.inner.read_page(0)  # desks: noqa-DAL005\n",
                     rules=self.RULE)
        assert active(found) == []


# -- DAL006: nondeterminism in search/recovery paths -------------------------


class TestNondeterminism:
    RULE = [NondeterminismRule]

    def test_time_time_fires(self):
        assert codes(lint("import time\nt0 = time.time()\n",
                          rules=self.RULE)) == ["DAL006"]

    def test_unseeded_module_random_fires(self):
        assert codes(lint("import random\nx = random.random()\n",
                          rules=self.RULE)) == ["DAL006"]

    def test_unseeded_rng_constructor_fires(self):
        assert codes(lint("import random\nrng = random.Random()\n",
                          rules=self.RULE)) == ["DAL006"]

    def test_seeded_rng_ok(self):
        assert lint("import random\nrng = random.Random(7)\n",
                    rules=self.RULE) == []

    def test_outside_scoped_packages_ok(self):
        assert lint("import time\nt0 = time.time()\n",
                    path="src/repro/service/metrics.py",
                    rules=self.RULE) == []

    def test_kernel_package_is_scoped(self):
        # The columnar kernel's bit-exactness contract makes it a
        # deterministic path like core/geometry.
        assert codes(lint("import time\nt0 = time.time()\n",
                          path="src/repro/kernel/search.py",
                          rules=self.RULE)) == ["DAL006"]

    def test_monotonic_ok(self):
        # Durations may use the monotonic clock; only wall-clock reads
        # threaten reproducibility of recorded artifacts.
        assert lint("import time\ndt = time.monotonic()\n",
                    rules=self.RULE) == []


# -- DAL007: raw transport outside repro.net ---------------------------------


class TestTransport:
    RULE = [TransportRule]
    NET = "src/repro/net/example.py"

    def test_import_socket_fires(self):
        found = lint("import socket\n", rules=self.RULE)
        assert codes(found) == ["DAL007"]
        assert found[0].line == 1

    def test_import_asyncio_fires(self):
        assert codes(lint("import asyncio\n",
                          rules=self.RULE)) == ["DAL007"]

    def test_from_import_fires(self):
        for stmt in ("from socket import create_connection",
                     "from asyncio import StreamReader",
                     "from socket.whatever import x",
                     "import socketserver",
                     "import selectors",
                     "import ssl"):
            assert codes(lint(stmt + "\n",
                              rules=self.RULE)) == ["DAL007"], stmt

    def test_lazy_function_local_import_still_fires(self):
        src = ("def probe(address):\n"
               "    import socket\n"
               "    return socket.create_connection(address)\n")
        found = lint(src, rules=self.RULE)
        assert codes(found) == ["DAL007"]
        assert found[0].line == 2

    def test_aliased_import_fires(self):
        assert codes(lint("import socket as sk\n",
                          rules=self.RULE)) == ["DAL007"]

    def test_silent_inside_repro_net(self):
        src = "import socket\nimport asyncio\n"
        assert lint(src, path=self.NET, rules=self.RULE) == []
        assert lint(src, path="src/repro/net/sub/deep.py",
                    rules=self.RULE) == []

    def test_relative_and_unrelated_imports_ok(self):
        src = ("import threading\n"
               "from . import protocol\n"
               "from ..service import MetricsRegistry\n"
               "import socketish_helper\n")
        assert lint(src, rules=self.RULE) == []

    def test_noqa_suppresses(self):
        found = lint("import socket  # desks: noqa-DAL007\n",
                     rules=self.RULE)
        assert active(found) == []
        assert [f.code for f in found if f.suppressed] == ["DAL007"]


# -- DAL008: repro.lang dependency purity -------------------------------------


class TestLanguagePurity:
    RULE = [LanguagePurityRule]
    LANG = "src/repro/lang/executor.py"

    def test_absolute_import_of_service_fires(self):
        found = lint("from repro.service import QueryEngine\n",
                     path=self.LANG, rules=self.RULE)
        assert codes(found) == ["DAL008"]
        assert "repro.service" in found[0].message

    def test_relative_import_of_cluster_fires(self):
        found = lint("from ..cluster import ShardRouter\n",
                     path=self.LANG, rules=self.RULE)
        assert codes(found) == ["DAL008"]

    def test_plain_import_of_net_fires(self):
        found = lint("import repro.net.client\n",
                     path=self.LANG, rules=self.RULE)
        assert codes(found) == ["DAL008"]

    def test_from_repro_import_package_fires(self):
        for stmt in ("from repro import net\n", "from .. import service\n"):
            assert codes(lint(stmt, path=self.LANG,
                              rules=self.RULE)) == ["DAL008"], stmt

    def test_allowed_dependencies_ok(self):
        src = ("import math\n"
               "from . import errors\n"
               "from .plan import SelectPlan\n"
               "from ..core import DesksSearcher\n"
               "from ..geometry import DirectionInterval\n"
               "from ..text import keyword_set\n"
               "from ..trace import explain\n"
               "from repro.core import ResultEntry\n")
        assert lint(src, path=self.LANG, rules=self.RULE) == []

    def test_silent_outside_repro_lang(self):
        src = "from ..cluster import ShardRouter\n"
        assert lint(src, path="src/repro/net/frontend.py",
                    rules=self.RULE) == []

    def test_lazy_function_local_import_still_fires(self):
        src = ("def run():\n"
               "    from ..net import RemoteShardClient\n"
               "    return RemoteShardClient\n")
        found = lint(src, path=self.LANG, rules=self.RULE)
        assert codes(found) == ["DAL008"]
        assert found[0].line == 2

    def test_noqa_suppresses(self):
        found = lint("from ..service import QueryEngine"
                     "  # desks: noqa-DAL008\n",
                     path=self.LANG, rules=self.RULE)
        assert active(found) == []
        assert [f.code for f in found if f.suppressed] == ["DAL008"]


# -- DAL009: chaos injector stays out of production paths ---------------------


class TestChaosContainment:
    RULE = [ChaosContainmentRule]
    NET = "src/repro/net/client.py"

    def test_absolute_import_fires(self):
        found = lint("import repro.net.chaos\n", rules=self.RULE)
        assert codes(found) == ["DAL009"]

    def test_from_import_fires(self):
        found = lint("from repro.net.chaos import ChaosProxy\n",
                     path="src/repro/cluster/router.py", rules=self.RULE)
        assert codes(found) == ["DAL009"]

    def test_from_package_import_chaos_fires(self):
        found = lint("from repro.net import chaos\n", rules=self.RULE)
        assert codes(found) == ["DAL009"]

    def test_relative_import_within_net_fires(self):
        for stmt in ("from .chaos import ChaosProxy\n",
                     "from . import chaos\n"):
            assert codes(lint(stmt, path=self.NET,
                              rules=self.RULE)) == ["DAL009"], stmt

    def test_chaos_module_itself_is_exempt(self):
        src = ("import socket\n"
               "from .protocol import HEADER_FORMAT\n")
        assert lint(src, path="src/repro/net/chaos.py",
                    rules=self.RULE) == []

    def test_other_net_imports_ok(self):
        src = ("from .protocol import HEADER_FORMAT\n"
               "from .resilience import CircuitBreaker\n"
               "from repro.net import RemoteShardClient\n")
        assert lint(src, path=self.NET, rules=self.RULE) == []

    def test_noqa_suppresses(self):
        found = lint("from repro.net import chaos  # desks: noqa-DAL009\n",
                     rules=self.RULE)
        assert active(found) == []
        assert [f.code for f in found if f.suppressed] == ["DAL009"]


# -- engine plumbing ----------------------------------------------------------


class TestEngine:
    def test_findings_sorted_and_located(self):
        src = ("import math\n"
               "b = math.atan2(y, x)\n"
               "a = theta == 0.5\n")
        found = lint(src)
        assert [(f.line, f.code) for f in found] == [(2, "DAL001"),
                                                     (3, "DAL002")]
        assert found[0].snippet == "b = math.atan2(y, x)"

    def test_multi_code_noqa(self):
        src = ("t = math.atan2(y, x) == 0.5"
               "  # desks: noqa-DAL001,DAL002\n")
        found = lint(src)
        assert active(found) == []
        assert sorted(f.code for f in found) == ["DAL001", "DAL002"]

    def test_noqa_is_per_code(self):
        src = "t = math.atan2(y, x) == 0.5  # desks: noqa-DAL001\n"
        assert codes(lint(src)) == ["DAL002"]

    def test_check_reports_syntax_errors(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        report = LintEngine().check([str(tmp_path)])
        assert not report.clean
        assert report.errors and str(bad) in report.errors[0][0]

    def test_discover_skips_pycache(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "ok.cpython-311.py").write_text("x = 1\n")
        assert LintEngine.discover(str(tmp_path)) == [
            str(tmp_path / "ok.py")]

    def test_golden_json_report(self, tmp_path):
        target = tmp_path / "repro" / "core"
        target.mkdir(parents=True)
        mod = target / "golden.py"
        mod.write_text("import math\n"
                       "t = math.atan2(y, x)\n"
                       "u = time.time()  # desks: noqa-DAL006\n")
        report = LintEngine().check([str(mod)])
        got = json.loads(report.to_json())
        got["findings"][0]["path"] = "<path>"
        got["suppressed"][0]["path"] = "<path>"
        assert got == {
            "clean": False,
            "counts": {"DAL001": 1},
            "errors": [],
            "files_checked": 1,
            "findings": [{
                "code": "DAL001",
                "col": 4,
                "line": 2,
                "message": ("raw math.atan2 outside repro.geometry; "
                            "use angle_of / signed_angle_of"),
                "path": "<path>",
                "snippet": "t = math.atan2(y, x)",
                "suppressed": False,
            }],
            "suppressed": [{
                "code": "DAL006",
                "col": 4,
                "line": 3,
                "message": ("time.time in a deterministic path; use "
                            "perf_counter/monotonic for durations"),
                "path": "<path>",
                "snippet": "u = time.time()  # desks: noqa-DAL006",
                "suppressed": True,
            }],
        }

    def test_src_tree_is_clean(self):
        report = LintEngine().check(["src"])
        assert report.clean, "\n" + report.render()


# -- catalog/documentation meta-tests -----------------------------------------


class TestCatalog:
    def test_rule_index_covers_all_rules(self):
        from repro.analysis import ALIAS_CODES, PROGRAM_RULES

        own_codes = ({r.code for r in ALL_RULES}
                     | {r.code for r in PROGRAM_RULES})
        assert set(RULE_INDEX) == own_codes | set(ALIAS_CODES)
        # Alias codes must not shadow a rule's own code.
        assert not own_codes & set(ALIAS_CODES)
        # Every legacy contract code stays addressable via --rules.
        assert {"DAL007", "DAL008", "DAL009"} <= set(ALIAS_CODES)

    def test_every_rule_has_code_summary_rationale(self):
        from repro.analysis import PROGRAM_RULES

        for rule in tuple(ALL_RULES) + tuple(PROGRAM_RULES):
            assert rule.code.startswith("DAL") and len(rule.code) == 6
            assert rule.summary, rule
            assert rule.rationale, rule

    def test_catalog_matches_rules(self):
        from repro.analysis import PROGRAM_RULES

        catalog = rule_catalog()
        assert [entry["code"] for entry in catalog] == sorted(
            r.code for r in tuple(ALL_RULES) + tuple(PROGRAM_RULES))

    @pytest.mark.parametrize("doc", ["docs/ANALYSIS.md"])
    def test_every_code_documented(self, doc):
        import pathlib

        from repro.analysis import PROGRAM_RULES

        root = pathlib.Path(__file__).resolve().parents[2]
        text = (root / doc).read_text(encoding="utf-8")
        for rule in tuple(ALL_RULES) + tuple(PROGRAM_RULES):
            assert rule.code in text, (
                f"{rule.code} is missing from {doc}")
        # ...and the doc names no codes that do not exist (DAL999 is the
        # worked example in the "adding a rule" section; alias codes
        # DAL007-009 are in RULE_INDEX, so they stay legal to document).
        import re
        for code in set(re.findall(r"DAL\d{3}", text)) - {"DAL999"}:
            assert code in RULE_INDEX, (
                f"{doc} documents unknown rule {code}")
