"""The whole-program substrate: import graph, call graph, determinism."""

import ast
import json
import textwrap

from repro.analysis.graph import (
    CallGraph,
    ImportGraph,
    ProgramIndex,
    build_graph,
    unit_of,
)


def program(by_path=None, **modules):
    """A ProgramIndex from ``{path: source}`` (kwargs use __ for /)."""
    paths = dict(by_path or {})
    for key, source in modules.items():
        paths[key.replace("__", "/") + ".py"] = source
    items = []
    for path, source in sorted(paths.items()):
        source = textwrap.dedent(source)
        items.append((path, source, ast.parse(source)))
    return ProgramIndex.from_sources(items)


# -- units and resolution -----------------------------------------------------


class TestUnits:
    def test_unit_is_first_segment_under_repro(self):
        assert unit_of("repro/storage/buffer.py") == "storage"
        assert unit_of("repro/net/chaos.py") == "net"
        assert unit_of("outside/thing.py") == ""

    def test_top_level_modules_are_their_own_unit(self):
        assert unit_of("repro/cli.py") == "cli"
        assert unit_of("repro/__init__.py") == "__init__"

    def test_resolve_prefers_module_then_package(self):
        index = program({
            "src/repro/core/query.py": "x = 1\n",
            "src/repro/core/__init__.py": "",
        })
        assert index.resolve(["repro", "core", "query"]) == \
            "repro/core/query.py"
        assert index.resolve(["repro", "core"]) == \
            "repro/core/__init__.py"
        assert index.resolve(["repro", "nope"]) is None


# -- import graph -------------------------------------------------------------


SAMPLE = dict(
    src__repro__geometry__angles="TAU = 6.0\n",
    src__repro__storage__pages="""
        from ..geometry import angles

        def load():
            from ..geometry.angles import TAU
            return TAU
    """,
    src__repro__net__server="import socket\nfrom ..storage import pages\n",
)


class TestImportGraph:
    def test_edges_cover_top_level_deferred_and_external(self):
        graph = ImportGraph.build(program(**SAMPLE))
        edges = {(e.src, e.dst, e.deferred) for e in graph.edges}
        assert ("repro/storage/pages.py",
                "repro/geometry/angles.py", False) in edges
        assert ("repro/storage/pages.py",
                "repro/geometry/angles.py", True) in edges
        assert ("repro/net/server.py", "socket", False) in edges
        assert ("repro/net/server.py",
                "repro/storage/pages.py", False) in edges

    def test_unit_table_rolls_up_by_unit(self):
        graph = ImportGraph.build(program(**SAMPLE))
        by_unit = {row["name"]: row for row in graph.unit_table()}
        assert "geometry" in by_unit["storage"]["imports"]
        assert by_unit["net"]["external"] == ["socket"]
        assert by_unit["geometry"]["imports"] == []

    def test_json_is_stable_across_two_builds(self):
        first = ImportGraph.build(program(**SAMPLE)).to_json()
        second = ImportGraph.build(program(**SAMPLE)).to_json()
        assert first == second
        payload = json.loads(first)
        assert payload["schema"] == 1
        assert set(payload) == {"schema", "modules", "edges", "units"}

    def test_dot_renders_units_with_deferred_dashed(self):
        dot = ImportGraph.build(program(**SAMPLE)).to_dot()
        assert dot.startswith("digraph repro {")
        assert '"storage" -> "geometry"' in dot
        assert "dashed" not in dot  # the storage->geometry edge is
        # also taken at module top level, so it renders solid

    def test_deferred_only_unit_edge_is_dashed(self):
        graph = ImportGraph.build(program(
            src__repro__trace__span="""
                def lazy():
                    from ..storage import pages
                    return pages
            """,
            src__repro__storage__pages="x = 1\n",
        ))
        assert '"trace" -> "storage" [style=dashed];' in graph.to_dot()

    def test_write_emits_json_and_dot(self, tmp_path):
        base = str(tmp_path / "graph")
        json_path, dot_path = ImportGraph.build(
            program(**SAMPLE)).write(base)
        assert json_path == base + ".json"
        assert dot_path == base + ".dot"
        assert json.load(open(json_path))["schema"] == 1
        assert open(dot_path).read().startswith("digraph repro {")


class TestRealTreeGolden:
    def test_src_graph_is_deterministic_across_runs(self):
        first = build_graph(["src"]).to_json()
        second = build_graph(["src"]).to_json()
        assert first == second

    def test_src_graph_contains_known_unit_edges(self):
        by_unit = {row["name"]: row
                   for row in build_graph(["src"]).unit_table()}
        assert "storage" in by_unit["rtree"]["imports"]
        assert "service" in by_unit["cluster"]["imports"]
        assert "socket" in by_unit["net"]["external"]
        # geometry sits at the bottom of the tower: no internal deps.
        assert by_unit["geometry"]["imports"] == []


# -- call graph ---------------------------------------------------------------


class TestCallGraph:
    def test_resolves_local_module_and_method_calls(self):
        index = program(
            src__repro__core__a="""
                from . import b

                def top():
                    helper()
                    b.other()

                def helper():
                    pass
            """,
            src__repro__core__b="""
                def other():
                    pass
            """,
        )
        graph = CallGraph(index)
        calls = graph.calls["repro/core/a.py::top"]
        assert "repro/core/a.py::helper" in calls
        assert "repro/core/b.py::other" in calls

    def test_resolves_self_calls_through_base_classes(self):
        index = program(
            src__repro__core__svc="""
                class Base:
                    def ping(self):
                        pass

                class Impl(Base):
                    def run(self):
                        self.ping()
            """,
        )
        graph = CallGraph(index)
        assert "repro/core/svc.py::Base.ping" in \
            graph.calls["repro/core/svc.py::Impl.run"]

    def test_indexes_the_real_tree_broadly(self):
        graph = CallGraph(ProgramIndex.from_paths(["src"]))
        assert len(graph.functions) > 500
        resolved = sum(len(v) for v in graph.calls.values())
        assert resolved > 500
