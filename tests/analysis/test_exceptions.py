"""Exception-flow checking (DAL011): broad handlers and boundary escapes."""

import ast
import textwrap

from repro.analysis import Contract, ExceptionFlowRule, LintEngine
from repro.analysis.graph import ProgramIndex

SVC = "src/repro/service/example.py"


def run_rule(sources, contract=None):
    """DAL011 findings over ``{path: source}``, optionally under a
    custom contract."""
    items = []
    for path, source in sorted(sources.items()):
        source = textwrap.dedent(source)
        items.append((path, source, ast.parse(source)))
    rule = ExceptionFlowRule()
    rule.contract = contract
    return rule.check(ProgramIndex.from_sources(items))


def lint(source, path=SVC):
    """Engine-level single-module lint (program rules + noqa routing)."""
    engine = LintEngine([], program_rules=[ExceptionFlowRule])
    return engine.check_source(textwrap.dedent(source), path)


BOUNDARY_CONTRACT = Contract.from_dict({
    "schema": 1,
    "layer": [{"name": "net", "deps": []}],
    "boundary": [{"module": "repro/net/server.py",
                  "function": "Server.dispatch",
                  "allowed": ["ProtocolError"]}],
})


# -- handler facet ------------------------------------------------------------


class TestHandlerFacet:
    def test_swallowing_except_exception_fires(self):
        found = lint("""
            def f():
                try:
                    work()
                except Exception:
                    pass
        """)
        assert [f.code for f in found] == ["DAL011"]
        assert "swallows the exception" in found[0].message

    def test_bare_except_fires(self):
        found = lint("""
            def f():
                try:
                    work()
                except:
                    log()
        """)
        assert [f.code for f in found] == ["DAL011"]
        assert "bare `except:`" in found[0].message

    def test_except_base_exception_fires(self):
        found = lint("""
            def f():
                try:
                    work()
                except BaseException:
                    cleanup()
        """)
        assert [f.code for f in found] == ["DAL011"]

    def test_reraise_is_silent(self):
        assert lint("""
            def f():
                try:
                    work()
                except Exception:
                    cleanup()
                    raise
        """) == []

    def test_raise_from_is_silent(self):
        assert lint("""
            def f():
                try:
                    work()
                except Exception as exc:
                    raise RuntimeError("wrapped") from exc
        """) == []

    def test_narrow_handler_is_silent(self):
        assert lint("""
            def f():
                try:
                    work()
                except (ValueError, KeyError):
                    pass
        """) == []

    def test_noqa_suppresses(self):
        found = lint("""
            def f():
                try:
                    work()
                except Exception:  # desks: noqa-DAL011 - fire and forget
                    pass
        """)
        assert [f.code for f in found if f.suppressed] == ["DAL011"]
        assert not [f for f in found if not f.suppressed]

    def test_boundary_function_may_catch_broadly(self):
        found = run_rule({
            "src/repro/net/server.py": """
                class Server:
                    def dispatch(self):
                        try:
                            self.handle()
                        except Exception:
                            self.send_error()

                    def handle(self):
                        pass

                    def send_error(self):
                        pass
            """,
        }, contract=BOUNDARY_CONTRACT)
        assert found == []


# -- escape facet -------------------------------------------------------------


class TestEscapeFacet:
    def test_direct_raise_escaping_boundary_fires(self):
        found = run_rule({
            "src/repro/net/server.py": """
                class Server:
                    def dispatch(self):
                        raise ValueError("boom")
            """,
        }, contract=BOUNDARY_CONTRACT)
        assert [f.code for f in found] == ["DAL011"]
        assert "`ValueError`" in found[0].message
        assert "Server.dispatch" in found[0].message

    def test_allowed_exception_is_silent(self):
        assert run_rule({
            "src/repro/net/server.py": """
                class ProtocolError(RuntimeError):
                    pass

                class Server:
                    def dispatch(self):
                        raise ProtocolError("typed")
            """,
        }, contract=BOUNDARY_CONTRACT) == []

    def test_subclass_of_allowed_is_silent(self):
        assert run_rule({
            "src/repro/net/server.py": """
                class ProtocolError(RuntimeError):
                    pass

                class BadMagic(ProtocolError):
                    pass

                class Server:
                    def dispatch(self):
                        raise BadMagic("still typed")
            """,
        }, contract=BOUNDARY_CONTRACT) == []

    def test_escape_through_a_callee_fires(self):
        found = run_rule({
            "src/repro/net/server.py": """
                from .helpers import parse

                class Server:
                    def dispatch(self):
                        parse(b"frame")
            """,
            "src/repro/net/helpers.py": """
                def parse(blob):
                    if not blob:
                        raise KeyError("empty")
            """,
        }, contract=BOUNDARY_CONTRACT)
        assert [f.code for f in found] == ["DAL011"]
        assert "`KeyError`" in found[0].message
        assert "helpers.py:4" in found[0].message

    def test_callee_escape_caught_at_the_boundary_is_silent(self):
        assert run_rule({
            "src/repro/net/server.py": """
                from .helpers import parse

                class Server:
                    def dispatch(self):
                        try:
                            parse(b"frame")
                        except KeyError:
                            self.send_error()

                    def send_error(self):
                        pass
            """,
            "src/repro/net/helpers.py": """
                def parse(blob):
                    if not blob:
                        raise KeyError("empty")
            """,
        }, contract=BOUNDARY_CONTRACT) == []

    def test_catch_and_convert_to_typed_error_is_silent(self):
        assert run_rule({
            "src/repro/net/server.py": """
                class ProtocolError(RuntimeError):
                    pass

                class Server:
                    def dispatch(self):
                        try:
                            self.work()
                        except ValueError as exc:
                            raise ProtocolError(str(exc)) from exc

                    def work(self):
                        raise ValueError("boom")
            """,
        }, contract=BOUNDARY_CONTRACT) == []

    def test_except_exception_stops_everything_but_outside(self):
        found = run_rule({
            "src/repro/net/server.py": """
                class Server:
                    def dispatch(self):
                        try:
                            self.work()
                        except Exception:
                            raise

                    def work(self):
                        raise KeyboardInterrupt()
            """,
        }, contract=BOUNDARY_CONTRACT)
        assert [f.code for f in found] == ["DAL011"]
        assert "`KeyboardInterrupt`" in found[0].message

    def test_finally_does_not_catch(self):
        found = run_rule({
            "src/repro/net/server.py": """
                class Server:
                    def dispatch(self):
                        try:
                            raise OSError("io")
                        finally:
                            self.cleanup()

                    def cleanup(self):
                        pass
            """,
        }, contract=BOUNDARY_CONTRACT)
        assert [f.code for f in found] == ["DAL011"]
        assert "`OSError`" in found[0].message


# -- the real tree ------------------------------------------------------------


class TestRealTree:
    def test_src_is_clean_and_waivers_are_exactly_the_audited_set(self):
        engine = LintEngine()
        report = engine.check(["src"])
        assert report.clean, "\n" + report.render()
        waivers = sorted((f.path, f.line) for f in report.suppressed
                         if f.code == "DAL011")
        assert waivers == [
            ("src/repro/cluster/replica.py", 260),
            ("src/repro/net/frontend.py", 90),
            ("src/repro/net/loadgen.py", 158),
            ("src/repro/service/engine.py", 326),
            ("src/repro/service/workload.py", 126),
        ]
