"""Concurrency stress harness: the real engine/cache/buffer stack runs
under the lock-order detector and must produce a cycle-free graph.

Marked ``race`` so CI's analysis job can run it in isolation
(``pytest -m race``); it is fast enough to stay in tier-1 too.
"""

import random
import threading

import pytest

from repro.analysis import (
    LockTracker,
    WriteTracker,
    disable_lock_tracking,
    disable_write_tracking,
    enable_lock_tracking,
    enable_write_tracking,
)
from repro.core import DesksIndex, MutableDesksIndex
from repro.service import QueryEngine

from ..service.conftest import KEYWORD_POOL, make_collection, make_queries

pytestmark = pytest.mark.race


@pytest.fixture()
def tracker():
    # Tracking must be on *before* the stack under test is built: locks
    # pick raw vs tracked at creation time.
    t = enable_lock_tracking(LockTracker())
    yield t
    disable_lock_tracking()


@pytest.fixture()
def write_tracker():
    # Same creation-time rule as locks: registration instruments objects
    # only while a tracker is installed.
    t = enable_write_tracking(WriteTracker())
    yield t
    disable_write_tracking()
    disable_lock_tracking()


def test_engine_mutable_index_cache_stress(tracker):
    """Queries + mutations + metrics racing: the graph's only edge is the
    generation-bump cache invalidation, and there is no cycle."""
    collection = make_collection(n=300, seed=11)
    index = MutableDesksIndex(collection, num_bands=4, num_wedges=6)
    engine = QueryEngine(index, num_workers=4, cache_capacity=128)
    queries = make_queries(40, seed=5)
    stop = threading.Event()
    errors = []

    def mutate():
        rng = random.Random(99)
        next_id = len(collection)
        try:
            for i in range(30):
                if stop.is_set():
                    break
                index.insert(rng.uniform(0, 100.0), rng.uniform(0, 100.0),
                             rng.sample(KEYWORD_POOL, 2))
                next_id += 1
                if i % 3 == 0:
                    index.delete(rng.randrange(next_id))
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    mutator = threading.Thread(target=mutate)
    mutator.start()
    try:
        futures = [engine.submit(q) for q in queries for _ in range(3)]
        for future in futures:
            future.result(timeout=30)
    finally:
        stop.set()
        mutator.join()
        engine.close()

    assert errors == []
    report = tracker.report()
    assert report.clean, "\n" + report.render()
    assert report.acquisitions > 0
    # The one cross-subsystem hold this stack performs: the mutable
    # index bumps its generation (under its own lock) and the
    # subscribed listener purges the result cache (taking its lock).
    assert ("core.mutable_index", "service.result_cache") in {
        (e.src, e.dst) for e in report.edges}


def test_engine_disk_index_buffer_pool_stress(tracker, tmp_path):
    """Concurrent readers over a disk-backed index: buffer-pool, cache and
    metrics locks interleave across workers without ordering conflicts."""
    collection = make_collection(n=300, seed=12)
    index = DesksIndex(collection, num_bands=4, num_wedges=6,
                       disk_based=True,
                       disk_path_prefix=str(tmp_path / "idx"),
                       buffer_capacity=8)
    engine = QueryEngine(index, num_workers=4, cache_capacity=16)
    queries = make_queries(30, seed=6)
    try:
        futures = [engine.submit(q) for q in queries for _ in range(4)]
        for future in futures:
            future.result(timeout=30)
    finally:
        engine.close()

    report = tracker.report()
    assert report.clean, "\n" + report.render()
    assert report.acquisitions > 0
    names = {e.src for e in report.edges} | {e.dst for e in report.edges}
    # Whatever edges the run produced connect only known roles.
    assert names <= {"storage.buffer_pool", "service.result_cache",
                     "service.metrics.counter",
                     "service.metrics.histogram",
                     "service.metrics.registry", "service.engine"}


def test_write_sanitizer_stress_on_the_real_stack(write_tracker, tmp_path):
    """The engine/cache/metrics/buffer stack under concurrent load makes
    every shared-object write while holding a lock role: zero violations."""
    collection = make_collection(n=300, seed=13)
    index = DesksIndex(collection, num_bands=4, num_wedges=6,
                       disk_based=True,
                       disk_path_prefix=str(tmp_path / "idx"),
                       buffer_capacity=8)
    engine = QueryEngine(index, num_workers=4, cache_capacity=16)
    queries = make_queries(30, seed=7)
    try:
        futures = [engine.submit(q) for q in queries for _ in range(4)]
        for future in futures:
            future.result(timeout=30)
    finally:
        engine.close()

    report = write_tracker.report()
    assert report.writes > 0, "nothing was tracked: registration broke"
    assert report.clean, "\n" + report.render()


def test_write_sanitizer_catches_a_deliberate_unguarded_write(write_tracker):
    """Proof the harness can fail: an attribute poked from outside any
    lock on a registered engine is reported with role, attr, and stack."""
    collection = make_collection(n=50, seed=14)
    index = MutableDesksIndex(collection, num_bands=4, num_wedges=6)
    engine = QueryEngine(index, num_workers=2, cache_capacity=8)
    try:
        engine._closed = engine._closed  # no lock held: must be flagged
    finally:
        engine.close()

    violations = {(v.role, v.attr)
                  for v in write_tracker.report().violations}
    assert ("service.engine", "_closed") in violations
