"""Tests for the POI model, synthetic generators, and loaders."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import (
    POI,
    POICollection,
    SyntheticConfig,
    california_like,
    china_like,
    dataset_statistics,
    format_table2,
    generate,
    load_csv,
    load_preset,
    save_csv,
    virginia_like,
)
from repro.geometry import Point


def small_collection():
    return POICollection([
        POI.make(0, 1.0, 2.0, ["cafe", "coffee"]),
        POI.make(1, 3.0, 4.0, ["atm", "bank"]),
        POI.make(2, 5.0, 0.0, ["cafe"]),
    ])


class TestPOI:
    def test_make(self):
        p = POI.make(7, 1.5, 2.5, ["a", "b", "a"])
        assert p.poi_id == 7
        assert p.location == Point(1.5, 2.5)
        assert p.keywords == frozenset({"a", "b"})

    def test_contains_all(self):
        p = POI.make(0, 0, 0, ["x", "y"])
        assert p.contains_all(["x"])
        assert p.contains_all(["x", "y"])
        assert not p.contains_all(["x", "z"])


class TestPOICollection:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            POICollection([])

    def test_ids_renumbered_dense(self):
        col = POICollection([POI.make(99, 0, 0, ["a"]),
                             POI.make(42, 1, 1, ["b"])])
        assert [p.poi_id for p in col] == [0, 1]
        assert col[1].location == Point(1, 1)

    def test_term_ids_interned(self):
        col = small_collection()
        cafe = col.vocabulary.id_of("cafe")
        assert cafe in col.term_ids(0)
        assert cafe in col.term_ids(2)
        assert col.term_ids(1).isdisjoint(col.term_ids(2))

    def test_query_term_ids(self):
        col = small_collection()
        assert col.query_term_ids(["cafe"]) is not None
        assert col.query_term_ids(["cafe", "nothere"]) is None

    def test_mbr_covers_all(self):
        col = small_collection()
        for p in col:
            assert col.mbr.contains_point(p.location)

    def test_statistics(self):
        col = small_collection()
        assert col.total_term_occurrences == 5
        assert col.num_unique_terms == 4
        assert col.avg_terms_per_poi == pytest.approx(5 / 3)

    def test_subset(self):
        col = small_collection()
        sub = col.subset(2)
        assert len(sub) == 2
        assert sub[0].keywords == col[0].keywords
        with pytest.raises(ValueError):
            col.subset(0)
        with pytest.raises(ValueError):
            col.subset(4)


class TestSyntheticConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticConfig("x", 0, 100, 3.0)
        with pytest.raises(ValueError):
            SyntheticConfig("x", 10, 5, 3.0)
        with pytest.raises(ValueError):
            SyntheticConfig("x", 10, 100, 0.5)
        with pytest.raises(ValueError):
            SyntheticConfig("x", 10, 100, 3.0, cluster_fraction=1.5)


class TestGenerate:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate(SyntheticConfig(
            "test", num_pois=2000, num_unique_terms=500,
            avg_terms_per_poi=4.0, seed=3))

    def test_size(self, dataset):
        assert len(dataset) == 2000

    def test_deterministic(self):
        cfg = SyntheticConfig("t", 200, 100, 3.0, seed=5)
        a, b = generate(cfg), generate(cfg)
        assert all(pa.location == pb.location and pa.keywords == pb.keywords
                   for pa, pb in zip(a, b))

    def test_seed_changes_output(self):
        a = generate(SyntheticConfig("t", 200, 100, 3.0, seed=5))
        b = generate(SyntheticConfig("t", 200, 100, 3.0, seed=6))
        assert any(pa.location != pb.location for pa, pb in zip(a, b))

    def test_locations_in_extent(self, dataset):
        assert dataset.mbr.min_x >= 0.0
        assert dataset.mbr.max_x <= 10_000.0
        assert dataset.mbr.min_y >= 0.0
        assert dataset.mbr.max_y <= 10_000.0

    def test_avg_terms_near_target(self, dataset):
        assert dataset.avg_terms_per_poi == pytest.approx(4.0, rel=0.15)

    def test_keyword_skew(self, dataset):
        """Zipf sampling must make some terms far more frequent than others."""
        freqs = sorted(
            (dataset.vocabulary.doc_frequency(t)
             for t in range(len(dataset.vocabulary))), reverse=True)
        assert freqs[0] > 20 * max(freqs[len(freqs) // 2], 1)

    def test_every_poi_has_keywords(self, dataset):
        assert all(p.keywords for p in dataset)

    def test_spatial_clustering(self, dataset):
        """Clustered data: a small area around a dense cell holds many POIs."""
        from collections import Counter
        cells = Counter(
            (int(p.location.x // 500), int(p.location.y // 500))
            for p in dataset)
        top = cells.most_common(1)[0][1]
        expected_uniform = len(dataset) / 400  # 20x20 grid
        assert top > 3 * expected_uniform


class TestPresets:
    def test_preset_scaling(self):
        cfg = california_like(scale=1000.0)
        assert cfg.num_pois == 910
        assert cfg.avg_terms_per_poi == pytest.approx(8.57)

    def test_all_presets_generate(self):
        for factory in (california_like, virginia_like, china_like):
            cfg = factory(scale=5000.0)
            col = generate(cfg)
            assert len(col) == cfg.num_pois

    def test_load_preset(self):
        col = load_preset("va", scale=5000.0)
        assert len(col) > 0

    def test_load_preset_unknown(self):
        with pytest.raises(ValueError):
            load_preset("mars")

    def test_table2_ratios_preserved(self):
        """CA must be term-richer per POI than CN, as in Table II."""
        ca = generate(california_like(scale=2000.0))
        cn = generate(china_like(scale=20000.0))
        assert ca.avg_terms_per_poi > 1.5 * cn.avg_terms_per_poi


class TestStats:
    def test_statistics_values(self):
        stats = dataset_statistics("X", small_collection())
        assert stats.num_pois == 3
        assert stats.total_terms == 5
        assert stats.num_unique_terms == 4

    def test_format_table2(self):
        table = format_table2([dataset_statistics("X", small_collection())])
        assert "Total number of POIs" in table
        assert "X" in table
        assert "1.67" in table


class TestCSV:
    def test_round_trip(self, tmp_path):
        col = small_collection()
        path = tmp_path / "pois.csv"
        save_csv(col, path)
        loaded = load_csv(path)
        assert len(loaded) == len(col)
        for a, b in zip(col, loaded):
            assert a.location == b.location
            assert a.keywords == b.keywords

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ValueError, match="header"):
            load_csv(path)

    def test_malformed_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text('id,x,y,keywords\n0,1.0\n')
        with pytest.raises(ValueError, match="malformed"):
            load_csv(path)

    def test_bad_coordinates_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text('id,x,y,keywords\n0,oops,2.0,cafe\n')
        with pytest.raises(ValueError, match="coordinates"):
            load_csv(path)

    def test_empty_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("id,x,y,keywords\n")
        with pytest.raises(ValueError, match="no POIs"):
            load_csv(path)

    @settings(max_examples=20, deadline=None)
    @given(rows=st.lists(
        st.tuples(
            st.floats(-1e3, 1e3).map(lambda v: round(v, 3)),
            st.floats(-1e3, 1e3).map(lambda v: round(v, 3)),
            st.sets(st.sampled_from(["cafe", "atm", "gas", "pizza"]),
                    min_size=1),
        ),
        min_size=1, max_size=20))
    def test_round_trip_property(self, rows, tmp_path_factory):
        col = POICollection([
            POI.make(i, x, y, kws) for i, (x, y, kws) in enumerate(rows)])
        path = tmp_path_factory.mktemp("csv") / "p.csv"
        save_csv(col, path)
        loaded = load_csv(path)
        for a, b in zip(col, loaded):
            assert a.location == b.location
            assert a.keywords == b.keywords
