"""Executable documentation: every ``python`` fence in the docs runs.

Docs rot silently.  This harness extracts every ````` ```python `````
code fence from README.md and every file under ``docs/`` and executes
them — one shared namespace per document, in order, inside a temp
directory — so an API rename that breaks a published example breaks CI.

A fence can opt out by placing ``<!-- snippet: no-run -->`` on the line
directly above it (for illustrative pseudo-code or examples that need
external state).

The companion link checker verifies every relative markdown link in the
same documents (plus ``results/REPORT.md``) resolves to a real file.
"""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
DOCS_DIR = REPO_ROOT / "docs"

NO_RUN_TAG = "<!-- snippet: no-run -->"

_FENCE = re.compile(r"^(?P<prefix>[^\n]*)\n```python\n(?P<code>.*?)^```$",
                    re.DOTALL | re.MULTILINE)

#: Documents whose python fences must execute.
SNIPPET_DOCS = [REPO_ROOT / "README.md"] + sorted(DOCS_DIR.glob("*.md"))

#: Documents whose links must resolve.
LINKED_DOCS = SNIPPET_DOCS + [REPO_ROOT / "results" / "REPORT.md"]


def python_snippets(path):
    """(code, runnable) for each python fence in ``path``, in order."""
    text = path.read_text(encoding="utf-8")
    return [(m.group("code"), NO_RUN_TAG not in m.group("prefix"))
            for m in _FENCE.finditer("\n" + text)]


def _shrink(code):
    # Keep doc snippets honest but fast: preset ``scale`` divides the
    # paper's POI counts, so a larger scale means a smaller dataset.
    return code.replace("scale=500", "scale=5000") \
               .replace("scale=1000", "scale=5000")


@pytest.mark.parametrize(
    "doc", SNIPPET_DOCS, ids=[p.name for p in SNIPPET_DOCS])
def test_every_python_fence_runs(doc, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)  # snippets may write index dirs etc.
    namespace = {}
    ran = 0
    for index, (code, runnable) in enumerate(python_snippets(doc)):
        if not runnable:
            continue
        try:
            exec(compile(_shrink(code), f"<{doc.name}:snippet-{index}>",
                         "exec"), namespace)
        except Exception as error:  # noqa: BLE001 - reported with context
            pytest.fail(f"{doc.name} snippet #{index} raised "
                        f"{type(error).__name__}: {error}\n---\n{code}")
        ran += 1
    if doc.name in ("README.md", "TUTORIAL.md", "OBSERVABILITY.md"):
        assert ran > 0, f"{doc.name} lost its runnable code fences?"


class TestTutorialWalkthrough:
    """The tutorial is a narrative; check it builds what it claims."""

    def test_walkthrough_produces_its_objects(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        namespace = {}
        for code, runnable in python_snippets(DOCS_DIR / "TUTORIAL.md"):
            if runnable:
                exec(compile(_shrink(code), "<tutorial>", "exec"),
                     namespace)
        assert "searcher" in namespace
        assert "live" in namespace

    def test_tutorial_mentions_every_public_entry_point(self):
        text = (DOCS_DIR / "TUTORIAL.md").read_text(encoding="utf-8")
        for name in ("DesksIndex", "DesksSearcher", "DirectionalQuery",
                     "IncrementalSearcher", "MutableDesksIndex",
                     "PruningMode", "save_index", "load_index",
                     "QueryTrace", "MatchMode", "Tracer", "explain"):
            assert name in text, f"tutorial no longer shows {name}"


_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def relative_links(path):
    out = []
    for target in _LINK.findall(path.read_text(encoding="utf-8")):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        out.append(target.split("#", 1)[0])
    return out


@pytest.mark.parametrize(
    "doc", [p for p in LINKED_DOCS if p.exists()],
    ids=[p.name for p in LINKED_DOCS if p.exists()])
def test_relative_links_resolve(doc):
    broken = [target for target in relative_links(doc)
              if not (doc.parent / target).exists()]
    assert not broken, f"{doc} has broken relative links: {broken}"
