"""The ``kernel`` axis through the serving and cluster layers.

``QueryEngine(kernel="columnar")``, batched submission, the closed-loop
generator's ``batch_size``, and ``ShardRouter(kernel=...)`` must all
give the object path's answers — the axis changes throughput, never
results.
"""

import pytest

from repro.core import MutableDesksIndex
from repro.kernel import ColumnarSnapshot
from repro.service import QueryEngine, run_closed_loop


def entries_of(result):
    return [(entry.poi_id, entry.distance) for entry in result.entries]


@pytest.fixture()
def engines(index):
    with QueryEngine(index, num_workers=2, cache_capacity=4) as obj, \
            QueryEngine(index, num_workers=2, cache_capacity=4,
                        kernel="columnar") as columnar:
        yield obj, columnar


def test_engine_execute_equivalence(engines, corpus):
    obj, columnar = engines
    for query in corpus[::10]:
        expected = obj.execute(query)
        actual = columnar.execute(query)
        assert entries_of(actual.result) == entries_of(expected.result)


def test_engine_rejects_unknown_kernel(index):
    with pytest.raises(ValueError, match="kernel"):
        QueryEngine(index, kernel="simd")


def test_engine_rejects_mutable_index(collection):
    with pytest.raises(ValueError, match="static"):
        QueryEngine(MutableDesksIndex(collection), kernel="columnar")


def test_engine_rejects_foreign_snapshot(index, collection):
    from repro.core import DesksIndex

    other = ColumnarSnapshot(DesksIndex(collection, num_bands=2,
                                        num_wedges=4))
    with pytest.raises(ValueError, match="different index"):
        QueryEngine(index, kernel="columnar", snapshot=other)


def test_engine_shares_supplied_snapshot(index, snapshot):
    with QueryEngine(index, kernel="columnar", snapshot=snapshot) as engine:
        assert engine.snapshot is snapshot


def test_submit_batch_chunks_and_dedupes(engines, corpus):
    obj, columnar = engines
    batch = corpus[:12] + corpus[:3]  # 12 unique + 3 duplicates
    futures = columnar.submit_batch(batch)
    assert len(futures) == 15
    for repeat in range(3):
        assert futures[12 + repeat] is futures[repeat]
    for query, future in zip(batch, futures):
        expected = obj.execute(query)
        assert entries_of(future.result().result) == \
            entries_of(expected.result)
    metrics = columnar.metrics
    assert metrics.counter("batch_unique_total").value == 12
    assert metrics.counter("batch_deduped_total").value == 3


def test_submit_batch_after_close_raises(index):
    engine = QueryEngine(index, kernel="columnar")
    engine.close()
    with pytest.raises(RuntimeError, match="closed"):
        engine.submit_batch(_three_queries())


def _three_queries():
    from repro.core import DirectionalQuery

    return [DirectionalQuery.make(50.0, 50.0, 0.1, 2.0, ["cafe"], k)
            for k in (1, 2, 3)]


def test_closed_loop_batch_size(index, corpus):
    with QueryEngine(index, num_workers=2, kernel="columnar") as engine:
        report = run_closed_loop(engine, corpus[:10], num_clients=2,
                                 requests_per_client=7, batch_size=3)
    assert report.total_queries == 14
    assert report.errors == 0


def test_closed_loop_rejects_bad_batch_size(index, corpus):
    with QueryEngine(index, kernel="columnar") as engine:
        with pytest.raises(ValueError, match="batch_size"):
            run_closed_loop(engine, corpus[:4], num_clients=1,
                            requests_per_client=2, batch_size=0)


def test_router_kernel_axis_equivalence(collection, corpus):
    from repro.cluster import ShardRouter

    with ShardRouter(collection, num_shards=3, replication=2) as obj, \
            ShardRouter(collection, num_shards=3, replication=2,
                        kernel="columnar") as columnar:
        assert columnar.kernel == "columnar"
        # Replicas of one shard share one compiled snapshot.
        for shard in columnar.shards:
            snapshots = {id(replica.engine.snapshot)
                         for replica in shard.transport.replicas}
            assert len(snapshots) == 1
        for query in corpus[::10]:
            expected = obj.execute(query)
            actual = columnar.execute(query)
            assert entries_of(actual.result) == entries_of(expected.result)
