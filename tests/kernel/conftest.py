"""Shared fixtures for the columnar-kernel tests.

The equivalence suite's corpus deliberately spans the three interval
shapes with different control flow in the scan — full circle (the
vector path's everything-inside shortcut), wraparound (the ``fmod``
fold's seam), and narrow wedges (borderline-heavy, the scalar-recheck
path) — because those are exactly the places an ulp of ``np.arctan2``
drift could change an answer.
"""

import math
import random

import pytest

from repro.core import DesksIndex, DesksSearcher, DirectionalQuery
from repro.datasets import POI, POICollection
from repro.geometry import TWO_PI
from repro.kernel import ColumnarSearcher, ColumnarSnapshot

KEYWORD_POOL = ["cafe", "food", "gas", "atm", "pizza", "bank", "hotel",
                "park"]
EXTENT = 100.0
QUERIES_PER_FAMILY = 80


def make_collection(n=400, seed=42):
    rng = random.Random(seed)
    pois = []
    for i in range(n):
        kws = rng.sample(KEYWORD_POOL, rng.randint(1, 3))
        pois.append(POI.make(i, rng.uniform(0, EXTENT),
                             rng.uniform(0, EXTENT), kws))
    return POICollection(pois)


def _query(rng, lower, width):
    return DirectionalQuery.make(
        rng.uniform(-10.0, EXTENT + 10.0), rng.uniform(-10.0, EXTENT + 10.0),
        lower, lower + width,
        rng.sample(KEYWORD_POOL, rng.randint(1, 2)),
        rng.choice([1, 5, 10]))


def make_corpus(seed=7):
    """The 240-query corpus: 80 each full-circle / wraparound / narrow."""
    rng = random.Random(seed)
    corpus = []
    for _ in range(QUERIES_PER_FAMILY):  # full circle
        corpus.append(_query(rng, rng.uniform(0.0, TWO_PI), TWO_PI))
    for _ in range(QUERIES_PER_FAMILY):  # wraps through 0 == 2*pi
        lower = rng.uniform(0.75 * TWO_PI, TWO_PI)
        corpus.append(_query(rng, lower, rng.uniform(0.3 * math.pi,
                                                     0.9 * math.pi)))
    for _ in range(QUERIES_PER_FAMILY):  # narrow wedge
        corpus.append(_query(rng, rng.uniform(0.0, TWO_PI),
                             rng.uniform(0.05, 0.3)))
    return corpus


@pytest.fixture(scope="session")
def collection():
    return make_collection()


@pytest.fixture(scope="session")
def index(collection):
    return DesksIndex(collection, num_bands=4, num_wedges=6)


@pytest.fixture(scope="session")
def snapshot(index):
    return ColumnarSnapshot(index)


@pytest.fixture(scope="session")
def object_searcher(index):
    return DesksSearcher(index)


@pytest.fixture(scope="session")
def columnar_searcher(snapshot):
    return ColumnarSearcher(snapshot)


@pytest.fixture(scope="session")
def corpus():
    return make_corpus()
