"""Bit-exact equivalence of the columnar kernel against the object path.

The contract under test is the strongest one the kernel can make: for
every query, :class:`~repro.kernel.ColumnarSearcher` returns the SAME
entries (ids and IEEE-754 bit patterns of the distances), in the same
order, with the SAME :class:`~repro.storage.SearchStats` — pruning
counters included — as :class:`~repro.core.DesksSearcher`.  Identical
counters are the evidence that the kernel executes the *paper's*
algorithm, not a rephrasing that happens to agree on answers.
"""

import math

import pytest

from repro.core import DirectionalQuery, MatchMode, PruningMode
from repro.service import Deadline
from repro.storage import SearchStats
from repro.trace import explain

MODES = [PruningMode.RD, PruningMode.R, PruningMode.D]


def entries_of(result):
    return [(entry.poi_id, entry.distance) for entry in result.entries]


@pytest.mark.parametrize("mode", MODES, ids=lambda m: m.name)
def test_corpus_bit_identical(object_searcher, columnar_searcher, corpus,
                              mode):
    for query in corpus:
        expected_stats = SearchStats()
        actual_stats = SearchStats()
        expected = object_searcher.search(query, mode, expected_stats)
        actual = columnar_searcher.search(query, mode, actual_stats)
        assert entries_of(actual) == entries_of(expected)
        assert actual.partial == expected.partial
        assert actual_stats == expected_stats


def test_search_batch_matches_query_loop(object_searcher, columnar_searcher,
                                         corpus):
    batch = corpus[::5]
    stats = [SearchStats() for _ in batch]
    results = columnar_searcher.search_batch(batch, stats=stats)
    assert len(results) == len(batch)
    for query, result, batch_stats in zip(batch, results, stats):
        loop_stats = SearchStats()
        expected = object_searcher.search(query, PruningMode.RD, loop_stats)
        assert entries_of(result) == entries_of(expected)
        assert batch_stats == loop_stats


def test_search_batch_rejects_misaligned_stats(columnar_searcher, corpus):
    with pytest.raises(ValueError):
        columnar_searcher.search_batch(corpus[:3], stats=[SearchStats()])


def test_explain_reconciles_on_columnar_path(columnar_searcher, corpus):
    for query in corpus[::24]:  # 10 queries across all three families
        report = explain(columnar_searcher, query)
        assert report.reconciled, report.reconciliation


def test_any_mode_with_unknown_keyword(object_searcher, columnar_searcher):
    query = DirectionalQuery.make(50.0, 50.0, 0.5, 4.0,
                                  ["cafe", "no-such-term"], 5,
                                  match_mode=MatchMode.ANY)
    expected = object_searcher.search(query)
    actual = columnar_searcher.search(query)
    assert entries_of(actual) == entries_of(expected)
    assert len(actual) > 0


def test_all_mode_with_unknown_keyword_is_empty(object_searcher,
                                                columnar_searcher):
    query = DirectionalQuery.make(50.0, 50.0, 0.5, 4.0,
                                  ["cafe", "no-such-term"], 5)
    expected = object_searcher.search(query)
    actual = columnar_searcher.search(query)
    assert entries_of(actual) == entries_of(expected) == []


def test_query_at_poi_location(collection, object_searcher,
                               columnar_searcher):
    # A query sitting exactly on a POI exercises the coincident-point
    # guard (direction undefined, distance 0, always a match).
    location = collection.location(0)
    keywords = list(collection[0].keywords)[:1]
    query = DirectionalQuery.make(location.x, location.y, 1.0, 2.0,
                                  keywords, 3)
    expected = object_searcher.search(query)
    actual = columnar_searcher.search(query)
    assert entries_of(actual) == entries_of(expected)
    assert entries_of(actual)[0] == (0, 0.0)


def test_seed_entries_bound_respected(object_searcher, columnar_searcher,
                                      corpus):
    query = corpus[10]
    seed = object_searcher.search(query).entries[:2]
    expected = object_searcher.search(query, seed_entries=seed)
    actual = columnar_searcher.search(query, seed_entries=seed)
    assert entries_of(actual) == entries_of(expected)


def test_expired_deadline_is_partial(columnar_searcher, corpus):
    deadline = Deadline.from_timeout(0.0)
    while not deadline.expired():
        pass
    result = columnar_searcher.search(corpus[0], deadline=deadline)
    assert result.partial


def test_distances_are_bitwise_not_approximately(object_searcher,
                                                 columnar_searcher, corpus):
    # Spell the strict claim out once: equality of the float bits, not
    # closeness under a tolerance.
    for query in corpus[:20]:
        expected = object_searcher.search(query)
        actual = columnar_searcher.search(query)
        for ours, theirs in zip(actual.entries, expected.entries):
            assert math.isfinite(ours.distance)
            assert ours.distance.hex() == theirs.distance.hex()
