"""Structural invariants of the columnar snapshot's memory layout.

These pin the documented contract of ``repro.kernel.snapshot`` (see the
module docstring's table and ``docs/KERNEL.md``): positional indexing by
``poi_order``, contiguous wedge slices, sorted term runs.  The search
kernel assumes every one of these without checking.
"""

import numpy as np
import pytest

from repro.core import DesksIndex
from repro.kernel import ColumnarSnapshot


def built_anchors(snapshot):
    return [columns for columns in snapshot.anchors if columns is not None]


def test_sub_starts_are_monotone_slice_bounds(snapshot):
    for columns in built_anchors(snapshot):
        starts = columns.sub_starts
        assert starts[0] == 0
        assert starts[-1] == columns.xs.size
        assert np.all(np.diff(starts) >= 0)
        assert starts.size == columns.regions.num_subregions + 1


def test_poi_ids_is_the_poi_order_permutation(snapshot, collection):
    for columns in built_anchors(snapshot):
        ids = columns.poi_ids
        assert ids.size == len(collection)
        assert np.array_equal(np.sort(ids), np.arange(len(collection)))
        assert ids.tolist() == list(columns.regions.poi_order)


def test_coordinates_are_world_coordinates(snapshot, collection):
    for columns in built_anchors(snapshot):
        for position in range(0, columns.xs.size, 37):
            location = collection.location(int(columns.poi_ids[position]))
            assert columns.xs[position] == location.x
            assert columns.ys[position] == location.y


def test_wedge_slices_partition_the_positions(snapshot):
    for columns in built_anchors(snapshot):
        covered = 0
        for gid in range(columns.regions.num_subregions):
            lo = int(columns.sub_starts[gid])
            hi = int(columns.sub_starts[gid + 1])
            assert hi - lo == columns.regions.subregions[gid].size
            covered += hi - lo
        assert covered == columns.xs.size


def test_term_runs_are_sorted_unique_and_complete(snapshot, collection):
    for columns in built_anchors(snapshot):
        total = 0
        for term_id, term in columns.terms.items():
            positions = term.positions
            assert np.all(np.diff(positions) > 0)  # sorted, no duplicates
            gids = np.unique(np.searchsorted(columns.sub_starts, positions,
                                             side="right") - 1)
            assert np.array_equal(gids, term.region_gids)
            for position in positions[::11]:
                poi_id = int(columns.poi_ids[int(position)])
                assert term_id in collection.term_ids(poi_id)
            total += positions.size
        # Every (POI, term) pair appears exactly once.
        expected = sum(len(collection.term_ids(poi_id))
                       for poi_id in range(len(collection)))
        assert total == expected


def test_dtypes_match_the_documented_table(snapshot):
    for columns in built_anchors(snapshot):
        assert columns.xs.dtype == np.float64
        assert columns.ys.dtype == np.float64
        assert columns.poi_ids.dtype == np.int64
        assert columns.sub_starts.dtype == np.int64
        for term in columns.terms.values():
            assert term.positions.dtype == np.int64
            assert term.region_gids.dtype == np.int64


def test_nbytes_counts_every_array(snapshot):
    assert snapshot.nbytes == sum(columns.nbytes
                                  for columns in built_anchors(snapshot))
    assert snapshot.nbytes > 0
    assert snapshot.build_seconds >= 0.0


def test_missing_anchor_raises(collection):
    snapshot = ColumnarSnapshot(DesksIndex(collection))
    quadrant = next(q for q, columns in enumerate(snapshot.anchors)
                    if columns is not None)
    snapshot.anchors[quadrant] = None
    with pytest.raises(ValueError, match="was not built"):
        snapshot.anchor_columns(quadrant)


def test_from_index_alias(index):
    snapshot = ColumnarSnapshot.from_index(index)
    assert snapshot.index is index
