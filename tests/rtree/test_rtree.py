"""Tests for the R-tree: construction, invariants, range and kNN queries."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import MBR, Point
from repro.rtree import RTree, format_tree, incremental_nearest, knn
from repro.storage import SearchStats


def grid_points(n_side):
    return [(Point(float(i), float(j)), i * n_side + j)
            for i in range(n_side) for j in range(n_side)]


def random_points(n, seed=0, extent=100.0):
    rng = random.Random(seed)
    return [(Point(rng.uniform(0, extent), rng.uniform(0, extent)), i)
            for i in range(n)]


coord = st.floats(min_value=0.0, max_value=100.0)
point_lists = st.lists(st.tuples(coord, coord), min_size=1, max_size=120)


class TestConstruction:
    def test_fanout_validation(self):
        with pytest.raises(ValueError):
            RTree(fanout=3)

    def test_empty_tree(self):
        tree = RTree()
        assert len(tree) == 0
        assert tree.range_query(MBR(0, 0, 10, 10)) == []
        assert tree.all_object_ids() == []
        assert knn(tree, Point(0, 0), 3) == []

    def test_bulk_load_small(self):
        tree = RTree.bulk_load(grid_points(3))
        assert len(tree) == 9
        assert sorted(tree.all_object_ids()) == list(range(9))
        tree.check_invariants()

    def test_bulk_load_multi_level(self):
        tree = RTree.bulk_load(grid_points(20), fanout=8)
        assert len(tree) == 400
        assert tree.height >= 3
        tree.check_invariants()

    def test_bulk_load_empty(self):
        tree = RTree.bulk_load([])
        assert len(tree) == 0

    def test_insert_builds_valid_tree(self):
        tree = RTree(fanout=6)
        for p, oid in random_points(200, seed=1):
            tree.insert(p, oid)
        assert len(tree) == 200
        tree.check_invariants()
        assert sorted(tree.all_object_ids()) == list(range(200))

    def test_insert_duplicate_locations(self):
        tree = RTree(fanout=4)
        for i in range(30):
            tree.insert(Point(5.0, 5.0), i)
        tree.check_invariants()
        assert sorted(tree.all_object_ids()) == list(range(30))

    def test_num_nodes_counts_all_levels(self):
        tree = RTree.bulk_load(grid_points(10), fanout=5)
        assert tree.num_nodes > 20  # 100 points, <=5 per leaf

    def test_format_tree_runs(self):
        tree = RTree.bulk_load(grid_points(4), fanout=4)
        text = format_tree(tree.root)
        assert "leaf" in text
        assert "obj#" in text

    def test_format_tree_max_depth(self):
        tree = RTree.bulk_load(grid_points(10), fanout=4)
        shallow = format_tree(tree.root, max_depth=0)
        assert "obj#" not in shallow


class TestRangeQuery:
    def test_window_hits(self):
        tree = RTree.bulk_load(grid_points(10))
        got = sorted(tree.range_query(MBR(0, 0, 2, 2)))
        expect = sorted(i * 10 + j for i in range(3) for j in range(3))
        assert got == expect

    def test_window_misses(self):
        tree = RTree.bulk_load(grid_points(5))
        assert tree.range_query(MBR(50, 50, 60, 60)) == []

    @given(point_lists, coord, coord, coord, coord)
    @settings(max_examples=30, deadline=None)
    def test_matches_brute_force(self, raw, x1, y1, x2, y2):
        window = MBR(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2))
        items = [(Point(x, y), i) for i, (x, y) in enumerate(raw)]
        tree = RTree.bulk_load(items, fanout=4)
        got = sorted(tree.range_query(window))
        expect = sorted(i for p, i in items if window.contains_point(p))
        assert got == expect


class TestKNN:
    def test_k_validation(self):
        tree = RTree.bulk_load(grid_points(3))
        with pytest.raises(ValueError):
            knn(tree, Point(0, 0), 0)

    def test_nearest_first(self):
        tree = RTree.bulk_load(grid_points(10))
        result = knn(tree, Point(0.1, 0.1), 3)
        assert result[0].object_id == 0
        assert [round(n.distance, 3) for n in result] == sorted(
            round(n.distance, 3) for n in result)

    def test_k_larger_than_dataset(self):
        tree = RTree.bulk_load(grid_points(2))
        assert len(knn(tree, Point(0, 0), 100)) == 4

    def test_incremental_order(self):
        tree = RTree.bulk_load(random_points(150, seed=3), fanout=6)
        q = Point(50, 50)
        distances = [n.distance for n in incremental_nearest(tree, q)]
        assert len(distances) == 150
        assert distances == sorted(distances)

    def test_object_filter(self):
        tree = RTree.bulk_load(grid_points(5))
        evens = knn(tree, Point(0, 0), 4,
                    object_filter=lambda oid: oid % 2 == 0)
        assert all(n.object_id % 2 == 0 for n in evens)

    def test_node_filter_prunes_subtree(self):
        tree = RTree.bulk_load(grid_points(10), fanout=4)
        # Reject every node: nothing can be reported.
        assert knn(tree, Point(0, 0), 5, node_filter=lambda n: False) == []

    def test_stats_counted(self):
        tree = RTree.bulk_load(random_points(200, seed=5), fanout=8)
        stats = SearchStats()
        knn(tree, Point(10, 10), 5, stats=stats)
        assert stats.nodes_examined >= 1
        assert stats.pois_examined >= 5

    @given(point_lists, coord, coord, st.integers(1, 10))
    @settings(max_examples=30, deadline=None)
    def test_matches_brute_force(self, raw, qx, qy, k):
        q = Point(qx, qy)
        items = [(Point(x, y), i) for i, (x, y) in enumerate(raw)]
        tree = RTree.bulk_load(items, fanout=4)
        got = knn(tree, q, k)
        expect = sorted(q.distance_to(p) for p, _ in items)[:k]
        assert [n.distance for n in got] == pytest.approx(expect)

    @given(point_lists, st.integers(1, 8))
    @settings(max_examples=20, deadline=None)
    def test_insert_and_bulk_load_agree(self, raw, k):
        items = [(Point(x, y), i) for i, (x, y) in enumerate(raw)]
        bulk = RTree.bulk_load(items, fanout=5)
        dyn = RTree(fanout=5)
        for p, oid in items:
            dyn.insert(p, oid)
        dyn.check_invariants()
        q = Point(50.0, 50.0)
        d_bulk = [n.distance for n in knn(bulk, q, k)]
        d_dyn = [n.distance for n in knn(dyn, q, k)]
        assert d_bulk == pytest.approx(d_dyn)


class TestStrPacking:
    def test_leaves_well_filled(self):
        tree = RTree.bulk_load(random_points(1000, seed=9), fanout=10)
        leaves = [n for n in tree.iter_nodes() if n.is_leaf]
        avg_fill = sum(len(n) for n in leaves) / len(leaves)
        assert avg_fill >= 6  # STR packs close to capacity

    def test_query_efficiency_vs_scan(self):
        """A point query should touch far fewer nodes than the tree has."""
        tree = RTree.bulk_load(random_points(2000, seed=11), fanout=16)
        stats = SearchStats()
        knn(tree, Point(50, 50), 1, stats=stats)
        assert stats.nodes_examined < tree.num_nodes / 4
