"""Tests for the cardinality estimator: calibration, not exactness."""

import math
import random

import pytest

from repro.core import (
    CardinalityEstimator,
    DirectionalQuery,
    MatchMode,
    brute_force_search,
)
from repro.datasets import POI, POICollection

from .conftest import KEYWORD_POOL, make_collection


@pytest.fixture(scope="module")
def setup():
    collection = make_collection(2000, seed=97)
    return collection, CardinalityEstimator(collection)


class TestSelectivities:
    def test_unknown_keyword_zero(self, setup):
        _, est = setup
        q = DirectionalQuery.make(50, 50, 0, 1, ["nope"], 5)
        assert est.keyword_selectivity(q) == 0.0
        assert est.estimate_matching_pois(q) == 0.0
        assert est.estimate_kth_distance(q) is None

    def test_all_mode_product(self):
        col = POICollection(
            [POI.make(i, float(i), 0.0, ["a", "b"]) for i in range(5)]
            + [POI.make(5 + i, float(i), 1.0, ["a"]) for i in range(5)])
        est = CardinalityEstimator(col)
        q_a = DirectionalQuery.make(0, 0, 0, 1, ["a"], 1)
        q_ab = DirectionalQuery.make(0, 0, 0, 1, ["a", "b"], 1)
        assert est.keyword_selectivity(q_a) == pytest.approx(1.0)
        assert est.keyword_selectivity(q_ab) == pytest.approx(0.5)

    def test_any_mode_inclusion_exclusion(self):
        col = POICollection(
            [POI.make(0, 0, 0, ["a"]), POI.make(1, 1, 0, ["b"]),
             POI.make(2, 2, 0, ["c"]), POI.make(3, 3, 0, ["c"])])
        est = CardinalityEstimator(col)
        q = DirectionalQuery.make(0, 0, 0, 1, ["a", "b"], 1,
                                  match_mode=MatchMode.ANY)
        # 1 - (1 - 1/4)(1 - 1/4) = 7/16
        assert est.keyword_selectivity(q) == pytest.approx(7 / 16)

    def test_direction_fraction(self, setup):
        _, est = setup
        q = DirectionalQuery.make(50, 50, 0, math.pi, ["cafe"], 1)
        assert est.direction_selectivity(q) == pytest.approx(0.5)
        full = DirectionalQuery.undirected(50, 50, ["cafe"], 1)
        assert est.direction_selectivity(full) == pytest.approx(1.0)


class TestCalibration:
    def test_matching_count_correlates(self, setup):
        """Estimates must rank query result sizes roughly correctly."""
        collection, est = setup
        rng = random.Random(5)
        pairs = []
        for _ in range(30):
            width = rng.choice([0.5, 2.0, 6.0])
            kws = rng.sample(KEYWORD_POOL, rng.randint(1, 2))
            a = rng.uniform(0, 2 * math.pi)
            q = DirectionalQuery.make(50, 50, a, a + width, kws, 100000)
            actual = len(brute_force_search(collection, q))
            pairs.append((est.estimate_matching_pois(q), actual))
        # Rank correlation via concordant-pair counting (Kendall-ish).
        concordant = discordant = 0
        for i in range(len(pairs)):
            for j in range(i + 1, len(pairs)):
                de = pairs[i][0] - pairs[j][0]
                da = pairs[i][1] - pairs[j][1]
                if de * da > 0:
                    concordant += 1
                elif de * da < 0:
                    discordant += 1
        assert concordant > 2 * discordant

    def test_count_estimate_within_factor(self, setup):
        """For central, wide queries the count estimate is in the right
        ballpark (factor ~3, uniform-ish data)."""
        collection, est = setup
        q = DirectionalQuery.make(50, 50, 0.0, 2 * math.pi, ["food"],
                                  100000)
        actual = len(brute_force_search(collection, q))
        estimate = est.estimate_matching_pois(q)
        assert actual / 3 <= estimate <= actual * 3

    def test_kth_distance_monotone_in_k(self, setup):
        _, est = setup
        q1 = DirectionalQuery.make(50, 50, 0.0, 1.0, ["food"], 1)
        q10 = DirectionalQuery.make(50, 50, 0.0, 1.0, ["food"], 10)
        d1, d10 = est.estimate_kth_distance(q1), est.estimate_kth_distance(q10)
        assert d1 is not None and d10 is not None
        assert d10 > d1

    def test_kth_distance_monotone_in_width(self, setup):
        _, est = setup
        narrow = DirectionalQuery.make(50, 50, 0.0, 0.3, ["food"], 10)
        wide = DirectionalQuery.make(50, 50, 0.0, 3.0, ["food"], 10)
        dn = est.estimate_kth_distance(narrow)
        dw = est.estimate_kth_distance(wide)
        if dn is not None and dw is not None:
            assert dw < dn

    def test_kth_distance_roughly_calibrated(self, setup):
        """Central wide query: estimate within 3x of the true k-th."""
        collection, est = setup
        q = DirectionalQuery.make(50, 50, 0.0, 2 * math.pi, ["food"], 10)
        actual = brute_force_search(collection, q).kth_distance
        estimate = est.estimate_kth_distance(q)
        assert estimate is not None
        assert actual / 3 <= estimate <= actual * 3

    def test_summary_renders(self, setup):
        _, est = setup
        q = DirectionalQuery.make(50, 50, 0.0, 1.0, ["food"], 10)
        text = est.summary(q)
        assert "estimated in-direction matches" in text
        q_dry = DirectionalQuery.make(50, 50, 0.0, 0.001, ["food"], 1000)
        assert "beyond dataset" in est.summary(q_dry)


class TestSyntheticCalibration:
    """The estimator on generated datasets — the satellite acceptance:
    direction selectivity must track true in-sector fractions on uniform
    data (and keep ranking power on clustered data), and k-th-distance
    estimates must correlate with measured k-th distances."""

    @staticmethod
    def _dataset(cluster_fraction):
        from repro.datasets.synthetic import SyntheticConfig, generate

        return generate(SyntheticConfig(
            name="est-cal", num_pois=3000, num_unique_terms=60,
            avg_terms_per_poi=2.5, cluster_fraction=cluster_fraction,
            extent=1000.0, seed=19))

    @staticmethod
    def _in_sector_fraction(collection, query, matching):
        inside = sum(1 for poi in matching
                     if poi.location == query.location
                     or query.interval.contains(
                         query.location.direction_to(poi.location)))
        return inside / len(matching)

    def test_direction_selectivity_uniform(self):
        """Uniform data, central query: predicted fraction ~ observed."""
        collection = self._dataset(cluster_fraction=0.0)
        est = CardinalityEstimator(collection)
        matching = [poi for poi in collection if "food" in poi.keywords]
        assert len(matching) > 100
        rng = random.Random(3)
        for width in (math.pi / 2, math.pi, 1.5 * math.pi):
            alpha = rng.uniform(0, 2 * math.pi)
            q = DirectionalQuery.make(500, 500, alpha, alpha + width,
                                      ["food"], 10)
            predicted = est.direction_selectivity(q)
            observed = self._in_sector_fraction(collection, q, matching)
            assert abs(predicted - observed) < 0.12

    def test_direction_selectivity_ranks_on_clustered(self):
        """Clustered data breaks the uniform assumption pointwise, but
        widening the interval must still widen the observed fraction."""
        collection = self._dataset(cluster_fraction=0.9)
        est = CardinalityEstimator(collection)
        matching = [poi for poi in collection if "food" in poi.keywords]
        assert len(matching) > 100
        widths = [math.pi / 4, math.pi / 2, math.pi, 2 * math.pi]
        observed = []
        for width in widths:
            q = DirectionalQuery.make(500, 500, 0.7, 0.7 + width,
                                      ["food"], 10)
            assert est.direction_selectivity(q) == \
                pytest.approx(width / (2 * math.pi))
            observed.append(
                self._in_sector_fraction(collection, q, matching))
        assert observed == sorted(observed)
        assert observed[-1] == pytest.approx(1.0)

    @pytest.mark.parametrize("cluster_fraction", [0.0, 0.9])
    def test_kth_distance_correlates_with_truth(self, cluster_fraction):
        collection = self._dataset(cluster_fraction)
        est = CardinalityEstimator(collection)
        rng = random.Random(29)
        pairs = []
        for _ in range(40):
            alpha = rng.uniform(0, 2 * math.pi)
            width = rng.choice([1.0, 3.0, 2 * math.pi])
            k = rng.choice([1, 5, 25])
            x, y = rng.uniform(300, 700), rng.uniform(300, 700)
            q = DirectionalQuery.make(x, y, alpha, alpha + width,
                                      ["food"], k)
            predicted = est.estimate_kth_distance(q)
            result = brute_force_search(collection, q)
            if predicted is None or len(result) < k:
                continue
            pairs.append((predicted, result.kth_distance))
        assert len(pairs) >= 20
        concordant = discordant = 0
        for i in range(len(pairs)):
            for j in range(i + 1, len(pairs)):
                dp = pairs[i][0] - pairs[j][0]
                dt = pairs[i][1] - pairs[j][1]
                if dp * dt > 0:
                    concordant += 1
                elif dp * dt < 0:
                    discordant += 1
        assert concordant > 2 * discordant
