"""Incremental re-query edge cases: 0/2π wraparound and full replacement.

The paper's Section V algorithms are exercised elsewhere on friendly
intervals; these tests pin down the awkward geometry — widenings whose new
wedges straddle the positive x-axis, rotations large enough that the new
interval shares nothing with the old — always verified against the
brute-force oracle on the *final* interval.
"""

import pytest

from repro.core import (
    DesksIndex,
    DesksSearcher,
    DirectionalQuery,
    IncrementalSearcher,
    brute_force_search,
)
from repro.geometry import TWO_PI, DirectionInterval

from .conftest import make_collection

K = 8


@pytest.fixture(scope="module")
def setup():
    col = make_collection(600, seed=77)
    searcher = DesksSearcher(DesksIndex(col, num_bands=5, num_wedges=8))
    return col, searcher


def assert_matches_oracle(col, result, query):
    expect = brute_force_search(col, query)
    assert [round(d, 9) for d in result.distances()] == \
        [round(d, 9) for d in expect.distances()]


def make_inc(searcher, interval, keywords=("cafe", "food")):
    inc = IncrementalSearcher(searcher)
    query = DirectionalQuery.make(50, 50, interval.lower, interval.upper,
                                  list(keywords), k=K)
    inc.initial_search(query)
    return inc, query


class TestWrapAroundWidening:
    def test_widen_across_zero_upper(self, setup):
        """Old interval just below 2π; the upper wedge crosses the axis."""
        col, searcher = setup
        old = DirectionInterval(6.0, 6.2)
        inc, query = make_inc(searcher, old)
        new = DirectionInterval(6.0, 6.2 + 0.8)  # upper end wraps past 2π
        result = inc.increase_direction(new)
        assert_matches_oracle(col, result, query.with_interval(new))

    def test_widen_across_zero_lower(self, setup):
        """Old interval just above 0; the lower wedge crosses the axis."""
        col, searcher = setup
        old = DirectionInterval(0.1, 0.4)
        inc, query = make_inc(searcher, old)
        new = DirectionInterval(0.1 - 0.7, 0.4)  # lower end wraps below 0
        result = inc.increase_direction(new)
        assert_matches_oracle(col, result, query.with_interval(new))

    def test_old_interval_itself_wraps(self, setup):
        """The cached interval already straddles 0; widen both sides."""
        col, searcher = setup
        old = DirectionInterval(6.0, 6.0 + 0.6)  # crosses the axis
        inc, query = make_inc(searcher, old)
        new = DirectionInterval(5.7, 5.7 + 1.4)  # contains old, wider
        result = inc.increase_direction(new)
        assert_matches_oracle(col, result, query.with_interval(new))

    def test_widen_to_full_circle(self, setup):
        col, searcher = setup
        old = DirectionInterval(6.1, 6.1 + 0.5)
        inc, query = make_inc(searcher, old)
        new = DirectionInterval.full()
        result = inc.increase_direction(new)
        assert_matches_oracle(col, result, query.with_interval(new))

    def test_chained_wrapping_widenings(self, setup):
        """Several widenings in a row, each reusing the previous cache."""
        col, searcher = setup
        interval = DirectionInterval(6.2, 6.2 + 0.2)
        inc, query = make_inc(searcher, interval)
        for growth in (0.4, 0.9, 2.0):
            interval = DirectionInterval(interval.lower - growth / 2,
                                         interval.upper + growth / 2)
            result = inc.increase_direction(interval)
            assert_matches_oracle(col, result,
                                  query.with_interval(interval))


class TestFullReplacementRotation:
    def test_rotation_equal_to_width_replaces_interval(self, setup):
        """delta == width: zero overlap, must fall back to fresh search."""
        col, searcher = setup
        old = DirectionInterval(1.0, 1.5)
        inc, query = make_inc(searcher, old)
        result = inc.move_direction(0.5)
        assert_matches_oracle(col, result,
                              query.with_interval(old.rotate(0.5)))

    def test_rotation_larger_than_width(self, setup):
        col, searcher = setup
        old = DirectionInterval(2.0, 2.8)
        inc, query = make_inc(searcher, old)
        result = inc.move_direction(3.0)
        assert_matches_oracle(col, result,
                              query.with_interval(old.rotate(3.0)))

    def test_large_negative_rotation(self, setup):
        col, searcher = setup
        old = DirectionInterval(0.3, 1.0)
        inc, query = make_inc(searcher, old)
        result = inc.move_direction(-2.5)
        assert_matches_oracle(col, result,
                              query.with_interval(old.rotate(-2.5)))

    def test_replacement_rotation_across_wraparound(self, setup):
        """The replaced interval lands straddling the 0/2π axis."""
        col, searcher = setup
        old = DirectionInterval(5.0, 5.4)
        inc, query = make_inc(searcher, old)
        delta = (TWO_PI - 5.2)  # rotates the midpoint onto the axis
        result = inc.move_direction(delta)
        assert_matches_oracle(col, result,
                              query.with_interval(old.rotate(delta)))

    def test_cache_still_usable_after_replacement(self, setup):
        """A replacement rotation re-primes the cache for later reuse."""
        col, searcher = setup
        old = DirectionInterval(1.0, 1.4)
        inc, query = make_inc(searcher, old)
        inc.move_direction(2.0)  # full replacement
        rotated = old.rotate(2.0)
        result = inc.move_direction(0.1)  # small follow-up, uses new cache
        assert_matches_oracle(col, result,
                              query.with_interval(rotated.rotate(0.1)))


class TestPartialOverlapNearWrap:
    def test_small_rotation_through_zero(self, setup):
        """Rotation keeps overlap while sweeping across the axis."""
        col, searcher = setup
        old = DirectionInterval(6.1, 6.1 + 0.5)
        inc, query = make_inc(searcher, old)
        result = inc.move_direction(0.3)
        assert_matches_oracle(col, result,
                              query.with_interval(old.rotate(0.3)))

    def test_small_negative_rotation_through_zero(self, setup):
        col, searcher = setup
        old = DirectionInterval(0.05, 0.55)
        inc, query = make_inc(searcher, old)
        result = inc.move_direction(-0.3)
        assert_matches_oracle(col, result,
                              query.with_interval(old.rotate(-0.3)))
