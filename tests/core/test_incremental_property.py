"""Property-based tests: incremental answers always equal fresh answers.

Hypothesis drives random datasets, base queries and update sequences; the
invariant is exactness — whatever path the incremental machinery takes
(cache hit, wedge search, overlap re-search, from-scratch fallback), the
answers' distances must match a fresh search of the final interval.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DesksIndex,
    DesksSearcher,
    DirectionalQuery,
    IncrementalSearcher,
    brute_force_search,
)
from repro.datasets import POI, POICollection

pois_strategy = st.lists(
    st.tuples(st.floats(0, 40).map(lambda v: round(v, 2)),
              st.floats(0, 40).map(lambda v: round(v, 2)),
              st.sets(st.sampled_from("abc"), min_size=1, max_size=2)),
    min_size=3, max_size=40)

angle = st.floats(0, 2 * math.pi)
width = st.floats(0.1, 2.0)


def build(pois):
    col = POICollection([POI.make(i, x, y, ks)
                         for i, (x, y, ks) in enumerate(pois)])
    return col, DesksSearcher(DesksIndex(col, num_bands=2, num_wedges=3))


def assert_equals_fresh(col, inc_result, final_query):
    fresh = brute_force_search(col, final_query)
    assert [round(d, 9) for d in inc_result.distances()] == \
        [round(d, 9) for d in fresh.distances()]


class TestIncrementalProperties:
    @settings(max_examples=40, deadline=None)
    @given(pois=pois_strategy, qx=st.floats(0, 40), qy=st.floats(0, 40),
           alpha=angle, w=width,
           grow_lo=st.floats(0, 1.0), grow_hi=st.floats(0, 1.0),
           kws=st.sets(st.sampled_from("abc"), min_size=1, max_size=2),
           k=st.integers(1, 6))
    def test_increase_always_exact(self, pois, qx, qy, alpha, w,
                                   grow_lo, grow_hi, kws, k):
        col, searcher = build(pois)
        inc = IncrementalSearcher(searcher)
        q = DirectionalQuery.make(qx, qy, alpha, alpha + w, kws, k)
        inc.initial_search(q)
        wider = q.interval.widen(grow_lo, grow_hi)
        result = inc.increase_direction(wider)
        assert_equals_fresh(col, result, q.with_interval(wider))

    @settings(max_examples=40, deadline=None)
    @given(pois=pois_strategy, qx=st.floats(0, 40), qy=st.floats(0, 40),
           alpha=angle, w=width, delta=st.floats(-2.5, 2.5),
           kws=st.sets(st.sampled_from("abc"), min_size=1, max_size=2),
           k=st.integers(1, 6))
    def test_move_always_exact(self, pois, qx, qy, alpha, w, delta, kws, k):
        col, searcher = build(pois)
        inc = IncrementalSearcher(searcher)
        q = DirectionalQuery.make(qx, qy, alpha, alpha + w, kws, k)
        inc.initial_search(q)
        result = inc.move_direction(delta)
        assert_equals_fresh(col, result,
                            q.with_interval(q.interval.rotate(delta)))

    @settings(max_examples=25, deadline=None)
    @given(pois=pois_strategy, qx=st.floats(0, 40), qy=st.floats(0, 40),
           alpha=angle, w=width,
           steps=st.lists(
               st.one_of(
                   st.tuples(st.just("move"), st.floats(-0.8, 0.8)),
                   st.tuples(st.just("widen"), st.floats(0.01, 0.5)),
                   st.tuples(st.just("hop"), st.floats(-3.0, 3.0))),
               min_size=1, max_size=5),
           kws=st.sets(st.sampled_from("abc"), min_size=1, max_size=2))
    def test_update_sequences_exact(self, pois, qx, qy, alpha, w, steps,
                                    kws):
        """Chains of mixed updates never drift from the fresh answer."""
        col, searcher = build(pois)
        inc = IncrementalSearcher(searcher)
        q = DirectionalQuery.make(qx, qy, alpha, alpha + w, kws, 4)
        inc.initial_search(q)
        interval = q.interval
        location = q.location
        for kind, value in steps:
            if kind == "move":
                interval = interval.rotate(value)
                result = inc.move_direction(value)
            elif kind == "widen":
                interval = interval.widen(value, value)
                result = inc.increase_direction(interval)
            else:
                location = location.translate(value, -value / 2)
                result = inc.move_location(location.x, location.y)
            expect = brute_force_search(
                col, DirectionalQuery(location, interval, q.keywords, q.k))
            assert [round(d, 9) for d in result.distances()] == \
                [round(d, 9) for d in expect.distances()]
