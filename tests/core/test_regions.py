"""Tests for the anchor band/sub-region structure (paper Sec. II-B)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.regions import AnchorRegions, _partition_with_ties
from repro.geometry import HALF_PI, Anchor, CanonicalFrame, MBR, Point

RECT = MBR(0.0, 0.0, 100.0, 80.0)
FRAME = CanonicalFrame(Anchor.BOTTOM_LEFT, RECT)


def make_regions(points, n=3, m=4, anchor=Anchor.BOTTOM_LEFT):
    frame = CanonicalFrame(anchor, MBR.from_points(points))
    return AnchorRegions(frame, points, n, m)


def grid(side=10, step=10.0):
    return [Point(i * step + 1.0, j * step + 1.0)
            for i in range(side) for j in range(side)]


class TestPartitionWithTies:
    def test_even_split(self):
        chunks = _partition_with_ties(list(range(10)), 5, key=lambda i: i)
        assert [len(c) for c in chunks] == [2, 2, 2, 2, 2]

    def test_ties_stay_together(self):
        values = [0, 0, 0, 0, 1, 2]
        chunks = _partition_with_ties(list(range(6)), 3,
                                      key=lambda i: values[i])
        # Bucket size 2 would cut between equal keys; ties are absorbed.
        assert chunks[0] == [0, 1, 2, 3]

    def test_single_bucket(self):
        chunks = _partition_with_ties(list(range(5)), 1, key=lambda i: i)
        assert chunks == [[0, 1, 2, 3, 4]]

    def test_more_buckets_than_items(self):
        chunks = _partition_with_ties([0, 1], 10, key=lambda i: i)
        assert chunks == [[0], [1]]

    def test_empty(self):
        assert _partition_with_ties([], 3, key=lambda i: i) == []

    @given(st.lists(st.integers(0, 5), min_size=1, max_size=50),
           st.integers(1, 10))
    def test_partition_properties(self, values, buckets):
        order = sorted(range(len(values)), key=lambda i: values[i])
        chunks = _partition_with_ties(order, buckets,
                                      key=lambda i: values[i])
        # Covers everything exactly once, in order.
        flat = [i for c in chunks for i in c]
        assert flat == order
        # No key value straddles a boundary.
        for a, b in zip(chunks, chunks[1:]):
            assert values[a[-1]] != values[b[0]]


class TestAnchorRegionsStructure:
    def test_counts(self):
        regions = make_regions(grid(), n=4, m=5)
        assert regions.num_bands <= 4
        assert all(len(b.subregions) <= 6 for b in regions.bands)
        assert regions.num_subregions == sum(
            len(b.subregions) for b in regions.bands)

    def test_poi_order_is_permutation(self):
        regions = make_regions(grid())
        assert sorted(regions.poi_order) == list(range(100))
        for poi_id in range(100):
            assert regions.poi_order[regions.position_of[poi_id]] == poi_id

    def test_band_radii_monotone(self):
        regions = make_regions(grid(), n=5)
        radii = [b.inner_radius for b in regions.bands]
        assert radii == sorted(radii)
        for a, b in zip(regions.bands, regions.bands[1:]):
            assert a.outer_radius == pytest.approx(b.inner_radius)
        assert regions.bands[-1].outer_radius == math.inf

    def test_pois_within_band_radii(self):
        regions = make_regions(grid(), n=5)
        for band in regions.bands:
            for sub in band.subregions:
                for pos in range(sub.start, sub.end):
                    d = regions.distances[regions.poi_order[pos]]
                    assert band.inner_radius - 1e-9 <= d
                    if band.outer_radius is not math.inf:
                        assert d < band.outer_radius + 1e-9

    def test_pois_within_subregion_thetas(self):
        regions = make_regions(grid(), n=4, m=6)
        for sub in regions.subregions:
            for pos in range(sub.start, sub.end):
                theta = regions.thetas[regions.poi_order[pos]]
                assert sub.theta_lo - 1e-12 <= theta
                assert theta <= sub.theta_hi + 1e-12

    def test_subregion_theta_chain(self):
        regions = make_regions(grid(), n=3, m=5)
        for band in regions.bands:
            subs = band.subregions
            for a, b in zip(subs, subs[1:]):
                assert a.theta_hi == pytest.approx(b.theta_lo)
            assert subs[-1].theta_hi == pytest.approx(HALF_PI)

    def test_gids_sequential(self):
        regions = make_regions(grid(), n=3, m=4)
        assert [s.gid for s in regions.subregions] == list(
            range(regions.num_subregions))
        # Band gid ranges are contiguous.
        for band in regions.bands:
            gids = [s.gid for s in band.subregions]
            assert gids == list(range(band.first_gid,
                                      band.first_gid + len(gids)))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            make_regions(grid(), n=0)
        with pytest.raises(ValueError):
            make_regions(grid(), m=0)

    def test_all_anchors_quadrant_thetas(self):
        """Canonical thetas must land in [0, pi/2] for every anchor."""
        pts = grid()
        for anchor in Anchor:
            regions = make_regions(pts, anchor=anchor)
            for theta in regions.thetas:
                assert -1e-9 <= theta <= HALF_PI + 1e-9

    def test_poi_on_anchor_gets_theta_zero(self):
        pts = [Point(0.0, 0.0), Point(1.0, 1.0), Point(2.0, 0.5)]
        regions = make_regions(pts, n=1, m=1)
        assert regions.thetas[0] == 0.0

    def test_all_same_distance_single_band(self):
        # All points at distance 5 from their own MBR's bottom-left (0, 0).
        pts = [Point(0.0, 5.0), Point(3.0, 4.0), Point(4.0, 3.0),
               Point(5.0, 0.0)]
        regions = make_regions(pts, n=3, m=2)
        assert regions.num_bands == 1


class TestLookups:
    def test_band_of_distance(self):
        regions = make_regions(grid(), n=5)
        for band in regions.bands:
            mid = (band.inner_radius
                   + (band.inner_radius + 5.0 if band.outer_radius is math.inf
                      else band.outer_radius)) / 2.0
            assert regions.band_of_distance(mid) == band.index

    def test_band_of_distance_below_first_arc(self):
        regions = make_regions(grid(), n=5)
        assert regions.band_of_distance(0.0) == 0

    def test_band_of_distance_beyond_last(self):
        regions = make_regions(grid(), n=5)
        assert regions.band_of_distance(1e9) == regions.num_bands - 1

    def test_subregion_of_poi(self):
        regions = make_regions(grid(), n=4, m=5)
        for poi_id in range(100):
            sub = regions.subregion_of_poi(poi_id)
            pos = regions.position_of[poi_id]
            assert sub.start <= pos < sub.end

    def test_band_of_poi_matches_distance(self):
        regions = make_regions(grid(), n=4, m=5)
        for poi_id in range(0, 100, 7):
            band_idx = regions.band_of_poi(poi_id)
            band = regions.bands[band_idx]
            d = regions.distances[poi_id]
            assert band.inner_radius - 1e-9 <= d
            if band.outer_radius is not math.inf:
                assert d < band.outer_radius + 1e-9


class TestCandidateWedgeRange:
    def test_full_range(self):
        regions = make_regions(grid(), n=2, m=4)
        band = regions.bands[0]
        lo, hi = regions.candidate_wedge_range(band, 0.0, HALF_PI)
        assert (lo, hi) == (0, len(band.subregions))

    def test_narrow_range(self):
        regions = make_regions(grid(), n=2, m=4)
        band = regions.bands[0]
        target = band.subregions[1]
        mid = (target.theta_lo + target.theta_hi) / 2.0
        lo, hi = regions.candidate_wedge_range(band, mid, mid)
        assert lo <= 1 < hi
        # And the selected range must be minimal: only wedges overlapping.
        for idx in range(lo, hi):
            sub = band.subregions[idx]
            assert sub.theta_lo <= mid
            assert sub.theta_hi >= mid or idx == len(band.subregions) - 1

    def test_range_below_everything(self):
        regions = make_regions(grid(), n=2, m=4)
        band = regions.bands[0]
        first = band.subregions[0]
        if first.theta_lo > 0.01:
            lo, hi = regions.candidate_wedge_range(band, 0.0, 0.0)
            # tau_hi below first theta_lo: empty or first wedge only.
            assert hi - lo <= 1

    @settings(max_examples=50, deadline=None)
    @given(st.floats(0.0, HALF_PI), st.floats(0.0, HALF_PI))
    def test_never_drops_overlapping_wedges(self, a, b):
        tau_lo, tau_hi = min(a, b), max(a, b)
        regions = make_regions(grid(), n=2, m=5)
        for band in regions.bands:
            lo, hi = regions.candidate_wedge_range(band, tau_lo, tau_hi)
            for idx, sub in enumerate(band.subregions):
                overlaps = not (sub.theta_hi <= tau_lo
                                or sub.theta_lo > tau_hi)
                if overlaps:
                    assert lo <= idx < hi
