"""Tests for the ANY (disjunctive) keyword mode across the whole stack."""

import random

import pytest

from repro.baselines import FilterThenVerify, IRTree, MIR2Tree
from repro.core import (
    DesksIndex,
    DesksSearcher,
    DirectionalQuery,
    MatchMode,
    MutableDesksIndex,
    PruningMode,
    brute_force_search,
)
from repro.geometry import DirectionInterval, Point

from .conftest import make_collection, random_query_params


@pytest.fixture(scope="module")
def setup():
    collection = make_collection(300, seed=81)
    searcher = DesksSearcher(DesksIndex(collection, num_bands=4,
                                        num_wedges=4))
    return collection, searcher


def any_query(x, y, a, b, kws, k):
    return DirectionalQuery(Point(x, y), DirectionInterval(a, b),
                            frozenset(kws), k, MatchMode.ANY)


class TestQuerySemantics:
    def test_keywords_match_all(self):
        q = DirectionalQuery.make(0, 0, 0, 1, ["a", "b"])
        assert q.keywords_match(frozenset({"a", "b", "c"}))
        assert not q.keywords_match(frozenset({"a"}))

    def test_keywords_match_any(self):
        q = DirectionalQuery.make(0, 0, 0, 1, ["a", "b"],
                                  match_mode=MatchMode.ANY)
        assert q.keywords_match(frozenset({"b", "z"}))
        assert not q.keywords_match(frozenset({"z"}))

    def test_with_interval_preserves_mode(self):
        q = DirectionalQuery.make(0, 0, 0, 1, ["a"],
                                  match_mode=MatchMode.ANY)
        assert q.with_interval(DirectionInterval(1, 2)).match_mode is \
            MatchMode.ANY

    def test_default_is_all(self):
        assert DirectionalQuery.make(0, 0, 0, 1, ["a"]).match_mode is \
            MatchMode.ALL


class TestDesksAnyMode:
    @pytest.mark.parametrize("mode", list(PruningMode))
    def test_matches_brute_force(self, setup, mode):
        collection, searcher = setup
        rng = random.Random(82)
        for _ in range(40):
            x, y, a, b, kws, k = random_query_params(rng)
            q = any_query(x, y, a, b, kws, k)
            got = searcher.search(q, mode).distances()
            expect = brute_force_search(collection, q).distances()
            assert [round(d, 9) for d in got] == \
                [round(d, 9) for d in expect]

    def test_any_returns_superset_matches(self, setup):
        """ANY answers at least as close as ALL for the same keywords."""
        collection, searcher = setup
        all_q = DirectionalQuery.make(50, 50, 0.0, 2.5,
                                      ["cafe", "gas"], 10)
        any_q = any_query(50, 50, 0.0, 2.5, ["cafe", "gas"], 10)
        d_all = searcher.search(all_q).distances()
        d_any = searcher.search(any_q).distances()
        if d_all and d_any:
            assert d_any[0] <= d_all[0]

    def test_unknown_keyword_dropped_in_any(self, setup):
        collection, searcher = setup
        q = any_query(50, 50, 0.0, 6.0, ["cafe", "notaword"], 5)
        expect = brute_force_search(collection, q).distances()
        got = searcher.search(q).distances()
        assert got == pytest.approx(expect)
        assert got  # the known keyword still matches POIs

    def test_all_keywords_unknown_empty(self, setup):
        _, searcher = setup
        q = any_query(50, 50, 0.0, 6.0, ["nope1", "nope2"], 5)
        assert len(searcher.search(q)) == 0


class TestBaselinesAnyMode:
    @pytest.mark.parametrize("cls", [FilterThenVerify, MIR2Tree, IRTree],
                             ids=lambda c: c.name)
    def test_matches_brute_force(self, setup, cls):
        collection, _ = setup
        index = cls(collection, fanout=8)
        rng = random.Random(83)
        for _ in range(25):
            x, y, a, b, kws, k = random_query_params(rng)
            q = any_query(x, y, a, b, kws, k)
            got = index.search(q).distances()
            expect = brute_force_search(collection, q).distances()
            assert [round(d, 9) for d in got] == \
                [round(d, 9) for d in expect]


class TestDynamicAnyMode:
    def test_mutable_index_any(self, setup):
        collection, _ = setup
        idx = MutableDesksIndex(collection, num_bands=3, num_wedges=3,
                                rebuild_threshold=1.0)
        idx.insert(50.0, 51.0, ["snackbar"])
        q = any_query(50, 50, 0.0, 6.28, ["snackbar", "cafe"], 3)
        result = idx.search(q)
        assert len(result) == 3
        assert result.distances() == sorted(result.distances())

    def test_any_mode_with_tombstones(self, setup):
        """Regression: the tombstone-inflated static query must keep the
        query's match mode (it once silently reverted to ALL)."""
        collection, _ = setup
        idx = MutableDesksIndex(collection, num_bands=3, num_wedges=3,
                                rebuild_threshold=1.0)
        q = any_query(50, 50, 0.0, 6.28, ["cafe", "gas"], 10)
        before = idx.search(q)
        # Delete one of the current answers; remaining answers must still
        # follow ANY semantics (brute force over the live set agrees).
        victim = before.poi_ids()[0]
        assert idx.delete(victim)
        got = idx.search(q).distances()
        live = [p for p in idx.live_pois()]
        expect = sorted(
            q.location.distance_to(p.location)
            for p in live if q.matches(p.location, p.keywords))[:q.k]
        assert [round(d, 9) for d in got] == [round(d, 9) for d in expect]
