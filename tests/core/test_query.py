"""Tests for the query and result types."""

import math

import pytest

from repro.core import DirectionalQuery, MatchMode, QueryResult, ResultEntry
from repro.geometry import DirectionInterval, Point


class TestDirectionalQuery:
    def test_make(self):
        q = DirectionalQuery.make(1, 2, 0.0, 1.0, ["cafe"], k=5)
        assert q.location == Point(1, 2)
        assert q.interval.lower == 0.0
        assert q.keywords == frozenset({"cafe"})
        assert q.k == 5

    def test_k_validation(self):
        with pytest.raises(ValueError):
            DirectionalQuery.make(0, 0, 0, 1, ["a"], k=0)

    def test_keywords_required(self):
        with pytest.raises(ValueError):
            DirectionalQuery.make(0, 0, 0, 1, [], k=1)

    def test_undirected(self):
        q = DirectionalQuery.undirected(0, 0, ["a"])
        assert q.interval.is_full

    def test_with_interval(self):
        q = DirectionalQuery.make(0, 0, 0, 1, ["a"])
        q2 = q.with_interval(DirectionInterval(1, 2))
        assert q2.interval.lower == 1
        assert q2.keywords == q.keywords
        assert q.interval.lower == 0  # original untouched

    def test_basic_subqueries_single_quadrant(self):
        q = DirectionalQuery.make(0, 0, 0.1, 1.0, ["a"])
        assert len(q.basic_subqueries()) == 1

    def test_basic_subqueries_complex(self):
        q = DirectionalQuery.make(0, 0, 0.1, 0.1 + 1.9 * math.pi, ["a"])
        assert len(q.basic_subqueries()) == 4

    def test_accepts_direction(self):
        q = DirectionalQuery.make(0, 0, 0.0, math.pi / 2, ["a"])
        assert q.accepts_direction(0.5)
        assert not q.accepts_direction(3.0)

    def test_matches_checks_keywords_and_direction(self):
        q = DirectionalQuery.make(0, 0, 0.0, math.pi / 2, ["a"])
        assert q.matches(Point(1, 1), frozenset({"a", "b"}))
        assert not q.matches(Point(1, 1), frozenset({"b"}))
        assert not q.matches(Point(-1, 1), frozenset({"a"}))

    def test_matches_query_point_itself(self):
        q = DirectionalQuery.make(2, 2, 0.0, 1.0, ["a"])
        assert q.matches(Point(2, 2), frozenset({"a"}))


class TestQueryResult:
    def test_empty(self):
        r = QueryResult()
        assert len(r) == 0
        assert r.kth_distance == math.inf
        assert r.poi_ids() == []

    def test_accessors(self):
        r = QueryResult([ResultEntry(3, 1.0), ResultEntry(7, 2.0)])
        assert r.poi_ids() == [3, 7]
        assert r.distances() == [1.0, 2.0]
        assert r.kth_distance == 2.0
        assert [e.poi_id for e in r] == [3, 7]

    def test_result_entry_ordering(self):
        assert ResultEntry(5, 1.0) < ResultEntry(2, 2.0)
        assert ResultEntry(1, 1.0) < ResultEntry(2, 1.0)


class TestCanonicalKey:
    def test_keyword_order_irrelevant(self):
        a = DirectionalQuery.make(1, 2, 0.5, 1.5, ["cafe", "atm"], k=5)
        b = DirectionalQuery.make(1, 2, 0.5, 1.5, ["atm", "cafe"], k=5)
        assert a.canonical_key() == b.canonical_key()

    def test_hashable_and_stable(self):
        q = DirectionalQuery.make(1, 2, 0.5, 1.5, ["a"], k=5)
        assert hash(q.canonical_key()) == hash(q.canonical_key())
        assert len({q.canonical_key(), q.canonical_key()}) == 1

    def test_interval_normalized_into_two_pi(self):
        two_pi = 2 * math.pi
        a = DirectionalQuery.make(0, 0, 0.5, 1.5, ["a"])
        b = DirectionalQuery.make(0, 0, 0.5 + two_pi, 1.5 + two_pi, ["a"])
        assert a.canonical_key() == b.canonical_key()

    def test_full_circle_representations_collapse(self):
        two_pi = 2 * math.pi
        a = DirectionalQuery.make(0, 0, 0.0, two_pi, ["a"])
        b = DirectionalQuery.make(0, 0, 1.25, 1.25 + two_pi, ["a"])
        assert a.canonical_key() == b.canonical_key()

    def test_float_noise_collapses(self):
        a = DirectionalQuery.make(0, 0, 0.5, 1.5, ["a"])
        b = DirectionalQuery.make(0, 0, 0.5 + 1e-13, 1.5 - 1e-13, ["a"])
        assert a.canonical_key() == b.canonical_key()

    def test_distinguishes_k_and_mode_and_location(self):
        base = DirectionalQuery.make(0, 0, 0.5, 1.5, ["a"], k=5)
        assert base.canonical_key() != DirectionalQuery.make(
            0, 0, 0.5, 1.5, ["a"], k=6).canonical_key()
        assert base.canonical_key() != DirectionalQuery.make(
            0, 1, 0.5, 1.5, ["a"], k=5).canonical_key()
        assert base.canonical_key() != DirectionalQuery.make(
            0, 0, 0.5, 1.5, ["a"], k=5,
            match_mode=MatchMode.ANY).canonical_key()

    def test_location_quantum_buckets_nearby_queries(self):
        a = DirectionalQuery.make(10.01, 20.02, 0.5, 1.5, ["a"])
        b = DirectionalQuery.make(10.04, 19.98, 0.5, 1.5, ["a"])
        assert a.canonical_key() != b.canonical_key()
        assert a.canonical_key(0.5) == b.canonical_key(0.5)

    def test_negative_quantum_rejected(self):
        q = DirectionalQuery.make(0, 0, 0.5, 1.5, ["a"])
        with pytest.raises(ValueError):
            q.canonical_key(-1.0)
