"""Tests for the query and result types."""

import math

import pytest

from repro.core import DirectionalQuery, QueryResult, ResultEntry
from repro.geometry import DirectionInterval, Point


class TestDirectionalQuery:
    def test_make(self):
        q = DirectionalQuery.make(1, 2, 0.0, 1.0, ["cafe"], k=5)
        assert q.location == Point(1, 2)
        assert q.interval.lower == 0.0
        assert q.keywords == frozenset({"cafe"})
        assert q.k == 5

    def test_k_validation(self):
        with pytest.raises(ValueError):
            DirectionalQuery.make(0, 0, 0, 1, ["a"], k=0)

    def test_keywords_required(self):
        with pytest.raises(ValueError):
            DirectionalQuery.make(0, 0, 0, 1, [], k=1)

    def test_undirected(self):
        q = DirectionalQuery.undirected(0, 0, ["a"])
        assert q.interval.is_full

    def test_with_interval(self):
        q = DirectionalQuery.make(0, 0, 0, 1, ["a"])
        q2 = q.with_interval(DirectionInterval(1, 2))
        assert q2.interval.lower == 1
        assert q2.keywords == q.keywords
        assert q.interval.lower == 0  # original untouched

    def test_basic_subqueries_single_quadrant(self):
        q = DirectionalQuery.make(0, 0, 0.1, 1.0, ["a"])
        assert len(q.basic_subqueries()) == 1

    def test_basic_subqueries_complex(self):
        q = DirectionalQuery.make(0, 0, 0.1, 0.1 + 1.9 * math.pi, ["a"])
        assert len(q.basic_subqueries()) == 4

    def test_accepts_direction(self):
        q = DirectionalQuery.make(0, 0, 0.0, math.pi / 2, ["a"])
        assert q.accepts_direction(0.5)
        assert not q.accepts_direction(3.0)

    def test_matches_checks_keywords_and_direction(self):
        q = DirectionalQuery.make(0, 0, 0.0, math.pi / 2, ["a"])
        assert q.matches(Point(1, 1), frozenset({"a", "b"}))
        assert not q.matches(Point(1, 1), frozenset({"b"}))
        assert not q.matches(Point(-1, 1), frozenset({"a"}))

    def test_matches_query_point_itself(self):
        q = DirectionalQuery.make(2, 2, 0.0, 1.0, ["a"])
        assert q.matches(Point(2, 2), frozenset({"a"}))


class TestQueryResult:
    def test_empty(self):
        r = QueryResult()
        assert len(r) == 0
        assert r.kth_distance == math.inf
        assert r.poi_ids() == []

    def test_accessors(self):
        r = QueryResult([ResultEntry(3, 1.0), ResultEntry(7, 2.0)])
        assert r.poi_ids() == [3, 7]
        assert r.distances() == [1.0, 2.0]
        assert r.kth_distance == 2.0
        assert [e.poi_id for e in r] == [3, 7]

    def test_result_entry_ordering(self):
        assert ResultEntry(5, 1.0) < ResultEntry(2, 2.0)
        assert ResultEntry(1, 1.0) < ResultEntry(2, 1.0)
