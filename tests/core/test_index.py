"""Tests for DesksIndex construction and sizing."""

import pytest

from repro.core import (
    DesksIndex,
    recommended_bands,
    recommended_wedges,
)
from repro.geometry import Anchor

from .conftest import make_collection


class TestRecommendedParams:
    def test_bands_rule(self):
        assert recommended_bands(10_000) == 1
        assert recommended_bands(100_000) == 10
        assert recommended_bands(50) == 1

    def test_wedges_rule(self):
        # 10k POIs per band / 100 per sub-region => 100 wedges.
        assert recommended_wedges(100_000, num_bands=10) == 100
        assert recommended_wedges(50) == 1

    def test_paper_cn_configuration(self):
        """16M POIs: the paper lands on N=1000, M=600-ish with this rule."""
        n = 16_500_000
        bands = recommended_bands(n)
        assert 1000 <= bands <= 2000
        wedges = recommended_wedges(n, num_bands=1000)
        assert 100 <= wedges <= 300


class TestDesksIndexBuild:
    def test_default_build(self, collection, index):
        assert index.num_bands >= 1
        assert index.num_wedges >= 1
        assert index.built_anchors() == [0, 1, 2, 3]
        assert index.build_seconds > 0

    def test_anchor_index_access(self, index):
        for q in range(4):
            anchor = index.anchor_index(q)
            assert anchor.frame.anchor is Anchor(q)
            assert anchor.regions.num_bands >= 1

    def test_partial_anchors(self):
        col = make_collection(50, seed=1)
        idx = DesksIndex(col, num_bands=2, num_wedges=2,
                         anchors=[Anchor.BOTTOM_LEFT])
        assert idx.built_anchors() == [0]
        with pytest.raises(ValueError):
            idx.anchor_index(2)

    def test_size_accounting(self, collection):
        small = DesksIndex(collection, num_bands=2, num_wedges=2)
        assert small.size_bytes > 0
        one_anchor = DesksIndex(collection, num_bands=2, num_wedges=2,
                                anchors=[Anchor.BOTTOM_LEFT])
        # Four anchors cost roughly four times one anchor.
        assert small.size_bytes == pytest.approx(
            4 * one_anchor.size_bytes, rel=0.05)

    def test_disk_build_with_files(self, tmp_path):
        col = make_collection(80, seed=2)
        prefix = str(tmp_path / "desks")
        with DesksIndex(col, num_bands=2, num_wedges=2, disk_based=True,
                        disk_path_prefix=prefix) as idx:
            assert idx.disk_based
            assert (tmp_path / "desks.a0.bin").exists()
            assert idx.size_bytes > 0

    def test_drop_caches_noop_for_memory(self, index):
        index.drop_caches()  # must not raise

    def test_poi_count_preserved_per_anchor(self, collection, index):
        for q in range(4):
            regions = index.anchor_index(q).regions
            assert len(regions.poi_order) == len(collection)
