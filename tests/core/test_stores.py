"""Tests for the keyword stores (region/POI inverted lists with pointers)."""

import pytest

from repro.core.regions import AnchorRegions
from repro.core.stores import (
    DiskKeywordStore,
    MemoryKeywordStore,
    build_term_layout,
)
from repro.geometry import Anchor, CanonicalFrame, MBR, Point
from repro.storage import InMemoryPageStore


def make_fixture():
    """A small hand-checkable anchor structure with term sets."""
    points = [Point(float(x), float(y))
              for x in range(6) for y in range(6)]
    mbr = MBR.from_points(points)
    frame = CanonicalFrame(Anchor.BOTTOM_LEFT, mbr)
    regions = AnchorRegions(frame, points, num_bands=3, num_wedges=3)
    # Term 0 everywhere; term 1 on even ids; term 2 on a single POI.
    term_ids = []
    for i in range(len(points)):
        terms = {0}
        if i % 2 == 0:
            terms.add(1)
        if i == 17:
            terms.add(2)
        term_ids.append(frozenset(terms))
    return regions, term_ids


class TestBuildTermLayout:
    def test_poi_lists_follow_poi_order(self):
        regions, term_ids = make_fixture()
        layout = build_term_layout(regions, term_ids)
        gids, pointers, poi_list = layout[0]
        assert poi_list == regions.poi_order  # term 0 is everywhere
        assert gids == [s.gid for s in regions.subregions
                        if s.size > 0]

    def test_pointers_align_with_subregions(self):
        regions, term_ids = make_fixture()
        layout = build_term_layout(regions, term_ids)
        gids, pointers, poi_list = layout[1]
        assert len(gids) == len(pointers)
        assert pointers == sorted(pointers)
        # Every POI in the slice belongs to the claimed sub-region.
        for idx, gid in enumerate(gids):
            start = pointers[idx]
            end = pointers[idx + 1] if idx + 1 < len(gids) else len(poi_list)
            sub = regions.subregions[gid]
            for poi_id in poi_list[start:end]:
                pos = regions.position_of[poi_id]
                assert sub.start <= pos < sub.end

    def test_rare_term(self):
        regions, term_ids = make_fixture()
        layout = build_term_layout(regions, term_ids)
        gids, pointers, poi_list = layout[2]
        assert poi_list == [17]
        assert len(gids) == 1
        assert regions.subregion_of_poi(17).gid == gids[0]


@pytest.fixture(params=["memory", "disk"])
def store(request):
    regions, term_ids = make_fixture()
    if request.param == "memory":
        return regions, MemoryKeywordStore(regions, term_ids)
    return regions, DiskKeywordStore(
        regions, term_ids, InMemoryPageStore(page_size=64))


class TestKeywordStores:
    def test_unknown_term(self, store):
        _, s = store
        assert s.term_postings(99) is None

    def test_region_gids_sorted(self, store):
        _, s = store
        view = s.term_postings(1)
        assert list(view.region_gids) == sorted(view.region_gids)

    def test_pois_in_matches_membership(self, store):
        regions, s = store
        view = s.term_postings(1)
        for gid in view.region_gids:
            pois = list(view.pois_in(gid))
            assert pois, f"empty advertised sub-region {gid}"
            for poi_id in pois:
                assert poi_id % 2 == 0
                assert regions.subregion_of_poi(poi_id).gid == gid

    def test_pois_in_absent_gid(self, store):
        _, s = store
        view = s.term_postings(2)
        missing = [g for g in range(20) if g not in view.region_gids]
        assert list(view.pois_in(missing[0])) == []

    def test_pois_in_gid_range(self, store):
        regions, s = store
        view = s.term_postings(0)
        all_pois = list(view.pois_in_gid_range(0, regions.num_subregions))
        assert all_pois == regions.poi_order
        empty = list(view.pois_in_gid_range(5, 5))
        assert empty == []

    def test_gid_range_equals_union_of_slices(self, store):
        regions, s = store
        view = s.term_postings(1)
        lo, hi = 2, 7
        by_range = list(view.pois_in_gid_range(lo, hi))
        by_slices = [p for g in view.region_gids
                     if lo <= g < hi for p in view.pois_in(g)]
        assert by_range == by_slices

    def test_size_bytes_positive(self, store):
        _, s = store
        assert s.size_bytes > 0


class TestDiskStoreIO:
    def test_slice_reads_touch_few_pages(self):
        regions, term_ids = make_fixture()
        page_store = InMemoryPageStore(page_size=64)
        s = DiskKeywordStore(regions, term_ids, page_store,
                             buffer_capacity=4)
        s.drop_cache()
        s.io_stats.reset()
        view = s.term_postings(2)  # rare term: tiny records
        view.pois_in(view.region_gids[0])
        # Region record + one short POI slice: a handful of pages at most.
        assert s.io_stats.logical_reads <= 4

    def test_cold_vs_warm_cache(self):
        regions, term_ids = make_fixture()
        s = DiskKeywordStore(regions, term_ids,
                             InMemoryPageStore(page_size=64),
                             buffer_capacity=64)
        view = s.term_postings(0)
        view.pois_in_gid_range(0, regions.num_subregions)
        s.io_stats.reset()
        view2 = s.term_postings(0)
        view2.pois_in_gid_range(0, regions.num_subregions)
        assert s.io_stats.physical_reads == 0  # all hits, pool is warm
        assert s.io_stats.cache_hits > 0

    def test_disk_and_memory_agree(self):
        regions, term_ids = make_fixture()
        mem = MemoryKeywordStore(regions, term_ids)
        disk = DiskKeywordStore(regions, term_ids,
                                InMemoryPageStore(page_size=128))
        for term in (0, 1, 2):
            mv = mem.term_postings(term)
            dv = disk.term_postings(term)
            assert list(mv.region_gids) == list(dv.region_gids)
            for gid in mv.region_gids:
                assert list(mv.pois_in(gid)) == list(dv.pois_in(gid))


class TestCompressedStore:
    def make_stores(self):
        from repro.core.stores import CompressedDiskKeywordStore
        regions, term_ids = make_fixture()
        sliced = DiskKeywordStore(regions, term_ids,
                                  InMemoryPageStore(page_size=64))
        compressed = CompressedDiskKeywordStore(
            regions, term_ids, InMemoryPageStore(page_size=64))
        return regions, sliced, compressed

    def test_same_answers_as_sliced(self):
        regions, sliced, compressed = self.make_stores()
        for term in (0, 1, 2):
            sv = sliced.term_postings(term)
            cv = compressed.term_postings(term)
            assert list(sv.region_gids) == list(cv.region_gids)
            for gid in sv.region_gids:
                assert list(sv.pois_in(gid)) == list(cv.pois_in(gid))
            assert list(sv.pois_in_gid_range(0, regions.num_subregions)) == \
                list(cv.pois_in_gid_range(0, regions.num_subregions))

    def test_unknown_term(self):
        _, _, compressed = self.make_stores()
        assert compressed.term_postings(42) is None

    def test_empty_range(self):
        _, _, compressed = self.make_stores()
        view = compressed.term_postings(0)
        assert list(view.pois_in_gid_range(3, 3)) == []

    def test_smaller_on_disk(self):
        _, sliced, compressed = self.make_stores()
        assert compressed.size_bytes < sliced.size_bytes

    def test_reads_whole_record(self):
        """A single-sub-region fetch costs the term's full record.

        Needs a posting long enough to span many pages — with a toy list
        the whole compressed record fits in one page and the asymmetry
        vanishes, so this test builds a 900-POI single-term fixture.
        """
        from repro.core.stores import CompressedDiskKeywordStore

        points = [Point(float(x), float(y))
                  for x in range(30) for y in range(30)]
        frame = CanonicalFrame(Anchor.BOTTOM_LEFT, MBR.from_points(points))
        regions = AnchorRegions(frame, points, num_bands=3, num_wedges=5)
        term_ids = [frozenset({0}) for _ in points]
        sliced = DiskKeywordStore(regions, term_ids,
                                  InMemoryPageStore(page_size=64))
        compressed = CompressedDiskKeywordStore(
            regions, term_ids, InMemoryPageStore(page_size=64))
        gid = sliced.term_postings(0).region_gids[0]

        sliced.drop_cache()
        sliced.io_stats.reset()
        sliced.term_postings(0).pois_in(gid)
        sliced_reads = sliced.io_stats.logical_reads

        compressed.drop_cache()
        compressed.io_stats.reset()
        compressed.term_postings(0).pois_in(gid)
        compressed_reads = compressed.io_stats.logical_reads
        # The compressed store decodes the full 900-entry record; the
        # sliced store touches the region list plus one short slice.
        assert compressed_reads > 2 * sliced_reads

    def test_index_level_equivalence(self):
        import random

        from repro.core import (
            DesksIndex,
            DesksSearcher,
            DirectionalQuery,
            brute_force_search,
        )
        from ..core.conftest import make_collection, random_query_params

        col = make_collection(200, seed=51)
        compressed = DesksSearcher(DesksIndex(
            col, num_bands=3, num_wedges=3, disk_based=True,
            disk_format="compressed"))
        rng = random.Random(52)
        for _ in range(25):
            x, y, a, b, kws, k = random_query_params(rng)
            q = DirectionalQuery.make(x, y, a, b, kws, k)
            got = compressed.search(q).distances()
            expect = brute_force_search(col, q).distances()
            assert [round(d, 9) for d in got] == \
                [round(d, 9) for d in expect]

    def test_bad_disk_format_rejected(self):
        import pytest as _pytest

        from repro.core import DesksIndex
        from ..core.conftest import make_collection

        col = make_collection(20, seed=53)
        with _pytest.raises(ValueError, match="disk_format"):
            DesksIndex(col, num_bands=2, num_wedges=2, disk_based=True,
                       disk_format="nope")
