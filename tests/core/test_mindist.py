"""Tests for MINDIST functions and direction bounds.

The key property for every bound: it must be a *lower bound* on the true
distance from the query to any point of the region that satisfies the
direction constraint — otherwise pruning would drop real answers.  We check
that against dense point sampling of bands and sub-regions.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mindist import (
    BasicQueryGeometry,
    annulus_mindist,
    band_mindist,
    basic_geometry,
    polar_point,
    subregion_mindist,
)
from repro.geometry import (
    HALF_PI,
    Anchor,
    CanonicalFrame,
    DirectionInterval,
    MBR,
    Point,
)

L, H = 100.0, 80.0

in_x = st.floats(min_value=0.0, max_value=L)
in_y = st.floats(min_value=0.0, max_value=H)
quadrant_angle = st.floats(min_value=0.0, max_value=HALF_PI)


def geo(qx, qy, alpha, beta):
    return BasicQueryGeometry(Point(qx, qy), alpha, beta, L, H)


def sample_band_points(inner, outer, count=120):
    """Dense polar sampling of a band within the rectangle."""
    pts = []
    outer_eff = min(outer, math.hypot(L, H)) if outer != math.inf else \
        math.hypot(L, H)
    steps = int(math.sqrt(count))
    for i in range(steps):
        r = inner + (outer_eff - inner) * (i + 0.5) / steps
        for j in range(steps):
            t = HALF_PI * (j + 0.5) / steps
            p = polar_point(r, t)
            if 0 <= p.x <= L and 0 <= p.y <= H:
                pts.append((p, r, t))
    return pts


class TestPolarAndAnnulus:
    def test_polar_point(self):
        p = polar_point(2.0, HALF_PI)
        assert p.x == pytest.approx(0.0, abs=1e-12)
        assert p.y == pytest.approx(2.0)

    @pytest.mark.parametrize("qd,inner,outer,expect", [
        (5.0, 2.0, 8.0, 0.0),
        (1.0, 2.0, 8.0, 1.0),
        (10.0, 2.0, 8.0, 2.0),
        (10.0, 2.0, math.inf, 0.0),
    ])
    def test_annulus(self, qd, inner, outer, expect):
        assert annulus_mindist(qd, inner, outer) == pytest.approx(expect)


class TestGeometryConstruction:
    def test_inside_flag(self):
        assert geo(10, 10, 0, 1).inside_rect
        assert not geo(-5, 10, 0, 1).inside_rect
        assert not geo(10, 200, 0, 1).inside_rect

    def test_q_theta(self):
        g = geo(10, 10, 0, 1)
        assert g.q_theta == pytest.approx(math.pi / 4)

    def test_q_on_anchor_gets_midpoint_theta(self):
        g = geo(0, 0, 0.2, 0.8)
        assert g.q_theta == pytest.approx(0.5)

    def test_exit_angles_ordered(self):
        g = geo(30, 20, 0.2, 1.2)
        assert g.theta_exit_alpha is not None
        assert g.theta_exit_beta is not None
        assert g.theta_exit_alpha <= g.theta_exit_beta + 1e-9


class TestRegionDirectionBounds:
    def test_brackets_q_theta(self):
        g = geo(40, 30, 0.3, 1.1)
        lo, hi = g.region_direction_bounds()
        assert lo <= g.q_theta <= hi

    def test_outside_rect_unbounded(self):
        g = geo(-10, 30, 0.3, 1.1)
        assert g.region_direction_bounds() == (0.0, HALF_PI)

    @settings(max_examples=60, deadline=None)
    @given(in_x, in_y, quadrant_angle, quadrant_angle)
    def test_lemma2_soundness(self, qx, qy, a, b):
        """No in-sector point's anchor angle may fall outside the bounds."""
        alpha, beta = min(a, b), max(a, b)
        g = geo(qx, qy, alpha, beta)
        lo, hi = g.region_direction_bounds()
        interval = DirectionInterval(alpha, beta)
        q = Point(qx, qy)
        for p, _, theta in sample_band_points(0.0, math.inf, count=150):
            if p == q:
                continue
            if interval.contains(q.direction_to(p)):
                assert lo - 1e-7 <= theta <= hi + 1e-7


class TestBandDirectionBounds:
    def test_tighter_than_region(self):
        g = geo(40, 30, 0.3, 1.1)
        region_lo, region_hi = g.region_direction_bounds()
        band_lo, band_hi = g.band_direction_bounds(60.0)
        assert band_lo >= region_lo - 1e-9
        assert band_hi <= region_hi + 1e-9

    def test_infinite_band_equals_region(self):
        g = geo(40, 30, 0.3, 1.1)
        assert g.band_direction_bounds(math.inf) == \
            g.region_direction_bounds()

    @settings(max_examples=60, deadline=None)
    @given(in_x, in_y, quadrant_angle, quadrant_angle,
           st.floats(min_value=5.0, max_value=150.0))
    def test_lemma4_soundness(self, qx, qy, a, b, outer):
        """In-sector points inside radius ``outer`` stay inside the bounds."""
        alpha, beta = min(a, b), max(a, b)
        g = geo(qx, qy, alpha, beta)
        lo, hi = g.band_direction_bounds(outer)
        interval = DirectionInterval(alpha, beta)
        q = Point(qx, qy)
        for p, r, theta in sample_band_points(0.0, outer, count=150):
            if p == q or r > outer:
                continue
            if interval.contains(q.direction_to(p)):
                assert lo - 1e-7 <= theta <= hi + 1e-7


class TestBandMindist:
    def test_lemma1_infinite_for_inner_bands(self):
        g = geo(50, 40, 0.2, 1.0)
        assert band_mindist(g, 10.0, 30.0) == math.inf

    def test_zero_when_inside(self):
        g = geo(30, 30, 0.2, 1.0)
        qd = math.hypot(30, 30)
        assert band_mindist(g, qd - 5, qd + 5) == 0.0

    def test_radial_case(self):
        g = geo(10, 10, 0.2, 1.2)  # q_theta = pi/4 inside [alpha, beta]
        qd = math.hypot(10, 10)
        assert band_mindist(g, qd + 10, qd + 20) == pytest.approx(10.0)

    def test_outside_rect_uses_annulus(self):
        g = geo(-10, 10, 0.2, 1.2)
        qd = math.hypot(10, 10)
        assert band_mindist(g, qd + 3, math.inf) == pytest.approx(3.0)

    @settings(max_examples=60, deadline=None)
    @given(in_x, in_y, quadrant_angle, quadrant_angle,
           st.floats(min_value=0.0, max_value=100.0),
           st.floats(min_value=1.0, max_value=60.0))
    def test_is_lower_bound(self, qx, qy, a, b, inner, width):
        alpha, beta = min(a, b), max(a, b)
        outer = inner + width
        g = geo(qx, qy, alpha, beta)
        bound = band_mindist(g, inner, outer)
        interval = DirectionInterval(alpha, beta)
        q = Point(qx, qy)
        for p, _r, _theta in sample_band_points(inner, outer):
            if p == q:
                continue
            if interval.contains(q.direction_to(p)):
                assert q.distance_to(p) >= bound - 1e-6


class TestSubregionMindist:
    def test_zero_when_q_inside_subregion(self):
        g = geo(30, 30, 0.2, 1.2)
        qd, qt = math.hypot(30, 30), math.atan2(30, 30)
        assert subregion_mindist(g, qd - 5, qd + 5, qt - 0.1,
                                 qt + 0.1) == 0.0

    def test_infinite_beyond_band(self):
        g = geo(50, 40, 0.2, 1.0)
        assert subregion_mindist(g, 10.0, 30.0, 0.0, 1.0) == math.inf

    def test_at_least_band_mindist(self):
        g = geo(20, 15, 0.1, 1.3)
        inner, outer = 60.0, 80.0
        band_bound = band_mindist(g, inner, outer)
        for t0, t1 in [(0.0, 0.4), (0.4, 0.9), (0.9, HALF_PI)]:
            assert subregion_mindist(g, inner, outer, t0, t1) >= \
                band_bound - 1e-9

    @settings(max_examples=80, deadline=None)
    @given(in_x, in_y, quadrant_angle, quadrant_angle,
           st.floats(min_value=0.0, max_value=100.0),
           st.floats(min_value=1.0, max_value=60.0),
           st.floats(min_value=0.0, max_value=HALF_PI),
           st.floats(min_value=0.0, max_value=HALF_PI))
    def test_is_lower_bound(self, qx, qy, a, b, inner, width, t0, t1):
        """Table I must lower-bound distances to in-sector subregion points."""
        alpha, beta = min(a, b), max(a, b)
        theta_lo, theta_hi = min(t0, t1), max(t0, t1)
        outer = inner + width
        g = geo(qx, qy, alpha, beta)
        bound = subregion_mindist(g, inner, outer, theta_lo, theta_hi)
        interval = DirectionInterval(alpha, beta)
        q = Point(qx, qy)
        for p, _r, theta in sample_band_points(inner, outer):
            if p == q or not (theta_lo <= theta <= theta_hi):
                continue
            if interval.contains(q.direction_to(p)):
                assert q.distance_to(p) >= bound - 1e-6


class TestBasicGeometryFactory:
    def test_builds_in_canonical_frame(self):
        rect = MBR(10.0, 20.0, 110.0, 100.0)
        frame = CanonicalFrame(Anchor.TOP_RIGHT, rect)
        interval = DirectionInterval(math.pi + 0.2, math.pi + 0.9)
        g = basic_geometry(frame, Point(60.0, 60.0),
                           frame.basic_interval(interval))
        assert g.inside_rect
        assert 0.0 <= g.alpha <= g.beta <= HALF_PI
        assert g.length == pytest.approx(100.0)
        assert g.height == pytest.approx(80.0)


def dense_subregion_min(q, interval, inner, outer, theta_lo, theta_hi,
                        steps=400):
    """Fine polar sampling of min distance to in-sector sub-region points."""
    best = math.inf
    outer_eff = min(outer, math.hypot(L, H) + 1.0)
    for i in range(steps + 1):
        r = inner + (outer_eff - inner) * i / steps
        for j in range(steps // 8 + 1):
            t = theta_lo + (theta_hi - theta_lo) * j / (steps // 8)
            p = polar_point(r, t)
            if not (0 <= p.x <= L and 0 <= p.y <= H):
                continue
            if p == q:
                return 0.0
            if interval.contains(q.direction_to(p)):
                best = min(best, q.distance_to(p))
    return best


class TestSubregionMindistExactness:
    """Table I gives the *exact* minimum, not just a lower bound.

    Each case below pins one row of Table I with a configuration whose
    true minimum is found by dense sampling; the formula must match it to
    sampling resolution.
    """

    CASES = [
        # (qx, qy, alpha, beta, inner, outer, theta_lo, theta_hi, row)
        (10.0, 4.0, 0.6, 1.2, 30.0, 45.0, 0.8, 1.1, "R<[t_lo,t_hi) radial"),
        (10.0, 4.0, 0.2, 0.5, 30.0, 45.0, 0.8, 1.1, "R<[t_lo,t_hi) alpha"),
        (10.0, 4.0, 1.3, 1.5, 30.0, 45.0, 0.8, 1.1, "R<[t_lo,t_hi) beta"),
        (20.0, 2.0, 0.5, 1.0, 30.0, 45.0, 0.7, 1.0, "R<[0,t_lo) corner"),
        (20.0, 2.0, 0.05, 0.1, 30.0, 45.0, 0.7, 1.0, "R<[0,t_lo) alpha"),
        (20.0, 2.0, 1.3, 1.5, 30.0, 45.0, 0.7, 1.0, "R<[0,t_lo) beta"),
        (3.0, 25.0, 0.6, 1.1, 30.0, 45.0, 0.3, 0.8, "R<[t_hi,pi/2] corner"),
        (3.0, 25.0, 0.1, 0.4, 30.0, 45.0, 0.3, 0.8, "R<[t_hi,pi/2] alpha"),
        (3.0, 25.0, 1.45, 1.55, 30.0, 45.0, 0.3, 0.8, "R<[t_hi,pi/2] beta"),
        (30.0, 5.0, 0.3, 1.2, 25.0, 45.0, 0.6, 1.0, "Ri[0,t_lo)"),
        (5.0, 30.0, 0.3, 1.2, 25.0, 45.0, 0.5, 0.9, "Ri[t_hi,pi/2]"),
        (28.0, 22.0, 0.3, 1.2, 25.0, 45.0, 0.5, 0.9, "Ri inside -> 0"),
    ]

    @pytest.mark.parametrize("qx,qy,alpha,beta,inner,outer,tlo,thi,row",
                             CASES, ids=[c[-1] for c in CASES])
    def test_formula_matches_dense_sampling(self, qx, qy, alpha, beta,
                                            inner, outer, tlo, thi, row):
        g = geo(qx, qy, alpha, beta)
        bound = subregion_mindist(g, inner, outer, tlo, thi)
        interval = DirectionInterval(alpha, beta)
        q = Point(qx, qy)
        sampled = dense_subregion_min(q, interval, inner, outer, tlo, thi)
        if sampled is math.inf:
            # No in-sector point exists in the sub-region: any finite bound
            # is vacuously sound; nothing to compare.
            return
        resolution = (outer - inner) / 50.0
        assert bound <= sampled + 1e-9, f"{row}: not a lower bound"
        assert bound >= sampled - resolution, f"{row}: bound too loose"
