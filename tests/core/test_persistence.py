"""Tests for index save/load (core.persistence + regions blobs)."""

import json
import math
import random

import pytest

from repro.core import (
    DesksIndex,
    DesksSearcher,
    DirectionalQuery,
    load_index,
    save_index,
)
from repro.core.regions import AnchorRegions
from repro.geometry import Anchor, CanonicalFrame, MBR, Point

from .conftest import make_collection, random_query_params


@pytest.fixture(scope="module")
def saved(tmp_path_factory):
    collection = make_collection(250, seed=41)
    index = DesksIndex(collection, num_bands=4, num_wedges=5)
    directory = tmp_path_factory.mktemp("idx") / "desks"
    save_index(index, str(directory))
    return collection, index, directory


class TestRegionsBlob:
    def make_regions(self):
        rng = random.Random(3)
        points = [Point(rng.uniform(0, 50), rng.uniform(0, 50))
                  for _ in range(120)]
        frame = CanonicalFrame(Anchor.TOP_RIGHT, MBR.from_points(points))
        return AnchorRegions(frame, points, 4, 3), frame, points

    def test_round_trip_structure(self):
        regions, frame, points = self.make_regions()
        restored = AnchorRegions.from_blob(frame, points, regions.to_blob())
        assert restored.poi_order == regions.poi_order
        assert restored.position_of == regions.position_of
        assert restored.num_bands == regions.num_bands
        assert restored.num_subregions == regions.num_subregions
        for a, b in zip(regions.bands, restored.bands):
            assert a.inner_radius == b.inner_radius
            assert a.outer_radius == b.outer_radius
        for a, b in zip(regions.subregions, restored.subregions):
            assert (a.gid, a.band_index, a.start, a.end) == \
                (b.gid, b.band_index, b.start, b.end)
            assert a.theta_lo == b.theta_lo
            assert a.theta_hi == b.theta_hi

    def test_wrong_collection_size_rejected(self):
        regions, frame, points = self.make_regions()
        with pytest.raises(ValueError, match="indexes"):
            AnchorRegions.from_blob(frame, points[:-1], regions.to_blob())

    def test_truncated_blob_rejected(self):
        regions, frame, points = self.make_regions()
        blob = regions.to_blob()
        with pytest.raises(ValueError):
            AnchorRegions.from_blob(frame, points, blob[:10])


class TestSaveIndex:
    def test_files_written(self, saved):
        _, _, directory = saved
        assert (directory / "meta.json").exists()
        assert (directory / "pois.csv").exists()
        for quadrant in range(4):
            assert (directory / f"anchor{quadrant}.bin").exists()

    def test_meta_contents(self, saved):
        _, index, directory = saved
        meta = json.loads((directory / "meta.json").read_text())
        assert meta["num_bands"] == index.num_bands
        assert meta["num_wedges"] == index.num_wedges
        assert meta["num_pois"] == len(index.collection)

    def test_disk_based_rejected(self, tmp_path):
        collection = make_collection(30, seed=2)
        index = DesksIndex(collection, num_bands=2, num_wedges=2,
                           disk_based=True)
        with pytest.raises(ValueError, match="disk-based"):
            save_index(index, str(tmp_path / "nope"))


class TestLoadIndex:
    def test_round_trip_answers_identical(self, saved):
        collection, index, directory = saved
        loaded = load_index(str(directory))
        original = DesksSearcher(index)
        restored = DesksSearcher(loaded)
        rng = random.Random(6)
        for _ in range(40):
            x, y, a, b, kws, k = random_query_params(rng)
            q = DirectionalQuery.make(x, y, a, b, kws, k)
            assert restored.search(q).distances() == pytest.approx(
                original.search(q).distances())

    def test_loaded_structure_matches(self, saved):
        _, index, directory = saved
        loaded = load_index(str(directory))
        assert loaded.num_bands == index.num_bands
        assert loaded.built_anchors() == index.built_anchors()
        for quadrant in range(4):
            assert (loaded.anchor_index(quadrant).regions.poi_order
                    == index.anchor_index(quadrant).regions.poi_order)

    def test_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_index(str(tmp_path / "missing"))

    def test_version_mismatch(self, saved, tmp_path):
        _, _, directory = saved
        import shutil
        copy = tmp_path / "v99"
        shutil.copytree(directory, copy)
        meta = json.loads((copy / "meta.json").read_text())
        meta["version"] = 99
        (copy / "meta.json").write_text(json.dumps(meta))
        with pytest.raises(ValueError, match="version"):
            load_index(str(copy))

    def test_poi_count_mismatch(self, saved, tmp_path):
        _, _, directory = saved
        import shutil
        copy = tmp_path / "short"
        shutil.copytree(directory, copy)
        lines = (copy / "pois.csv").read_text().splitlines()
        (copy / "pois.csv").write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(ValueError, match="promises"):
            load_index(str(copy))

    def test_partial_anchor_save(self, tmp_path):
        collection = make_collection(60, seed=3)
        index = DesksIndex(collection, num_bands=2, num_wedges=2,
                           anchors=[Anchor.BOTTOM_LEFT])
        directory = tmp_path / "partial"
        save_index(index, str(directory))
        loaded = load_index(str(directory))
        assert loaded.built_anchors() == [0]
        q = DirectionalQuery.make(50, 50, 0.1, 1.0, ["cafe"], 3)
        assert DesksSearcher(loaded).search(q).distances() == \
            pytest.approx(DesksSearcher(index).search(q).distances())


class TestPersistenceProperty:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    @settings(max_examples=15, deadline=None)
    @given(rows=st.lists(
        st.tuples(st.floats(0, 50).map(lambda v: round(v, 2)),
                  st.floats(0, 50).map(lambda v: round(v, 2)),
                  st.sets(st.sampled_from("abcd"), min_size=1, max_size=3)),
        min_size=1, max_size=30),
        bands=st.integers(1, 4), wedges=st.integers(1, 4))
    def test_round_trip_any_collection(self, rows, bands, wedges,
                                       tmp_path_factory):
        import math
        import random as _random

        from repro.core import brute_force_search
        from repro.datasets import POI, POICollection

        col = POICollection([POI.make(i, x, y, ks)
                             for i, (x, y, ks) in enumerate(rows)])
        index = DesksIndex(col, num_bands=bands, num_wedges=wedges)
        directory = tmp_path_factory.mktemp("prt") / "idx"
        save_index(index, str(directory))
        loaded = load_index(str(directory))
        searcher = DesksSearcher(loaded)
        rng = _random.Random(1)
        for _ in range(5):
            a = rng.uniform(0, 2 * math.pi)
            q = DirectionalQuery.make(
                rng.uniform(0, 50), rng.uniform(0, 50),
                a, a + rng.uniform(0.1, 6.0),
                rng.sample("abcd", rng.randint(1, 2)), 5)
            assert searcher.search(q).distances() == pytest.approx(
                brute_force_search(loaded.collection, q).distances())

    def test_missing_anchor_file(self, saved, tmp_path):
        import shutil

        _, _, directory = saved
        copy = tmp_path / "noanchor"
        shutil.copytree(directory, copy)
        (copy / "anchor2.bin").unlink()
        with pytest.raises(FileNotFoundError):
            load_index(str(copy))

    def test_corrupt_anchor_blob(self, saved, tmp_path):
        import shutil

        _, _, directory = saved
        copy = tmp_path / "corrupt"
        shutil.copytree(directory, copy)
        (copy / "anchor1.bin").write_bytes(b"\x07garbage")
        with pytest.raises(ValueError):
            load_index(str(copy))


class TestExtraFiles:
    def test_extras_ride_the_atomic_swap(self, tmp_path):
        collection = make_collection(40, seed=8)
        index = DesksIndex(collection, num_bands=2, num_wedges=2)
        directory = tmp_path / "extras"
        save_index(index, str(directory),
                   extra_files={"marker.json": b'{"op_seq": 7}'})
        assert (directory / "marker.json").read_bytes() == b'{"op_seq": 7}'
        load_index(str(directory), verify=True)  # manifest covers extras

    def test_extras_are_checksummed(self, tmp_path):
        from repro.core.persistence import PersistenceError, scrub_saved

        collection = make_collection(40, seed=8)
        index = DesksIndex(collection, num_bands=2, num_wedges=2)
        directory = tmp_path / "extras"
        save_index(index, str(directory), extra_files={"marker.json": b"7"})
        (directory / "marker.json").write_bytes(b"8")
        report = scrub_saved(str(directory))
        assert not report.clean
        assert any("marker.json" in path for path, _ in report.corrupt)
        with pytest.raises(PersistenceError, match="verification"):
            load_index(str(directory), verify=True)


class TestKeywordEdgeCases:
    """Round trips for keyword sets the CSV/blob formats could mangle."""

    def make_index(self):
        from repro.datasets import POI, POICollection

        pois = [
            POI.make(0, 1.0, 1.0, ["café", "北京烤鸭"]),
            POI.make(1, 2.0, 2.0, []),            # no keywords at all
            POI.make(2, 3.0, 3.0, ["مقهى", "пекарня"]),
            POI.make(3, 4.0, 4.0, ["plain"]),
        ]
        return DesksIndex(POICollection(pois), num_bands=2, num_wedges=2)

    def test_non_ascii_and_empty_sets_round_trip(self, tmp_path):
        index = self.make_index()
        directory = tmp_path / "uni"
        save_index(index, str(directory))
        loaded = load_index(str(directory), verify=True)
        for i in range(4):
            assert (loaded.collection[i].keywords
                    == index.collection[i].keywords)
        q = DirectionalQuery.make(0, 0, 0, 2 * math.pi, ["café"], 4)
        assert [e.poi_id for e in DesksSearcher(loaded).search(q).entries] \
            == [0]

    def test_unicode_queries_match_after_reload(self, tmp_path):
        index = self.make_index()
        directory = tmp_path / "uni2"
        save_index(index, str(directory))
        loaded = load_index(str(directory))
        for term, expect in (("北京烤鸭", [0]), ("пекарня", [2]),
                             ("missing", [])):
            q = DirectionalQuery.make(0, 0, 0, 2 * math.pi, [term], 4)
            assert [e.poi_id
                    for e in DesksSearcher(loaded).search(q).entries] \
                == expect


class TestShardedManifestValidation:
    def make_deployment(self, tmp_path, name="dep", meta=None):
        from repro.core.persistence import save_sharded

        shards = [DesksIndex(make_collection(30, seed=s),
                             num_bands=2, num_wedges=2) for s in (1, 2, 3)]
        directory = tmp_path / name
        save_sharded(shards, str(directory), meta=meta)
        return directory

    def test_missing_shard_directory_is_typed(self, tmp_path):
        from repro.core.persistence import (
            MissingPersistenceFile,
            load_sharded,
        )

        directory = self.make_deployment(tmp_path)
        import shutil
        shutil.rmtree(directory / "shard1")
        with pytest.raises(MissingPersistenceFile, match="shard1"):
            load_sharded(str(directory))

    def test_extra_shard_directory_rejected(self, tmp_path):
        from repro.core.persistence import PersistenceError, load_sharded

        directory = self.make_deployment(tmp_path)
        import shutil
        shutil.copytree(directory / "shard0", directory / "shard9")
        with pytest.raises(PersistenceError, match="holds 4"):
            load_sharded(str(directory))

    def test_invalid_num_shards_rejected(self, tmp_path):
        from repro.core.persistence import PersistenceError, load_sharded

        directory = self.make_deployment(tmp_path)
        meta = json.loads((directory / "meta.json").read_text())
        meta["num_shards"] = 0
        (directory / "meta.json").write_text(json.dumps(meta))
        with pytest.raises(PersistenceError, match="num_shards"):
            load_sharded(str(directory))

    def test_global_id_lists_must_match_shard_count(self, tmp_path):
        from repro.core.persistence import PersistenceError, load_sharded

        directory = self.make_deployment(
            tmp_path, meta={"shard_global_ids": [[0], [1]]})
        with pytest.raises(PersistenceError, match="global ids"):
            load_sharded(str(directory))

    def test_non_object_manifest_rejected(self, tmp_path):
        from repro.core.persistence import PersistenceError, load_sharded

        directory = self.make_deployment(tmp_path)
        (directory / "meta.json").write_text("[1, 2, 3]")
        with pytest.raises(PersistenceError, match="not an object"):
            load_sharded(str(directory))

    def test_scrub_covers_every_shard(self, tmp_path):
        from repro.core.persistence import scrub_saved
        from repro.storage import CorruptionInjector

        directory = self.make_deployment(tmp_path)
        assert scrub_saved(str(directory)).clean
        CorruptionInjector(seed=4).corrupt_file(
            str(directory / "shard2" / "anchor0.bin"))
        report = scrub_saved(str(directory))
        assert not report.clean
        assert any("shard2" in path for path, _ in report.corrupt)


class TestInterruptedSwap:
    """A crash between the swap's two renames must not lose the save."""

    def make_index(self, seed=8):
        collection = make_collection(40, seed=seed)
        return DesksIndex(collection, num_bands=2, num_wedges=2)

    def crash_mid_swap(self, tmp_path):
        """Save twice, killing the second save between its renames."""
        from repro.storage import SimulatedCrash

        directory = tmp_path / "idx"
        save_index(self.make_index(seed=8), str(directory))

        def crash(stage):
            if stage == "swap.displaced":
                raise SimulatedCrash(stage)

        with pytest.raises(SimulatedCrash):
            save_index(self.make_index(seed=9), str(directory),
                       extra_files={"marker.json": b"new"},
                       failpoint=crash)
        assert not directory.exists()
        assert (tmp_path / "idx.saving").is_dir()
        assert (tmp_path / "idx.displaced").is_dir()
        return directory

    def test_load_rolls_forward_to_completed_staging(self, tmp_path):
        directory = self.crash_mid_swap(tmp_path)
        loaded = load_index(str(directory), verify=True)
        # The staging dir was complete when the crash hit, so repair
        # adopts the NEW save (marker.json only exists in it).
        assert (directory / "marker.json").read_bytes() == b"new"
        assert len(loaded.collection) == 40
        assert not (tmp_path / "idx.saving").exists()
        assert not (tmp_path / "idx.displaced").exists()

    def test_next_save_repairs_before_staging(self, tmp_path):
        directory = self.crash_mid_swap(tmp_path)
        save_index(self.make_index(seed=10), str(directory))
        load_index(str(directory), verify=True)
        assert not (tmp_path / "idx.saving").exists()
        assert not (tmp_path / "idx.displaced").exists()

    def test_repair_rolls_back_without_staging(self, tmp_path):
        import shutil

        from repro.core import repair_interrupted_swap

        directory = self.crash_mid_swap(tmp_path)
        shutil.rmtree(tmp_path / "idx.saving")
        assert repair_interrupted_swap(str(directory))
        # Only the displaced old save is left; roll back to it.
        assert not (directory / "marker.json").exists()
        load_index(str(directory), verify=True)

    def test_repair_is_noop_on_intact_directory(self, tmp_path):
        from repro.core import repair_interrupted_swap

        directory = tmp_path / "idx"
        save_index(self.make_index(), str(directory))
        assert not repair_interrupted_swap(str(directory))
        load_index(str(directory), verify=True)

    def test_partial_staging_alone_is_not_adopted(self, tmp_path):
        from repro.core import repair_interrupted_swap
        from repro.core.persistence import MissingPersistenceFile

        staging = tmp_path / "idx.saving"
        staging.mkdir()
        (staging / "meta.json").write_text("{")  # torn mid-write
        assert not repair_interrupted_swap(str(tmp_path / "idx"))
        with pytest.raises(MissingPersistenceFile):
            load_index(str(tmp_path / "idx"))
