"""Tests for the query-trace (EXPLAIN) facility."""

import math


from repro.core import (
    DirectionalQuery,
    PruningMode,
    QueryTrace,
)
from repro.storage import SearchStats


class TestQueryTrace:
    def run(self, searcher, query, mode=PruningMode.RD):
        trace = QueryTrace()
        result = searcher.search(query, mode, trace=trace)
        return trace, result

    def test_subqueries_match_decomposition(self, searcher):
        q = DirectionalQuery.make(50, 50, 0.2, 0.2 + 1.5 * math.pi,
                                  ["cafe"], 5)
        trace, _ = self.run(searcher, q)
        assert len(trace.subqueries) == len(q.basic_subqueries())

    def test_single_quadrant_one_subquery(self, searcher):
        q = DirectionalQuery.make(50, 50, 0.1, 1.0, ["cafe"], 5)
        trace, _ = self.run(searcher, q)
        assert len(trace.subqueries) <= 1  # 0 if no keyword sub-regions

    def test_band_accounting_consistent_with_stats(self, searcher):
        q = DirectionalQuery.make(50, 50, 0.0, math.pi, ["food"], 10)
        trace = QueryTrace()
        stats = SearchStats()
        searcher.search(q, PruningMode.RD, stats=stats, trace=trace)
        assert trace.bands_scanned == stats.regions_examined
        assert trace.total_pois_fetched == stats.pois_examined

    def test_num_results_recorded(self, searcher):
        q = DirectionalQuery.make(50, 50, 0.0, 2.0, ["cafe"], 3)
        trace, result = self.run(searcher, q)
        assert trace.num_results == len(result)

    def test_termination_recorded_under_region_pruning(self, searcher):
        # A dense keyword with small k terminates before exhausting bands.
        q = DirectionalQuery.undirected(50, 50, ["food"], 1)
        trace, _ = self.run(searcher, q, PruningMode.RD)
        if trace.terminated_early:
            assert any(b.action == "terminated" for b in trace.bands)

    def test_direction_mode_fills_tau_and_window(self, searcher):
        q = DirectionalQuery.make(50, 50, 0.3, 0.9, ["food"], 5)
        trace, _ = self.run(searcher, q, PruningMode.RD)
        scanned = [b for b in trace.bands if b.action == "scanned"]
        assert scanned, "expected at least one scanned band"
        for band in scanned:
            assert band.tau_bounds is not None
            lo, hi = band.tau_bounds
            assert lo <= hi
            assert band.wedge_window is not None

    def test_r_mode_has_no_tau(self, searcher):
        q = DirectionalQuery.make(50, 50, 0.3, 0.9, ["food"], 5)
        trace, _ = self.run(searcher, q, PruningMode.R)
        for band in trace.bands:
            assert band.tau_bounds is None

    def test_render_mentions_key_facts(self, searcher):
        q = DirectionalQuery.make(50, 50, 0.1, 2.2, ["cafe"], 5)
        trace, result = self.run(searcher, q)
        text = trace.render()
        assert "query trace" in text
        assert f"{len(result)} answer" in text
        assert "subquery quadrant=" in text

    def test_unknown_keyword_trace_empty(self, searcher):
        q = DirectionalQuery.make(50, 50, 0.1, 1.0, ["zzz"], 5)
        trace, result = self.run(searcher, q)
        assert trace.bands == []
        assert trace.num_results == 0
        assert "0 answer" in trace.render()

    def test_trace_does_not_change_answers(self, searcher):
        q = DirectionalQuery.make(40, 60, 0.5, 3.5, ["gas"], 8)
        with_trace = searcher.search(q, trace=QueryTrace())
        without = searcher.search(q)
        assert with_trace.distances() == without.distances()

    def test_verified_never_exceeds_fetched(self, searcher):
        q = DirectionalQuery.make(50, 50, 0.0, 1.2, ["food"], 10)
        trace, _ = self.run(searcher, q)
        for band in trace.bands:
            assert band.pois_verified <= band.pois_fetched
