"""Tests for dynamic updates (MutableDesksIndex) and location moves."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DesksIndex,
    DesksSearcher,
    DirectionalQuery,
    IncrementalSearcher,
    MutableDesksIndex,
    brute_force_search,
)
from repro.datasets import POI, POICollection
from repro.storage import SearchStats

from .conftest import KEYWORD_POOL, make_collection, random_query_params


def brute_force_over(pois, query):
    """Oracle over an explicit POI list (ids preserved)."""
    entries = []
    for poi in pois:
        if query.matches(poi.location, poi.keywords):
            entries.append(
                (query.location.distance_to(poi.location), poi.poi_id))
    entries.sort()
    return [d for d, _ in entries[:query.k]]


class TestMutableIndexBasics:
    def test_threshold_validation(self):
        col = make_collection(20, seed=1)
        with pytest.raises(ValueError):
            MutableDesksIndex(col, rebuild_threshold=0.0)
        with pytest.raises(ValueError):
            MutableDesksIndex(col, rebuild_threshold=1.5)

    def test_len_tracks_updates(self):
        col = make_collection(20, seed=1)
        idx = MutableDesksIndex(col, num_bands=2, num_wedges=2,
                                rebuild_threshold=1.0)
        assert len(idx) == 20
        new_id = idx.insert(5.0, 5.0, ["cafe"])
        assert len(idx) == 21
        assert idx.delete(new_id)
        assert len(idx) == 20

    def test_insert_returns_fresh_ids(self):
        col = make_collection(10, seed=2)
        idx = MutableDesksIndex(col, num_bands=2, num_wedges=2,
                                rebuild_threshold=1.0)
        a = idx.insert(1.0, 1.0, ["x"])
        b = idx.insert(2.0, 2.0, ["x"])
        assert a == 10 and b == 11

    def test_delete_unknown_or_twice(self):
        col = make_collection(10, seed=3)
        idx = MutableDesksIndex(col, num_bands=2, num_wedges=2)
        assert not idx.delete(999)
        assert idx.delete(3)
        assert not idx.delete(3)

    def test_get(self):
        col = make_collection(10, seed=4)
        idx = MutableDesksIndex(col, num_bands=2, num_wedges=2,
                                rebuild_threshold=1.0)
        new_id = idx.insert(7.0, 8.0, ["pizza"])
        assert idx.get(0).poi_id == 0
        assert idx.get(new_id).keywords == frozenset({"pizza"})
        idx.delete(new_id)
        with pytest.raises(KeyError):
            idx.get(new_id)
        with pytest.raises(KeyError):
            idx.get(500)

    def test_rebuild_triggered(self):
        col = make_collection(20, seed=5)
        idx = MutableDesksIndex(col, num_bands=2, num_wedges=2,
                                rebuild_threshold=0.2)
        for i in range(6):
            idx.insert(float(i), float(i), ["cafe"])
        assert idx.rebuild_count >= 1
        assert idx.num_pending < 6
        assert len(idx) == 26


class TestMutableIndexQueries:
    def test_insert_then_found(self):
        col = make_collection(50, seed=6)
        idx = MutableDesksIndex(col, num_bands=3, num_wedges=3,
                                rebuild_threshold=1.0)
        poi_id = idx.insert(50.0, 50.0, ["uniquekeyword"])
        q = DirectionalQuery.undirected(49.0, 49.0, ["uniquekeyword"], 5)
        result = idx.search(q)
        assert result.poi_ids() == [poi_id]

    def test_delete_then_gone(self):
        col = make_collection(50, seed=7)
        idx = MutableDesksIndex(col, num_bands=3, num_wedges=3)
        target = col[0]
        kw = next(iter(target.keywords))
        q = DirectionalQuery.undirected(target.location.x,
                                        target.location.y, [kw], 100)
        assert target.poi_id in idx.search(q).poi_ids()
        idx.delete(target.poi_id)
        assert target.poi_id not in idx.search(q).poi_ids()

    def test_matches_oracle_through_update_stream(self):
        """Random inserts/deletes/queries stay exact at every step.

        The mirror tracks POI *contents* (locations + keywords); ids are
        re-densified by rebuilds, so deletes pick victims from the index's
        own live view and the mirror is keyed by content, which is what
        the distance-based oracle compares.
        """
        rng = random.Random(8)
        col = make_collection(60, seed=8)
        idx = MutableDesksIndex(col, num_bands=3, num_wedges=3,
                                rebuild_threshold=0.3)
        mirror = {(p.location.x, p.location.y, p.keywords)
                  for p in col}
        for step in range(120):
            op = rng.random()
            if op < 0.3:
                x, y = rng.uniform(0, 100), rng.uniform(0, 100)
                kws = frozenset(rng.sample(KEYWORD_POOL, rng.randint(1, 3)))
                idx.insert(x, y, kws)
                mirror.add((x, y, kws))
            elif op < 0.45 and len(idx):
                victim = rng.choice(idx.live_pois())
                assert idx.delete(victim.poi_id)
                mirror.discard((victim.location.x, victim.location.y,
                                victim.keywords))
            else:
                x, y, a, b, kws, k = random_query_params(rng)
                q = DirectionalQuery.make(x, y, a, b, kws, k)
                got = idx.search(q).distances()
                expect = brute_force_over(
                    [POI.make(i, px, py, pk)
                     for i, (px, py, pk) in enumerate(mirror)], q)
                assert [round(d, 9) for d in got] == \
                    [round(d, 9) for d in expect], f"step {step}"
            # The index's own live view always matches the mirror size.
            assert len(idx) == len(mirror)

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.tuples(st.floats(0, 50), st.floats(0, 50),
                              st.sampled_from(["a", "b"])),
                    min_size=1, max_size=25),
           st.floats(0, 2 * math.pi), st.floats(0.1, 2 * math.pi))
    def test_inserts_match_static_rebuild(self, rows, alpha, width):
        """Query answers equal a statically built index on the same data."""
        base = POICollection([POI.make(0, 1.0, 1.0, ["a"])])
        idx = MutableDesksIndex(base, num_bands=2, num_wedges=2,
                                rebuild_threshold=1.0)
        pois = [POI.make(0, 1.0, 1.0, ["a"])]
        for i, (x, y, kw) in enumerate(rows, start=1):
            idx.insert(x, y, [kw])
            pois.append(POI.make(i, x, y, [kw]))
        static = DesksSearcher(DesksIndex(POICollection(pois),
                                          num_bands=2, num_wedges=2))
        q = DirectionalQuery.make(25.0, 25.0, alpha, alpha + width,
                                  ["a"], 5)
        assert idx.search(q).distances() == pytest.approx(
            static.search(q).distances())


class TestMoveLocation:
    def test_matches_from_scratch(self):
        col = make_collection(300, seed=9)
        searcher = DesksSearcher(DesksIndex(col, num_bands=4,
                                            num_wedges=4))
        inc = IncrementalSearcher(searcher)
        rng = random.Random(10)
        for _ in range(25):
            x, y, a, b, kws, k = random_query_params(rng)
            q = DirectionalQuery.make(x, y, a, b, kws, k)
            inc.initial_search(q)
            nx, ny = x + rng.uniform(-5, 5), y + rng.uniform(-5, 5)
            got = inc.move_location(nx, ny)
            expect = brute_force_search(
                col, DirectionalQuery.make(nx, ny, a, b, kws, k))
            assert [round(d, 9) for d in got.distances()] == \
                [round(d, 9) for d in expect.distances()]

    def test_cache_updated_to_new_location(self):
        col = make_collection(100, seed=11)
        searcher = DesksSearcher(DesksIndex(col, num_bands=3,
                                            num_wedges=3))
        inc = IncrementalSearcher(searcher)
        q = DirectionalQuery.make(50, 50, 0.0, 2.0, ["cafe"], 5)
        inc.initial_search(q)
        inc.move_location(60.0, 40.0)
        assert inc.cached.query.location.x == 60.0

    def test_small_hop_reduces_work_on_average(self):
        col = make_collection(400, seed=12)
        searcher = DesksSearcher(DesksIndex(col, num_bands=4,
                                            num_wedges=5))
        inc = IncrementalSearcher(searcher)
        rng = random.Random(13)
        seeded = fresh = 0
        for _ in range(30):
            x, y = rng.uniform(20, 80), rng.uniform(20, 80)
            a = rng.uniform(0, 2 * math.pi)
            q = DirectionalQuery.make(x, y, a, a + 1.5, ["food"], 10)
            inc.initial_search(q)
            s1, s2 = SearchStats(), SearchStats()
            inc.move_location(x + 1.0, y + 1.0, stats=s1)
            searcher.search(
                DirectionalQuery.make(x + 1.0, y + 1.0, a, a + 1.5,
                                      ["food"], 10), stats=s2)
            seeded += s1.pois_examined
            fresh += s2.pois_examined
        assert seeded <= fresh
