"""Regression tests: POIs at the query location survive direction pruning.

A POI co-located with the query is an answer at distance 0 regardless of
the direction interval (``DirectionalQuery.matches`` treats it so), but it
stresses two degenerate spots in the pruning machinery:

* the band's *last* sub-region is closed at ``pi/2`` (POIs exactly on the
  quadrant boundary live inside it) while the wedge-window binary search
  used to assume every sub-region is half-open — a query straight above an
  anchor produced an empty window and dropped the co-located POI;
* a query exactly at an anchor corner has ``qd == 0``, and a POI at the
  anchor carries the ``atan2(0, 0) == 0`` angle convention, outside any
  non-trivial ``[alpha, beta]`` window.

Both were found by the incremental Hypothesis suite; these tests pin the
minimal reproducers plus a randomized apex sweep against brute force.
"""

import math
import random

import pytest

from repro.core import DesksIndex, DesksSearcher, DirectionalQuery, PruningMode
from repro.core.bruteforce import brute_force_search
from repro.datasets import POI, POICollection
from repro.geometry import Point

ALL_MODES = (PruningMode.R, PruningMode.D, PruningMode.RD)


def make_searcher(pois, num_bands=2, num_wedges=2):
    collection = POICollection(pois)
    index = DesksIndex(collection, num_bands=num_bands,
                       num_wedges=num_wedges)
    return collection, DesksSearcher(index)


class TestCoLocatedPOI:
    def test_poi_on_quadrant_boundary_above_anchor(self):
        # Query straight above the anchor: canonical theta is exactly pi/2,
        # which lands in the band's closed-top last wedge.
        pois = [POI(0, Point(0.0, 0.0), frozenset({"a"})),
                POI(1, Point(0.0, 0.0), frozenset({"a"})),
                POI(2, Point(0.0, 1.0), frozenset({"a"}))]
        _, searcher = make_searcher(pois)
        query = DirectionalQuery.make(0.0, 0.0, 4.0, 5.0, ["a"], k=3)
        for mode in ALL_MODES:
            result = searcher.search(query, mode)
            assert result.poi_ids() == [0, 1], mode
            assert result.distances() == [0.0, 0.0], mode

    def test_query_at_anchor_corner(self):
        # The MBR's min corner IS an anchor; a POI there has qd == 0 and
        # the degenerate theta = 0 convention.
        pois = [POI(0, Point(0.0, 0.0), frozenset({"a"})),
                POI(1, Point(7.0, 9.0), frozenset({"a"})),
                POI(2, Point(3.0, 2.0), frozenset({"a"}))]
        _, searcher = make_searcher(pois)
        # Interval well away from theta = 0.
        query = DirectionalQuery.make(0.0, 0.0, 1.3, 1.5, ["a"], k=3)
        for mode in ALL_MODES:
            result = searcher.search(query, mode)
            assert 0 in result.poi_ids(), mode
            assert result.distances()[0] == 0.0, mode

    @pytest.mark.parametrize("corner", [(0, 0), (10, 0), (0, 10), (10, 10)])
    def test_query_at_every_anchor_corner(self, corner):
        x, y = corner
        pois = [POI(0, Point(float(x), float(y)), frozenset({"a"})),
                POI(1, Point(5.0, 5.0), frozenset({"a"})),
                POI(2, Point(10.0, 10.0), frozenset({"b"})),
                POI(3, Point(0.0, 0.0), frozenset({"b"})),
                POI(4, Point(10.0, 0.0), frozenset({"b"})),
                POI(5, Point(0.0, 10.0), frozenset({"b"}))]
        _, searcher = make_searcher(pois)
        for lower in (0.5, 2.0, 3.8, 5.5):
            query = DirectionalQuery.make(float(x), float(y), lower,
                                          lower + 0.4, ["a"], k=2)
            for mode in ALL_MODES:
                result = searcher.search(query, mode)
                assert 0 in result.poi_ids(), (corner, lower, mode)


class TestApexSweep:
    def test_random_apex_queries_match_brute_force(self):
        rng = random.Random(1040)
        vocabulary = ["a", "b", "c"]
        for _ in range(60):
            n = rng.randrange(3, 40)
            pois = [POI(i, Point(rng.uniform(0, 100), rng.uniform(0, 100)),
                        frozenset(rng.sample(vocabulary,
                                             rng.randrange(1, 3))))
                    for i in range(n)]
            collection, searcher = make_searcher(
                pois, num_bands=3, num_wedges=4)
            target = pois[rng.randrange(n)]
            lower = rng.uniform(0, 2 * math.pi)
            query = DirectionalQuery.make(
                target.location.x, target.location.y,
                lower, lower + rng.uniform(0.2, 3.0),
                sorted(target.keywords)[:1], k=5)
            expected = brute_force_search(collection, query)
            for mode in ALL_MODES:
                got = searcher.search(query, mode)
                assert got.poi_ids() == expected.poi_ids(), (
                    mode, got.poi_ids(), expected.poi_ids())
