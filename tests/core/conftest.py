"""Shared fixtures for DESKS core tests."""

import math
import random

import pytest

from repro.core import DesksIndex, DesksSearcher
from repro.datasets import POI, POICollection

KEYWORD_POOL = ["cafe", "food", "gas", "atm", "pizza", "bank", "hotel",
                "park"]


def make_collection(n=400, seed=42, extent=100.0):
    rng = random.Random(seed)
    pois = []
    for i in range(n):
        kws = rng.sample(KEYWORD_POOL, rng.randint(1, 3))
        pois.append(POI.make(i, rng.uniform(0, extent),
                             rng.uniform(0, extent), kws))
    return POICollection(pois)


def random_query_params(rng, extent=100.0, outside=False):
    margin = 0.5 * extent if outside else 0.0
    x = rng.uniform(-margin, extent + margin)
    y = rng.uniform(-margin, extent + margin)
    alpha = rng.uniform(0.0, 2 * math.pi)
    width = rng.uniform(0.05, 2 * math.pi)
    keywords = rng.sample(KEYWORD_POOL, rng.randint(1, 2))
    k = rng.choice([1, 3, 10, 25])
    return x, y, alpha, alpha + width, keywords, k


@pytest.fixture(scope="session")
def collection():
    return make_collection()


@pytest.fixture(scope="session")
def index(collection):
    return DesksIndex(collection, num_bands=5, num_wedges=6)


@pytest.fixture(scope="session")
def searcher(index):
    return DesksSearcher(index)
