"""Tests for incremental direction updates (paper Sec. V)."""

import math
import random

import pytest

from repro.core import (
    DesksIndex,
    DesksSearcher,
    DirectionalQuery,
    IncrementalSearcher,
    brute_force_search,
)
from repro.core.incremental import _wedges, _widening_of
from repro.geometry import DirectionInterval
from repro.storage import SearchStats

from .conftest import make_collection


@pytest.fixture(scope="module")
def setup():
    col = make_collection(500, seed=23)
    searcher = DesksSearcher(DesksIndex(col, num_bands=4, num_wedges=6))
    return col, searcher


def assert_same_distances(got, expect):
    assert [round(d, 9) for d in got.distances()] == \
        [round(d, 9) for d in expect.distances()]


class TestWideningHelpers:
    def test_widening_both_sides(self):
        old = DirectionInterval(1.0, 2.0)
        new = DirectionInterval(0.5, 2.3)
        lo, hi = _widening_of(old, new)
        assert lo == pytest.approx(0.5)
        assert hi == pytest.approx(0.3)

    def test_widening_one_side(self):
        old = DirectionInterval(1.0, 2.0)
        new = DirectionInterval(1.0, 2.5)
        lo, hi = _widening_of(old, new)
        assert lo == pytest.approx(0.0)
        assert hi == pytest.approx(0.5)

    def test_not_a_widening(self):
        old = DirectionInterval(1.0, 2.0)
        new = DirectionInterval(1.2, 2.0)
        assert _widening_of(old, new) == (None, None)

    def test_widening_to_full(self):
        old = DirectionInterval(1.0, 2.0)
        lo, hi = _widening_of(old, DirectionInterval.full())
        assert lo + hi == pytest.approx(2 * math.pi - 1.0)

    def test_wedges(self):
        old = DirectionInterval(1.0, 2.0)
        wedges = _wedges(old, 0.5, 0.3)
        assert len(wedges) == 2
        assert wedges[0].lower == pytest.approx(0.5)
        assert wedges[0].upper == pytest.approx(1.0)
        assert wedges[1].lower == pytest.approx(2.0)
        assert wedges[1].upper == pytest.approx(2.3)

    def test_no_wedges_when_no_growth(self):
        assert _wedges(DirectionInterval(1.0, 2.0), 0.0, 0.0) == []


class TestIncreaseDirection:
    def test_requires_initial_search(self, setup):
        _, searcher = setup
        inc = IncrementalSearcher(searcher)
        with pytest.raises(RuntimeError):
            inc.increase_direction(DirectionInterval(0, 1))

    def test_rejects_shrinking(self, setup):
        _, searcher = setup
        inc = IncrementalSearcher(searcher)
        inc.initial_search(DirectionalQuery.make(50, 50, 0.5, 1.5,
                                                 ["cafe"], 5))
        with pytest.raises(ValueError):
            inc.increase_direction(DirectionInterval(0.8, 1.2))

    def test_matches_from_scratch(self, setup):
        col, searcher = setup
        rng = random.Random(3)
        inc = IncrementalSearcher(searcher)
        for _ in range(30):
            x, y = rng.uniform(0, 100), rng.uniform(0, 100)
            a = rng.uniform(0, 2 * math.pi)
            w = rng.uniform(0.2, 1.0)
            q = DirectionalQuery.make(x, y, a, a + w, ["food"], 10)
            inc.initial_search(q)
            wider = DirectionInterval(a - rng.uniform(0, 0.8),
                                      a + w + rng.uniform(0, 0.8))
            got = inc.increase_direction(wider)
            expect = brute_force_search(col, q.with_interval(wider))
            assert_same_distances(got, expect)

    def test_repeated_increases(self, setup):
        col, searcher = setup
        inc = IncrementalSearcher(searcher)
        q = DirectionalQuery.make(50, 50, 1.0, 1.2, ["cafe"], 8)
        inc.initial_search(q)
        interval = q.interval
        for _step in range(6):
            interval = interval.widen(0.15, 0.25)
            got = inc.increase_direction(interval)
            expect = brute_force_search(col, q.with_interval(interval))
            assert_same_distances(got, expect)

    def test_increase_to_full_circle(self, setup):
        col, searcher = setup
        inc = IncrementalSearcher(searcher)
        q = DirectionalQuery.make(30, 70, 0.5, 1.5, ["gas"], 5)
        inc.initial_search(q)
        got = inc.increase_direction(DirectionInterval.full())
        expect = brute_force_search(col, q.with_interval(
            DirectionInterval.full()))
        assert_same_distances(got, expect)

    def test_cache_updated(self, setup):
        _, searcher = setup
        inc = IncrementalSearcher(searcher)
        q = DirectionalQuery.make(50, 50, 1.0, 1.5, ["cafe"], 5)
        inc.initial_search(q)
        wider = DirectionInterval(0.8, 1.7)
        inc.increase_direction(wider)
        assert inc.cached.query.interval.lower == pytest.approx(0.8)

    def test_incremental_examines_fewer_pois_on_average(self, setup):
        """The cached d_k bound must cut work versus fresh searches.

        The advantage is statistical (the paper's Fig. 20 averages 5000
        queries); a single query can go either way, so we aggregate.
        """
        _, searcher = setup
        rng = random.Random(77)
        inc = IncrementalSearcher(searcher)
        inc_total = fresh_total = 0
        for _ in range(40):
            x, y = rng.uniform(20, 80), rng.uniform(20, 80)
            a = rng.uniform(0, 2 * math.pi)
            q = DirectionalQuery.make(x, y, a, a + math.pi / 3,
                                      ["food"], 10)
            inc.initial_search(q)
            wider = q.interval.widen(math.pi / 36, math.pi / 36)

            inc_stats = SearchStats()
            inc.increase_direction(wider, stats=inc_stats)
            inc_total += inc_stats.pois_examined

            fresh_stats = SearchStats()
            searcher.search(q.with_interval(wider), stats=fresh_stats)
            fresh_total += fresh_stats.pois_examined
        assert inc_total < fresh_total


class TestMoveDirection:
    def test_matches_from_scratch_small_moves(self, setup):
        col, searcher = setup
        rng = random.Random(11)
        inc = IncrementalSearcher(searcher)
        for _ in range(30):
            x, y = rng.uniform(0, 100), rng.uniform(0, 100)
            a = rng.uniform(0, 2 * math.pi)
            w = rng.uniform(0.4, 1.2)
            q = DirectionalQuery.make(x, y, a, a + w, ["food"], 10)
            inc.initial_search(q)
            delta = rng.uniform(-w * 0.9, w * 0.9)
            got = inc.move_direction(delta)
            expect = brute_force_search(
                col, q.with_interval(q.interval.rotate(delta)))
            assert_same_distances(got, expect)

    def test_large_move_falls_back_to_scratch(self, setup):
        col, searcher = setup
        inc = IncrementalSearcher(searcher)
        q = DirectionalQuery.make(50, 50, 1.0, 1.5, ["cafe"], 5)
        inc.initial_search(q)
        got = inc.move_direction(2.0)  # way past the old interval
        expect = brute_force_search(
            col, q.with_interval(q.interval.rotate(2.0)))
        assert_same_distances(got, expect)

    def test_negative_rotation(self, setup):
        col, searcher = setup
        inc = IncrementalSearcher(searcher)
        q = DirectionalQuery.make(40, 40, 2.0, 3.0, ["food"], 8)
        inc.initial_search(q)
        got = inc.move_direction(-0.3)
        expect = brute_force_search(
            col, q.with_interval(q.interval.rotate(-0.3)))
        assert_same_distances(got, expect)

    def test_repeated_moves_track_compass(self, setup):
        col, searcher = setup
        inc = IncrementalSearcher(searcher)
        q = DirectionalQuery.make(55, 45, 0.0, math.pi / 3, ["cafe"], 5)
        inc.initial_search(q)
        interval = q.interval
        for _ in range(12):
            interval = interval.rotate(math.pi / 18)
            got = inc.move_direction(math.pi / 18)
            expect = brute_force_search(col, q.with_interval(interval))
            assert_same_distances(got, expect)

    def test_zero_move(self, setup):
        col, searcher = setup
        inc = IncrementalSearcher(searcher)
        q = DirectionalQuery.make(50, 50, 1.0, 2.0, ["food"], 5)
        first = inc.initial_search(q)
        again = inc.move_direction(0.0)
        assert_same_distances(again, first)
