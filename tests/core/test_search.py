"""Correctness tests for DESKS search: all modes against the brute oracle."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DesksIndex,
    DesksSearcher,
    DirectionalQuery,
    PruningMode,
    brute_force_search,
)
from repro.core.search import _TopK
from repro.core.query import ResultEntry
from repro.datasets import POI, POICollection
from repro.storage import SearchStats

from .conftest import make_collection, random_query_params


def assert_same_answers(got, expect):
    """Same distances; ids may differ only among exact ties."""
    assert [round(d, 9) for d in got.distances()] == \
        [round(d, 9) for d in expect.distances()]
    got_ids, exp_ids = got.poi_ids(), expect.poi_ids()
    for i, (g, e) in enumerate(zip(got_ids, exp_ids)):
        if g != e:
            assert got.distances()[i] == pytest.approx(expect.distances()[i])


class TestTopK:
    def test_below_capacity(self):
        top = _TopK(3)
        top.add(1, 5.0)
        assert top.kth_distance == math.inf
        assert [e.poi_id for e in top.entries()] == [1]

    def test_eviction(self):
        top = _TopK(2)
        for pid, d in [(1, 5.0), (2, 3.0), (3, 4.0)]:
            top.add(pid, d)
        assert [e.poi_id for e in top.entries()] == [2, 3]
        assert top.kth_distance == 4.0

    def test_duplicate_poi_ignored(self):
        top = _TopK(2)
        top.add(1, 5.0)
        top.add(1, 5.0)
        assert len(top.entries()) == 1

    def test_seed(self):
        top = _TopK(2, seed=[ResultEntry(9, 1.0), ResultEntry(8, 2.0)])
        assert top.kth_distance == 2.0

    @given(st.dictionaries(st.integers(0, 30), st.floats(0.0, 100.0),
                           max_size=40),
           st.integers(1, 8))
    def test_matches_sorted_take_k(self, distances, k):
        """Distances must match sorted-take-k; tie order is unspecified.

        In a search each POI has exactly one distance, hence the dict
        strategy; re-adds with conflicting distances cannot occur.
        """
        top = _TopK(k)
        for pid, d in distances.items():
            top.add(pid, d)
        expect = sorted(distances.values())[:k]
        got = [e.distance for e in top.entries()]
        assert got == expect
        assert all(distances[e.poi_id] == e.distance for e in top.entries())


class TestSearchBasics:
    def test_unknown_keyword_empty(self, searcher):
        q = DirectionalQuery.make(50, 50, 0, 1, ["nosuchword"], 5)
        assert len(searcher.search(q)) == 0

    def test_results_sorted_and_within_interval(self, collection, searcher):
        q = DirectionalQuery.make(50, 50, 0.3, 1.9, ["cafe"], 10)
        result = searcher.search(q)
        assert result.distances() == sorted(result.distances())
        for entry in result:
            poi = collection[entry.poi_id]
            assert "cafe" in poi.keywords
            theta = q.location.direction_to(poi.location)
            assert q.interval.contains(theta)

    def test_k_exceeds_matches(self, collection, searcher):
        q = DirectionalQuery.make(50, 50, 0.0, 0.05, ["cafe", "gas"], 1000)
        result = searcher.search(q)
        expect = brute_force_search(collection, q)
        assert_same_answers(result, expect)

    def test_full_circle_equals_undirected_knn(self, collection, searcher):
        q = DirectionalQuery.undirected(40, 60, ["food"], 8)
        assert_same_answers(searcher.search(q),
                            brute_force_search(collection, q))

    def test_search_basic_rejects_complex(self, searcher):
        q = DirectionalQuery.make(50, 50, 0.1, 3.0, ["cafe"], 5)
        with pytest.raises(ValueError, match="single-quadrant"):
            searcher.search_basic(q)

    def test_search_basic_single_quadrant(self, collection, searcher):
        q = DirectionalQuery.make(50, 50, 0.1, 1.2, ["cafe"], 5)
        assert_same_answers(searcher.search_basic(q),
                            brute_force_search(collection, q))

    def test_query_on_poi_location(self, collection, searcher):
        poi = collection[0]
        kw = next(iter(poi.keywords))
        q = DirectionalQuery.make(poi.location.x, poi.location.y,
                                  0.2, 0.9, [kw], 3)
        result = searcher.search(q)
        assert result.entries[0].poi_id == poi.poi_id
        assert result.entries[0].distance == 0.0

    def test_stats_populated(self, searcher):
        stats = SearchStats()
        q = DirectionalQuery.make(50, 50, 0.0, 1.0, ["cafe"], 5)
        searcher.search(q, stats=stats)
        assert stats.regions_examined > 0
        assert stats.pois_examined > 0


class TestPruningModes:
    @pytest.mark.parametrize("mode", list(PruningMode))
    def test_all_modes_correct_random(self, collection, searcher, mode):
        rng = random.Random(99)
        for _ in range(60):
            x, y, a, b, kws, k = random_query_params(rng)
            q = DirectionalQuery.make(x, y, a, b, kws, k)
            assert_same_answers(searcher.search(q, mode),
                                brute_force_search(collection, q))

    def test_mode_flags(self):
        assert PruningMode.R.region and not PruningMode.R.direction
        assert PruningMode.D.direction and not PruningMode.D.region
        assert PruningMode.RD.region and PruningMode.RD.direction

    def test_rd_examines_fewest_pois(self, searcher):
        q = DirectionalQuery.make(50, 50, 0.0, math.pi / 3, ["cafe"], 10)
        counts = {}
        for mode in PruningMode:
            stats = SearchStats()
            searcher.search(q, mode, stats)
            counts[mode] = stats.pois_examined
        assert counts[PruningMode.RD] <= counts[PruningMode.R]
        assert counts[PruningMode.RD] <= counts[PruningMode.D]

    def test_direction_pruning_skips_subregions(self, searcher):
        """A narrow query must examine fewer sub-regions under +D than +R."""
        q = DirectionalQuery.make(50, 50, 0.1, 0.4, ["food"], 5)
        stats_r, stats_d = SearchStats(), SearchStats()
        searcher.search(q, PruningMode.R, stats_r)
        searcher.search(q, PruningMode.D, stats_d)
        assert stats_d.pois_examined <= stats_r.pois_examined


class TestQueryLocations:
    def test_query_outside_mbr(self, collection, searcher):
        rng = random.Random(5)
        for _ in range(40):
            x, y, a, b, kws, k = random_query_params(rng, outside=True)
            q = DirectionalQuery.make(x, y, a, b, kws, k)
            assert_same_answers(searcher.search(q),
                                brute_force_search(collection, q))

    def test_query_on_mbr_corner(self, collection, searcher):
        c = collection.mbr.bottom_left
        q = DirectionalQuery.make(c.x, c.y, 0.0, math.pi / 2, ["cafe"], 5)
        assert_same_answers(searcher.search(q),
                            brute_force_search(collection, q))

    def test_query_on_mbr_edges(self, collection, searcher):
        m = collection.mbr
        for x, y in [(m.min_x, 50.0), (m.max_x, 50.0),
                     (50.0, m.min_y), (50.0, m.max_y)]:
            q = DirectionalQuery.make(x, y, 0.5, 2.5, ["food"], 5)
            assert_same_answers(searcher.search(q),
                                brute_force_search(collection, q))


class TestIntervalShapes:
    @pytest.mark.parametrize("alpha,beta", [
        (0.0, 2 * math.pi),                 # full circle
        (0.0, math.pi / 2),                  # exactly one quadrant
        (math.pi / 2, math.pi),              # second quadrant
        (math.pi, 3 * math.pi / 2),          # third
        (3 * math.pi / 2, 2 * math.pi),      # fourth
        (7 * math.pi / 4, 9 * math.pi / 4),  # wraps 2*pi
        (1.0, 1.0),                          # degenerate single ray
        (0.0, math.pi),                      # half plane
        (math.pi / 4, 7 * math.pi / 4),      # wide, 3 quadrants
    ])
    def test_special_intervals(self, collection, searcher, alpha, beta):
        q = DirectionalQuery.make(47, 53, alpha, beta, ["food"], 10)
        assert_same_answers(searcher.search(q),
                            brute_force_search(collection, q))

    def test_degenerate_ray_through_poi(self, collection, searcher):
        """A zero-width interval aimed exactly at a POI must find it."""
        target = next(p for p in collection if "cafe" in p.keywords)
        origin = type(target.location)(target.location.x - 7.0,
                                       target.location.y - 3.0)
        theta = origin.direction_to(target.location)
        q = DirectionalQuery.make(origin.x, origin.y, theta, theta,
                                  ["cafe"], 50)
        assert target.poi_id in searcher.search(q).poi_ids()


class TestDiskBackedSearch:
    @pytest.fixture(scope="class")
    def disk_searcher(self):
        col = make_collection(300, seed=17)
        idx = DesksIndex(col, num_bands=4, num_wedges=5, disk_based=True)
        return col, DesksSearcher(idx)

    def test_matches_brute_force(self, disk_searcher):
        col, searcher = disk_searcher
        rng = random.Random(31)
        for _ in range(40):
            x, y, a, b, kws, k = random_query_params(rng)
            q = DirectionalQuery.make(x, y, a, b, kws, k)
            assert_same_answers(searcher.search(q),
                                brute_force_search(col, q))

    def test_io_counted(self, disk_searcher):
        col, searcher = disk_searcher
        searcher.index.drop_caches()
        searcher.index.io_stats.reset()
        q = DirectionalQuery.make(50, 50, 0.0, 1.0, ["cafe"], 5)
        searcher.search(q)
        assert searcher.index.io_stats.logical_reads > 0


class TestSpecialDatasets:
    def test_collinear_pois(self):
        pois = [POI.make(i, float(i), 0.0, ["x"]) for i in range(20)]
        col = POICollection(pois)
        idx = DesksIndex(col, num_bands=3, num_wedges=3)
        s = DesksSearcher(idx)
        q = DirectionalQuery.make(5.0, 0.0, 0.0, 0.1, ["x"], 3)
        expect = brute_force_search(col, q)
        assert_same_answers(s.search(q), expect)

    def test_coincident_pois(self):
        pois = [POI.make(i, 5.0, 5.0, ["x"]) for i in range(10)]
        pois.append(POI.make(10, 1.0, 1.0, ["x"]))
        col = POICollection(pois)
        idx = DesksIndex(col, num_bands=2, num_wedges=2)
        s = DesksSearcher(idx)
        q = DirectionalQuery.make(1.0, 1.0, 0.0, math.pi / 2, ["x"], 5)
        result = s.search(q)
        expect = brute_force_search(col, q)
        assert_same_answers(result, expect)

    def test_single_poi(self):
        col = POICollection([POI.make(0, 3.0, 4.0, ["only"])])
        idx = DesksIndex(col, num_bands=1, num_wedges=1)
        s = DesksSearcher(idx)
        q = DirectionalQuery.make(0.0, 0.0, 0.8, 1.0, ["only"], 1)
        result = s.search(q)
        assert result.poi_ids() == [0]
        assert result.distances()[0] == pytest.approx(5.0)

    def test_more_bands_than_pois(self):
        col = POICollection([POI.make(i, float(i), float(i), ["x"])
                             for i in range(5)])
        idx = DesksIndex(col, num_bands=50, num_wedges=50)
        s = DesksSearcher(idx)
        q = DirectionalQuery.undirected(0, 0, ["x"], 5)
        assert len(s.search(q)) == 5


poi_strategy = st.lists(
    st.tuples(st.floats(0, 50).map(lambda v: round(v, 2)),
              st.floats(0, 50).map(lambda v: round(v, 2)),
              st.sets(st.sampled_from("abcd"), min_size=1, max_size=3)),
    min_size=1, max_size=60)


class TestPropertyVsOracle:
    @settings(max_examples=40, deadline=None)
    @given(pois=poi_strategy,
           qx=st.floats(-10, 60), qy=st.floats(-10, 60),
           alpha=st.floats(0, 2 * math.pi),
           width=st.floats(0.0, 2 * math.pi),
           kws=st.sets(st.sampled_from("abcd"), min_size=1, max_size=2),
           k=st.integers(1, 8),
           mode=st.sampled_from(list(PruningMode)))
    def test_any_dataset_any_query(self, pois, qx, qy, alpha, width, kws,
                                   k, mode):
        col = POICollection([POI.make(i, x, y, ks)
                             for i, (x, y, ks) in enumerate(pois)])
        idx = DesksIndex(col, num_bands=3, num_wedges=3)
        searcher = DesksSearcher(idx)
        q = DirectionalQuery.make(qx, qy, alpha, alpha + width, kws, k)
        assert_same_answers(searcher.search(q, mode),
                            brute_force_search(col, q))
