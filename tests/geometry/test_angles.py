"""Unit and property tests for angle arithmetic and direction intervals."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import (
    HALF_PI,
    TWO_PI,
    DirectionInterval,
    angle_between,
    angle_of,
    interval_from_optional,
    normalize_angle,
    quadrant_of,
)

angles = st.floats(min_value=-100.0, max_value=100.0,
                   allow_nan=False, allow_infinity=False)
widths = st.floats(min_value=0.0, max_value=TWO_PI,
                   allow_nan=False, allow_infinity=False)


class TestNormalizeAngle:
    def test_identity_in_range(self):
        assert normalize_angle(1.0) == 1.0

    def test_negative_wraps(self):
        assert normalize_angle(-HALF_PI) == pytest.approx(1.5 * math.pi)

    def test_large_positive_wraps(self):
        assert normalize_angle(5 * math.pi) == pytest.approx(math.pi)

    def test_two_pi_maps_to_zero(self):
        assert normalize_angle(TWO_PI) == 0.0

    @given(angles)
    def test_result_in_range(self, theta):
        out = normalize_angle(theta)
        assert 0.0 <= out < TWO_PI

    @given(angles)
    def test_idempotent(self, theta):
        once = normalize_angle(theta)
        assert normalize_angle(once) == once

    @given(angles, st.integers(min_value=-3, max_value=3))
    def test_periodic(self, theta, k):
        assert normalize_angle(theta + k * TWO_PI) == pytest.approx(
            normalize_angle(theta), abs=1e-9)


class TestAngleOf:
    def test_east(self):
        assert angle_of(1.0, 0.0) == 0.0

    def test_north(self):
        assert angle_of(0.0, 2.0) == pytest.approx(HALF_PI)

    def test_west(self):
        assert angle_of(-1.0, 0.0) == pytest.approx(math.pi)

    def test_south(self):
        assert angle_of(0.0, -1.0) == pytest.approx(1.5 * math.pi)

    def test_zero_vector_raises(self):
        with pytest.raises(ValueError):
            angle_of(0.0, 0.0)

    @given(st.floats(min_value=0.0, max_value=TWO_PI - 1e-9))
    def test_round_trip_unit_vector(self, theta):
        assert angle_of(math.cos(theta), math.sin(theta)) == pytest.approx(
            theta, abs=1e-9)


class TestQuadrantOf:
    @pytest.mark.parametrize("theta,expected", [
        (0.0, 0), (0.3, 0), (HALF_PI, 1), (math.pi - 0.1, 1),
        (math.pi, 2), (1.4 * math.pi, 2), (1.5 * math.pi, 3),
        (TWO_PI - 1e-6, 3),
    ])
    def test_examples(self, theta, expected):
        assert quadrant_of(theta) == expected

    @given(angles)
    def test_consistent_with_bounds(self, theta):
        q = quadrant_of(theta)
        t = normalize_angle(theta)
        assert q * HALF_PI <= t
        assert t < (q + 1) * HALF_PI or q == 3


class TestAngleBetween:
    def test_simple_inside(self):
        assert angle_between(0.5, 0.0, 1.0)

    def test_simple_outside(self):
        assert not angle_between(2.0, 0.0, 1.0)

    def test_wrapping_interval(self):
        # [7pi/4, 9pi/4] crosses the positive x-axis.
        assert angle_between(0.0, 1.75 * math.pi, 2.25 * math.pi)
        assert angle_between(2.2 * math.pi, 1.75 * math.pi, 2.25 * math.pi)
        assert not angle_between(math.pi, 1.75 * math.pi, 2.25 * math.pi)

    def test_full_circle_contains_everything(self):
        assert angle_between(4.1, 0.0, TWO_PI)

    def test_endpoints_inclusive(self):
        assert angle_between(1.0, 1.0, 2.0)
        assert angle_between(2.0, 1.0, 2.0)


class TestDirectionIntervalConstruction:
    def test_rejects_reversed(self):
        with pytest.raises(ValueError):
            DirectionInterval(2.0, 1.0)

    def test_rejects_too_wide(self):
        with pytest.raises(ValueError):
            DirectionInterval(0.0, TWO_PI + 0.1)

    def test_normalises_lower(self):
        iv = DirectionInterval(-HALF_PI, 0.0)
        assert iv.lower == pytest.approx(1.5 * math.pi)
        assert iv.width == pytest.approx(HALF_PI)

    def test_full(self):
        assert DirectionInterval.full().is_full

    def test_centered(self):
        iv = DirectionInterval.centered(0.0, math.pi / 3)
        assert iv.contains(0.0)
        assert iv.contains(math.pi / 6 - 1e-9)
        assert iv.contains(-math.pi / 6 + 1e-9)
        assert not iv.contains(math.pi / 2)

    def test_centered_rejects_bad_width(self):
        with pytest.raises(ValueError):
            DirectionInterval.centered(0.0, -0.5)
        with pytest.raises(ValueError):
            DirectionInterval.centered(0.0, TWO_PI + 1.0)

    @given(angles, widths)
    def test_width_preserved(self, lower, width):
        iv = DirectionInterval(lower, lower + width)
        assert iv.width == pytest.approx(width, abs=1e-9)


class TestDirectionIntervalContains:
    @given(angles, widths, angles)
    def test_membership_matches_angle_between(self, lower, width, theta):
        iv = DirectionInterval(lower, lower + width)
        assert iv.contains(theta) == angle_between(theta, iv.lower, iv.upper)

    @given(angles, st.floats(min_value=1e-6, max_value=TWO_PI))
    def test_midpoint_inside(self, lower, width):
        iv = DirectionInterval(lower, lower + width)
        assert iv.contains(iv.midpoint())

    def test_full_contains_all(self):
        iv = DirectionInterval.full()
        for theta in (0.0, 1.0, math.pi, 5.0):
            assert iv.contains(theta)


class TestDirectionIntervalAlgebra:
    def test_widen(self):
        iv = DirectionInterval(1.0, 2.0).widen(0.5, 0.25)
        assert iv.lower == pytest.approx(0.5)
        assert iv.width == pytest.approx(1.75)

    def test_widen_rejects_negative(self):
        with pytest.raises(ValueError):
            DirectionInterval(1.0, 2.0).widen(-0.1, 0.0)

    def test_widen_saturates_at_full(self):
        iv = DirectionInterval(0.0, 6.0).widen(1.0, 1.0)
        assert iv.is_full

    def test_rotate(self):
        iv = DirectionInterval(0.0, 1.0).rotate(HALF_PI)
        assert iv.lower == pytest.approx(HALF_PI)
        assert iv.upper == pytest.approx(HALF_PI + 1.0)

    @given(angles, widths, angles)
    def test_rotate_preserves_width(self, lower, width, delta):
        iv = DirectionInterval(lower, lower + width).rotate(delta)
        assert iv.width == pytest.approx(width, abs=1e-9)

    def test_intersect_disjoint(self):
        a = DirectionInterval(0.0, 1.0)
        b = DirectionInterval(2.0, 3.0)
        assert a.intersect(b) == []

    def test_intersect_nested(self):
        a = DirectionInterval(0.0, 3.0)
        b = DirectionInterval(1.0, 2.0)
        pieces = a.intersect(b)
        assert len(pieces) == 1
        assert pieces[0].lower == pytest.approx(1.0)
        assert pieces[0].upper == pytest.approx(2.0)

    def test_intersect_across_wrap(self):
        a = DirectionInterval(1.75 * math.pi, 2.25 * math.pi)
        b = DirectionInterval(0.0, 1.0)
        pieces = a.intersect(b)
        assert len(pieces) == 1
        assert pieces[0].lower == pytest.approx(0.0)
        assert pieces[0].upper == pytest.approx(0.25 * math.pi)

    def test_intersect_two_pieces(self):
        # Both wide; overlap at both ends.
        a = DirectionInterval(0.0, 1.5 * math.pi)            # [0, 3pi/2]
        b = DirectionInterval(math.pi, math.pi + 1.6 * math.pi)  # wraps
        pieces = a.intersect(b)
        assert len(pieces) == 2

    @given(angles, widths, angles, widths, angles)
    def test_intersection_membership(self, lo1, w1, lo2, w2, theta):
        a = DirectionInterval(lo1, lo1 + w1)
        b = DirectionInterval(lo2, lo2 + w2)
        in_both = a.contains(theta) and b.contains(theta)
        in_pieces = any(p.contains(theta) for p in a.intersect(b))
        # Boundary jitter tolerance: only check strict interior points.
        strict = all(
            min(abs(normalize_angle(theta - e)),
                abs(normalize_angle(e - theta))) > 1e-6
            for e in (a.lower, a.upper, b.lower, b.upper))
        if strict:
            assert in_both == in_pieces

    @given(angles, widths, angles, widths)
    def test_overlaps_agrees_with_intersect(self, lo1, w1, lo2, w2):
        a = DirectionInterval(lo1, lo1 + w1)
        b = DirectionInterval(lo2, lo2 + w2)
        if a.intersect(b):
            assert a.overlaps(b)


class TestDecomposeQuadrants:
    def test_basic_interval_single_piece(self):
        iv = DirectionInterval(0.1, 1.0)
        pieces = iv.decompose_quadrants()
        assert len(pieces) == 1
        q, piece = pieces[0]
        assert q == 0
        assert piece.lower == pytest.approx(0.1)
        assert piece.upper == pytest.approx(1.0)

    def test_two_quadrants(self):
        iv = DirectionInterval(1.0, 2.0)  # spans pi/2
        pieces = iv.decompose_quadrants()
        assert [q for q, _ in pieces] == [0, 1]
        assert pieces[0][1].upper == pytest.approx(HALF_PI)
        assert pieces[1][1].lower == pytest.approx(HALF_PI)

    def test_full_circle_four_pieces(self):
        pieces = DirectionInterval.full().decompose_quadrants()
        assert [q for q, _ in pieces] == [0, 1, 2, 3]
        total = sum(p.width for _, p in pieces)
        assert total == pytest.approx(TWO_PI)

    def test_wrapping_interval(self):
        iv = DirectionInterval(1.75 * math.pi, 2.25 * math.pi)
        pieces = iv.decompose_quadrants()
        quadrants = [q for q, _ in pieces]
        assert set(quadrants) == {3, 0}

    def test_exact_quadrant(self):
        iv = DirectionInterval(HALF_PI, math.pi)
        pieces = iv.decompose_quadrants()
        assert len(pieces) == 1
        assert pieces[0][0] == 1

    @given(angles, st.floats(min_value=1e-3, max_value=TWO_PI))
    def test_pieces_cover_and_stay_in_quadrant(self, lower, width):
        iv = DirectionInterval(lower, lower + width)
        pieces = iv.decompose_quadrants()
        assert 1 <= len(pieces) <= 4
        for q, piece in pieces:
            assert piece.lower >= q * HALF_PI - 1e-9
            assert piece.upper <= (q + 1) * HALF_PI + 1e-9
        # The union of pieces covers the original interval: probe midpoints.
        for frac in (0.01, 0.25, 0.5, 0.75, 0.99):
            theta = iv.lower + frac * iv.width
            assert any(p.contains(theta) for _, p in pieces)

    @given(angles, st.floats(min_value=1e-3, max_value=TWO_PI))
    def test_total_width_at_least_original(self, lower, width):
        # Merging head/tail pieces inside one quadrant may cover extra arc,
        # never less.
        iv = DirectionInterval(lower, lower + width)
        total = sum(p.width for _, p in iv.decompose_quadrants())
        assert total >= iv.width - 1e-9


class TestIntervalFromOptional:
    def test_none_gives_full(self):
        assert interval_from_optional(None, None).is_full
        assert interval_from_optional(1.0, None).is_full

    def test_bounds_given(self):
        iv = interval_from_optional(0.5, 1.5)
        assert iv.lower == pytest.approx(0.5)
        assert iv.upper == pytest.approx(1.5)
