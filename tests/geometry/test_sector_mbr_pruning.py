"""``sector_intersects_mbr`` — the shard-pruning test must be conservative.

The router drops a shard only when this predicate is ``False``, so the
load-bearing property is *no false negatives*: whenever some point of the
rectangle lies inside the (possibly radius-bounded) sector, the predicate
must say ``True``.  False positives merely cost a dispatch.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    DirectionInterval,
    MBR,
    Point,
    Sector,
    sector_intersects_mbr,
)

BOX = MBR(10.0, 10.0, 20.0, 20.0)


class TestKnownCases:
    def test_center_inside_mbr_always_intersects(self):
        interval = DirectionInterval(0.0, 0.01)
        assert sector_intersects_mbr(Point(15, 15), interval, BOX)

    def test_sector_aimed_at_box(self):
        # From the origin the box subtends roughly [atan2(10,20), atan2(20,10)].
        interval = DirectionInterval(math.pi / 4 - 0.1, math.pi / 4 + 0.1)
        assert sector_intersects_mbr(Point(0, 0), interval, BOX)

    def test_sector_aimed_away_from_box(self):
        interval = DirectionInterval(math.pi, math.pi + 0.5)  # box is NE
        assert not sector_intersects_mbr(Point(0, 0), interval, BOX)

    def test_full_circle_far_away_still_intersects_without_radius(self):
        interval = DirectionInterval(0.0, 2 * math.pi)
        assert sector_intersects_mbr(Point(-1000, -1000), interval, BOX)

    def test_radius_shorter_than_mindist_prunes(self):
        interval = DirectionInterval(0.0, 2 * math.pi)
        # MINDIST from origin to BOX is sqrt(200) ~ 14.14.
        assert not sector_intersects_mbr(Point(0, 0), interval, BOX,
                                         radius=14.0)
        assert sector_intersects_mbr(Point(0, 0), interval, BOX,
                                     radius=14.2)

    def test_grazing_boundary_direction_counts(self):
        # Direction exactly toward the nearest corner: closed sector.
        corner_dir = Point(0, 0).direction_to(Point(10, 10))
        interval = DirectionInterval(corner_dir, corner_dir)
        assert sector_intersects_mbr(Point(0, 0), interval, BOX)

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            sector_intersects_mbr(Point(0, 0),
                                  DirectionInterval(0.0, 1.0), BOX,
                                  radius=-1.0)


class TestConservativeness:
    """Property: a witness point inside sector ∩ MBR forces ``True``."""

    @settings(max_examples=300, deadline=None)
    @given(
        cx=st.floats(-50, 70), cy=st.floats(-50, 70),
        alpha=st.floats(0, 2 * math.pi),
        width=st.floats(0.01, 2 * math.pi),
        wx=st.floats(10, 20), wy=st.floats(10, 20),
        slack=st.floats(0.0, 30.0),
    )
    def test_no_false_negatives(self, cx, cy, alpha, width, wx, wy, slack):
        center = Point(cx, cy)
        interval = DirectionInterval(alpha, alpha + width)
        witness = Point(wx, wy)  # inside BOX by construction
        radius = center.distance_to(witness) + slack
        sector = Sector(center, radius, interval)
        if sector.contains(witness):
            assert sector_intersects_mbr(center, interval, BOX,
                                         radius=radius)

    @settings(max_examples=300, deadline=None)
    @given(
        cx=st.floats(-50, 70), cy=st.floats(-50, 70),
        alpha=st.floats(0, 2 * math.pi),
        width=st.floats(0.01, 2 * math.pi),
    )
    def test_pruned_sectors_really_are_empty(self, cx, cy, alpha, width):
        """When the predicate says False, no grid sample of BOX is inside."""
        center = Point(cx, cy)
        interval = DirectionInterval(alpha, alpha + width)
        if sector_intersects_mbr(center, interval, BOX):
            return
        sector = Sector(center, math.inf, interval)
        steps = 8
        for i in range(steps + 1):
            for j in range(steps + 1):
                p = Point(10.0 + 10.0 * i / steps, 10.0 + 10.0 * j / steps)
                assert not sector.contains(p)
