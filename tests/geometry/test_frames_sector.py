"""Tests for canonical-frame transforms and sectors."""


import pytest
from hypothesis import assume, given
from hypothesis import strategies as st

from repro.geometry import (
    HALF_PI,
    TWO_PI,
    Anchor,
    CanonicalFrame,
    DirectionInterval,
    MBR,
    Point,
    Sector,
    frames_for,
    normalize_angle,
)

RECT = MBR(10.0, 20.0, 50.0, 44.0)

coords_x = st.floats(min_value=10.0, max_value=50.0)
coords_y = st.floats(min_value=20.0, max_value=44.0)
world_points = st.builds(Point, coords_x, coords_y)
any_angle = st.floats(min_value=0.0, max_value=TWO_PI - 1e-9)


@pytest.fixture(params=list(Anchor))
def frame(request):
    return CanonicalFrame(request.param, RECT)


class TestFrameBasics:
    def test_anchor_points(self):
        frames = frames_for(RECT)
        assert frames[0].anchor_point == RECT.bottom_left
        assert frames[1].anchor_point == RECT.bottom_right
        assert frames[2].anchor_point == RECT.top_right
        assert frames[3].anchor_point == RECT.top_left

    def test_extents_invariant(self, frame):
        assert frame.length == RECT.width
        assert frame.height == RECT.height

    def test_anchor_maps_to_origin(self, frame):
        c = frame.to_canonical(frame.anchor_point)
        assert c.x == pytest.approx(0.0)
        assert c.y == pytest.approx(0.0)

    def test_for_quadrant(self):
        assert Anchor.for_quadrant(0) is Anchor.BOTTOM_LEFT
        assert Anchor.for_quadrant(2) is Anchor.TOP_RIGHT
        with pytest.raises(ValueError):
            Anchor.for_quadrant(4)

    @given(world_points)
    def test_point_round_trip(self, p):
        for frame in frames_for(RECT):
            back = frame.from_canonical(frame.to_canonical(p))
            assert back.x == pytest.approx(p.x, abs=1e-9)
            assert back.y == pytest.approx(p.y, abs=1e-9)

    @given(world_points)
    def test_canonical_in_canonical_rect(self, p):
        for frame in frames_for(RECT):
            c = frame.to_canonical(p)
            assert -1e-9 <= c.x <= frame.length + 1e-9
            assert -1e-9 <= c.y <= frame.height + 1e-9

    @given(world_points, world_points)
    def test_isometry(self, a, b):
        d = a.distance_to(b)
        for frame in frames_for(RECT):
            ca, cb = frame.to_canonical(a), frame.to_canonical(b)
            assert ca.distance_to(cb) == pytest.approx(d, abs=1e-6)


class TestDirectionMaps:
    @given(any_angle)
    def test_direction_round_trip(self, theta):
        for frame in frames_for(RECT):
            out = frame.direction_from_canonical(
                frame.direction_to_canonical(theta))
            assert normalize_angle(out - theta) == pytest.approx(
                0.0, abs=1e-9) or normalize_angle(out - theta) == pytest.approx(
                TWO_PI, abs=1e-9)

    @given(world_points, world_points)
    def test_direction_map_consistent_with_points(self, a, b):
        assume(a.distance_to(b) > 1e-6)
        theta = a.direction_to(b)
        for frame in frames_for(RECT):
            ca, cb = frame.to_canonical(a), frame.to_canonical(b)
            expect = ca.direction_to(cb)
            got = frame.direction_to_canonical(theta)
            diff = normalize_angle(got - expect)
            assert min(diff, TWO_PI - diff) < 1e-6

    def test_quadrant_lands_in_first_quadrant(self):
        # A direction inside quadrant i maps into [0, pi/2] via anchor i.
        for q in range(4):
            theta = q * HALF_PI + 0.3
            frame = CanonicalFrame(Anchor.for_quadrant(q), RECT)
            mapped = frame.direction_to_canonical(theta)
            assert -1e-9 <= mapped <= HALF_PI + 1e-9

    @given(any_angle, st.floats(min_value=0.0, max_value=TWO_PI))
    def test_interval_map_preserves_width(self, lower, width):
        iv = DirectionInterval(lower, lower + width)
        for frame in frames_for(RECT):
            assert frame.interval_to_canonical(iv).width == pytest.approx(
                iv.width, abs=1e-9)

    @given(any_angle, st.floats(min_value=1e-3, max_value=TWO_PI - 1e-3),
           any_angle)
    def test_interval_membership_preserved(self, lower, width, theta):
        iv = DirectionInterval(lower, lower + width)
        for frame in frames_for(RECT):
            mapped_iv = frame.interval_to_canonical(iv)
            mapped_theta = frame.direction_to_canonical(theta)
            # Avoid boundary jitter.
            margin = min(
                normalize_angle(theta - iv.lower),
                normalize_angle(iv.upper - theta))
            if 1e-6 < margin < iv.width - 1e-6:
                assert mapped_iv.contains(mapped_theta)

    def test_basic_interval_clamps_to_quadrant(self):
        for q in range(4):
            frame = CanonicalFrame(Anchor.for_quadrant(q), RECT)
            iv = DirectionInterval(q * HALF_PI, (q + 1) * HALF_PI)
            mapped = frame.basic_interval(iv)
            assert mapped.lower == pytest.approx(0.0, abs=1e-9)
            assert mapped.upper == pytest.approx(HALF_PI, abs=1e-9)

    def test_full_interval_maps_to_full(self):
        for frame in frames_for(RECT):
            assert frame.interval_to_canonical(DirectionInterval.full()).is_full


class TestSector:
    def test_contains_center(self):
        s = Sector(Point(0, 0), 1.0, DirectionInterval(0.0, HALF_PI))
        assert s.contains(Point(0, 0))

    def test_contains_in_direction(self):
        s = Sector(Point(0, 0), 10.0, DirectionInterval(0.0, HALF_PI))
        assert s.contains(Point(1, 1))
        assert not s.contains(Point(-1, 1))

    def test_radius_excludes_far_points(self):
        s = Sector(Point(0, 0), 1.0, DirectionInterval.full())
        assert not s.contains(Point(2, 0))

    def test_negative_radius_raises(self):
        with pytest.raises(ValueError):
            Sector(Point(0, 0), -1.0, DirectionInterval.full())

    def test_covering_mbr_radius(self):
        s = Sector.covering_mbr(Point(10, 20), DirectionInterval.full(), RECT)
        assert s.radius == pytest.approx(
            RECT.max_distance_to_point(Point(10, 20)))

    @given(world_points, world_points)
    def test_search_region_membership(self, q, p):
        iv = DirectionInterval(0.2, 2.0)
        s = Sector.covering_mbr(q, iv, RECT)
        inside = s.search_region_contains(p, RECT)
        if p != q and inside:
            assert iv.contains(q.direction_to(p))


class TestDecompositionFrameIntegration:
    """Quadrant pieces must land in [0, pi/2] of their anchor's frame."""

    @given(any_angle, st.floats(min_value=1e-3, max_value=TWO_PI))
    def test_every_piece_maps_into_first_quadrant(self, lower, width):
        iv = DirectionInterval(lower, lower + width)
        for quadrant, piece in iv.decompose_quadrants():
            frame = CanonicalFrame(Anchor.for_quadrant(quadrant), RECT)
            mapped = frame.basic_interval(piece)
            assert -1e-9 <= mapped.lower <= mapped.upper <= HALF_PI + 1e-9
            # Width is preserved up to the quadrant clamp.
            assert mapped.width <= piece.width + 1e-9

    @given(any_angle, st.floats(min_value=1e-3, max_value=TWO_PI),
           coords_x, coords_y, coords_x, coords_y)
    def test_membership_preserved_through_frames(self, lower, width,
                                                 qx, qy, px, py):
        """A POI inside the query interval is inside some piece's mapped
        interval when judged by canonical-frame directions."""
        iv = DirectionInterval(lower, lower + width)
        q, p = Point(qx, qy), Point(px, py)
        assume(q.distance_to(p) > 1e-6)
        theta = q.direction_to(p)
        margin = min(normalize_angle(theta - iv.lower),
                     normalize_angle(iv.upper - theta))
        if not (1e-6 < margin < iv.width - 1e-6):
            return  # boundary jitter out of scope
        found = False
        for quadrant, piece in iv.decompose_quadrants():
            frame = CanonicalFrame(Anchor.for_quadrant(quadrant), RECT)
            mapped_iv = frame.basic_interval(piece)
            mapped_theta = frame.direction_to_canonical(theta)
            if mapped_iv.contains(mapped_theta) or \
                    mapped_iv.widen(1e-9, 1e-9).contains(mapped_theta):
                found = True
                break
        assert found
