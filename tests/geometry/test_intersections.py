"""Tests for the ray-intersection primitives (paper Eqs. 1-3)."""

import math

import pytest
from hypothesis import assume, given
from hypothesis import strategies as st

from repro.geometry import (
    HALF_PI,
    Point,
    ray_circle_intersection,
    ray_rectangle_exit,
    ray_ray_intersection,
)

inner_coords = st.floats(min_value=0.01, max_value=9.99,
                         allow_nan=False, allow_infinity=False)
quadrant_angles = st.floats(min_value=0.0, max_value=HALF_PI)


class TestRayCircle:
    def test_from_inside_straight_up(self):
        p = ray_circle_intersection(Point(0.0, 0.5), HALF_PI, 2.0)
        assert p is not None
        assert p.x == pytest.approx(0.0, abs=1e-9)
        assert p.y == pytest.approx(2.0)

    def test_on_circle_radius_exact(self):
        q = Point(1.0, 0.0)
        p = ray_circle_intersection(q, HALF_PI, 1.0)
        assert p is not None
        assert math.hypot(p.x, p.y) == pytest.approx(1.0)

    def test_miss_from_outside(self):
        # Pointing away from the circle.
        assert ray_circle_intersection(Point(5.0, 0.0), 0.0, 1.0) is None

    def test_hit_from_outside_takes_near_root(self):
        p = ray_circle_intersection(Point(5.0, 0.0), math.pi, 1.0)
        assert p is not None
        assert p.x == pytest.approx(1.0)
        assert p.y == pytest.approx(0.0, abs=1e-9)

    def test_negative_radius_raises(self):
        with pytest.raises(ValueError):
            ray_circle_intersection(Point(0, 0), 0.0, -1.0)

    @given(inner_coords, inner_coords, quadrant_angles,
           st.floats(min_value=15.0, max_value=50.0))
    def test_result_on_circle_and_on_ray(self, qx, qy, phi, radius):
        q = Point(qx, qy)
        assume(math.hypot(qx, qy) < radius)  # q strictly inside
        p = ray_circle_intersection(q, phi, radius)
        assert p is not None
        assert math.hypot(p.x, p.y) == pytest.approx(radius, rel=1e-9)
        # p - q is parallel to (cos phi, sin phi) and forward.
        dx, dy = p.x - q.x, p.y - q.y
        cross = dx * math.sin(phi) - dy * math.cos(phi)
        dot = dx * math.cos(phi) + dy * math.sin(phi)
        assert abs(cross) < 1e-6 * max(1.0, radius)
        assert dot >= -1e-9


class TestRayRay:
    def test_perpendicular(self):
        # Ray from (1, 0) pointing up meets the 45-degree origin ray at (1,1).
        p = ray_ray_intersection(Point(1.0, 0.0), HALF_PI, math.pi / 4)
        assert p is not None
        assert p.x == pytest.approx(1.0)
        assert p.y == pytest.approx(1.0)

    def test_behind_query_ray_is_none(self):
        # Ray from (2,1) pointing straight down meets the line y=x only at
        # (2,2), which is behind the ray, so no intersection.
        assert ray_ray_intersection(
            Point(2.0, 1.0), 1.5 * math.pi, math.pi / 4) is None

    def test_behind_origin_ray_is_none(self):
        # Query at (-3, 1) pointing down-left: meets the *line* y=x behind
        # the origin ray (negative s), so no intersection.
        assert ray_ray_intersection(
            Point(-3.0, 1.0), math.pi + 0.3, math.pi / 4) is None

    def test_parallel_disjoint_is_none(self):
        assert ray_ray_intersection(Point(0.0, 1.0), 0.0, 0.0) is None

    def test_collinear_returns_query_point(self):
        q = Point(2.0, 2.0)
        p = ray_ray_intersection(q, math.pi / 4, math.pi / 4)
        assert p == q

    @given(inner_coords, inner_coords,
           st.floats(min_value=0.05, max_value=HALF_PI - 0.05))
    def test_result_on_origin_ray(self, qx, qy, theta):
        q = Point(qx, qy)
        q_theta = math.atan2(qy, qx)
        # Aim the query ray from one side of the origin ray towards it.
        phi = theta + HALF_PI if q_theta < theta else theta + 1.5 * math.pi
        p = ray_ray_intersection(q, phi, theta)
        if p is not None and math.hypot(p.x, p.y) > 1e-9:
            assert math.atan2(p.y, p.x) == pytest.approx(theta, abs=1e-6)


class TestRayRectangleExit:
    def test_exit_right(self):
        p = ray_rectangle_exit(Point(1.0, 1.0), 0.0, 10.0, 5.0)
        assert p == Point(10.0, 1.0)

    def test_exit_top(self):
        p = ray_rectangle_exit(Point(1.0, 1.0), HALF_PI, 10.0, 5.0)
        assert p is not None
        assert p.x == pytest.approx(1.0)
        assert p.y == pytest.approx(5.0)

    def test_exit_exact_corner(self):
        # Aim at the top-right corner from the origin of a square.
        p = ray_rectangle_exit(Point(0.0, 0.0), math.pi / 4, 4.0, 4.0)
        assert p is not None
        assert p.x == pytest.approx(4.0)
        assert p.y == pytest.approx(4.0)

    def test_outside_pointing_away_is_none(self):
        assert ray_rectangle_exit(Point(-1.0, 1.0), math.pi, 10.0, 5.0) is None

    def test_outside_pointing_in_exits_far_side(self):
        p = ray_rectangle_exit(Point(-1.0, 1.0), 0.0, 10.0, 5.0)
        assert p == Point(10.0, 1.0)

    def test_on_boundary_vertical_ray(self):
        p = ray_rectangle_exit(Point(10.0, 2.0), HALF_PI, 10.0, 5.0)
        assert p is not None
        assert p.y == pytest.approx(5.0)

    @given(inner_coords, inner_coords,
           st.floats(min_value=0.0, max_value=2 * math.pi))
    def test_exit_point_on_boundary(self, qx, qy, phi):
        length, height = 10.0, 10.0
        p = ray_rectangle_exit(Point(qx, qy), phi, length, height)
        assert p is not None
        on_x_edge = abs(p.x) < 1e-6 or abs(p.x - length) < 1e-6
        on_y_edge = abs(p.y) < 1e-6 or abs(p.y - height) < 1e-6
        assert on_x_edge or on_y_edge
        # And inside the closed rectangle.
        assert -1e-6 <= p.x <= length + 1e-6
        assert -1e-6 <= p.y <= height + 1e-6

    @given(inner_coords, inner_coords, quadrant_angles)
    def test_quadrant_exit_matches_eq3(self, qx, qy, phi):
        """For 0<=phi<=pi/2 the exit matches the paper's closed form."""
        length, height = 10.0, 10.0
        q = Point(qx, qy)
        p = ray_rectangle_exit(q, phi, length, height)
        assert p is not None
        corner_dir = math.atan2(height - qy, length - qx)
        if phi > corner_dir + 1e-9:
            assert p.y == pytest.approx(height, abs=1e-6)
        elif phi < corner_dir - 1e-9:
            assert p.x == pytest.approx(length, abs=1e-6)
