"""Tests for Point and MBR primitives."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import MBR, Point

coords = st.floats(min_value=-1e6, max_value=1e6,
                   allow_nan=False, allow_infinity=False)
points = st.builds(Point, coords, coords)


class TestPoint:
    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    def test_squared_distance(self):
        assert Point(0, 0).squared_distance_to(Point(3, 4)) == 25.0

    def test_direction_east(self):
        assert Point(1, 1).direction_to(Point(5, 1)) == 0.0

    def test_direction_to_self_raises(self):
        with pytest.raises(ValueError):
            Point(1, 1).direction_to(Point(1, 1))

    def test_translate(self):
        assert Point(1, 2).translate(3, -1) == Point(4, 1)

    def test_tuple_and_iter(self):
        p = Point(1.5, 2.5)
        assert p.as_tuple() == (1.5, 2.5)
        assert tuple(p) == (1.5, 2.5)

    @given(points, points)
    def test_distance_symmetric(self, a, b):
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    @given(points, points, points)
    def test_triangle_inequality(self, a, b, c):
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-6

    @given(points, points)
    def test_direction_antisymmetric(self, a, b):
        if a != b:
            fwd = a.direction_to(b)
            back = b.direction_to(a)
            diff = abs((fwd - back) % (2 * math.pi))
            assert diff == pytest.approx(math.pi, abs=1e-6)


class TestMBRConstruction:
    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            MBR(1, 0, 0, 1)

    def test_from_points(self):
        m = MBR.from_points([Point(1, 5), Point(-2, 3), Point(4, 0)])
        assert m == MBR(-2, 0, 4, 5)

    def test_from_points_empty_raises(self):
        with pytest.raises(ValueError):
            MBR.from_points([])

    def test_of_point(self):
        m = MBR.of_point(Point(2, 3))
        assert m.area() == 0.0
        assert m.contains_point(Point(2, 3))

    def test_corners(self):
        m = MBR(0, 0, 4, 2)
        bl, br, tr, tl = m.corners()
        assert bl == Point(0, 0)
        assert br == Point(4, 0)
        assert tr == Point(4, 2)
        assert tl == Point(0, 2)

    def test_extents(self):
        m = MBR(1, 2, 5, 4)
        assert m.width == 4
        assert m.height == 2
        assert m.area() == 8
        assert m.margin() == 6
        assert m.diagonal == pytest.approx(math.hypot(4, 2))
        assert m.center() == Point(3, 3)


class TestMBRPredicates:
    def test_contains_point_boundary(self):
        m = MBR(0, 0, 1, 1)
        assert m.contains_point(Point(0, 0))
        assert m.contains_point(Point(1, 1))
        assert not m.contains_point(Point(1.01, 0.5))

    def test_contains_mbr(self):
        outer = MBR(0, 0, 10, 10)
        assert outer.contains_mbr(MBR(1, 1, 9, 9))
        assert not outer.contains_mbr(MBR(5, 5, 11, 9))

    def test_intersects(self):
        a = MBR(0, 0, 2, 2)
        assert a.intersects(MBR(1, 1, 3, 3))
        assert a.intersects(MBR(2, 2, 3, 3))  # touching counts
        assert not a.intersects(MBR(3, 3, 4, 4))

    @given(st.lists(points, min_size=1, max_size=20))
    def test_from_points_contains_all(self, pts):
        m = MBR.from_points(pts)
        for p in pts:
            assert m.contains_point(p)


class TestMBRCombination:
    def test_union(self):
        u = MBR(0, 0, 1, 1).union(MBR(2, 2, 3, 3))
        assert u == MBR(0, 0, 3, 3)

    def test_union_all(self):
        u = MBR.union_all([MBR(0, 0, 1, 1), MBR(-1, 0, 0, 2)])
        assert u == MBR(-1, 0, 1, 2)

    def test_union_all_empty_raises(self):
        with pytest.raises(ValueError):
            MBR.union_all([])

    def test_extend_to_point(self):
        assert MBR(0, 0, 1, 1).extend_to_point(Point(2, -1)) == \
            MBR(0, -1, 2, 1)

    def test_enlargement(self):
        base = MBR(0, 0, 2, 2)
        assert base.enlargement(MBR(1, 1, 2, 2)) == 0.0
        assert base.enlargement(MBR(0, 0, 4, 2)) == pytest.approx(4.0)

    @given(st.lists(points, min_size=1, max_size=10),
           st.lists(points, min_size=1, max_size=10))
    def test_union_is_superset(self, pts1, pts2):
        a = MBR.from_points(pts1)
        b = MBR.from_points(pts2)
        u = a.union(b)
        assert u.contains_mbr(a) and u.contains_mbr(b)


class TestMBRDistances:
    def test_min_distance_inside_is_zero(self):
        assert MBR(0, 0, 2, 2).min_distance_to_point(Point(1, 1)) == 0.0

    def test_min_distance_to_side(self):
        assert MBR(0, 0, 2, 2).min_distance_to_point(Point(3, 1)) == 1.0

    def test_min_distance_to_corner(self):
        assert MBR(0, 0, 2, 2).min_distance_to_point(Point(5, 6)) == 5.0

    def test_max_distance(self):
        assert MBR(0, 0, 3, 4).max_distance_to_point(Point(0, 0)) == 5.0

    @given(points, st.lists(points, min_size=2, max_size=10))
    def test_min_max_bracket_actual_distances(self, q, pts):
        m = MBR.from_points(pts)
        lo = m.min_distance_to_point(q)
        hi = m.max_distance_to_point(q)
        for p in pts:
            d = q.distance_to(p)
            assert lo - 1e-6 <= d <= hi + 1e-6
