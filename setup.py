"""Legacy shim so `pip install -e .` / `setup.py develop` work offline.

The environment has setuptools but no `wheel` package and no network, so the
PEP-517 editable path (which builds a wheel) is unavailable.  All metadata
lives in pyproject.toml.
"""

from setuptools import setup

setup()
