#!/usr/bin/env python
"""Compass scenario: tracking answers while the phone rotates.

Modern phones expose a compass; as the user turns, the search direction
moves with them (paper Sec. V, case 2).  This script sweeps a 60-degree
viewing cone through a full turn in 10-degree steps, re-answering with the
incremental move-direction algorithm, and compares the total work with
answering every step from scratch.

Run:  python examples/compass_rotation.py
"""

import math

from repro import (
    DesksIndex,
    DesksSearcher,
    DirectionalQuery,
    IncrementalSearcher,
    PruningMode,
)
from repro.datasets import SyntheticConfig, generate
from repro.storage import SearchStats


def main() -> None:
    plaza = generate(SyntheticConfig(
        name="plaza", num_pois=7000, num_unique_terms=2000,
        avg_terms_per_poi=4.0, seed=19))
    searcher = DesksSearcher(DesksIndex(plaza, num_bands=10, num_wedges=12))

    cone = math.pi / 3
    query = DirectionalQuery.make(
        5000.0, 5000.0, 0.0, cone, ["cafe"], k=3)
    step = math.radians(10)

    incremental = IncrementalSearcher(searcher)
    inc_stats = SearchStats()
    scratch_stats = SearchStats()
    result = incremental.initial_search(query, stats=inc_stats)
    print("sweeping a 60-degree cone for the 3 nearest cafes\n")
    print(f"{'cone center':>12}  {'nearest cafes (poi@m)':<48}")
    interval = query.interval
    for _ in range(36):
        center = math.degrees(interval.midpoint())
        cafes = "  ".join(
            f"#{e.poi_id}@{e.distance:.0f}" for e in result) or "-"
        print(f"{center:11.0f}*  {cafes:<48}")
        interval = interval.rotate(step)
        result = incremental.move_direction(step, stats=inc_stats)
        # The from-scratch comparison, answering the same rotated query.
        searcher.search(query.with_interval(interval), PruningMode.RD,
                        scratch_stats)

    print("\ntotal POIs examined over the full turn:")
    print(f"    incremental (Sec. V): {inc_stats.pois_examined}")
    print(f"    from scratch        : {scratch_stats.pois_examined}")


if __name__ == "__main__":
    main()
