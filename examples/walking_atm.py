#!/usr/bin/env python
"""Pedestrian scenario: an ATM roughly along the walking direction.

The paper's second motivating example: a pedestrian walking towards a
supermarket wants an ATM *around her walking direction* so the detour
stays short.  The script widens the acceptable cone step by step — using
the incremental increase-direction algorithm of Section V — until an ATM
is found, reusing the cached state at each step instead of re-searching.

Run:  python examples/walking_atm.py
"""

import math

from repro import (
    DesksIndex,
    DesksSearcher,
    DirectionalQuery,
    IncrementalSearcher,
)
from repro.datasets import SyntheticConfig, generate
from repro.storage import SearchStats


def main() -> None:
    town = generate(SyntheticConfig(
        name="walk-town", num_pois=6000, num_unique_terms=2500,
        avg_terms_per_poi=3.5, seed=11))
    searcher = DesksSearcher(DesksIndex(town, num_bands=10, num_wedges=10))

    walk_direction = math.radians(75.0)  # towards the supermarket
    start = DirectionalQuery.make(
        4200.0, 3100.0,
        walk_direction - math.radians(10), walk_direction + math.radians(10),
        ["atm"], k=1)

    incremental = IncrementalSearcher(searcher)
    stats = SearchStats()
    result = incremental.initial_search(start, stats=stats)
    interval = start.interval
    widen_step = math.radians(15)
    print("walking at bearing 75 deg; looking for an ATM near the path\n")
    attempt = 1
    while not result.entries and interval.width < math.pi:
        print(f"  cone of {math.degrees(interval.width):5.1f} deg: "
              "no ATM - widening")
        interval = interval.widen(widen_step, widen_step)
        result = incremental.increase_direction(interval, stats=stats)
        attempt += 1
    if result.entries:
        entry = result.entries[0]
        poi = town[entry.poi_id]
        bearing = math.degrees(start.location.direction_to(poi.location))
        detour = abs(bearing - 75.0)
        print(f"\nfound ATM poi#{entry.poi_id} after {attempt} cone "
              f"width(s): {entry.distance:.0f} m away at bearing "
              f"{bearing:.1f} deg ({detour:.1f} deg off the path)")
    else:
        print("\nno ATM within a half-circle of the walking direction")
    print(f"total POIs examined across all widenings: "
          f"{stats.pois_examined}")


if __name__ == "__main__":
    main()
