#!/usr/bin/env python
"""Quickstart: build a DESKS index and run direction-aware queries.

Generates a small synthetic city, indexes it, and answers the paper's
motivating query — "find chinese food ahead of me" — comparing the
direction-constrained answers with an unconstrained kNN.

Run:  python examples/quickstart.py
"""

import math

from repro import (
    DesksIndex,
    DesksSearcher,
    DirectionalQuery,
    brute_force_search,
)
from repro.datasets import SyntheticConfig, generate


def main() -> None:
    # 1. A dataset: 5000 POIs with Zipf-skewed keywords in a 10km square.
    config = SyntheticConfig(
        name="demo-city", num_pois=5000, num_unique_terms=2000,
        avg_terms_per_poi=4.0, seed=42)
    city = generate(config)
    print(f"dataset: {len(city)} POIs, {city.num_unique_terms} distinct "
          f"keywords, MBR {city.mbr}")

    # 2. The index: four anchor corners, distance bands x direction wedges.
    index = DesksIndex(city, num_bands=10, num_wedges=12)
    print(f"index: N={index.num_bands} bands x M={index.num_wedges} wedges "
          f"per band, 4 anchors, built in {index.build_seconds * 1e3:.1f} ms")
    searcher = DesksSearcher(index)

    # 3. A direction-aware query: north-east quadrant, "chinese food".
    query = DirectionalQuery.make(
        x=5000.0, y=5000.0, alpha=0.0, beta=math.pi / 2,
        keywords=["chinese", "food"], k=5)
    result = searcher.search(query)
    print(f"\ntop-{query.k} 'chinese food' to the north-east of centre:")
    for entry in result:
        poi = city[entry.poi_id]
        theta = query.location.direction_to(poi.location)
        print(f"  poi#{poi.poi_id:<6} dist={entry.distance:8.1f} m  "
              f"bearing={math.degrees(theta):6.1f} deg  "
              f"keywords={sorted(poi.keywords)[:4]}")

    # 4. Contrast with the unconstrained kNN: different answers.
    undirected = searcher.search(
        DirectionalQuery.undirected(5000.0, 5000.0,
                                    ["chinese", "food"], k=5))
    print("\nsame query without the direction constraint:")
    for entry in undirected:
        print(f"  poi#{entry.poi_id:<6} dist={entry.distance:8.1f} m")

    # 5. Every answer is verifiable against the brute-force oracle.
    oracle = brute_force_search(city, query)
    assert result.distances() == oracle.distances()
    print("\nverified against the linear-scan oracle: exact match")


if __name__ == "__main__":
    main()
