#!/usr/bin/env python
"""Highway scenario: gas stations in the right-front of the driving
direction.

The paper's first motivating example: a driver on a highway wants the
nearest gas stations *ahead and to the right* (right-hand traffic), not
behind.  This script simulates a drive across the map, issuing one
direction-aware query per position, and shows how the answers differ from
plain nearest-neighbour search — plus the examined-work gap versus the
filter-and-verify baseline.

Run:  python examples/highway_gas_stations.py
"""

import math

from repro import DesksIndex, DesksSearcher, DirectionalQuery
from repro.baselines import FilterThenVerify
from repro.datasets import SyntheticConfig, generate
from repro.storage import SearchStats

#: The driver cares about a 60-degree cone starting at the heading and
#: sweeping to the right-front (heading - pi/3 .. heading).
CONE = math.pi / 3


def main() -> None:
    land = generate(SyntheticConfig(
        name="highway-land", num_pois=8000, num_unique_terms=3000,
        avg_terms_per_poi=4.0, seed=7))
    index = DesksIndex(land, num_bands=12, num_wedges=12)
    searcher = DesksSearcher(index)
    baseline = FilterThenVerify(land)

    heading = math.radians(30.0)  # driving north-east-ish
    print("driving heading: 30 deg; querying 'gas station' in the "
          "right-front cone at each waypoint\n")
    desks_stats = SearchStats()
    baseline_stats = SearchStats()
    for step in range(5):
        x = 1500.0 + step * 1500.0
        y = 1000.0 + step * 900.0
        query = DirectionalQuery.make(
            x, y, heading - CONE, heading, ["gas", "station"], k=3)
        result = searcher.search(query, stats=desks_stats)
        check = baseline.search(query, stats=baseline_stats)
        assert result.distances() == check.distances()
        print(f"waypoint {step + 1} at ({x:7.0f}, {y:7.0f}):")
        if not result.entries:
            print("    no station in the cone yet - keep driving")
        for entry in result:
            poi = land[entry.poi_id]
            bearing = math.degrees(query.location.direction_to(poi.location))
            print(f"    station poi#{entry.poi_id:<6} "
                  f"{entry.distance:7.1f} m at bearing {bearing:5.1f} deg")
    print("\nwork comparison over the drive (POIs examined):")
    print(f"    DESKS          : {desks_stats.pois_examined}")
    print(f"    filter+verify  : {baseline_stats.pois_examined}")
    assert desks_stats.pois_examined < baseline_stats.pois_examined


if __name__ == "__main__":
    main()
