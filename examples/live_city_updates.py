#!/usr/bin/env python
"""Live-updating city: inserts, deletions, OR-queries, and persistence.

Shows the library features beyond the paper: a mutable index absorbing a
stream of openings/closings (`MutableDesksIndex`), disjunctive keyword
queries (`MatchMode.ANY` — "coffee OR bakery"), and saving/loading the
static index (`save_index`/`load_index`).

Run:  python examples/live_city_updates.py
"""

import math
import tempfile

from repro.core import (
    DesksIndex,
    DesksSearcher,
    DirectionalQuery,
    MatchMode,
    MutableDesksIndex,
    load_index,
    save_index,
)
from repro.datasets import SyntheticConfig, generate


def main() -> None:
    city = generate(SyntheticConfig(
        name="live-city", num_pois=4000, num_unique_terms=1500,
        avg_terms_per_poi=4.0, seed=29))
    index = MutableDesksIndex(city, rebuild_threshold=0.2)

    ne_cone = DirectionalQuery.make(
        5000.0, 5000.0, 0.0, math.pi / 2,
        ["coffee", "bakery"], k=3, match_mode=MatchMode.ANY)

    print("north-east 'coffee OR bakery', before updates:")
    for e in index.search(ne_cone):
        print(f"  poi#{e.poi_id:<6} {e.distance:7.1f} m  "
              f"{sorted(index.get(e.poi_id).keywords)[:3]}")

    # A new bakery opens right next door; the nearest answer changes.
    new_id = index.insert(5050.0, 5060.0, ["bakery", "croissant"])
    print(f"\na bakery opens at (5050, 5060) -> poi#{new_id}")
    after_open = index.search(ne_cone)
    assert after_open.poi_ids()[0] == new_id
    print(f"  it is now the top answer at {after_open.distances()[0]:.1f} m")

    # ...and closes again next month.
    index.delete(new_id)
    after_close = index.search(ne_cone)
    assert new_id not in after_close.poi_ids()
    print("  after closing, it is gone from the answers")

    # A burst of openings triggers a background rebuild.
    for i in range(int(len(city) * 0.25)):
        index.insert(100.0 + i, 200.0, ["popup", "stand"])
    print(f"\n{int(len(city) * 0.25)} pop-up stands opened -> "
          f"{index.rebuild_count} index rebuild(s), "
          f"{index.num_pending} pending in the delta buffer")

    # The static part of a collection can be saved and reloaded instantly.
    static = DesksIndex(city, num_bands=10, num_wedges=10)
    with tempfile.TemporaryDirectory() as tmp:
        save_index(static, tmp)
        loaded = load_index(tmp)
        a = DesksSearcher(static).search(ne_cone).distances()
        b = DesksSearcher(loaded).search(ne_cone).distances()
        assert a == b
        print("\nsaved + reloaded the static index: identical answers")


if __name__ == "__main__":
    main()
