"""Serving layer (beyond the paper) — concurrent throughput + freshness.

The paper measures single-query latency; a serving deployment cares about
aggregate throughput under concurrent clients and about *freshness* when
the dataset changes underneath a result cache.  Two acceptance checks:

* on a cache-warm repeated workload, multiple closed-loop clients deliver
  strictly more aggregate QPS than a single client (request overlap hides
  per-request think/wait time even though Python executes one search at a
  time);
* a dynamic insert invalidates every affected cached result — the next
  ask recomputes and includes the new POI, never a stale answer.
"""

import math

from repro.bench import (
    format_series_table,
    generate_queries,
    repeated_stream,
    write_json_result,
    write_result,
)
from repro.core import MutableDesksIndex
from repro.service import QueryEngine, run_closed_loop

from conftest import bench_bands, bench_wedges

WIDTH = math.pi / 3
THINK_TIME = 0.005
REQUESTS = 100
CLIENT_SWEEP = (1, 2, 4, 8)


def test_multi_client_qps_beats_single_client(datasets):
    collection = datasets["VA"]
    bands = bench_bands(len(collection))
    index = MutableDesksIndex(collection, num_bands=bands,
                              num_wedges=bench_wedges(len(collection),
                                                      bands))
    base = generate_queries(collection, 25, 2, WIDTH, k=10, seed=61)
    stream = repeated_stream(base, repeats=4, seed=61)

    qps_col, hit_col, p95_col = [], [], []
    with QueryEngine(index, num_workers=8) as engine:
        # Warm the cache: every distinct query computed once.
        for query in base:
            engine.execute(query)
        for num_clients in CLIENT_SWEEP:
            report = run_closed_loop(
                engine, stream, num_clients,
                requests_per_client=REQUESTS, think_time=THINK_TIME)
            assert report.errors == 0, report.first_error
            qps_col.append(report.qps)
            hit_col.append(100.0 * report.cache_hit_rate)
            p95_col.append(1000.0 * report.latency.get("p95", 0.0))

    table = format_series_table(
        "Serving (VA): closed-loop clients vs aggregate throughput",
        "clients", [str(c) for c in CLIENT_SWEEP],
        {"qps": qps_col, "hit rate %": hit_col, "p95 ms": p95_col},
        unit="qps")
    print()
    print(table)
    write_result("service_throughput", table)
    write_json_result("BENCH_service", {
        "dataset": "VA",
        "num_pois": len(collection),
        "requests_per_client": REQUESTS,
        "think_time_seconds": THINK_TIME,
        "sweep": [
            {"clients": clients, "qps": qps, "cache_hit_rate_pct": hit,
             "p95_ms": p95}
            for clients, qps, hit, p95 in zip(CLIENT_SWEEP, qps_col,
                                              hit_col, p95_col)
        ],
    })

    # Acceptance: concurrency must pay.  Cache-warm requests are fast
    # relative to think time, so even the GIL-bound engine overlaps the
    # waits and every multi-client step should beat one client.
    single = qps_col[0]
    for clients, qps in zip(CLIENT_SWEEP[1:], qps_col[1:]):
        assert qps > single, (
            f"{clients} clients reached {qps:.1f} qps, not above the "
            f"single-client {single:.1f}")
    assert max(qps_col[1:]) > 1.5 * single


def test_insert_invalidates_affected_cached_result(datasets):
    collection = datasets["VA"]
    bands = bench_bands(len(collection))
    index = MutableDesksIndex(collection, num_bands=bands,
                              num_wedges=bench_wedges(len(collection),
                                                      bands))
    query = generate_queries(collection, 1, 2, WIDTH, k=10, seed=62)[0]

    with QueryEngine(index, num_workers=2) as engine:
        first = engine.execute(query)
        assert engine.execute(query).cached  # warm

        # Insert a matching POI just inside the query's direction interval,
        # closer than every current answer: it MUST appear next ask.
        mid = query.interval.midpoint()
        new_id = index.insert(query.location.x + 1e-3 * math.cos(mid),
                              query.location.y + 1e-3 * math.sin(mid),
                              sorted(query.keywords))

        after = engine.execute(query)
        assert not after.cached, "stale cache entry served after insert"
        assert new_id in after.result.poi_ids()
        assert after.result.poi_ids() != first.result.poi_ids()
        assert after.generation > first.generation

        # And the recomputed answer is itself cached again.
        again = engine.execute(query)
        assert again.cached
        assert again.result.poi_ids() == after.result.poi_ids()
