"""Ablation (beyond the paper) — disk-backed index behaviour.

The paper runs DESKS disk-based but reports wall time on one machine; our
simulated page store lets us report *logical page reads* directly.  Two
ablations:

* cold vs warm buffer pool — the pointer-sliced POI lists touch few pages,
  so even cold queries stay cheap and a modest pool captures the reuse;
* buffer capacity sweep — diminishing returns past a small pool, because a
  query's working set is a handful of region/POI-list pages.
"""

import math

from repro.bench import format_series_table, generate_queries, write_result
from repro.core import DesksIndex, DesksSearcher, PruningMode
from repro.storage import SearchStats

from conftest import bench_bands, bench_wedges

QUERIES = 30
WIDTH = math.pi / 3


def _build_disk_index(collection, buffer_capacity):
    bands = bench_bands(len(collection))
    wedges = bench_wedges(len(collection), bands)
    return DesksIndex(collection, num_bands=bands, num_wedges=wedges,
                      disk_based=True, buffer_capacity=buffer_capacity)


def _avg_reads(index, searcher, queries, cold: bool) -> float:
    index.drop_caches()
    index.io_stats.reset()
    for query in queries:
        if cold:
            index.drop_caches()
        searcher.search(query, PruningMode.RD)
    return index.io_stats.logical_reads / len(queries), \
        index.io_stats.physical_reads / len(queries)


def test_ablation_cold_vs_warm_cache(datasets):
    collection = datasets["VA"]
    index = _build_disk_index(collection, buffer_capacity=256)
    searcher = DesksSearcher(index)
    queries = generate_queries(collection, QUERIES, 2, WIDTH, k=10,
                               seed=26, alpha=0.0)
    _, cold_physical = _avg_reads(index, searcher, queries, cold=True)
    _, warm_physical = _avg_reads(index, searcher, queries, cold=False)
    table = format_series_table(
        "Ablation (VA): physical page reads per query, cold vs warm pool",
        "pool state", ["cold", "warm"],
        {"physical reads": [cold_physical, warm_physical]}, unit="pages")
    print()
    print(table)
    write_result("ablation_cold_warm", table)

    assert warm_physical <= cold_physical
    # Pointer-sliced lists keep even cold queries to few page touches.
    assert cold_physical < 200


def test_ablation_buffer_capacity(datasets):
    collection = datasets["VA"]
    queries = generate_queries(collection, QUERIES, 2, WIDTH, k=10,
                               seed=27, alpha=0.0)
    capacities = (4, 16, 64, 256)
    physicals = []
    for capacity in capacities:
        index = _build_disk_index(collection, buffer_capacity=capacity)
        searcher = DesksSearcher(index)
        index.io_stats.reset()
        for query in queries:
            searcher.search(query, PruningMode.RD)
        physicals.append(index.io_stats.physical_reads / len(queries))
        index.close()
    table = format_series_table(
        "Ablation (VA): physical page reads per query vs pool capacity",
        "pool pages", list(capacities),
        {"physical reads": physicals}, unit="pages")
    print()
    print(table)
    write_result("ablation_buffer_capacity", table)

    # Monotone non-increasing in capacity (modulo exact ties).
    for smaller, larger in zip(physicals, physicals[1:]):
        assert larger <= smaller + 1e-9


def test_ablation_sliced_vs_compressed_layout(datasets):
    """DESIGN.md ablation 4: pointer-sliced vs delta-compressed POI lists.

    Compression shrinks the index, but a sub-region fetch then reads the
    keyword's whole posting record — the paper's pointer layout trades
    bytes for locality.
    """
    collection = datasets["VA"]
    bands = bench_bands(len(collection))
    wedges = bench_wedges(len(collection), bands)
    # The layout trade only shows on *long* postings (the regime the
    # paper's 16.5M-POI datasets are always in): query the most frequent
    # keyword, whose posting spans many pages.
    vocab = collection.vocabulary
    top_term = vocab.term_of(vocab.most_frequent(1)[0])
    # ... and on *selective* access: a very narrow cone with small k reads
    # a couple of pointer slices out of that long posting.
    base = generate_queries(collection, QUERIES, 1, math.pi / 18, k=1,
                            seed=29, alpha=0.0)
    queries = [q.__class__(q.location, q.interval,
                           frozenset({top_term}), q.k) for q in base]
    rows = {}
    for layout in ("sliced", "compressed"):
        # 256-byte pages emulate the paper-scale posting/page ratio: at
        # 16.5M POIs a frequent keyword's posting spans hundreds of 4 KiB
        # pages; bench-scale postings need small pages to span anything.
        index = DesksIndex(collection, num_bands=bands, num_wedges=wedges,
                           disk_based=True, disk_format=layout,
                           buffer_capacity=8, page_size=256)
        searcher = DesksSearcher(index)
        index.drop_caches()
        index.io_stats.reset()
        distances = []
        for query in queries:
            index.drop_caches()  # cold per query: isolates layout cost
            distances.append(searcher.search(query,
                                             PruningMode.RD).distances())
        rows[layout] = {
            "size_kb": index.size_bytes / 1024.0,
            "reads": index.io_stats.logical_reads / len(queries),
            "distances": distances,
        }
        index.close()
    table = format_series_table(
        "Ablation (VA): POI-list layout — pointer slices vs delta varint",
        "layout", ["sliced", "compressed"],
        {"index KB": [rows["sliced"]["size_kb"],
                      rows["compressed"]["size_kb"]],
         "reads/query": [rows["sliced"]["reads"],
                         rows["compressed"]["reads"]]},
        unit="KB / logical page reads")
    print()
    print(table)
    write_result("ablation_layout", table)

    assert rows["sliced"]["distances"] == rows["compressed"]["distances"]
    # Compression buys space and pays I/O.
    assert rows["compressed"]["size_kb"] < rows["sliced"]["size_kb"]
    assert rows["compressed"]["reads"] > rows["sliced"]["reads"]


def test_ablation_disk_vs_memory_same_answers(datasets):
    """The storage backend must not change any answer."""
    collection = datasets["VA"]
    disk_index = _build_disk_index(collection, buffer_capacity=64)
    mem_index = DesksIndex(collection,
                           num_bands=disk_index.num_bands,
                           num_wedges=disk_index.num_wedges)
    disk_searcher = DesksSearcher(disk_index)
    mem_searcher = DesksSearcher(mem_index)
    queries = generate_queries(collection, 20, 2, WIDTH, k=10, seed=28)
    for query in queries:
        d = disk_searcher.search(query, PruningMode.RD, SearchStats())
        m = mem_searcher.search(query, PruningMode.RD, SearchStats())
        assert d.distances() == m.distances()
