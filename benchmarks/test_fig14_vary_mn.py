"""Figure 14 — search performance varying N (bands) and M (sub-regions).

Paper setup: 5000 queries, k=10, direction [0, pi/3]; elapsed time plotted
for a grid of (N, M).  Expected shape: performance is flat once M is large
enough — the structure is robust to parameter choice — with a mild optimum
around moderate N and M.
"""

import math

from repro.bench import (
    desks_search_fn,
    format_series_table,
    generate_queries,
    run_workload,
    write_result,
)
from repro.core import DesksIndex, DesksSearcher, PruningMode

#: Bench-scale grids (the paper sweeps N in 50..250 / M in 50..250 on
#: CA/VA and up to 1000 on CN; scaled ~20x down with the datasets).
N_VALUES = (3, 6, 12, 24, 48)
M_VALUES = (3, 6, 12, 24)

QUERIES_PER_POINT = 40
WIDTH = math.pi / 3


def _sweep(collection, dataset_name):
    queries = generate_queries(collection, QUERIES_PER_POINT,
                               num_keywords=2, direction_width=WIDTH,
                               k=10, seed=14, alpha=0.0)
    columns = {f"M={m}": [] for m in M_VALUES}
    poi_columns = {f"M={m}": [] for m in M_VALUES}
    for n in N_VALUES:
        for m in M_VALUES:
            index = DesksIndex(collection, num_bands=n, num_wedges=m)
            searcher = DesksSearcher(index)
            run = run_workload(
                f"N={n},M={m}",
                desks_search_fn(searcher, PruningMode.RD), queries)
            columns[f"M={m}"].append(run.avg_ms)
            poi_columns[f"M={m}"].append(run.avg_pois_examined)
    return format_series_table(
        f"Fig 14 ({dataset_name}): DESKS query time varying N and M",
        "N", list(N_VALUES), columns), poi_columns


def test_fig14_vary_mn(datasets):
    outputs = []
    for name in ("VA", "CA", "CN"):
        table, columns = _sweep(datasets[name], name)
        print()
        print(table)
        outputs.append(table)

        # Shape check (deterministic, on POIs examined rather than noisy
        # wall time): across the whole grid the examined work stays in a
        # modest band — the paper reports <2x variation in time; finer
        # grids examine slightly FEWER POIs (tighter wedges), so the
        # robustness claim is that no setting explodes.
        values = [v for m in M_VALUES for v in columns[f"M={m}"]]
        assert max(values) <= 8.0 * min(values)
    write_result("fig14_vary_mn", "\n\n".join(outputs))


def test_benchmark_desks_query_default_mn(benchmark, datasets,
                                          desks_searchers):
    queries = generate_queries(datasets["CN"], 20, 2, WIDTH, k=10,
                               seed=15, alpha=0.0)
    searcher = desks_searchers["CN"]

    def run():
        for q in queries:
            searcher.search(q, PruningMode.RD)

    benchmark(run)
