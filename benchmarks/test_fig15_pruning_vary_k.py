"""Figure 15 — pruning techniques varying k.

Paper setup: 5000 queries, alpha=0, beta=pi/3, k in {1, 5, 10, 20, 50,
100}; compares DESKS+R (region pruning only), DESKS+D (direction pruning
only) and DESKS+RD.  Expected shape: +D and +RD significantly outperform
+R at every k; +RD is at least as good as +D, with the largest margin on
the biggest dataset (CN) where there are many bands to skip.
"""

import math

from repro.bench import (
    desks_search_fn,
    format_series_table,
    generate_queries,
    run_workload,
    write_result,
)
from repro.core import PruningMode

K_VALUES = (1, 5, 10, 20, 50, 100)
QUERIES_PER_POINT = 40
WIDTH = math.pi / 3

MODES = [("Desks+R", PruningMode.R), ("Desks+D", PruningMode.D),
         ("Desks+RD", PruningMode.RD)]


def _sweep(collection, searcher, dataset_name):
    time_cols = {name: [] for name, _ in MODES}
    poi_cols = {name: [] for name, _ in MODES}
    for k in K_VALUES:
        queries = generate_queries(collection, QUERIES_PER_POINT,
                                   num_keywords=2, direction_width=WIDTH,
                                   k=k, seed=15, alpha=0.0)
        for name, mode in MODES:
            run = run_workload(name, desks_search_fn(searcher, mode),
                               queries)
            time_cols[name].append(run.avg_ms)
            poi_cols[name].append(run.avg_pois_examined)
    return time_cols, poi_cols


def test_fig15_pruning_vary_k(datasets, desks_searchers):
    outputs = []
    for name in ("VA", "CA", "CN"):
        time_cols, poi_cols = _sweep(datasets[name],
                                     desks_searchers[name], name)
        table = format_series_table(
            f"Fig 15 ({name}): pruning techniques varying k",
            "k", list(K_VALUES), time_cols)
        pois = format_series_table(
            f"Fig 15 ({name}) [POIs examined per query]",
            "k", list(K_VALUES), poi_cols, unit="POIs")
        print()
        print(table)
        print(pois)
        outputs.extend([table, pois])

        # Shape: +RD examines no more POIs than either single technique,
        # summed over the k sweep (the paper's consistent ordering).
        total = {n: sum(vals) for n, vals in poi_cols.items()}
        assert total["Desks+RD"] <= total["Desks+R"]
        assert total["Desks+RD"] <= total["Desks+D"] * 1.05
        # Direction pruning is the bigger lever (paper: +D >> +R).
        assert total["Desks+D"] < total["Desks+R"]
    write_result("fig15_pruning_vary_k", "\n\n".join(outputs))


def test_benchmark_desks_rd_k10(benchmark, datasets, desks_searchers):
    queries = generate_queries(datasets["VA"], 20, 2, WIDTH, k=10,
                               seed=16, alpha=0.0)
    searcher = desks_searchers["VA"]

    def run():
        for q in queries:
            searcher.search(q, PruningMode.RD)

    benchmark(run)
