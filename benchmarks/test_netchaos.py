"""Network chaos acceptance: injected faults vs the resilience layer.

Real shard server *processes* (via :class:`~repro.net.ClusterLauncher`)
serve a 240-query equivalence corpus with replica 0 of every shard
behind a :class:`~repro.net.chaos.ChaosProxy`, one armed fault plan at a
time — added latency, mid-frame resets, CRC-caught corruption, and
blackholes.  Three hard gates per plan:

* **bit-exact or typed partial** — every answer either matches the
  unsharded oracle exactly or is a brownout partial naming its
  ``unavailable_shards``; a wrong answer fails the run;
* **zero hangs** — every query returns within its deadline plus the
  socket grace plus scheduling slack;
* **exact reconciliation** — the proxy's injected-fault counters equal
  the client's observed-failure counters, kind by kind: every reset
  became exactly one stale-retry/truncation/reset, every corruption one
  CRC error, every blackhole one timeout.  Nothing injected goes
  unobserved; nothing observed was uninjected.

Two focused runs ride along: hedging must measurably recover tail
latency under single-replica latency injection (p99 at least halved),
and a token-budget run under real overload must show retries capped at
the budget (zero amplification) while work still completes.

Results land in ``results/BENCH_netchaos.json`` and the per-plan fault
logs in ``results/netchaos_faults.txt``.
"""

import math
import threading
import time

import pytest

from repro.bench import generate_queries, write_json_result, write_result
from repro.cluster import ShardRouter
from repro.core import DesksIndex, DesksSearcher
from repro.net import (
    ClusterLauncher,
    HedgePolicy,
    ResilienceConfig,
    connect_router,
)
from repro.net.chaos import ChaosProxy, FaultPlan
from repro.service import MetricsRegistry

from conftest import bench_bands, bench_wedges

pytestmark = pytest.mark.netchaos

NUM_SHARDS = 2
QUERY_TIMEOUT = 2.0
DEADLINE_GRACE = 0.25
#: Scheduling slack on top of deadline + grace before a query counts as
#: a hang: thread wakeups, proxy sleeps, and CI noise.
HANG_SLACK = 1.0

PLANS = [
    FaultPlan("latency", seed=101, latency_seconds=0.06,
              latency_jitter_seconds=0.03),
    FaultPlan("reset", seed=202, reset_probability=0.3,
              reset_after_bytes=6),
    FaultPlan("corrupt", seed=303, corrupt_probability=0.25),
    FaultPlan("blackhole", seed=404, blackhole_probability=0.4),
]

#: Accumulated across tests in this module; the last test writes it out.
REPORT = {}


def _entries(result):
    return [(e.poi_id, e.distance) for e in result.entries]


def _reference(collection):
    bands = bench_bands(len(collection))
    wedges = bench_wedges(len(collection), bands)
    return DesksSearcher(DesksIndex(collection, num_bands=bands,
                                    num_wedges=wedges))


def _percentile(samples, q):
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def _save_deployment(collection, tmp_path_factory, label, num_shards):
    deploy = str(tmp_path_factory.mktemp(label) / "deploy")
    with ShardRouter(collection, num_shards=num_shards,
                     partitioner="grid") as builder:
        builder.save(deploy)
    return deploy


def _counter(metrics, name):
    return metrics.to_dict()["counters"].get(name, 0)


# ---------------------------------------------------------------------------
# The fault-plan matrix


def test_fault_matrix_exact_bounded_reconciled(datasets, tmp_path_factory):
    collection = datasets["VA"]
    reference = _reference(collection)
    queries = generate_queries(collection, 240, 2,
                               direction_width=math.pi / 2, k=10,
                               seed=4242)
    deploy = _save_deployment(collection, tmp_path_factory, "netchaos",
                              NUM_SHARDS)
    resilience = ResilienceConfig(
        breaker_reset_timeout=1.0,
        hedge=HedgePolicy(delay=0.05),
        retry_max_tokens=500.0,
        retry_earn_per_success=0.0,
        probe_interval=0.5)
    plan_reports = {}
    fault_lines = []

    with ClusterLauncher(deploy, replication=2, num_workers=2) as launcher:
        addresses = launcher.start()
        for plan in PLANS:
            # Fresh proxies, registry, and router per plan: counters
            # reconcile absolutely, with no cross-plan bleed.
            proxies = {shard: ChaosProxy(addresses[shard][0], plan).start()
                       for shard in range(NUM_SHARDS)}
            proxied = {shard: [proxies[shard].address, addresses[shard][1]]
                       for shard in range(NUM_SHARDS)}
            metrics = MetricsRegistry()
            router = connect_router(deploy, proxied, num_workers=4,
                                    metrics=metrics, resilience=resilience,
                                    deadline_grace=DEADLINE_GRACE)
            walls = []
            exact = partial_typed = mismatches = hangs = 0
            try:
                for query in queries:
                    started = time.monotonic()
                    response = router.execute(query, timeout=QUERY_TIMEOUT)
                    wall = time.monotonic() - started
                    walls.append(wall)
                    if wall > QUERY_TIMEOUT + DEADLINE_GRACE + HANG_SLACK:
                        hangs += 1
                    if response.degraded:
                        # Brownout: acceptable only as a *typed* partial
                        # naming exactly which shards were lost.
                        assert response.unavailable_shards == tuple(
                            sorted(response.failed_shards))
                        partial_typed += 1
                    elif _entries(response.result) == \
                            _entries(reference.search(query)):
                        exact += 1
                    else:
                        mismatches += 1
                # Let abandoned hedge stragglers and in-flight probes
                # resolve so their counters land before reconciliation.
                settle = (QUERY_TIMEOUT + DEADLINE_GRACE + 1.0
                          if plan.blackhole_probability > 0 else 1.2)
                time.sleep(settle)
            finally:
                router.close()
                injected = {}
                for shard, proxy in sorted(proxies.items()):
                    log = proxy.log.to_dict()
                    proxy.stop()
                    for key, value in log.items():
                        injected[key] = injected.get(key, 0) + value
                    fault_lines.append(f"[{plan.name}] shard {shard} "
                                       f"proxy: {log}")

            observed = metrics.to_dict()["counters"]
            fault_lines.append(f"[{plan.name}] client counters: "
                               f"{observed}")

            # -- reconciliation: injected == observed, kind by kind ------
            resets_seen = (observed.get("net_client_stale_retries_total", 0)
                           + observed.get("net_client_reset_total", 0)
                           + observed.get("net_client_truncated_total", 0))
            assert injected["resets_injected"] == resets_seen, \
                (plan.name, injected, observed)
            assert injected["corruptions_injected"] == \
                observed.get("net_client_crc_errors_total", 0), \
                (plan.name, injected, observed)
            assert injected["blackholes_activated"] == \
                observed.get("net_client_timeouts_total", 0), \
                (plan.name, injected, observed)

            # -- answers and bounds --------------------------------------
            assert mismatches == 0, f"{plan.name}: wrong answers"
            assert hangs == 0, \
                f"{plan.name}: {hangs} queries past deadline+grace+slack"
            assert exact + partial_typed == len(queries)
            assert exact >= 0.9 * len(queries), \
                (f"{plan.name}: only {exact}/{len(queries)} exact — "
                 "failover is not absorbing the injected faults")

            plan_reports[plan.name] = {
                "queries": len(queries),
                "exact": exact,
                "partial_typed": partial_typed,
                "mismatches": mismatches,
                "hangs": hangs,
                "wall_p50_ms": _percentile(walls, 0.50) * 1e3,
                "wall_p99_ms": _percentile(walls, 0.99) * 1e3,
                "injected": injected,
                "observed": dict(observed),
            }

    REPORT["fault_matrix"] = {
        "num_shards": NUM_SHARDS,
        "replication": 2,
        "query_timeout_s": QUERY_TIMEOUT,
        "deadline_grace_s": DEADLINE_GRACE,
        "plans": plan_reports,
    }
    REPORT.setdefault("fault_lines", []).extend(fault_lines)
    # At least one plan must actually have injected each fault kind, or
    # the reconciliation gates above were vacuous.
    total = {key: sum(r["injected"][key] for r in plan_reports.values())
             for key in ("latencies_injected", "resets_injected",
                         "corruptions_injected", "blackholes_activated")}
    assert all(count > 0 for count in total.values()), total


# ---------------------------------------------------------------------------
# Hedging recovers the tail


def test_hedging_recovers_p99_under_injected_latency(datasets,
                                                     tmp_path_factory):
    collection = datasets["VA"]
    reference = _reference(collection)
    queries = generate_queries(collection, 80, 2,
                               direction_width=math.pi / 2, k=10,
                               seed=5151)
    deploy = _save_deployment(collection, tmp_path_factory,
                              "netchaos-hedge", 1)
    plan = FaultPlan("slow-replica", latency_seconds=0.25)
    runs = {}
    with ClusterLauncher(deploy, replication=2, num_workers=2) as launcher:
        addresses = launcher.start()
        with ChaosProxy(addresses[0][0], plan) as proxy:
            proxied = {0: [proxy.address, addresses[0][1]]}
            for label, hedge in (("unhedged", None),
                                 ("hedged", HedgePolicy(delay=0.04))):
                metrics = MetricsRegistry()
                router = connect_router(
                    deploy, proxied, num_workers=4, metrics=metrics,
                    deadline_grace=DEADLINE_GRACE,
                    resilience=ResilienceConfig(
                        hedge=hedge, retry_max_tokens=500.0,
                        retry_earn_per_success=0.0))
                walls = []
                try:
                    for query in queries:
                        started = time.monotonic()
                        response = router.execute(query,
                                                  timeout=QUERY_TIMEOUT)
                        walls.append(time.monotonic() - started)
                        assert not response.degraded
                        assert _entries(response.result) == \
                            _entries(reference.search(query))
                    time.sleep(0.6)  # let abandoned stragglers resolve
                finally:
                    router.close()
                runs[label] = {
                    "p50_ms": _percentile(walls, 0.50) * 1e3,
                    "p99_ms": _percentile(walls, 0.99) * 1e3,
                    "hedges_fired": _counter(metrics,
                                             "net_hedges_fired_total"),
                    "hedges_won": _counter(metrics, "net_hedges_won_total"),
                }

    unhedged_p99 = runs["unhedged"]["p99_ms"]
    hedged_p99 = runs["hedged"]["p99_ms"]
    assert runs["unhedged"]["hedges_fired"] == 0
    assert runs["hedged"]["hedges_won"] > 0
    # The headline gate: hedging must at least halve the injected tail.
    assert hedged_p99 < 0.5 * unhedged_p99, runs
    REPORT["hedging"] = {
        "injected_latency_ms": plan.latency_seconds * 1e3,
        "hedge_delay_ms": 40.0,
        "queries": len(queries),
        **{f"{label}_{key}": value
           for label, run in runs.items() for key, value in run.items()},
    }


# ---------------------------------------------------------------------------
# Retry budget under real overload: zero amplification


def test_retry_budget_caps_amplification_under_overload(datasets,
                                                        tmp_path_factory):
    collection = datasets["VA"]
    queries = generate_queries(collection, 25, 2,
                               direction_width=math.pi / 2, k=10,
                               seed=6161)
    deploy = _save_deployment(collection, tmp_path_factory,
                              "netchaos-overload", 1)
    max_tokens = 5.0
    with ClusterLauncher(deploy, replication=2, num_workers=1,
                         max_inflight=2) as launcher:
        addresses = launcher.start()
        metrics = MetricsRegistry()
        router = connect_router(
            deploy, addresses, num_workers=8, metrics=metrics,
            deadline_grace=DEADLINE_GRACE,
            resilience=ResilienceConfig(
                breaker_failure_threshold=100,
                retry_max_tokens=max_tokens,
                retry_earn_per_success=0.0,
                probe_interval=None))
        completed = failed = 0
        tally = threading.Lock()

        def drive():
            nonlocal completed, failed
            for query in queries:
                try:
                    router.execute(query, timeout=QUERY_TIMEOUT)
                except Exception:
                    with tally:
                        failed += 1
                else:
                    with tally:
                        completed += 1

        try:
            threads = [threading.Thread(target=drive) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120.0)
            assert not any(t.is_alive() for t in threads), \
                "overload drivers hung"
        finally:
            router.close()

    spent = _counter(metrics, "net_retry_tokens_spent_total")
    denied = _counter(metrics, "net_retries_denied_total")
    shed = _counter(metrics, "cluster_replica_failures_total")
    assert completed + failed == 8 * len(queries)
    assert completed > 0, "overload starved the workload completely"
    assert shed > 0, "the overload never actually happened"
    # Zero amplification: with nothing earned back, total retries can
    # never exceed the token budget, and the excess was typed-denied.
    assert spent <= max_tokens, (spent, denied)
    assert denied > 0, \
        "the budget never bit — overload was too gentle to prove the cap"
    REPORT["overload"] = {
        "drivers": 8,
        "queries_per_driver": len(queries),
        "completed": completed,
        "failed": failed,
        "replica_failures": shed,
        "retry_budget": max_tokens,
        "retries_spent": spent,
        "retries_denied": denied,
    }


# ---------------------------------------------------------------------------
# Reporting (runs last within this module)


def test_write_netchaos_report():
    assert REPORT.get("fault_matrix"), \
        "run the full module: the matrix test populates the report"
    fault_lines = REPORT.pop("fault_lines", [])
    write_json_result("BENCH_netchaos", {"dataset": "VA", **REPORT})
    write_result("netchaos_faults", "\n".join(fault_lines) + "\n")
    for name, section in REPORT.items():
        print(name, "->", section)
