"""Ablation (beyond the paper) — giving the baselines exact MBR pruning.

The paper extends the baselines with per-candidate direction verification
(the two-step method).  A natural question the paper does not evaluate:
how much of DESKS's advantage survives if the baselines are given an
*exact* direction test on every subtree MBR (the subtended-arc check in
:func:`repro.geometry.direction_overlaps_mbr`)?

Answer (measured here, and worth knowing): arc pruning *removes* the
baselines' narrow-width blow-up entirely — the per-entry subtended-arc
test is an exact direction filter, so the candidate stream becomes
width-insensitive and the arc-pruned R-tree examines POI counts comparable
to (at narrow widths even below) DESKS.  In other words, a large share of
DESKS's advantage over the *published* baselines comes from their lack of
any subtree-level direction test; DESKS's remaining edge is structural —
direction-sorted posting slices give sequential I/O and cheap conjunctive
intersection, where the R-tree pays scattered node reads (visible in the
paper's disk-resident setting, muted in RAM).
"""

import math

from repro.bench import (
    baseline_search_fn,
    desks_search_fn,
    format_series_table,
    generate_queries,
    run_workload,
    write_result,
)
from repro.core import PruningMode

WIDTH_STEPS = (1, 3, 6, 12)  # * pi/6
QUERIES_PER_POINT = 25


def test_ablation_exact_mbr_direction_pruning(datasets, desks_searchers,
                                              baseline_indexes):
    collection = datasets["CA"]
    searcher = desks_searchers["CA"]
    mir2 = baseline_indexes["CA"]["MIR2-tree"]

    def mir2_arc_fn(query, stats):
        return mir2.search(query, stats, prune_direction=True)

    methods = {
        "Desks": desks_search_fn(searcher, PruningMode.RD),
        "MIR2 two-step": baseline_search_fn(mir2),
        "MIR2 arc-pruned": mir2_arc_fn,
    }
    poi_cols = {name: [] for name in methods}
    for step in WIDTH_STEPS:
        queries = generate_queries(collection, QUERIES_PER_POINT, 2,
                                   step * math.pi / 6, k=10, seed=25)
        for name, fn in methods.items():
            run = run_workload(name, fn, queries)
            poi_cols[name].append(run.avg_pois_examined)
    table = format_series_table(
        "Ablation (CA): exact MBR direction pruning for the baseline",
        "beta-alpha", [f"{s}pi/6" for s in WIDTH_STEPS], poi_cols,
        unit="POIs")
    print()
    print(table)
    write_result("ablation_baseline_direction", table)

    # Arc pruning fixes the two-step blow-up at narrow widths entirely.
    assert poi_cols["MIR2 arc-pruned"][0] < 0.2 * poi_cols["MIR2 two-step"][0]
    # The arc-pruned variant is width-insensitive (no narrow-width spike).
    assert max(poi_cols["MIR2 arc-pruned"]) <= \
        3.0 * max(min(poi_cols["MIR2 arc-pruned"]), 1e-9) * 3
    # DESKS still dominates the baselines as published (two-step).
    for i in range(len(WIDTH_STEPS) - 1):
        assert poi_cols["Desks"][i] < poi_cols["MIR2 two-step"][i]
