"""Ablation (beyond the paper) — dynamic updates via delta buffer.

The paper leaves data update as future work; our `MutableDesksIndex` uses
the standard main-plus-delta design.  Two questions this bench answers:

* how does query cost grow with the pending-delta fraction (the linear
  delta scan is the price of O(1) inserts)?
* what does a rebuild cost relative to the steady-state insert?
"""

import math
import time

from repro.bench import format_series_table, generate_queries, write_result
from repro.core import MutableDesksIndex
from repro.storage import SearchStats

QUERIES = 30
WIDTH = math.pi / 3


def test_ablation_query_cost_vs_delta_fraction(datasets):
    collection = datasets["VA"]
    base = collection.subset(len(collection) // 2)
    queries = generate_queries(base, QUERIES, 1, WIDTH, k=10, seed=31)
    fractions = (0.0, 0.05, 0.15, 0.30)
    pois_col, times_col = [], []
    for fraction in fractions:
        idx = MutableDesksIndex(base, rebuild_threshold=0.5)
        extra = int(len(base) * fraction)
        donor = list(collection)[len(base):len(base) + extra]
        for poi in donor:
            idx.insert(poi.location.x, poi.location.y, poi.keywords)
        assert idx.rebuild_count == 0  # stay inside the delta regime
        stats = SearchStats()
        started = time.perf_counter()
        for query in queries:
            idx.search(query, stats=stats)
        times_col.append(1000.0 * (time.perf_counter() - started) / QUERIES)
        pois_col.append(stats.pois_examined / QUERIES)
    table = format_series_table(
        "Ablation (VA): query cost vs pending-delta fraction",
        "delta fraction", [f"{f:.0%}" for f in fractions],
        {"avg ms": times_col, "POIs examined": pois_col},
        unit="ms / POIs")
    print()
    print(table)
    write_result("ablation_dynamic_delta", table)

    # The delta scan adds linear work: examined POIs grow with the delta,
    # by roughly the delta size itself.
    assert pois_col[-1] > pois_col[0]
    expected_extra = int(len(base) * fractions[-1])
    assert pois_col[-1] - pois_col[0] <= expected_extra * 1.2


def test_ablation_insert_throughput_and_rebuild(datasets):
    collection = datasets["VA"]
    base = collection.subset(2000)
    idx = MutableDesksIndex(base, rebuild_threshold=0.25)
    donor = list(collection)[2000:2600]

    started = time.perf_counter()
    for poi in donor:
        idx.insert(poi.location.x, poi.location.y, poi.keywords)
    elapsed = time.perf_counter() - started
    per_insert_us = 1e6 * elapsed / len(donor)
    table = format_series_table(
        "Ablation (VA): 600 inserts into a 2000-POI index",
        "metric", ["us/insert (amortised)", "rebuilds"],
        {"value": [per_insert_us, float(idx.rebuild_count)]},
        unit="mixed")
    print()
    print(table)
    write_result("ablation_dynamic_inserts", table)

    assert idx.rebuild_count >= 1  # 600 > 25% of 2000
    assert len(idx) == 2600
    # Amortised insert cost stays far below a from-scratch build per op.
    assert per_insert_us < 1e6  # < 1 s per insert even with rebuilds
