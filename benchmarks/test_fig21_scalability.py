"""Figure 21 — scalability on the CN dataset, varying the POI count.

Bench note: single-keyword queries keep match density comparable across
subset sizes; with sparse 2-keyword conjunctions the smallest subsets
have near-zero matches and growth ratios degenerate.

Paper setup: CN subsets of 2..16 million POIs; (a) query time for k in
{1, 10, 20, 50, 100} at width pi/3; (b) query time for widths pi/3..2*pi
at k=10.  Expected shape: near-linear, gently growing curves — the
direction-aware index keeps per-query work almost independent of |P|.

Bench scale: subsets of the CN-like dataset (eighths of the full size
standing in for the paper's 2M steps).
"""

import math

from repro.bench import (
    desks_search_fn,
    format_series_table,
    generate_queries,
    run_workload,
    write_result,
)
from repro.core import DesksIndex, DesksSearcher, PruningMode

from conftest import bench_bands, bench_wedges

FRACTIONS = (0.25, 0.5, 0.75, 1.0)
K_VALUES = (1, 10, 100)
WIDTH_STEPS = (2, 6, 12)  # * pi/6
QUERIES_PER_POINT = 25


def _searchers_for_subsets(collection):
    out = []
    for fraction in FRACTIONS:
        subset = collection.subset(max(10, int(len(collection) * fraction)))
        bands = bench_bands(len(subset))
        wedges = bench_wedges(len(subset), bands)
        index = DesksIndex(subset, num_bands=bands, num_wedges=wedges)
        out.append((subset, DesksSearcher(index)))
    return out


def test_fig21_scalability(datasets):
    collection = datasets["CN"]
    subsets = _searchers_for_subsets(collection)
    sizes = [len(s) for s, _ in subsets]

    # (a) varying k at width pi/3.
    cols_a = {f"k={k}": [] for k in K_VALUES}
    pois_a = {f"k={k}": [] for k in K_VALUES}
    for subset, searcher in subsets:
        queries_by_k = {
            k: generate_queries(subset, QUERIES_PER_POINT, 1, math.pi / 3,
                                k=k, seed=23, alpha=0.0)
            for k in K_VALUES}
        for k in K_VALUES:
            run = run_workload(
                f"k={k}", desks_search_fn(searcher, PruningMode.RD),
                queries_by_k[k])
            cols_a[f"k={k}"].append(run.avg_ms)
            pois_a[f"k={k}"].append(run.avg_pois_examined)
    table_a = format_series_table(
        "Fig 21(a) (CN): scalability varying k (width pi/3)",
        "|P|", sizes, cols_a)

    # (b) varying direction width at k=10.
    cols_b = {f"{s}pi/6": [] for s in WIDTH_STEPS}
    pois_b = {f"{s}pi/6": [] for s in WIDTH_STEPS}
    for subset, searcher in subsets:
        for step in WIDTH_STEPS:
            queries = generate_queries(subset, QUERIES_PER_POINT, 1,
                                       step * math.pi / 6, k=10, seed=24)
            run = run_workload(
                f"w={step}", desks_search_fn(searcher, PruningMode.RD),
                queries)
            cols_b[f"{step}pi/6"].append(run.avg_ms)
            pois_b[f"{step}pi/6"].append(run.avg_pois_examined)
    table_b = format_series_table(
        "Fig 21(b) (CN): scalability varying direction width (k=10)",
        "|P|", sizes, cols_b)

    print()
    print(table_a)
    print(table_b)
    write_result("fig21_scalability", table_a + "\n\n" + table_b)

    # Shape (deterministic, on examined POIs): quadrupling |P| must not
    # quadruple the per-query work (paper shows nearly flat curves).
    for label, values in {**pois_a, **pois_b}.items():
        growth = values[-1] / max(values[0], 1e-9)
        assert growth < 4.0, f"{label}: growth {growth:.2f} over 4x POIs"
    # Larger k costs more at a fixed size (sanity of the sweep).
    assert pois_a["k=100"][-1] >= pois_a["k=1"][-1]
