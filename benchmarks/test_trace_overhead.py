"""Tracing must be free when nobody is looking.

The instrumentation in the searcher and the engine is guarded by one
``current_tracer()`` check per operation.  This benchmark measures what
that guard costs on the serving workload from
``test_service_throughput.py``: the *shipped* build (instrumented, no
tracer active) is run against a *stripped* build where the guard is
monkeypatched to a constant ``None`` — i.e. as close to "the
instrumentation was never written" as Python allows without a second
source tree.

Shared-machine noise between two long timing blocks easily exceeds the
effect being measured, so the two variants alternate in short passes
within each round (drift hits both sides equally) and the gate takes the
best round per side.

Acceptance: shipped QPS within 2% of stripped QPS.
"""

import math
import time

from repro.bench import (
    format_series_table,
    generate_queries,
    repeated_stream,
    write_json_result,
    write_result,
)
from repro.core import DesksIndex, DesksSearcher, MutableDesksIndex
import repro.core.search as search_mod
from repro.service import QueryEngine, run_closed_loop
import repro.service.engine as engine_mod

from conftest import bench_bands, bench_wedges

WIDTH = math.pi / 3
ROUNDS = 5
INTERLEAVES = 8          # shipped/stripped alternations per round
REQUESTS = 250           # per client per alternation
CLIENTS = 4
SEARCH_PASSES = 3        # passes over the query set per alternation
MAX_OVERHEAD_PCT = 2.0


def _engine_seconds(engine, stream):
    report = run_closed_loop(engine, stream, CLIENTS,
                             requests_per_client=REQUESTS, think_time=0.0)
    assert report.errors == 0, report.first_error
    return CLIENTS * REQUESTS / report.qps


def _search_seconds(searcher, queries):
    tick = time.perf_counter()
    for _ in range(SEARCH_PASSES):
        for query in queries:
            searcher.search(query)
    return time.perf_counter() - tick


def _strip(patcher):
    """Replace the disabled-path guard with a constant, per module."""
    patcher.setattr(search_mod, "current_tracer", lambda: None)
    patcher.setattr(engine_mod, "current_tracer", lambda: None)
    patcher.setattr(engine_mod, "traced", lambda name, fn, **kw: fn)


def test_disabled_tracing_costs_under_two_percent(datasets, monkeypatch):
    collection = datasets["VA"]
    bands = bench_bands(len(collection))
    wedges = bench_wedges(len(collection), bands)
    index = MutableDesksIndex(collection, num_bands=bands,
                              num_wedges=wedges)
    base = generate_queries(collection, 25, 2, WIDTH, k=10, seed=61)
    stream = repeated_stream(base, repeats=4, seed=61)
    searcher = DesksSearcher(DesksIndex(collection, num_bands=bands,
                                        num_wedges=wedges))

    engine_shipped, engine_stripped = [], []
    search_shipped, search_stripped = [], []
    with QueryEngine(index, num_workers=8) as engine:
        for query in base:  # warm the cache once, like the QPS bench
            engine.execute(query)
        _engine_seconds(engine, stream)   # warmup, discarded
        _search_seconds(searcher, base)
        for _ in range(ROUNDS):
            times = {"engine": [0.0, 0.0], "search": [0.0, 0.0]}
            for _ in range(INTERLEAVES):
                times["engine"][0] += _engine_seconds(engine, stream)
                times["search"][0] += _search_seconds(searcher, base)
                with monkeypatch.context() as patcher:
                    _strip(patcher)
                    times["engine"][1] += _engine_seconds(engine, stream)
                    times["search"][1] += _search_seconds(searcher, base)
            requests = INTERLEAVES * CLIENTS * REQUESTS
            engine_shipped.append(requests / times["engine"][0])
            engine_stripped.append(requests / times["engine"][1])
            searches = INTERLEAVES * SEARCH_PASSES * len(base)
            search_shipped.append(searches / times["search"][0])
            search_stripped.append(searches / times["search"][1])

    def overhead_pct(shipped, stripped):
        return 100.0 * (1.0 - max(shipped) / max(stripped))

    engine_overhead = overhead_pct(engine_shipped, engine_stripped)
    search_overhead = overhead_pct(search_shipped, search_stripped)

    table = format_series_table(
        "Disabled-tracing overhead (VA): shipped vs stripped, best of "
        f"{ROUNDS} rounds x {INTERLEAVES} alternations",
        "variant", ["shipped", "stripped", "overhead %"],
        {"engine qps": [max(engine_shipped), max(engine_stripped),
                        engine_overhead],
         "search qps": [max(search_shipped), max(search_stripped),
                        search_overhead]},
        unit="qps")
    print()
    print(table)
    write_result("trace_overhead", table)
    write_json_result("BENCH_trace", {
        "dataset": "VA",
        "num_pois": len(collection),
        "clients": CLIENTS,
        "requests_per_alternation": REQUESTS,
        "rounds": ROUNDS,
        "interleaves": INTERLEAVES,
        "max_overhead_pct": MAX_OVERHEAD_PCT,
        "engine": {
            "shipped_qps": engine_shipped,
            "stripped_qps": engine_stripped,
            "best_shipped_qps": max(engine_shipped),
            "best_stripped_qps": max(engine_stripped),
            "overhead_pct": engine_overhead,
        },
        "search": {
            "shipped_qps": search_shipped,
            "stripped_qps": search_stripped,
            "best_shipped_qps": max(search_shipped),
            "best_stripped_qps": max(search_stripped),
            "overhead_pct": search_overhead,
        },
    })

    assert engine_overhead <= MAX_OVERHEAD_PCT, (
        f"disabled tracing costs {engine_overhead:.2f}% engine QPS "
        f"(limit {MAX_OVERHEAD_PCT}%)")
    assert search_overhead <= MAX_OVERHEAD_PCT, (
        f"disabled tracing costs {search_overhead:.2f}% search QPS "
        f"(limit {MAX_OVERHEAD_PCT}%)")
