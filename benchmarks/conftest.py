"""Shared fixtures for the paper-reproduction benchmarks.

Datasets are the Table II presets scaled to laptop-Python size (the scale
divides POI counts; keyword skew and terms/POI are preserved — see
DESIGN.md).  All fixtures are session-scoped and built lazily, so running a
single benchmark module only builds what it needs.

Index parameters: the paper tunes towards ~10k POIs per band and ~100 per
sub-region at million-POI scale.  At our ~200x smaller scale we keep the
same *number* of regions proportionally by targeting ~200 POIs per band and
~10 per sub-region, which preserves the pruning granularity the paper's
figures exercise.
"""

import pytest

from repro.baselines import FilterThenVerify, GridIndex, IRTree, MIR2Tree
from repro.core import DesksIndex, DesksSearcher
from repro.datasets import california_like, china_like, generate, virginia_like

#: Dataset scale factors (divide the paper's POI counts).
SCALES = {"VA": 200.0, "CA": 200.0, "CN": 2000.0}

#: Bench-scale band/wedge tuning (see module docstring).
POIS_PER_BAND = 200
POIS_PER_WEDGE = 10


def bench_bands(num_pois: int) -> int:
    return max(2, round(num_pois / POIS_PER_BAND))


def bench_wedges(num_pois: int, bands: int) -> int:
    return max(2, round(num_pois / bands / POIS_PER_WEDGE))


_FACTORIES = {"VA": virginia_like, "CA": california_like, "CN": china_like}


@pytest.fixture(scope="session")
def datasets():
    """name -> POICollection for the three Table II presets."""
    return {
        name: generate(factory(scale=SCALES[name]))
        for name, factory in _FACTORIES.items()
    }


@pytest.fixture(scope="session")
def desks_indexes(datasets):
    """name -> built DesksIndex with bench-scale parameters."""
    out = {}
    for name, collection in datasets.items():
        bands = bench_bands(len(collection))
        wedges = bench_wedges(len(collection), bands)
        out[name] = DesksIndex(collection, num_bands=bands,
                               num_wedges=wedges)
    return out


@pytest.fixture(scope="session")
def desks_searchers(desks_indexes):
    return {name: DesksSearcher(idx) for name, idx in desks_indexes.items()}


@pytest.fixture(scope="session")
def baseline_indexes(datasets):
    """name -> {method name -> baseline index}."""
    out = {}
    for name, collection in datasets.items():
        out[name] = {
            "MIR2-tree": MIR2Tree(collection, fanout=50),
            "LkT": IRTree(collection, fanout=50),
            "filter-verify": FilterThenVerify(collection, fanout=50),
            "grid": GridIndex(collection),
        }
    return out
