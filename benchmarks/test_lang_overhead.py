"""The query language must be (nearly) free on the serving hot path.

Satellite of the DQL PR: every request that arrives as statement text
pays tokenize + parse + plan validation + backend binding on top of the
search itself.  This benchmark measures that toll on the serve-bench
workload (the closed-loop stream from ``test_service_throughput.py``):
``CLIENTS`` threads drive one :class:`~repro.service.QueryEngine`
either *directly* (``engine.execute(query)`` on prebuilt
``DirectionalQuery`` objects — the submission a DQL-less client
performs) or *through the language* (``DqlExecutor.execute(text)`` on
the same workload rendered as DQL).

Two regimes, because they answer different questions:

* **serving** (the gated facet): ``cache_capacity=1``, so every request
  runs a real direction-aware search.  This is the regime the 5% gate
  targets — parse + plan + bind must vanish next to actual work.  What
  makes it vanish is the executor's prepared-plan cache plus the plan's
  memoized derived query: a repeated statement costs one dict probe,
  not a re-parse.
* **cache-warm** (reported, not gated): the engine answers from its
  result cache in ~10 us, so *any* per-request envelope work is visible
  at full magnification.  The JSON records this overhead honestly; a
  gate here would measure dataclass construction, not the language.

The cold path (parse microseconds per novel statement) is reported too
— first-contact latency is a different budget than steady-state
throughput.

Noise handling mirrors ``test_trace_overhead.py``: the two variants
alternate in short passes inside each round so machine drift hits both
sides equally, and the gate takes the best round per side.

Acceptance: DQL QPS within 5% of direct-API QPS on the serving facet.
"""

import math
import threading
import time

from repro.bench import (
    format_series_table,
    generate_queries,
    repeated_stream,
    write_json_result,
    write_result,
)
from repro.core import MutableDesksIndex
from repro.lang import DqlExecutor, EngineBackend, parse, plan_from_query
from repro.service import QueryEngine

from conftest import bench_bands, bench_wedges

WIDTH = math.pi / 3
ROUNDS = 4
INTERLEAVES = 4          # direct/DQL alternations per round
CLIENTS = 4
#: Requests per client per alternation: the serving facet does real
#: searches (slow), the cache-warm facet answers from the result cache.
REQUESTS = {"serving": 60, "cache-warm": 400}
MAX_OVERHEAD_PCT = 5.0


def _closed_loop_seconds(call, items, requests):
    """Wall seconds for CLIENTS threads issuing ``requests`` calls each.

    The same driver runs both variants, so loop overhead (thread start,
    barrier, index arithmetic) cancels out of the comparison.
    """
    barrier = threading.Barrier(CLIENTS + 1)
    failures = []

    def client(client_id):
        position = client_id
        barrier.wait()
        try:
            for _ in range(requests):
                call(items[position % len(items)])
                position += CLIENTS
        except Exception as exc:  # noqa: BLE001 - surfaced to the gate
            failures.append(exc)

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(CLIENTS)]
    for thread in threads:
        thread.start()
    barrier.wait()
    tick = time.perf_counter()
    for thread in threads:
        thread.join()
    assert not failures, failures[0]
    return time.perf_counter() - tick


def _facet(engine, stream, statements, requests):
    """Alternating direct/DQL rounds against one engine; best-of QPS."""
    executor = DqlExecutor(EngineBackend(engine))

    def direct(query):
        engine.execute(query)

    def dql(statement):
        executor.execute(statement)

    _closed_loop_seconds(direct, stream, requests)   # warmup, discarded
    _closed_loop_seconds(dql, statements, requests)  # (fills plan cache)
    direct_qps, dql_qps = [], []
    for _ in range(ROUNDS):
        seconds = [0.0, 0.0]
        for _ in range(INTERLEAVES):
            seconds[0] += _closed_loop_seconds(direct, stream, requests)
            seconds[1] += _closed_loop_seconds(dql, statements, requests)
        total = INTERLEAVES * CLIENTS * requests
        direct_qps.append(total / seconds[0])
        dql_qps.append(total / seconds[1])
    overhead = 100.0 * (1.0 - max(dql_qps) / max(direct_qps))
    return {"direct_qps": direct_qps, "dql_qps": dql_qps,
            "best_direct_qps": max(direct_qps),
            "best_dql_qps": max(dql_qps), "overhead_pct": overhead}


def _cold_parse_micros(statements, repeats=20):
    """Microseconds per tokenize+parse+validate of a novel statement."""
    tick = time.perf_counter()
    for _ in range(repeats):
        for statement in statements:
            parse(statement)
    elapsed = time.perf_counter() - tick
    return 1e6 * elapsed / (repeats * len(statements))


def test_dql_overhead_under_five_percent(datasets):
    collection = datasets["VA"]
    bands = bench_bands(len(collection))
    wedges = bench_wedges(len(collection), bands)
    index = MutableDesksIndex(collection, num_bands=bands,
                              num_wedges=wedges)
    base = generate_queries(collection, 25, 2, WIDTH, k=10, seed=61)
    stream = repeated_stream(base, repeats=4, seed=61)
    statements = [plan_from_query(query).render() for query in stream]

    facets = {}
    # Serving facet: cache_capacity=1 with 25 rotating distinct queries
    # means every request misses and runs the real search.
    with QueryEngine(index, num_workers=8, cache_capacity=1) as engine:
        facets["serving"] = _facet(engine, stream, statements,
                                   REQUESTS["serving"])
    with QueryEngine(index, num_workers=8) as engine:
        for query in base:  # warm: every distinct query computed once
            engine.execute(query)
        facets["cache-warm"] = _facet(engine, stream, statements,
                                      REQUESTS["cache-warm"])
    cold_parse_us = _cold_parse_micros(statements[:25])

    table = format_series_table(
        "DQL overhead (VA serve workload): direct API vs parsed "
        f"statements, best of {ROUNDS} rounds x {INTERLEAVES} alternations",
        "facet", ["direct qps", "dql qps", "overhead %"],
        {name: [facet["best_direct_qps"], facet["best_dql_qps"],
                facet["overhead_pct"]]
         for name, facet in facets.items()},
        unit="qps")
    print()
    print(table)
    print(f"cold parse: {cold_parse_us:.1f} us/statement")
    write_result("lang_overhead", table)
    write_json_result("BENCH_lang", {
        "dataset": "VA",
        "num_pois": len(collection),
        "clients": CLIENTS,
        "requests_per_alternation": REQUESTS,
        "rounds": ROUNDS,
        "interleaves": INTERLEAVES,
        "max_overhead_pct": MAX_OVERHEAD_PCT,
        "gated_facet": "serving",
        "facets": facets,
        "cold_parse_us_per_statement": cold_parse_us,
        "plan_cache_size": DqlExecutor.PLAN_CACHE_SIZE,
    })

    overhead = facets["serving"]["overhead_pct"]
    assert overhead <= MAX_OVERHEAD_PCT, (
        f"DQL costs {overhead:.2f}% engine QPS over the direct API on "
        f"real searches (limit {MAX_OVERHEAD_PCT}%)")
