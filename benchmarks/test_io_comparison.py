"""I/O comparison — the paper's disk-resident cost story.

The paper's evaluation ran all indexes disk-resident, so its gaps are
largely I/O gaps; pure-Python wall time under-reports them.  This bench
compares logical disk accesses per query:

* DESKS (disk-backed, cold buffer pool per query): logical page reads
  through the simulated page store;
* MIR2-tree / LkT: examined tree nodes — in a disk R-tree one node is one
  page, so node accesses are the canonical I/O measure.

Expected shape: DESKS touches a handful of pages (region lists + pointer
slices) where the tree baselines touch tens of node pages at narrow
widths — this is the asymmetry that produces the paper's 2-3
order-of-magnitude wall-time gaps on spinning disks.
"""

import math

from repro.bench import format_series_table, generate_queries, write_result
from repro.core import DesksIndex, DesksSearcher, PruningMode
from repro.storage import SearchStats

from conftest import bench_bands, bench_wedges

WIDTH_STEPS = (1, 3, 6, 12)  # * pi/6
QUERIES = 25


def test_io_comparison(datasets, baseline_indexes):
    collection = datasets["CA"]
    bands = bench_bands(len(collection))
    wedges = bench_wedges(len(collection), bands)
    desks = DesksIndex(collection, num_bands=bands, num_wedges=wedges,
                       disk_based=True)
    searcher = DesksSearcher(desks)
    mir2 = baseline_indexes["CA"]["MIR2-tree"]
    lkt = baseline_indexes["CA"]["LkT"]

    cols = {"Desks (pages)": [], "MIR2-tree (nodes)": [],
            "LkT (nodes)": []}
    for step in WIDTH_STEPS:
        queries = generate_queries(collection, QUERIES, 2,
                                   step * math.pi / 6, k=10, seed=43)
        desks.io_stats.reset()
        for query in queries:
            desks.drop_caches()  # cold pool: every page read is physical
            searcher.search(query, PruningMode.RD)
        cols["Desks (pages)"].append(
            desks.io_stats.logical_reads / len(queries))
        for name, index in (("MIR2-tree (nodes)", mir2),
                            ("LkT (nodes)", lkt)):
            stats = SearchStats()
            for query in queries:
                index.search(query, stats)
            cols[name].append(stats.nodes_examined / len(queries))
    labels = [f"{s}pi/6" for s in WIDTH_STEPS]
    table = format_series_table(
        "I/O comparison (CA): disk accesses per query "
        "(DESKS pages vs R-tree node pages)",
        "beta-alpha", labels, cols, unit="disk accesses")
    print()
    print(table)
    write_result("io_comparison", table)

    # DESKS's disk footprint per query beats the trees' node accesses at
    # the narrow widths the paper emphasises.
    for i in range(2):  # pi/6 and pi/2
        assert cols["Desks (pages)"][i] < cols["MIR2-tree (nodes)"][i]
        assert cols["Desks (pages)"][i] < cols["LkT (nodes)"][i]
    desks.close()
