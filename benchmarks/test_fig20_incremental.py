"""Figure 20 — incremental search on the CN dataset.

Bench note: the paper uses k=10 with 16.5M POIs, where every query
saturates k.  At bench scale we use 1-keyword queries with k=5 so caches
are similarly saturated — an unsaturated cache forces the incremental
method into its from-scratch fallback, which is not the regime Fig. 20
measures.

Paper setup (k=10): queries start with width pi/3; (a) the direction is
*increased* by i*pi/36 for i = 1..12; (b) the direction is *moved* by
delta in {-6..6}*pi/36.  DESKS-INCRE answers from the cached previous
answer; DESKS answers from scratch.  Expected shapes: INCRE wins
throughout in (a); in (b) INCRE wins clearly for small |delta| and the
margin shrinks for large rotations where it falls back to scratch.
"""

import math

from repro.bench import format_series_table, write_result
from repro.core import IncrementalSearcher, PruningMode
from repro.bench import generate_queries
from repro.storage import SearchStats

QUERIES = 40
BASE_WIDTH = math.pi / 3
INCREASE_STEPS = tuple(range(1, 13))   # * pi/36
MOVE_STEPS = tuple(range(-6, 7))       # * pi/36


def _avg_pois(stats: SearchStats, n: int) -> float:
    return stats.pois_examined / max(n, 1)


def _sweep_increase(collection, searcher):
    queries = generate_queries(collection, QUERIES, num_keywords=1,
                               direction_width=BASE_WIDTH, k=5, seed=20)
    incre_col, scratch_col = [], []
    for step in INCREASE_STEPS:
        grow = step * math.pi / 36
        incre_stats, scratch_stats = SearchStats(), SearchStats()
        for query in queries:
            inc = IncrementalSearcher(searcher, PruningMode.RD)
            inc.initial_search(query)
            wider = query.interval.widen(grow / 2, grow / 2)
            inc.increase_direction(wider, stats=incre_stats)
            searcher.search(query.with_interval(wider), PruningMode.RD,
                            scratch_stats)
        incre_col.append(_avg_pois(incre_stats, QUERIES))
        scratch_col.append(_avg_pois(scratch_stats, QUERIES))
    return incre_col, scratch_col


def _sweep_move(collection, searcher):
    queries = generate_queries(collection, QUERIES, num_keywords=1,
                               direction_width=BASE_WIDTH, k=5, seed=21)
    incre_col, scratch_col = [], []
    for step in MOVE_STEPS:
        delta = step * math.pi / 36
        incre_stats, scratch_stats = SearchStats(), SearchStats()
        for query in queries:
            inc = IncrementalSearcher(searcher, PruningMode.RD)
            inc.initial_search(query)
            inc.move_direction(delta, stats=incre_stats)
            searcher.search(
                query.with_interval(query.interval.rotate(delta)),
                PruningMode.RD, scratch_stats)
        incre_col.append(_avg_pois(incre_stats, QUERIES))
        scratch_col.append(_avg_pois(scratch_stats, QUERIES))
    return incre_col, scratch_col


def test_fig20a_increasing_direction(datasets, desks_searchers):
    collection = datasets["CN"]
    searcher = desks_searchers["CN"]
    incre, scratch = _sweep_increase(collection, searcher)
    table = format_series_table(
        "Fig 20(a) (CN): increasing directions, POIs examined per query",
        "delta (*pi/36)", list(INCREASE_STEPS),
        {"Desks": scratch, "Desks-Incre": incre}, unit="POIs")
    print()
    print(table)
    write_result("fig20a_incremental_increase", table)

    # Incremental beats from-scratch across the sweep (aggregate), and
    # especially for small increases.
    assert sum(incre) < sum(scratch)
    assert incre[0] < scratch[0]


def test_fig20b_moving_direction(datasets, desks_searchers):
    collection = datasets["CN"]
    searcher = desks_searchers["CN"]
    incre, scratch = _sweep_move(collection, searcher)
    labels = [str(s) for s in MOVE_STEPS]
    table = format_series_table(
        "Fig 20(b) (CN): moving directions, POIs examined per query",
        "delta (*pi/36)", labels,
        {"Desks": scratch, "Desks-Incre": incre}, unit="POIs")
    print()
    print(table)
    write_result("fig20b_incremental_move", table)

    # Small rotations: incremental clearly cheaper.  delta=0 is index 6.
    small = [6 - 1, 6, 6 + 1]
    assert sum(incre[i] for i in small) < sum(scratch[i] for i in small)
    # Large rotations converge to from-scratch cost (paper: "the
    # improvement was not high as DESKS-INCRE needed to answer queries
    # from scratch").  Our fallback pays the already-done wedge search on
    # top of the overlap re-search, so we allow a bounded overhead — see
    # EXPERIMENTS.md for the deviation note.
    assert sum(incre) <= sum(scratch) * 1.2


def test_benchmark_incremental_move(benchmark, datasets, desks_searchers):
    collection = datasets["CN"]
    searcher = desks_searchers["CN"]
    queries = generate_queries(collection, 10, 2, BASE_WIDTH, k=10, seed=22)

    def run():
        for query in queries:
            inc = IncrementalSearcher(searcher, PruningMode.RD)
            inc.initial_search(query)
            inc.move_direction(math.pi / 36)

    benchmark(run)
