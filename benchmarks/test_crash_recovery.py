"""Durability chaos harness — crash/recovery + corruption at scale.

Beyond the paper: the durability layer (`repro.durability`) claims that a
mutation workload killed at ANY instant recovers to answer byte-for-byte
identically to a never-crashed twin, and that injected page corruption is
always *surfaced* (degraded response or scrub hit), never silently wrong.
This module stakes those claims on hundreds of randomized trials:

* ~120 crash points drawn over every WAL failpoint firing of a mixed
  insert/delete/checkpoint workload (including torn mid-record writes and
  crashes inside checkpoint's snapshot/truncate window);
* ~100 page corruptions (bit flips, truncations, torn-write stamps)
  against a checksummed disk index probed through the serving layer;
* a WAL overhead measurement gated at <= 25% throughput cost.

Everything is seed-deterministic; results land in
``results/BENCH_durability.json`` for CI artifact upload.
"""

import pytest

from repro.bench import write_json_result, write_result
from repro.datasets import SyntheticConfig, generate
from repro.durability import (
    build_script,
    measure_wal_overhead,
    run_corruption_trials,
    run_crash_trials,
)

SEED = 1210
BASE_POIS = 400
SCRIPT_OPS = 140
CRASH_TRIALS = 120
CORRUPTION_TRIALS = 100
#: Acceptance gate: WAL'd mutations may cost at most this much throughput.
MAX_WAL_OVERHEAD = 0.25
#: The overhead measurement needs a workload whose plain side does real
#: index maintenance (threshold rebuilds), or the ratio degenerates into
#: "syscall vs list.append" — hence a larger base and a longer stream
#: than the crash-trial script.
OVERHEAD_POIS = 2000
OVERHEAD_OPS = 1600
OVERHEAD_THRESHOLD = 0.1
OVERHEAD_SYNC_INTERVAL = 64
OVERHEAD_REPEATS = 9

pytestmark = pytest.mark.chaos


@pytest.fixture(scope="module")
def chaos_base():
    return generate(SyntheticConfig(
        name="chaos", num_pois=BASE_POIS, num_unique_terms=200,
        avg_terms_per_poi=3.0, seed=SEED))


@pytest.fixture(scope="module")
def chaos_script(chaos_base):
    return build_script(chaos_base, SCRIPT_OPS, seed=SEED)


def test_crash_recovery_byte_identical(chaos_base, chaos_script, tmp_path):
    report = run_crash_trials(chaos_base, chaos_script, CRASH_TRIALS,
                              seed=SEED, workdir=str(tmp_path))
    lines = [report.summary()]
    stage_histogram = {}
    for trial in report.trials:
        stage = trial.crashed_at or "completed"
        stage_histogram[stage] = stage_histogram.get(stage, 0) + 1
    lines.extend(f"  crashed at {stage}: {count}"
                 for stage, count in sorted(stage_histogram.items()))
    for failure in report.failures():
        lines.append(f"  FAILED trial {failure.trial} "
                     f"(countdown {failure.crash_countdown}, "
                     f"stage {failure.crashed_at}): "
                     f"{'; '.join(failure.mismatches)}")
    write_result("chaos_crash_recovery", "\n".join(lines))
    test_crash_recovery_byte_identical.report = report
    assert report.total == CRASH_TRIALS
    assert report.all_identical, report.failures()


def test_corruption_always_surfaced(chaos_base, tmp_path):
    report = run_corruption_trials(chaos_base, CORRUPTION_TRIALS,
                                   seed=SEED, workdir=str(tmp_path))
    test_corruption_always_surfaced.report = report
    assert report.total == CORRUPTION_TRIALS
    assert report.silent_wrong == 0, [
        t for t in report.trials if t.silent_wrong]
    assert report.undetected == 0, [
        t for t in report.trials if t.changed and not t.scrub_detected]


def test_wal_overhead_within_budget(tmp_path):
    base = generate(SyntheticConfig(
        name="overhead", num_pois=OVERHEAD_POIS, num_unique_terms=400,
        avg_terms_per_poi=3.0, seed=SEED))
    script = build_script(base, OVERHEAD_OPS, seed=SEED,
                          rebuild_threshold=OVERHEAD_THRESHOLD)
    overhead = measure_wal_overhead(
        base, script, str(tmp_path), sync="batch",
        sync_interval=OVERHEAD_SYNC_INTERVAL,
        rebuild_threshold=OVERHEAD_THRESHOLD, repeats=OVERHEAD_REPEATS)
    crash = getattr(test_crash_recovery_byte_identical, "report", None)
    corruption = getattr(test_corruption_always_surfaced, "report", None)
    payload = {
        "config": {
            "seed": SEED,
            "base_pois": BASE_POIS,
            "script_ops": SCRIPT_OPS,
            "crash_trials": CRASH_TRIALS,
            "corruption_trials": CORRUPTION_TRIALS,
            "max_wal_overhead": MAX_WAL_OVERHEAD,
            "overhead_pois": OVERHEAD_POIS,
            "overhead_ops": OVERHEAD_OPS,
            "overhead_rebuild_threshold": OVERHEAD_THRESHOLD,
        },
        "crash": {
            "trials": crash.total if crash else 0,
            "identical": crash.identical if crash else 0,
        },
        "corruption": {
            "trials": corruption.total if corruption else 0,
            "undetected": corruption.undetected if corruption else 0,
            "silent_wrong": corruption.silent_wrong if corruption else 0,
        },
        "wal_overhead": overhead,
    }
    write_json_result("BENCH_durability", payload)
    assert overhead["overhead_fraction"] <= MAX_WAL_OVERHEAD, overhead
