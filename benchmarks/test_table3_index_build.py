"""Table III — index sizes and construction time.

Builds all three indexes on each dataset and reports sizes (MB) and build
times.  The shapes to reproduce from the paper: LkT's index is the largest
by far (per-node inverted files), DESKS is roughly four single-anchor
structures (it indexes all four MBR corners) yet stays moderate, and
MIR2-tree is the smallest of the keyword-aware trees.
"""

import pytest

from repro.bench import write_result
from repro.core import DesksIndex
from repro.geometry import Anchor

from conftest import bench_bands, bench_wedges


def _mb(num_bytes: int) -> float:
    return num_bytes / (1024.0 * 1024.0)


def test_table3_sizes_and_times(datasets, desks_indexes, baseline_indexes):
    lines = ["Table III: index sizes (MB) and build times (s)",
             f"{'dataset':<10}{'method':<16}{'size MB':>12}{'build s':>12}"]
    sizes = {}
    for name in ("CA", "VA", "CN"):
        desks = desks_indexes[name]
        rows = [("DESKS", desks.size_bytes, desks.build_seconds)]
        for method, index in baseline_indexes[name].items():
            rows.append((method, index.size_bytes, index.build_seconds))
        for method, size, secs in rows:
            sizes[(name, method)] = size
            lines.append(
                f"{name:<10}{method:<16}{_mb(size):>12.3f}{secs:>12.3f}")
    table = "\n".join(lines)
    print()
    print(table)
    write_result("table3_index_build", table)

    for name in ("CA", "VA", "CN"):
        # LkT's inverted-file index dominates everything (paper: 1430 MB
        # vs 72 MB on CA).
        assert sizes[(name, "LkT")] > sizes[(name, "MIR2-tree")]
        assert sizes[(name, "LkT")] > sizes[(name, "DESKS")]
        # The plain R-tree is the smallest (no textual payload).
        assert sizes[(name, "filter-verify")] < sizes[(name, "MIR2-tree")]


def test_desks_four_anchor_cost(datasets):
    """DESKS's size is ~4x a single-anchor structure (paper Sec. II-B)."""
    collection = datasets["VA"]
    bands = bench_bands(len(collection))
    wedges = bench_wedges(len(collection), bands)
    full = DesksIndex(collection, num_bands=bands, num_wedges=wedges)
    single = DesksIndex(collection, num_bands=bands, num_wedges=wedges,
                        anchors=[Anchor.BOTTOM_LEFT])
    assert full.size_bytes == pytest.approx(4 * single.size_bytes, rel=0.05)


def test_load_faster_than_build(datasets, tmp_path_factory):
    """(beyond paper) loading a saved index skips the global sorts."""
    import time

    from repro.core import load_index, save_index

    from repro.datasets import load_csv, save_csv

    collection = datasets["CN"]
    bands = bench_bands(len(collection))
    wedges = bench_wedges(len(collection), bands)
    index = DesksIndex(collection, num_bands=bands, num_wedges=wedges)

    # Both cold paths start from files on disk: CSV parse + build vs load.
    csv_path = tmp_path_factory.mktemp("csv") / "cn.csv"
    save_csv(collection, csv_path)
    started = time.perf_counter()
    rebuilt = DesksIndex(load_csv(csv_path), num_bands=bands,
                         num_wedges=wedges)
    build_s = time.perf_counter() - started

    directory = tmp_path_factory.mktemp("idx") / "cn"
    save_index(index, str(directory))
    started = time.perf_counter()
    loaded = load_index(str(directory))
    load_s = time.perf_counter() - started
    print(f"\nCN index from disk: parse+build {build_s * 1e3:.0f} ms, "
          f"load {load_s * 1e3:.0f} ms")
    assert loaded.num_bands == rebuilt.num_bands
    # At bench scale both cold paths are CSV-parse-dominated, so load and
    # build land within noise of each other; the assertion only rules out
    # a load path that regressed to much slower than building.  (The
    # sort-skip advantage grows with collection size — sorts are the only
    # superlinear part of a build.)
    assert load_s < build_s * 2.0


def test_benchmark_desks_build(benchmark, datasets):
    collection = datasets["VA"]
    bands = bench_bands(len(collection))
    wedges = bench_wedges(len(collection), bands)
    benchmark(lambda: DesksIndex(collection, num_bands=bands,
                                 num_wedges=wedges))


def test_benchmark_mir2_build(benchmark, datasets):
    from repro.baselines import MIR2Tree

    benchmark(lambda: MIR2Tree(datasets["VA"], fanout=50))


def test_benchmark_lkt_build(benchmark, datasets):
    from repro.baselines import IRTree

    benchmark(lambda: IRTree(datasets["VA"], fanout=50))
