"""Sharded scatter-gather acceptance (beyond the paper).

Acceptance checks over the PR-2 cluster layer on the VA preset:

* **Exactness** — on a randomized workload (200+ queries covering every
  partitioner and S in {1, 2, 4, 8}) the sharded deployment returns
  *exactly* the unsharded searcher's answers, including tie-breaking, and
  keeps doing so with R=2 while one replica position is hard-failed.
* **Exactness over the wire** (``-m network``) — the same contract with
  every shard behind a real server *process* and the router speaking the
  :mod:`repro.net` socket protocol: 240+ queries across every
  partitioner, and an R=2 run where one replica is SIGKILLed mid-stream
  (a real OS process dying, not an injected fault).
* **Direction-aware pruning** — under the spatial grid partitioner the
  shard-pruning rate grows monotonically as the query direction interval
  narrows from 2*pi to pi/8: the cluster-level payoff of the paper's
  direction pruning.  The sweep is written to ``results/BENCH_cluster.json``
  for tooling and ``results/cluster_pruning.txt`` for eyeballs.
"""

import math

import pytest

from repro.bench import (
    format_series_table,
    generate_queries,
    write_json_result,
    write_result,
)
from repro.cluster import PARTITIONERS, FaultInjector, ShardRouter
from repro.core import DesksIndex, DesksSearcher
from repro.net import ClusterLauncher, connect_router

from conftest import bench_bands, bench_wedges

SHARD_SWEEP = (1, 2, 4, 8)
WIDTH_SWEEP = (2 * math.pi, math.pi, math.pi / 2, math.pi / 4, math.pi / 8)
QUERIES_PER_CELL = 20  # x 3 partitioners x 4 shard counts = 240 queries


def _entries(result):
    return [(e.poi_id, e.distance) for e in result.entries]


def _reference(collection):
    bands = bench_bands(len(collection))
    wedges = bench_wedges(len(collection), bands)
    return DesksSearcher(DesksIndex(collection, num_bands=bands,
                                    num_wedges=wedges))


def test_sharded_equals_unsharded_randomized(datasets):
    collection = datasets["VA"]
    reference = _reference(collection)
    total = mismatches = 0
    for partitioner in sorted(PARTITIONERS):
        for num_shards in SHARD_SWEEP:
            queries = generate_queries(
                collection, QUERIES_PER_CELL, 2,
                direction_width=math.pi / 2, k=10,
                seed=500 + num_shards)
            with ShardRouter(collection, num_shards=num_shards,
                             partitioner=partitioner) as router:
                for query in queries:
                    total += 1
                    got = router.execute(query)
                    assert not got.degraded
                    if _entries(got.result) != \
                            _entries(reference.search(query)):
                        mismatches += 1
    assert total >= 200
    assert mismatches == 0


def test_exact_under_single_replica_failure(datasets):
    """R=2, replica position 0 always fails: answers stay exact."""
    collection = datasets["VA"]
    reference = _reference(collection)
    injector = FaultInjector()
    injector.set_fault(replica_id=0, error_rate=1.0)
    queries = generate_queries(collection, 50, 2,
                               direction_width=math.pi / 2, k=10, seed=77)
    with ShardRouter(collection, num_shards=4, partitioner="grid",
                     replication=2, fault_injector=injector) as router:
        retries = 0
        for query in queries:
            got = router.execute(query)
            assert not got.degraded
            retries += got.replica_retries
            assert _entries(got.result) == _entries(reference.search(query))
    assert retries > 0  # the failures really happened and were absorbed


@pytest.mark.network
def test_socket_sharded_equals_unsharded_randomized(datasets,
                                                    tmp_path_factory):
    """240 queries, every partitioner, shards as real server processes."""
    collection = datasets["VA"]
    reference = _reference(collection)
    total = mismatches = 0
    for partitioner in sorted(PARTITIONERS):
        for num_shards in (2, 4):
            deploy = str(tmp_path_factory.mktemp(
                f"net-{partitioner}") / "deploy")
            with ShardRouter(collection, num_shards=num_shards,
                             partitioner=partitioner) as builder:
                builder.save(deploy)
            queries = generate_queries(
                collection, 40, 2, direction_width=math.pi / 2, k=10,
                seed=600 + num_shards)
            with ClusterLauncher(deploy, replication=1,
                                 num_workers=2) as launcher:
                addresses = launcher.start()
                router = connect_router(deploy, addresses, num_workers=4)
                try:
                    for query in queries:
                        total += 1
                        got = router.execute(query)
                        assert not got.degraded
                        if _entries(got.result) != \
                                _entries(reference.search(query)):
                            mismatches += 1
                finally:
                    router.close()
    assert total >= 240
    assert mismatches == 0


@pytest.mark.network
def test_socket_exact_while_killing_a_real_replica(datasets,
                                                   tmp_path_factory):
    """R=2 over processes; SIGKILL one replica mid-stream: still exact."""
    collection = datasets["VA"]
    reference = _reference(collection)
    deploy = str(tmp_path_factory.mktemp("net-kill") / "deploy")
    with ShardRouter(collection, num_shards=2,
                     partitioner="grid") as builder:
        builder.save(deploy)
    queries = generate_queries(collection, 60, 2,
                               direction_width=math.pi / 2, k=10, seed=78)
    with ClusterLauncher(deploy, replication=2,
                         num_workers=2) as launcher:
        launcher.start()
        router = connect_router(deploy, launcher.addresses(),
                                num_workers=4)
        try:
            for query in queries[:20]:
                got = router.execute(query)
                assert not got.degraded
                assert _entries(got.result) == \
                    _entries(reference.search(query))

            dead = launcher.kill(0, replica_id=0)  # a real SIGKILL
            assert not dead.alive
            assert (0, 0) not in launcher.alive()

            for query in queries[20:]:
                got = router.execute(query)
                assert not got.degraded, got.failed_shards
                assert _entries(got.result) == \
                    _entries(reference.search(query))

            # The failover really happened: the dead replica's client
            # recorded failures while the answers stayed exact.
            summary = router.shards[0].transport.health_summary()
            assert any(row["total_failures"] > 0 for row in summary), \
                summary
        finally:
            router.close()


def test_pruning_rate_grows_as_direction_narrows(datasets):
    collection = datasets["VA"]
    num_shards = 8
    sweep = []
    with ShardRouter(collection, num_shards=num_shards,
                     partitioner="grid") as router:
        for width in WIDTH_SWEEP:
            queries = generate_queries(collection, 40, 2,
                                       direction_width=width, k=10,
                                       seed=900)
            pruned = dispatched = 0
            for query in queries:
                response = router.execute(query)
                pruned += (response.shards_pruned
                           + response.shards_keyword_pruned
                           + response.shards_skipped)
                dispatched += response.shards_dispatched
            rate = pruned / (pruned + dispatched)
            sweep.append({
                "direction_width_rad": width,
                "queries": len(queries),
                "shards": num_shards,
                "pruned": pruned,
                "dispatched": dispatched,
                "pruning_rate": rate,
            })

    rates = [row["pruning_rate"] for row in sweep]
    table = format_series_table(
        "Cluster (VA, grid, S=8): direction width vs shard pruning",
        "width (rad)", [f"{w:.3f}" for w in WIDTH_SWEEP],
        {"pruning rate": rates,
         "avg dispatched": [row["dispatched"] / row["queries"]
                            for row in sweep]},
        unit="fraction of shards / shards per query")
    print()
    print(table)
    write_result("cluster_pruning", table)
    write_json_result("BENCH_cluster", {
        "dataset": "VA",
        "num_pois": len(collection),
        "partitioner": "grid",
        "num_shards": num_shards,
        "width_sweep": sweep,
    })

    # Acceptance: monotone non-decreasing pruning as the sector narrows,
    # with a strict gain over the full sweep.
    for narrower, wider in zip(rates[1:], rates[:-1]):
        assert narrower >= wider, (
            f"pruning rate fell from {wider:.3f} to {narrower:.3f} as the "
            "direction interval narrowed")
    assert rates[-1] > rates[0]
