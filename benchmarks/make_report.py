#!/usr/bin/env python
"""Regenerate every paper experiment and bundle the outputs into a report.

Runs the whole benchmark suite (shape checks included) and stitches the
``results/*.txt`` series files into ``results/REPORT.md``, ordered as in
the paper's evaluation section.

Usage:  python benchmarks/make_report.py  [--skip-run]
"""

import argparse
import datetime
import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(HERE)
RESULTS = os.path.join(REPO, "results")

#: Report order: (results-file stem, section heading).
SECTIONS = [
    ("table2_datasets", "Table II — dataset statistics"),
    ("table3_index_build", "Table III — index sizes and build times"),
    ("fig14_vary_mn", "Figure 14 — varying N and M"),
    ("fig15_pruning_vary_k", "Figure 15 — pruning techniques vs k"),
    ("fig16_pruning_vary_direction",
     "Figure 16 — pruning techniques vs direction width"),
    ("fig17_compare_vary_direction",
     "Figure 17 — comparison vs direction width"),
    ("fig18_compare_vary_k", "Figure 18 — comparison vs k"),
    ("fig19_compare_vary_keywords",
     "Figure 19 — comparison vs keyword count"),
    ("fig20a_incremental_increase",
     "Figure 20(a) — incremental, increasing direction"),
    ("fig20b_incremental_move",
     "Figure 20(b) — incremental, moving direction"),
    ("fig21_scalability", "Figure 21 — scalability"),
    ("ablation_baseline_direction",
     "Ablation — exact MBR direction pruning for baselines"),
    ("ablation_cold_warm", "Ablation — cold vs warm buffer pool"),
    ("ablation_buffer_capacity", "Ablation — buffer capacity"),
    ("ablation_layout", "Ablation — POI-list layout"),
    ("ablation_dynamic_delta", "Ablation — dynamic delta fraction"),
    ("ablation_dynamic_inserts", "Ablation — insert throughput"),
    ("io_comparison", "I/O comparison — pages vs node accesses"),
    ("service_throughput", "Serving layer — closed-loop throughput"),
    ("cluster_pruning", "Cluster — direction-aware shard pruning"),
    ("scale_large", "Opt-in large-scale run (DESKS_LARGE=1)"),
]


def run_benchmarks() -> int:
    """Execute the benchmark suite, letting output stream through."""
    return subprocess.call(
        [sys.executable, "-m", "pytest", HERE, "--benchmark-disable",
         "-p", "no:cacheprovider", "-q"], cwd=REPO)


def write_report() -> str:
    lines = [
        "# DESKS reproduction — measured results",
        "",
        f"Generated {datetime.datetime.now():%Y-%m-%d %H:%M} by "
        "`benchmarks/make_report.py`.  Shapes these series must satisfy, "
        "and paper-vs-measured commentary, live in EXPERIMENTS.md.",
        "",
    ]
    missing = []
    for stem, heading in SECTIONS:
        path = os.path.join(RESULTS, f"{stem}.txt")
        lines.append(f"## {heading}")
        lines.append("")
        if os.path.exists(path):
            with open(path, encoding="utf-8") as handle:
                lines.append("```")
                lines.append(handle.read().rstrip())
                lines.append("```")
        else:
            lines.append(f"*missing: {path}*")
            missing.append(stem)
        lines.append("")
    json_files = sorted(f for f in os.listdir(RESULTS)
                        if f.endswith(".json")) if os.path.isdir(RESULTS) \
        else []
    lines.append("## Machine-readable results")
    lines.append("")
    if json_files:
        lines.append("JSON twins of the tables above, for tooling "
                     "(trend checks, plotting):")
        lines.append("")
        for filename in json_files:
            lines.append(f"- `results/{filename}`")
    else:
        lines.append("*no JSON results present*")
    lines.append("")
    out = os.path.join(RESULTS, "REPORT.md")
    os.makedirs(RESULTS, exist_ok=True)
    with open(out, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines))
    if missing:
        print(f"warning: {len(missing)} experiment(s) had no results: "
              f"{', '.join(missing)}")
    return out


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--skip-run", action="store_true",
                        help="only stitch existing results/ files")
    args = parser.parse_args()
    if not args.skip_run:
        code = run_benchmarks()
        if code != 0:
            print("benchmark suite reported failures; "
                  "report reflects the latest successful writes")
    path = write_report()
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
