"""Network serving: socket vs in-process transport, shedding, deadlines.

The closed-loop generator from :mod:`repro.net.loadgen` drives the same
VA workload through two transports:

* **inproc** — the :class:`~repro.service.QueryEngine` called directly
  (the PR-1 serving baseline, no wire);
* **socket** — a :class:`~repro.net.ShardServer` behind the real frame
  protocol, reached through a :class:`~repro.net.RemoteShardClient`
  connection pool.

Three acceptance properties ride along:

* **overload shedding** — a deliberately undersized server driven by 4x
  more clients than it admits must shed with *typed* ``OVERLOAD`` errors
  (counted, non-fatal) rather than queueing unboundedly or failing
  opaquely;
* **deadline over the wire** — a request whose budget is already spent
  must come back ``partial=True`` immediately, and the server's
  ``net_deadline_expired_total`` counter must show it never touched the
  index;
* **parity** — both transports complete the full workload with zero
  errors and zero partial results.

Everything lands in ``results/BENCH_network.json`` (QPS, exact
p50/p95/p99, overload rate) and ``results/network_serving.txt``.
"""

import math

import pytest

from repro.bench import (
    format_series_table,
    generate_queries,
    write_json_result,
    write_result,
)
from repro.core import DesksIndex
from repro.net import RemoteShardClient, ShardServer, run_network_closed_loop
from repro.service import QueryEngine

from conftest import bench_bands, bench_wedges

pytestmark = pytest.mark.network

NUM_CLIENTS = 4
REQUESTS_PER_CLIENT = 40
OVERDRIVE_CLIENTS = 8
OVERDRIVE_MAX_INFLIGHT = 2


def _build_index(collection):
    bands = bench_bands(len(collection))
    wedges = bench_wedges(len(collection), bands)
    return DesksIndex(collection, num_bands=bands, num_wedges=wedges)


def test_transport_comparison_shedding_and_deadlines(datasets):
    collection = datasets["VA"]
    index = _build_index(collection)
    queries = generate_queries(collection, 64, 2,
                               direction_width=math.pi / 2, k=10,
                               seed=1234)

    # -- inproc baseline: the engine called directly, no wire ------------
    with QueryEngine(index, num_workers=4) as engine:
        inproc = run_network_closed_loop(
            engine.execute, queries, NUM_CLIENTS,
            requests_per_client=REQUESTS_PER_CLIENT, transport="inproc")

    # -- socket: the same workload through the real protocol -------------
    server = ShardServer(index, num_workers=4).start()
    try:
        with RemoteShardClient(server.address) as client:
            socket_run = run_network_closed_loop(
                client.search, queries, NUM_CLIENTS,
                requests_per_client=REQUESTS_PER_CLIENT,
                transport="socket")

            # Deadline over the wire: spent budget → immediate partial,
            # and the server proves it never queued the search.
            expired = client.search(queries[0], budget=0.0)
            assert expired.partial
            assert expired.result.entries == []
            assert client.stats()["net_deadline_expired_total"] >= 1
    finally:
        server.stop()

    # -- overdrive: undersized server, 4x the admitted concurrency -------
    overdrive_server = ShardServer(
        index, num_workers=2,
        max_inflight=OVERDRIVE_MAX_INFLIGHT).start()
    try:
        with RemoteShardClient(overdrive_server.address) as client:
            overdrive = run_network_closed_loop(
                client.search, queries, OVERDRIVE_CLIENTS,
                requests_per_client=REQUESTS_PER_CLIENT,
                transport="socket")
        shed_counter = overdrive_server.metrics.counter(
            "net_overload_total").value
    finally:
        overdrive_server.stop()

    # -- acceptance -------------------------------------------------------
    expected = NUM_CLIENTS * REQUESTS_PER_CLIENT
    for run in (inproc, socket_run):
        assert run.completed == expected, run.summary()
        assert run.errors == 0, run.first_error
        assert run.overloaded == 0
        assert run.partial_results == 0
        assert run.transport_errors == 0
    # Overdrive sheds typed: every shed is an OverloadError the client
    # counted, matching the server's own counter, and nothing opaque.
    assert overdrive.errors == 0, overdrive.first_error
    assert overdrive.transport_errors == 0
    assert overdrive.overloaded > 0, \
        "overdrive never tripped admission control"
    assert overdrive.overloaded == shed_counter
    assert overdrive.completed + overdrive.overloaded == \
        OVERDRIVE_CLIENTS * REQUESTS_PER_CLIENT

    # -- reporting ---------------------------------------------------------
    runs = [inproc, socket_run, overdrive]
    labels = ["inproc", "socket", "socket 4x overdrive"]
    table = format_series_table(
        "Network serving (VA): closed-loop clients vs transport",
        "transport", labels,
        {
            "qps": [r.qps for r in runs],
            "p50 (ms)": [r.latency["p50"] * 1e3 for r in runs],
            "p95 (ms)": [r.latency["p95"] * 1e3 for r in runs],
            "p99 (ms)": [r.latency["p99"] * 1e3 for r in runs],
            "overload rate": [r.overload_rate for r in runs],
        },
        unit="queries/s, ms, fraction shed")
    print()
    print(table)
    for run in runs:
        print(run.summary())
    write_result("network_serving", table)
    write_json_result("BENCH_network", {
        "dataset": "VA",
        "num_pois": len(collection),
        "workload_queries": len(queries),
        "runs": {
            "inproc": inproc.to_dict(),
            "socket": socket_run.to_dict(),
            "socket_overdrive": overdrive.to_dict(),
        },
        "overdrive": {
            "max_inflight": OVERDRIVE_MAX_INFLIGHT,
            "num_clients": OVERDRIVE_CLIENTS,
            "server_shed_counter": shed_counter,
        },
    })
