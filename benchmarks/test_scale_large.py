"""Opt-in larger-scale run: closer to the paper's data sizes.

The default benchmarks run at laptop-Python scale (~5-8k POIs).  Setting
``DESKS_LARGE=1`` runs this module's single experiment at 10x that scale
(82.5k CN-like POIs), where the asymptotic effects the paper measures —
wider DESKS margins, stronger baseline blow-up — are more visible.

    DESKS_LARGE=1 pytest benchmarks/test_scale_large.py -s --benchmark-disable
"""

import math
import os

import pytest

from repro.bench import (
    baseline_search_fn,
    desks_search_fn,
    format_series_table,
    generate_queries,
    run_workload,
    write_result,
)
from repro.baselines import MIR2Tree
from repro.core import DesksIndex, DesksSearcher, PruningMode
from repro.datasets import china_like, generate

pytestmark = pytest.mark.skipif(
    os.environ.get("DESKS_LARGE") != "1",
    reason="set DESKS_LARGE=1 to run the large-scale benchmark")

WIDTH_STEPS = (1, 6, 12)  # * pi/6
QUERIES = 20


def test_large_scale_comparison():
    collection = generate(china_like(scale=200.0))  # ~82.5k POIs
    bands = max(2, round(len(collection) / 2000))
    wedges = max(2, round(len(collection) / bands / 20))
    searcher = DesksSearcher(DesksIndex(collection, num_bands=bands,
                                        num_wedges=wedges))
    mir2 = MIR2Tree(collection, fanout=50)
    methods = {
        "Desks": desks_search_fn(searcher, PruningMode.RD),
        "MIR2-tree": baseline_search_fn(mir2),
    }
    time_cols = {name: [] for name in methods}
    poi_cols = {name: [] for name in methods}
    for step in WIDTH_STEPS:
        queries = generate_queries(collection, QUERIES, 2,
                                   step * math.pi / 6, k=10, seed=41)
        for name, fn in methods.items():
            run = run_workload(name, fn, queries)
            time_cols[name].append(run.avg_ms)
            poi_cols[name].append(run.avg_pois_examined)
    labels = [f"{s}pi/6" for s in WIDTH_STEPS]
    table = format_series_table(
        f"Large scale ({len(collection)} POIs): DESKS vs MIR2-tree",
        "beta-alpha", labels, time_cols)
    pois = format_series_table(
        f"Large scale ({len(collection)} POIs) [POIs examined]",
        "beta-alpha", labels, poi_cols, unit="POIs")
    print()
    print(table)
    print(pois)
    write_result("scale_large", table + "\n\n" + pois)

    # At 10x scale the narrow-width margins widen towards the paper's.
    assert poi_cols["Desks"][0] < 0.2 * poi_cols["MIR2-tree"][0]
    assert time_cols["Desks"][0] < time_cols["MIR2-tree"][0]
