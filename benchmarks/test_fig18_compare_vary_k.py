"""Figure 18 — DESKS vs MIR2-tree vs LkT, varying k.

Paper setup: 5000 queries, alpha=0, beta=pi/3, k in {1, 5, 10, 20, 50,
100}; log-scale time.  Expected shape: DESKS outperforms both baselines at
every k (the paper reports 2-3 orders of magnitude on wall time; our
Python/baseline gap is smaller but the ordering and growth trend hold),
and the baselines' cost grows faster with k because each extra answer
costs them many out-of-direction candidates.
"""

import math

from repro.bench import (
    ascii_chart,
    baseline_search_fn,
    desks_search_fn,
    format_series_table,
    generate_queries,
    run_workload,
    write_result,
)
from repro.core import PruningMode

K_VALUES = (1, 5, 10, 20, 50, 100)
QUERIES_PER_POINT = 30
WIDTH = math.pi / 3


def _sweep(collection, searcher, baselines):
    methods = {"Desks": desks_search_fn(searcher, PruningMode.RD)}
    for name, index in baselines.items():
        methods[name] = baseline_search_fn(index)
    time_cols = {name: [] for name in methods}
    poi_cols = {name: [] for name in methods}
    for k in K_VALUES:
        queries = generate_queries(collection, QUERIES_PER_POINT,
                                   num_keywords=2, direction_width=WIDTH,
                                   k=k, seed=18, alpha=0.0)
        for name, fn in methods.items():
            run = run_workload(name, fn, queries)
            time_cols[name].append(run.avg_ms)
            poi_cols[name].append(run.avg_pois_examined)
    return time_cols, poi_cols


def test_fig18_compare_vary_k(datasets, desks_searchers, baseline_indexes):
    outputs = []
    for name in ("VA", "CA", "CN"):
        time_cols, poi_cols = _sweep(
            datasets[name], desks_searchers[name], baseline_indexes[name])
        table = format_series_table(
            f"Fig 18 ({name}): method comparison varying k",
            "k", list(K_VALUES), time_cols)
        pois = format_series_table(
            f"Fig 18 ({name}) [POIs examined per query]",
            "k", list(K_VALUES), poi_cols, unit="POIs")
        chart = ascii_chart(
            f"Fig 18 ({name}) shape (avg ms, log scale):",
            list(K_VALUES), time_cols, log_scale=True)
        print()
        print(table)
        print(pois)
        print(chart)
        outputs.extend([table, pois, chart])

        # DESKS examines far fewer POIs than every rival at every k.
        for i in range(len(K_VALUES)):
            for rival in ("MIR2-tree", "LkT", "filter-verify"):
                assert poi_cols["Desks"][i] < poi_cols[rival][i]
        # And wins on wall time summed over the sweep.
        for rival in ("MIR2-tree", "LkT", "filter-verify"):
            assert sum(time_cols["Desks"]) < sum(time_cols[rival])
    write_result("fig18_compare_vary_k", "\n\n".join(outputs))


def test_benchmark_desks_k100(benchmark, datasets, desks_searchers):
    queries = generate_queries(datasets["VA"], 15, 2, WIDTH, k=100,
                               seed=19, alpha=0.0)
    searcher = desks_searchers["VA"]

    def run():
        for q in queries:
            searcher.search(q, PruningMode.RD)

    benchmark(run)
