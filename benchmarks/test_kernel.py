"""The columnar kernel's reason to exist: raw scan throughput.

Tentpole gate of the kernel PR.  Two searchers answer the same workload
over the same :class:`~repro.core.DesksIndex`:

* **object path** — :class:`~repro.core.DesksSearcher`, one query at a
  time, one Python object per POI touched;
* **columnar** — :class:`~repro.kernel.ColumnarSearcher.search_batch`
  over the compiled :class:`~repro.kernel.ColumnarSnapshot`, whole
  wedges verified per numpy call, plan caches shared across the batch.

The regime is deliberately **scan-heavy**: a popular single keyword,
wide (or absent) direction intervals, ``k`` up to 20, and a coarse
3x4 band/wedge grid over the CN preset, so most of the work is the
per-POI verify/offer loop the kernel vectorises.  Pruning-heavy
workloads (many keywords, fine grids) spend their time in the scalar
band/subregion control flow — which the kernel *shares* with the object
path, by design, to keep pruning counts identical — and Amdahl caps the
win there near 2x; that regime is reported by the figure benchmarks,
not gated here.

Noise handling mirrors ``test_lang_overhead.py``: the two sides
alternate inside every round (machine drift hits both equally) and the
gate compares best-of-``ROUNDS`` per side.

Acceptance (ISSUE 9): aggregate columnar speedup >= 5x on this
workload, with bit-identical entries and identical
:class:`~repro.storage.SearchStats` pruning counters on a 240-query
corpus spanning full-circle, wraparound, and narrow-wedge intervals.
"""

import math
import time

import pytest

from repro.bench import (
    format_series_table,
    generate_queries,
    write_json_result,
    write_result,
)
from repro.core import DesksIndex, DesksSearcher, PruningMode
from repro.datasets import china_like, generate
from repro.kernel import ColumnarSearcher, ColumnarSnapshot
from repro.storage import SearchStats

pytestmark = pytest.mark.kernel

SCALE = 200.0            # CN preset / 200 -> ~82.5k POIs
NUM_BANDS = 3
NUM_WEDGES = 4           # coarse grid: few, large wedges to scan
ROUNDS = 3
QUERIES_PER_MIX = 60
MIN_SPEEDUP = 5.0
#: (label, direction width in radians, k) — scan-heavy mixes.
MIXES = [
    ("full-circle k=20", 2.0 * math.pi, 20),
    ("width-4.0 k=20", 4.0, 20),
    ("width-2.0 k=10", 2.0, 10),
]


def _object_seconds(searcher, queries):
    tick = time.perf_counter()
    for query in queries:
        searcher.search(query, PruningMode.RD)
    return time.perf_counter() - tick


def _columnar_seconds(searcher, queries):
    tick = time.perf_counter()
    searcher.search_batch(queries, PruningMode.RD)
    return time.perf_counter() - tick


def _equivalence_corpus(collection, count=240, seed=23):
    """Full-circle / wraparound / narrow-wedge thirds, varied keywords."""
    per_family = count // 3
    full = generate_queries(collection, per_family, 1, 2.0 * math.pi,
                            k=10, seed=seed)
    # alpha just under 2*pi with a width pushing past it: every interval
    # wraps through the 0 == 2*pi seam.
    wrap = generate_queries(collection, per_family, 2, 1.5, k=5,
                            seed=seed + 1, alpha=6.0)
    narrow = generate_queries(collection, per_family, 1, 0.2, k=10,
                              seed=seed + 2)
    return full + wrap + narrow


def _check_equivalence(object_searcher, columnar_searcher, corpus):
    """Entries AND pruning counters must match, query for query."""
    mismatches = 0
    for query in corpus:
        for mode in (PruningMode.RD, PruningMode.R, PruningMode.D):
            expected_stats = SearchStats()
            actual_stats = SearchStats()
            expected = object_searcher.search(query, mode, expected_stats)
            actual = columnar_searcher.search(query, mode, actual_stats)
            same = ([(e.poi_id, e.distance) for e in actual.entries]
                    == [(e.poi_id, e.distance) for e in expected.entries]
                    and actual_stats == expected_stats)
            mismatches += 0 if same else 1
    return mismatches


def test_columnar_kernel_speedup(record_property):
    collection = generate(china_like(scale=SCALE))
    index = DesksIndex(collection, num_bands=NUM_BANDS,
                       num_wedges=NUM_WEDGES)
    object_searcher = DesksSearcher(index)
    snapshot = ColumnarSnapshot(index)
    columnar_searcher = ColumnarSearcher(snapshot)

    corpus = _equivalence_corpus(collection)
    mismatches = _check_equivalence(object_searcher, columnar_searcher,
                                    corpus)
    assert mismatches == 0, (
        f"{mismatches}/{len(corpus)} corpus queries diverged between the "
        "object path and the columnar kernel")

    workloads = {
        label: generate_queries(collection, QUERIES_PER_MIX, 1, width,
                                k=k, seed=7)
        for label, width, k in MIXES
    }

    # Warmup (JIT-free Python, but it faults pages in and fills the
    # kernel's plan caches the same way a warm server would be).
    for queries in workloads.values():
        _object_seconds(object_searcher, queries[:5])
        _columnar_seconds(columnar_searcher, queries[:5])

    object_best = {label: math.inf for label in workloads}
    columnar_best = {label: math.inf for label in workloads}
    for _ in range(ROUNDS):
        for label, queries in workloads.items():
            object_best[label] = min(
                object_best[label], _object_seconds(object_searcher,
                                                    queries))
            columnar_best[label] = min(
                columnar_best[label], _columnar_seconds(columnar_searcher,
                                                        queries))

    per_mix = {label: object_best[label] / columnar_best[label]
               for label in workloads}
    aggregate = (sum(object_best.values())
                 / sum(columnar_best.values()))

    table = format_series_table(
        f"Columnar kernel vs object path (CN/{SCALE:.0f}, "
        f"{NUM_BANDS}x{NUM_WEDGES} grid, {QUERIES_PER_MIX} queries/mix, "
        f"best of {ROUNDS} interleaved rounds)",
        "workload",
        ["object ms", "columnar ms", "speedup x"],
        {label: [1000.0 * object_best[label],
                 1000.0 * columnar_best[label], per_mix[label]]
         for label in workloads},
        unit="ms, speedup dimensionless")
    print()
    print(table)
    print(f"aggregate speedup: {aggregate:.2f}x "
          f"(gate >= {MIN_SPEEDUP:.1f}x); snapshot "
          f"{snapshot.nbytes / 1e6:.1f} MB compiled in "
          f"{snapshot.build_seconds * 1000:.0f} ms")
    write_result("kernel_speedup", table)
    write_json_result("BENCH_kernel", {
        "dataset": "CN",
        "scale": SCALE,
        "num_pois": len(collection),
        "num_bands": NUM_BANDS,
        "num_wedges": NUM_WEDGES,
        "rounds": ROUNDS,
        "queries_per_mix": QUERIES_PER_MIX,
        "equivalence_corpus_queries": len(corpus),
        "equivalence_mismatches": mismatches,
        "object_best_seconds": object_best,
        "columnar_best_seconds": columnar_best,
        "speedup_per_mix": per_mix,
        "aggregate_speedup": aggregate,
        "min_speedup": MIN_SPEEDUP,
        "snapshot_nbytes": snapshot.nbytes,
        "snapshot_build_seconds": snapshot.build_seconds,
    })
    record_property("aggregate_speedup", aggregate)

    assert aggregate >= MIN_SPEEDUP, (
        f"columnar kernel is {aggregate:.2f}x the object path on the "
        f"scan-heavy workload; the gate requires >= {MIN_SPEEDUP:.1f}x")
