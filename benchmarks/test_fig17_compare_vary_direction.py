"""Figure 17 — DESKS vs MIR2-tree vs LkT, varying the direction width.

Paper setup: 5000 queries, k=10, width from pi/6 to 2*pi; log-scale time.
Expected shapes: the baselines are slow for narrow directions (they
enumerate MBRs/POIs in useless directions — 5+ seconds at pi/3 on CA vs
DESKS's ~20 ms) and improve towards 2*pi; DESKS is nearly flat and wins at
every width, including the full circle.
"""

import math

from repro.bench import (
    ascii_chart,
    baseline_search_fn,
    desks_search_fn,
    format_series_table,
    generate_queries,
    run_workload,
    write_result,
)
from repro.core import PruningMode

WIDTH_STEPS = (1, 2, 4, 6, 9, 12)  # multiples of pi/6 (paper: 1..12)
QUERIES_PER_POINT = 25


def _sweep(collection, searcher, baselines):
    methods = {"Desks": desks_search_fn(searcher, PruningMode.RD)}
    for name, index in baselines.items():
        methods[name] = baseline_search_fn(index)
    time_cols = {name: [] for name in methods}
    poi_cols = {name: [] for name in methods}
    for step in WIDTH_STEPS:
        width = step * math.pi / 6
        queries = generate_queries(collection, QUERIES_PER_POINT,
                                   num_keywords=2, direction_width=width,
                                   k=10, seed=17)
        for name, fn in methods.items():
            run = run_workload(name, fn, queries)
            time_cols[name].append(run.avg_ms)
            poi_cols[name].append(run.avg_pois_examined)
    return time_cols, poi_cols


def test_fig17_compare_vary_direction(datasets, desks_searchers,
                                      baseline_indexes):
    outputs = []
    for name in ("VA", "CA", "CN"):
        time_cols, poi_cols = _sweep(
            datasets[name], desks_searchers[name], baseline_indexes[name])
        x_labels = [f"{s}pi/6" for s in WIDTH_STEPS]
        table = format_series_table(
            f"Fig 17 ({name}): method comparison varying direction width",
            "beta-alpha", x_labels, time_cols)
        pois = format_series_table(
            f"Fig 17 ({name}) [POIs examined per query]",
            "beta-alpha", x_labels, poi_cols, unit="POIs")
        chart = ascii_chart(
            f"Fig 17 ({name}) shape (avg ms, log scale):",
            [s for s in WIDTH_STEPS], time_cols, log_scale=True)
        print()
        print(table)
        print(pois)
        print(chart)
        outputs.extend([table, pois, chart])

        # DESKS wins at the narrowest width by a wide margin (paper: 25x+
        # in time; we assert on examined POIs, the hardware-independent
        # proxy, and on wall time with a safety factor).
        for rival in ("MIR2-tree", "LkT", "filter-verify"):
            assert poi_cols["Desks"][0] < 0.5 * poi_cols[rival][0]
            assert time_cols["Desks"][0] < time_cols[rival][0]
        # Baselines degrade sharply as the width narrows (the two-step
        # method draws ~1/width more candidates); DESKS stays nearly flat.
        for rival in ("MIR2-tree", "LkT", "grid"):
            assert poi_cols[rival][0] > 1.7 * poi_cols[rival][-1]
        desks_flatness = (max(poi_cols["Desks"])
                          / max(min(poi_cols["Desks"]), 1e-9))
        assert desks_flatness < 20.0
    write_result("fig17_compare_vary_direction", "\n\n".join(outputs))


def test_benchmark_desks_narrow_direction(benchmark, datasets,
                                          desks_searchers):
    queries = generate_queries(datasets["CA"], 15, 2, math.pi / 6, k=10,
                               seed=18)
    searcher = desks_searchers["CA"]

    def run():
        for q in queries:
            searcher.search(q, PruningMode.RD)

    benchmark(run)


def test_benchmark_mir2_narrow_direction(benchmark, datasets,
                                         baseline_indexes):
    queries = generate_queries(datasets["CA"], 15, 2, math.pi / 6, k=10,
                               seed=18)
    index = baseline_indexes["CA"]["MIR2-tree"]

    def run():
        for q in queries:
            index.search(q)

    benchmark(run)
