"""Figure 16 — pruning techniques varying the direction width.

Paper setup: 5000 queries, k=10, direction width beta-alpha swept from
pi/6 to 2*pi.  Expected shape: +D/+RD beat +R across the sweep, most
dramatically at narrow widths where direction pruning eliminates almost
every sub-region; all methods converge somewhat as the width approaches
the full circle (nothing to prune by direction).
"""

import math

from repro.bench import (
    desks_search_fn,
    format_series_table,
    generate_queries,
    run_workload,
    write_result,
)
from repro.core import PruningMode

WIDTH_STEPS = tuple(range(1, 13))  # multiples of pi/6
QUERIES_PER_POINT = 30

MODES = [("Desks+R", PruningMode.R), ("Desks+D", PruningMode.D),
         ("Desks+RD", PruningMode.RD)]


def _sweep(collection, searcher):
    time_cols = {name: [] for name, _ in MODES}
    poi_cols = {name: [] for name, _ in MODES}
    for step in WIDTH_STEPS:
        width = step * math.pi / 6
        queries = generate_queries(collection, QUERIES_PER_POINT,
                                   num_keywords=2, direction_width=width,
                                   k=10, seed=16)
        for name, mode in MODES:
            run = run_workload(name, desks_search_fn(searcher, mode),
                               queries)
            time_cols[name].append(run.avg_ms)
            poi_cols[name].append(run.avg_pois_examined)
    return time_cols, poi_cols


def test_fig16_pruning_vary_direction(datasets, desks_searchers):
    outputs = []
    for name in ("VA", "CA", "CN"):
        time_cols, poi_cols = _sweep(datasets[name], desks_searchers[name])
        x_labels = [f"{s}pi/6" for s in WIDTH_STEPS]
        table = format_series_table(
            f"Fig 16 ({name}): pruning techniques varying direction width",
            "beta-alpha", x_labels, time_cols)
        pois = format_series_table(
            f"Fig 16 ({name}) [POIs examined per query]",
            "beta-alpha", x_labels, poi_cols, unit="POIs")
        print()
        print(table)
        print(pois)
        outputs.extend([table, pois])

        # Shape (paper: "DESKS+R took more than 20 ms, DESKS+D and
        # DESKS+RD only took about 2 ms"): the direction-pruned variants
        # stay well below +R across the entire width sweep.
        for i in range(len(WIDTH_STEPS)):
            assert poi_cols["Desks+RD"][i] < poi_cols["Desks+R"][i]
            assert poi_cols["Desks+D"][i] < poi_cols["Desks+R"][i]
        total_r = sum(poi_cols["Desks+R"])
        total_rd = sum(poi_cols["Desks+RD"])
        assert total_r > 1.5 * total_rd
    write_result("fig16_pruning_vary_direction", "\n\n".join(outputs))
