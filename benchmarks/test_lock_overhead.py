"""Lock-order tracking must be free when nobody is looking.

:func:`repro.analysis.make_lock` hands out plain ``threading`` locks
unless tracking is enabled — the check happens once at lock *creation*,
so the disabled path has literally zero per-acquire cost.  This
benchmark holds that claim to the same standard as the tracing one
(``test_trace_overhead.py``): the *shipped* build (locks created through
``make_lock``, tracking off) runs the serving workload against a
*stripped* build whose locks were created by raw ``threading``
constructors — i.e. as if the factory had never been written.

Shared-machine noise between two long timing blocks easily exceeds the
effect being measured, so the variants alternate in short passes within
each round (drift hits both sides equally) and the gate takes the best
round per side.

A third, *tracked* engine (built with the detector enabled) runs in the
same interleave.  Its overhead is reported but not gated — tracking is a
diagnostic mode — and its lock-order report must come back clean, which
doubles as an end-to-end check of the detector on the real serving
stack.

Acceptance: shipped QPS within 2% of stripped QPS.
"""

import math
import threading

from repro.analysis import LockTracker, disable_lock_tracking, \
    enable_lock_tracking
from repro.bench import (
    format_series_table,
    generate_queries,
    repeated_stream,
    write_json_result,
    write_result,
)
from repro.core import MutableDesksIndex
import repro.core.dynamic as dynamic_mod
from repro.service import QueryEngine, run_closed_loop
import repro.service.cache as cache_mod
import repro.service.engine as engine_mod
import repro.service.metrics as metrics_mod

from conftest import bench_bands, bench_wedges

WIDTH = math.pi / 3
ROUNDS = 5
INTERLEAVES = 6          # shipped/stripped/tracked alternations per round
REQUESTS = 200           # per client per alternation
CLIENTS = 4
MAX_OVERHEAD_PCT = 2.0

#: Every module that creates locks through the factory.
INSTRUMENTED = (dynamic_mod, cache_mod, engine_mod, metrics_mod)


def _raw_make_lock(name, *, reentrant=False):
    """What the instrumented modules would do if make_lock never existed."""
    return threading.RLock() if reentrant else threading.Lock()


def _build_engine(collection, bands, wedges, base):
    index = MutableDesksIndex(collection, num_bands=bands,
                              num_wedges=wedges)
    engine = QueryEngine(index, num_workers=8)
    for query in base:  # warm the cache once, like the QPS bench
        engine.execute(query)
    return engine


def _engine_seconds(engine, stream):
    report = run_closed_loop(engine, stream, CLIENTS,
                             requests_per_client=REQUESTS, think_time=0.0)
    assert report.errors == 0, report.first_error
    return CLIENTS * REQUESTS / report.qps


def test_disabled_lock_tracking_costs_under_two_percent(
        datasets, monkeypatch):
    collection = datasets["VA"]
    bands = bench_bands(len(collection))
    wedges = bench_wedges(len(collection), bands)
    base = generate_queries(collection, 25, 2, WIDTH, k=10, seed=61)
    stream = repeated_stream(base, repeats=4, seed=61)

    # Stripped: factory bypassed entirely at construction time.
    with monkeypatch.context() as patcher:
        for mod in INSTRUMENTED:
            patcher.setattr(mod, "make_lock", _raw_make_lock)
        stripped = _build_engine(collection, bands, wedges, base)
    # Shipped: the default build — make_lock with tracking off.
    shipped = _build_engine(collection, bands, wedges, base)
    # Tracked: detector on for every lock created during construction.
    tracker = LockTracker()
    enable_lock_tracking(tracker)
    try:
        tracked = _build_engine(collection, bands, wedges, base)
    finally:
        disable_lock_tracking()

    qps = {"shipped": [], "stripped": [], "tracked": []}
    try:
        _engine_seconds(shipped, stream)    # warmup, discarded
        _engine_seconds(stripped, stream)
        _engine_seconds(tracked, stream)
        for _ in range(ROUNDS):
            seconds = {"shipped": 0.0, "stripped": 0.0, "tracked": 0.0}
            for _ in range(INTERLEAVES):
                seconds["shipped"] += _engine_seconds(shipped, stream)
                seconds["stripped"] += _engine_seconds(stripped, stream)
                seconds["tracked"] += _engine_seconds(tracked, stream)
            requests = INTERLEAVES * CLIENTS * REQUESTS
            for variant, total in seconds.items():
                qps[variant].append(requests / total)
    finally:
        shipped.close()
        stripped.close()
        tracked.close()

    def overhead_pct(variant):
        return 100.0 * (1.0 - max(qps[variant]) / max(qps["stripped"]))

    shipped_overhead = overhead_pct("shipped")
    tracked_overhead = overhead_pct("tracked")
    report = tracker.report()

    table = format_series_table(
        "Lock-tracking overhead (VA): shipped vs stripped vs tracked, "
        f"best of {ROUNDS} rounds x {INTERLEAVES} alternations",
        "variant", ["best qps", "overhead %"],
        {"stripped (raw locks)": [max(qps["stripped"]), 0.0],
         "shipped (tracking off)": [max(qps["shipped"]), shipped_overhead],
         "tracked (tracking on)": [max(qps["tracked"]), tracked_overhead]},
        unit="qps")
    print()
    print(table)
    print(report.render())
    write_result("lock_overhead", table + "\n\n" + report.render())
    write_json_result("BENCH_analysis", {
        "dataset": "VA",
        "num_pois": len(collection),
        "clients": CLIENTS,
        "requests_per_alternation": REQUESTS,
        "rounds": ROUNDS,
        "interleaves": INTERLEAVES,
        "max_overhead_pct": MAX_OVERHEAD_PCT,
        "shipped_qps": qps["shipped"],
        "stripped_qps": qps["stripped"],
        "tracked_qps": qps["tracked"],
        "best_shipped_qps": max(qps["shipped"]),
        "best_stripped_qps": max(qps["stripped"]),
        "best_tracked_qps": max(qps["tracked"]),
        "shipped_overhead_pct": shipped_overhead,
        "tracked_overhead_pct": tracked_overhead,
        "tracked_report": {
            "acquisitions": report.acquisitions,
            "edges": [edge.to_dict() for edge in report.edges],
            "cycles": report.cycles,
            "inversions": [list(pair) for pair in report.inversions],
            "clean": report.clean,
        },
    })

    assert report.clean, report.render()
    assert shipped_overhead <= MAX_OVERHEAD_PCT, (
        f"disabled lock tracking costs {shipped_overhead:.2f}% engine QPS "
        f"(limit {MAX_OVERHEAD_PCT}%)")
