"""Figure 19 — DESKS vs MIR2-tree vs LkT, varying the number of keywords.

Paper setup: five query sets with 1-5 keywords (1000 queries each), k=10,
direction [0, pi/3]; log-scale time.  Expected shape: DESKS is fast and
stable (10-20 ms in the paper) across keyword counts; baselines remain
orders of magnitude slower throughout.
"""

import math

from repro.bench import (
    baseline_search_fn,
    desks_search_fn,
    format_series_table,
    generate_queries,
    run_workload,
    write_result,
)
from repro.core import PruningMode

KEYWORD_COUNTS = (1, 2, 3, 4, 5)
QUERIES_PER_POINT = 30
WIDTH = math.pi / 3


def _sweep(collection, searcher, baselines):
    methods = {"Desks": desks_search_fn(searcher, PruningMode.RD)}
    for name, index in baselines.items():
        methods[name] = baseline_search_fn(index)
    time_cols = {name: [] for name in methods}
    poi_cols = {name: [] for name in methods}
    for num_keywords in KEYWORD_COUNTS:
        queries = generate_queries(
            collection, QUERIES_PER_POINT, num_keywords=num_keywords,
            direction_width=WIDTH, k=10, seed=19, alpha=0.0)
        for name, fn in methods.items():
            run = run_workload(name, fn, queries)
            time_cols[name].append(run.avg_ms)
            poi_cols[name].append(run.avg_pois_examined)
    return time_cols, poi_cols


def test_fig19_compare_vary_keywords(datasets, desks_searchers,
                                     baseline_indexes):
    outputs = []
    for name in ("VA", "CA", "CN"):
        time_cols, poi_cols = _sweep(
            datasets[name], desks_searchers[name], baseline_indexes[name])
        table = format_series_table(
            f"Fig 19 ({name}): method comparison varying keyword count",
            "#keywords", list(KEYWORD_COUNTS), time_cols)
        pois = format_series_table(
            f"Fig 19 ({name}) [POIs examined per query]",
            "#keywords", list(KEYWORD_COUNTS), poi_cols, unit="POIs")
        print()
        print(table)
        print(pois)
        outputs.extend([table, pois])

        # DESKS beats the tree baselines at every keyword count.
        for i in range(len(KEYWORD_COUNTS)):
            for rival in ("MIR2-tree", "LkT", "filter-verify"):
                assert poi_cols["Desks"][i] <= poi_cols[rival][i]
        # DESKS stays stable across keyword counts (paper: ~10-20 ms band).
        desks_band = max(time_cols["Desks"]) / max(min(time_cols["Desks"]),
                                                   1e-9)
        assert desks_band < 25.0
    write_result("fig19_compare_vary_keywords", "\n\n".join(outputs))


def test_benchmark_desks_five_keywords(benchmark, datasets,
                                       desks_searchers):
    queries = generate_queries(datasets["VA"], 15, 5, WIDTH, k=10,
                               seed=20, alpha=0.0)
    searcher = desks_searchers["VA"]

    def run():
        for q in queries:
            searcher.search(q, PruningMode.RD)

    benchmark(run)
