"""Table II — dataset statistics.

Regenerates the paper's dataset summary for the scaled synthetic stand-ins
and checks the cross-dataset ratios the algorithms are sensitive to: CA has
the richest descriptions, CN the largest (relative) vocabulary.
"""

from repro.bench import write_result
from repro.datasets import dataset_statistics, format_table2


def test_table2_statistics(datasets):
    stats = [dataset_statistics(name, datasets[name])
             for name in ("CA", "VA", "CN")]
    table = format_table2(stats)
    print()
    print(table)
    write_result("table2_datasets", table)

    by_name = {s.name: s for s in stats}
    # Paper Table II shapes: CA ~8.6 terms/POI, VA ~4.5, CN ~3.85.
    assert by_name["CA"].avg_terms_per_poi > by_name["VA"].avg_terms_per_poi
    assert by_name["VA"].avg_terms_per_poi > by_name["CN"].avg_terms_per_poi
    assert 6.0 <= by_name["CA"].avg_terms_per_poi <= 11.0
    assert 3.5 <= by_name["VA"].avg_terms_per_poi <= 5.5
    assert 2.8 <= by_name["CN"].avg_terms_per_poi <= 4.8
    # CN is the biggest collection at bench scale too.
    assert by_name["CN"].num_pois > by_name["CA"].num_pois
    # Vocabulary ordering: CN >> CA > VA (753k vs 35k vs 26k in the paper).
    assert by_name["CN"].num_unique_terms > by_name["CA"].num_unique_terms
    assert by_name["CA"].num_unique_terms > by_name["VA"].num_unique_terms


def test_benchmark_dataset_generation(benchmark):
    """Timing of the synthetic generator itself (VA preset, bench scale)."""
    from repro.datasets import generate, virginia_like

    benchmark(lambda: generate(virginia_like(scale=1000.0)))
