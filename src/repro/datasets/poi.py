"""POI model and the collection type every index consumes.

A POI is the paper's ``p = <(p.x, p.y); p.d>``: a location plus a keyword
set.  :class:`POICollection` interns keywords through a shared
:class:`~repro.text.Vocabulary`, precomputes each POI's term-id set, and
exposes the dataset MBR — the three things every index build needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Iterator, List, Optional, Sequence

from ..geometry import MBR, Point
from ..text import Vocabulary


@dataclass(frozen=True)
class POI:
    """A point of interest: id, location, keyword set."""

    poi_id: int
    location: Point
    keywords: FrozenSet[str]

    @classmethod
    def make(cls, poi_id: int, x: float, y: float,
             keywords: Iterable[str]) -> "POI":
        """Convenience constructor from raw coordinates."""
        return cls(poi_id, Point(x, y), frozenset(keywords))

    def contains_all(self, keywords: Iterable[str]) -> bool:
        """True when this POI's description contains every given keyword."""
        return set(keywords) <= self.keywords


class POICollection:
    """An immutable, id-addressed set of POIs with interned keywords.

    POI ids are their positions in the collection (dense 0..n-1); loaders
    renumber on ingest so downstream index structures can use plain lists.
    """

    def __init__(self, pois: Sequence[POI]) -> None:
        if not pois:
            raise ValueError("a POI collection needs at least one POI")
        self._pois: List[POI] = []
        self.vocabulary = Vocabulary()
        self._term_ids: List[FrozenSet[int]] = []
        for position, poi in enumerate(pois):
            renumbered = POI(position, poi.location, poi.keywords)
            self._pois.append(renumbered)
            self._term_ids.append(self.vocabulary.add_document(poi.keywords))
        self.mbr = MBR.from_points(p.location for p in self._pois)

    # -- access -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._pois)

    def __iter__(self) -> Iterator[POI]:
        return iter(self._pois)

    def __getitem__(self, poi_id: int) -> POI:
        return self._pois[poi_id]

    def location(self, poi_id: int) -> Point:
        """Location of the POI with the given id."""
        return self._pois[poi_id].location

    def term_ids(self, poi_id: int) -> FrozenSet[int]:
        """Interned keyword ids of the POI with the given id."""
        return self._term_ids[poi_id]

    def query_term_ids(self, keywords: Iterable[str],
                       require_all: bool = True,
                       ) -> Optional[FrozenSet[int]]:
        """Term ids of query keywords.

        With ``require_all`` (conjunctive queries) any unknown keyword
        means no POI can match, so ``None`` is returned.  Without it
        (disjunctive queries) unknown keywords are simply dropped and
        ``None`` means *every* keyword was unknown.
        """
        if require_all:
            return self.vocabulary.ids_of(keywords)
        ids = {self.vocabulary.id_of(k) for k in keywords}
        ids.discard(None)
        return frozenset(ids) if ids else None

    def subset(self, size: int) -> "POICollection":
        """The first ``size`` POIs as a new collection (scalability runs)."""
        if not 1 <= size <= len(self):
            raise ValueError(
                f"subset size {size} outside [1, {len(self)}]")
        return POICollection(self._pois[:size])

    # -- statistics ----------------------------------------------------------

    @property
    def total_term_occurrences(self) -> int:
        """Sum over POIs of their distinct keyword counts (Table II row 2)."""
        return sum(len(t) for t in self._term_ids)

    @property
    def num_unique_terms(self) -> int:
        """Distinct keywords across the collection (Table II row 3)."""
        return len(self.vocabulary)

    @property
    def avg_terms_per_poi(self) -> float:
        """Average distinct keywords per POI (Table II row 4)."""
        return self.total_term_occurrences / len(self)
