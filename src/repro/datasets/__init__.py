"""POI datasets: model, synthetic generators, CSV persistence, statistics."""

from .loaders import load_csv, save_csv
from .poi import POI, POICollection
from .stats import DatasetStats, dataset_statistics, format_table2
from .synthetic import (
    CATEGORY_TERMS,
    SyntheticConfig,
    california_like,
    china_like,
    generate,
    load_preset,
    virginia_like,
)

__all__ = [
    "CATEGORY_TERMS",
    "DatasetStats",
    "POI",
    "POICollection",
    "SyntheticConfig",
    "california_like",
    "china_like",
    "dataset_statistics",
    "format_table2",
    "generate",
    "load_csv",
    "load_preset",
    "save_csv",
    "virginia_like",
]
