"""Dataset statistics in the shape of the paper's Table II."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .poi import POICollection


@dataclass(frozen=True)
class DatasetStats:
    """The four rows of Table II for one dataset."""

    name: str
    num_pois: int
    total_terms: int
    num_unique_terms: int
    avg_terms_per_poi: float


def dataset_statistics(name: str, collection: POICollection) -> DatasetStats:
    """Compute Table II statistics for ``collection``."""
    return DatasetStats(
        name=name,
        num_pois=len(collection),
        total_terms=collection.total_term_occurrences,
        num_unique_terms=collection.num_unique_terms,
        avg_terms_per_poi=collection.avg_terms_per_poi,
    )


def format_table2(stats: Sequence[DatasetStats]) -> str:
    """Render a Table II-style summary for several datasets."""
    header = f"{'statistic':<38}" + "".join(f"{s.name:>12}" for s in stats)
    rows = [
        ("Total number of POIs",
         [f"{s.num_pois:,}" for s in stats]),
        ("Total number of terms",
         [f"{s.total_terms:,}" for s in stats]),
        ("Total number of unique terms",
         [f"{s.num_unique_terms:,}" for s in stats]),
        ("Average number of unique terms per POI",
         [f"{s.avg_terms_per_poi:.2f}" for s in stats]),
    ]
    lines = [header, "-" * len(header)]
    for label, cells in rows:
        lines.append(f"{label:<38}" + "".join(f"{c:>12}" for c in cells))
    return "\n".join(lines)
