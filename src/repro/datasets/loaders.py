"""CSV persistence for POI datasets.

Format: one POI per row, ``id,x,y,"kw1 kw2 ..."``.  Generated datasets can
be saved once and reloaded across benchmark runs, and users can bring their
own POI extracts in the same shape.
"""

from __future__ import annotations

import csv
from typing import List, Union

from .poi import POI, POICollection

_PathLike = Union[str, "os.PathLike[str]"]  # noqa: F821 - doc only


def save_csv(collection: POICollection, path: _PathLike) -> None:
    """Write ``collection`` to ``path`` in the library's CSV format."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["id", "x", "y", "keywords"])
        for poi in collection:
            writer.writerow([
                poi.poi_id,
                repr(poi.location.x),
                repr(poi.location.y),
                " ".join(sorted(poi.keywords)),
            ])


def load_csv(path: _PathLike) -> POICollection:
    """Read a POI collection from the library's CSV format.

    Ids are re-densified on load (the collection addresses POIs by
    position); the ``id`` column is informational.
    """
    pois: List[POI] = []
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != ["id", "x", "y", "keywords"]:
            raise ValueError(
                f"unrecognised POI CSV header {header!r} in {path}")
        for line_no, row in enumerate(reader, start=2):
            if len(row) != 4:
                raise ValueError(
                    f"malformed POI row at {path}:{line_no}: {row!r}")
            _, x, y, keywords = row
            try:
                pois.append(POI.make(len(pois), float(x), float(y),
                                     keywords.split()))
            except ValueError as exc:
                raise ValueError(
                    f"bad coordinates at {path}:{line_no}: {exc}") from exc
    if not pois:
        raise ValueError(f"no POIs found in {path}")
    return POICollection(pois)
