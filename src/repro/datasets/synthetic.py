"""Synthetic POI datasets calibrated to the paper's Table II.

The paper evaluates on real POI extracts — California (CA), Virginia (VA)
and China (CN) — that are not redistributable.  These generators produce
laptop-scale synthetic stand-ins preserving the properties the algorithms
are sensitive to:

* **spatial clustering** — real POIs bunch into cities along corridors; we
  draw from a mixture of Gaussian clusters over a uniform background;
* **keyword skew** — term frequencies follow a Zipf law, so a handful of
  terms ("restaurant", "food") appear everywhere while most are rare;
* **terms/POI ratio** — Table II's per-dataset averages are matched.

POI counts are scaled down (default 1/100) because this is pure Python; all
competitor methods shrink together, so cross-method ratios — the quantities
EXPERIMENTS.md reproduces — are preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .poi import POI, POICollection

#: A few human-readable category terms mixed into every dataset so the
#: examples read naturally ("find chinese food to the north-east").
CATEGORY_TERMS = (
    "restaurant", "food", "chinese", "italian", "mexican", "pizza", "sushi",
    "cafe", "coffee", "bar", "bakery", "gas", "station", "fuel", "parking",
    "hotel", "motel", "hostel", "atm", "bank", "pharmacy", "hospital",
    "clinic", "school", "library", "museum", "park", "cinema", "theater",
    "supermarket", "grocery", "mall", "shop", "bookstore", "gym", "salon",
)


@dataclass(frozen=True)
class SyntheticConfig:
    """Parameters of one synthetic dataset."""

    name: str
    num_pois: int
    num_unique_terms: int
    avg_terms_per_poi: float
    num_clusters: int = 40
    cluster_fraction: float = 0.8
    zipf_exponent: float = 1.1
    extent: float = 10_000.0
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_pois <= 0:
            raise ValueError("num_pois must be positive")
        if self.num_unique_terms < len(CATEGORY_TERMS):
            raise ValueError(
                f"num_unique_terms must be at least {len(CATEGORY_TERMS)}")
        if not 0.0 <= self.cluster_fraction <= 1.0:
            raise ValueError("cluster_fraction must be in [0, 1]")
        if self.avg_terms_per_poi < 1.0:
            raise ValueError("avg_terms_per_poi must be at least 1")


def generate(config: SyntheticConfig) -> POICollection:
    """Generate a :class:`POICollection` from ``config`` (deterministic)."""
    rng = np.random.default_rng(config.seed)
    xs, ys = _spatial_sample(config, rng)
    term_table = _term_table(config)
    keyword_sets = _keyword_sample(config, rng, term_table)
    pois = [
        POI.make(i, float(xs[i]), float(ys[i]), keyword_sets[i])
        for i in range(config.num_pois)
    ]
    return POICollection(pois)


def _spatial_sample(config: SyntheticConfig, rng: np.random.Generator):
    """Cluster-mixture locations inside ``[0, extent]^2``."""
    n = config.num_pois
    n_clustered = int(n * config.cluster_fraction)
    n_uniform = n - n_clustered
    extent = config.extent

    centers = rng.uniform(0.05 * extent, 0.95 * extent,
                          size=(config.num_clusters, 2))
    # Mix of tight city cores and sprawling suburbs.
    spreads = rng.uniform(0.005 * extent, 0.04 * extent,
                          size=config.num_clusters)
    # Larger clusters are more likely, like real city-size distributions.
    weights = rng.zipf(1.5, size=config.num_clusters).astype(float)
    weights /= weights.sum()
    assignment = rng.choice(config.num_clusters, size=n_clustered, p=weights)
    clustered = (centers[assignment]
                 + rng.normal(0.0, 1.0, size=(n_clustered, 2))
                 * spreads[assignment, None])
    uniform = rng.uniform(0.0, extent, size=(n_uniform, 2))
    pts = np.vstack([clustered, uniform])
    np.clip(pts, 0.0, extent, out=pts)
    order = rng.permutation(n)
    pts = pts[order]
    return pts[:, 0], pts[:, 1]


def _term_table(config: SyntheticConfig) -> List[str]:
    """Term strings: human categories first, then synthetic fillers.

    Zipf sampling draws low ranks most often, so the category terms double
    as the dataset's most frequent keywords.
    """
    fillers = [f"term{i:06d}"
               for i in range(config.num_unique_terms - len(CATEGORY_TERMS))]
    return list(CATEGORY_TERMS) + fillers


def _keyword_sample(config: SyntheticConfig, rng: np.random.Generator,
                    term_table: List[str]) -> List[frozenset]:
    """Zipf-skewed keyword sets with the configured mean size."""
    n = config.num_pois
    vocab_size = len(term_table)
    # Keyword-set sizes: 1 + Poisson(mean - 1) keeps every POI non-empty.
    sizes = 1 + rng.poisson(config.avg_terms_per_poi - 1.0, size=n)
    # Draw ranks from a truncated Zipf; oversample to survive dedup.
    total = int(sizes.sum() * 1.5) + 16
    ranks = rng.zipf(config.zipf_exponent, size=total)
    ranks = ranks[ranks <= vocab_size] - 1
    keyword_sets: List[frozenset] = []
    cursor = 0
    for size in sizes:
        chosen: set = set()
        while len(chosen) < size:
            if cursor >= len(ranks):
                extra = rng.zipf(config.zipf_exponent, size=total)
                extra = extra[extra <= vocab_size] - 1
                ranks = np.concatenate([ranks, extra])
            chosen.add(int(ranks[cursor]))
            cursor += 1
        keyword_sets.append(frozenset(term_table[r] for r in chosen))
    return keyword_sets


# -- Table II presets ---------------------------------------------------------
#
# Paper statistics:        CA          VA          CN
#   POIs (millions)        0.91        0.96        16.5
#   terms (millions)       9.7         4.6         63.6
#   unique terms (k)       35          26          753
#   avg terms/POI          8.57        4.5         3.85
#
# ``scale`` divides the POI count; unique-term counts scale with the square
# root (Heaps' law) so document frequencies stay realistic.


def _preset(name: str, pois_millions: float, unique_thousands: float,
            avg_terms: float, clusters: int, scale: float,
            seed: int) -> SyntheticConfig:
    num_pois = max(int(pois_millions * 1e6 / scale), 100)
    unique = max(int(unique_thousands * 1e3 / scale ** 0.5),
                 len(CATEGORY_TERMS) + 10)
    return SyntheticConfig(
        name=name,
        num_pois=num_pois,
        num_unique_terms=unique,
        avg_terms_per_poi=avg_terms,
        num_clusters=clusters,
        seed=seed,
    )


def california_like(scale: float = 100.0, seed: int = 11) -> SyntheticConfig:
    """CA-like preset: ~0.91M POIs / ``scale``, rich 8.6-term descriptions."""
    return _preset("CA", 0.91, 35.0, 8.57, clusters=60, scale=scale,
                   seed=seed)


def virginia_like(scale: float = 100.0, seed: int = 13) -> SyntheticConfig:
    """VA-like preset: ~0.96M POIs / ``scale``, 4.5 terms per POI."""
    return _preset("VA", 0.96, 26.0, 4.5, clusters=40, scale=scale, seed=seed)


def china_like(scale: float = 100.0, seed: int = 17) -> SyntheticConfig:
    """CN-like preset: ~16.5M POIs / ``scale``, huge sparse vocabulary."""
    return _preset("CN", 16.5, 753.0, 3.85, clusters=200, scale=scale,
                   seed=seed)


def load_preset(name: str, scale: float = 100.0,
                seed: Optional[int] = None) -> POICollection:
    """Generate one of the named presets ("CA", "VA", "CN")."""
    factories = {"CA": california_like, "VA": virginia_like,
                 "CN": china_like}
    try:
        factory = factories[name.upper()]
    except KeyError:
        raise ValueError(
            f"unknown preset {name!r}; expected one of {sorted(factories)}"
        ) from None
    config = factory(scale) if seed is None else factory(scale, seed)
    return generate(config)
