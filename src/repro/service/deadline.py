"""Per-query deadlines with graceful degradation.

A :class:`Deadline` is a wall-clock budget checked *cooperatively*: the
DESKS best-first scan polls ``expired()`` between bands and between
sub-regions (see :meth:`repro.core.DesksSearcher.search`), stopping early
and returning the best-k-so-far with ``partial=True`` instead of raising.
That makes the serving layer's tail latency bounded by one sub-region scan
past the budget, while every returned entry remains a verified answer.

Deadlines are measured on :func:`time.monotonic` so clock adjustments
cannot extend or collapse a budget.
"""

from __future__ import annotations

import math
import time
from typing import Optional


class Deadline:
    """A point on the monotonic clock after which work should stop.

    ``Deadline.after(0.05)`` gives a 50 ms budget.  ``None`` timeouts map
    to :meth:`unbounded`, which never expires, so call sites can thread a
    single object through without ``if deadline is not None`` checks.
    """

    __slots__ = ("_expires_at",)

    def __init__(self, expires_at: float) -> None:
        self._expires_at = expires_at

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        """A deadline ``seconds`` from now (must be non-negative)."""
        if seconds < 0.0:
            raise ValueError(f"deadline budget must be >= 0: {seconds}")
        return cls(time.monotonic() + seconds)

    @classmethod
    def unbounded(cls) -> "Deadline":
        """A deadline that never expires."""
        return cls(math.inf)

    @classmethod
    def from_timeout(cls, timeout: Optional[float]) -> "Deadline":
        """``None`` => unbounded, else :meth:`after` — the engine's idiom."""
        if timeout is None:
            return cls.unbounded()
        return cls.after(timeout)

    @property
    def is_unbounded(self) -> bool:
        """True when this deadline can never expire."""
        return self._expires_at == math.inf

    def expired(self) -> bool:
        """True once the budget is spent (the core search polls this)."""
        return time.monotonic() >= self._expires_at

    def remaining(self) -> float:
        """Seconds left, clamped at zero (``inf`` when unbounded)."""
        if self.is_unbounded:
            return math.inf
        return max(0.0, self._expires_at - time.monotonic())

    def budget(self) -> Optional[float]:
        """Remaining seconds as a wire-friendly value: ``None`` unbounded.

        The shape :func:`repro.net.protocol.encode_search_request` takes,
        so a caller forwards ``deadline.budget()`` and the receiving
        process restarts its own deadline from the number — remaining
        time, not an absolute clock, is what crosses hosts.
        """
        if self.is_unbounded:
            return None
        return self.remaining()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_unbounded:
            return "Deadline(unbounded)"
        return f"Deadline(remaining={self.remaining():.4f}s)"
