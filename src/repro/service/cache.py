"""LRU result cache with generation-based invalidation.

Keys are :meth:`repro.core.DirectionalQuery.canonical_key` values, so two
queries that differ only in representation (keyword order, an interval
written ``[0, 2*pi)`` vs ``[θ, θ+2*pi)``, float noise in the bounds) share
one entry.  An optional ``location_quantum`` snaps query locations onto a
grid before keying, trading exactness for hit rate on "nearby" queries —
off by default so the cache is answer-preserving.

**Invalidation contract.**  Every entry is tagged with the data
*generation* it was computed under (see
:attr:`repro.core.MutableDesksIndex.generation`).  A lookup passes the
current generation; any entry with an older tag is treated as a miss and
dropped on sight.  The engine additionally subscribes to the index's
mutation callbacks to purge eagerly, but correctness never depends on the
callback being delivered: the lookup-time generation check alone makes
serving a stale answer impossible.

Partial (deadline-truncated) results are never admitted — a later request
with a healthier budget must not inherit a degraded answer.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Optional, Tuple

from ..analysis import make_lock, register_shared
from ..core import DirectionalQuery, QueryResult


@dataclass
class CacheStats:
    """Counters describing cache effectiveness (snapshot-copied on read)."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups, hit or miss."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups, 0.0 when nothing was looked up yet."""
        total = self.lookups
        return self.hits / total if total else 0.0


class ResultCache:
    """Thread-safe LRU cache of :class:`QueryResult`\\ s.

    ``capacity`` bounds the number of resident entries;
    ``location_quantum`` is forwarded to ``canonical_key`` (see module
    docstring).  All operations are O(1) and serialised by one lock.
    """

    def __init__(self, capacity: int = 1024,
                 location_quantum: float = 0.0) -> None:
        if capacity <= 0:
            raise ValueError(f"cache capacity must be positive: {capacity}")
        self.capacity = capacity
        self.location_quantum = location_quantum
        # canonical key -> (generation, result); recency order, MRU last.
        self._entries: "OrderedDict[Hashable, Tuple[int, QueryResult]]" = \
            OrderedDict()
        self._lock = make_lock("service.result_cache")
        self._stats = CacheStats()
        register_shared(self, "service.result_cache")

    # -- keying -------------------------------------------------------------

    def key_for(self, query: DirectionalQuery) -> Hashable:
        """The cache key this cache derives from ``query``."""
        return query.canonical_key(self.location_quantum)

    # -- lookup / admission -------------------------------------------------

    def get(self, query: DirectionalQuery,
            generation: int = 0) -> Optional[QueryResult]:
        """The cached result for ``query`` at ``generation``, else None.

        An entry computed under an older generation is *never* returned;
        it is dropped and counted as an invalidation plus a miss.
        """
        key = self.key_for(query)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._stats.misses += 1
                return None
            cached_generation, result = entry
            if cached_generation != generation:
                del self._entries[key]
                self._stats.invalidations += 1
                self._stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self._stats.hits += 1
            return result

    def put(self, query: DirectionalQuery, result: QueryResult,
            generation: int = 0) -> bool:
        """Admit ``result`` (computed under ``generation``); LRU-evicts.

        Returns False without caching when the result is partial, or when
        an entry computed under a *newer* generation already sits at the
        key (late writer after an update raced past this one).
        """
        if result.partial:
            return False
        key = self.key_for(query)
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None and existing[0] > generation:
                return False
            while len(self._entries) >= self.capacity and key not in \
                    self._entries:
                self._entries.popitem(last=False)
                self._stats.evictions += 1
            self._entries[key] = (generation, result)
            self._entries.move_to_end(key)
            self._stats.insertions += 1
            return True

    # -- invalidation -------------------------------------------------------

    def invalidate_older_than(self, generation: int) -> int:
        """Drop every entry computed before ``generation``; returns count.

        Wired to :meth:`repro.core.MutableDesksIndex.subscribe` so an
        insert/delete purges the cache eagerly instead of leaving stale
        entries to be discovered lookup by lookup.
        """
        with self._lock:
            stale = [key for key, (gen, _) in self._entries.items()
                     if gen < generation]
            for key in stale:
                del self._entries[key]
            self._stats.invalidations += len(stale)
            return len(stale)

    def clear(self) -> None:
        """Drop everything (counted as invalidations)."""
        with self._lock:
            self._stats.invalidations += len(self._entries)
            self._entries.clear()

    # -- introspection ------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def stats(self) -> CacheStats:
        """A point-in-time copy of the cache counters."""
        with self._lock:
            return CacheStats(self._stats.hits, self._stats.misses,
                              self._stats.insertions, self._stats.evictions,
                              self._stats.invalidations)
