"""The concurrent query engine: thread pool + cache + deadlines + metrics.

:class:`QueryEngine` is the serving layer's front door.  It wraps either a
static :class:`~repro.core.DesksIndex` (behind a pool of
:class:`~repro.core.DesksSearcher`\\ s) or a
:class:`~repro.core.MutableDesksIndex` (which manages its own searcher and
mutation lock), and executes queries on a fixed-size thread pool:

* ``execute(query)`` — synchronous, runs on the calling thread;
* ``submit(query)`` — returns a :class:`concurrent.futures.Future`;
* ``submit_batch(queries)`` — one future per query, with duplicate
  queries (same canonical key) collapsed onto a single execution.

Every execution consults the :class:`~repro.service.cache.ResultCache`
first, keyed on the query's canonical form and the index *generation* (see
``cache.py`` for the staleness contract), runs under a
:class:`~repro.service.deadline.Deadline`, and records counters and
latency/page-I/O histograms into a
:class:`~repro.service.metrics.MetricsRegistry`.

Pure-Python searches hold the GIL, so the pool does not speed up a single
CPU-bound query stream; what it buys is (a) overlap of many *clients'*
think time (see ``workload.py``), (b) bounded concurrency as admission
control, and (c) the architecture seam where a C/GIL-releasing or
multi-process searcher drops in later.
"""

from __future__ import annotations

import queue
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple, Union

from ..analysis import make_lock, register_shared
from ..core import (
    DesksIndex,
    DesksSearcher,
    DirectionalQuery,
    MutableDesksIndex,
    PruningMode,
    QueryResult,
)
from ..kernel import ColumnarSearcher, ColumnarSnapshot
from ..storage import PageCorruptionError, SearchStats
from ..trace import TraceSink, Tracer, current_tracer, traced
from .cache import ResultCache
from .deadline import Deadline
from .metrics import MetricsRegistry, PAGES_BUCKETS


@dataclass(frozen=True)
class ServiceResponse:
    """One served query: the answer plus how it was produced."""

    query: DirectionalQuery
    result: QueryResult
    cached: bool
    generation: int
    latency_seconds: float
    stats: Optional[SearchStats] = None
    #: Storage-level damage pre-empted the search: ``result`` holds
    #: whatever the engine can still vouch for (currently nothing) and
    #: ``failure_cause`` says what was hit.  Degraded answers are never
    #: cached — the page may be repaired before the next request.
    degraded: bool = False
    failure_cause: Optional[str] = None

    @property
    def partial(self) -> bool:
        """True when a deadline truncated the search (never for hits)."""
        return self.result.partial


class QueryEngine:
    """Concurrent, cached, deadline-aware execution of DESKS queries."""

    def __init__(self, index: Union[DesksIndex, MutableDesksIndex],
                 num_workers: int = 4,
                 mode: PruningMode = PruningMode.RD,
                 cache: Optional[ResultCache] = None,
                 cache_capacity: int = 1024,
                 location_quantum: float = 0.0,
                 default_timeout: Optional[float] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 executor: Optional[ThreadPoolExecutor] = None,
                 tracing: bool = False,
                 kernel: str = "object",
                 snapshot: Optional[ColumnarSnapshot] = None) -> None:
        if num_workers <= 0:
            raise ValueError(f"num_workers must be positive: {num_workers}")
        if kernel not in ("object", "columnar"):
            raise ValueError(
                f"kernel must be 'object' or 'columnar': {kernel!r}")
        if kernel == "columnar" and isinstance(index, MutableDesksIndex):
            raise ValueError(
                "kernel='columnar' requires a static DesksIndex: the "
                "columnar snapshot is frozen at compile time and cannot "
                "follow mutations")
        if snapshot is not None and snapshot.index is not index:
            raise ValueError(
                "the supplied snapshot was compiled from a different index")
        self.index = index
        self.mode = mode
        self.kernel = kernel
        self.default_timeout = default_timeout
        self.cache = cache if cache is not None else ResultCache(
            cache_capacity, location_quantum)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # ``tracing=True`` traces every request the caller didn't already
        # trace and folds the span aggregates into ``metrics`` via a
        # TraceSink — stage-level dashboards without per-call plumbing.
        self._trace_sink = TraceSink(self.metrics) if tracing else None
        self.num_workers = num_workers
        self._mutable = isinstance(index, MutableDesksIndex)
        if self._mutable:
            # Eager purge on every insert/delete/rebuild.  Correctness does
            # not depend on this (lookups re-check the generation), it just
            # frees memory promptly and keeps the hit-rate metric honest.
            index.subscribe(
                lambda gen: self.cache.invalidate_older_than(gen))
            self._searchers = None
            self.snapshot: Optional[ColumnarSnapshot] = None
        else:
            # A searcher is cheap (two references), but pooling them keeps
            # per-worker state possible later (e.g. per-searcher buffers)
            # and bounds concurrent index scans to the pool size.  The
            # columnar kernel compiles ONE shared snapshot (the arrays are
            # read-only; callers may pass a pre-compiled one so e.g. all
            # replicas of a shard share it) and gives each worker its own
            # searcher so the per-searcher plan caches are uncontended.
            if kernel == "columnar":
                self.snapshot = (snapshot if snapshot is not None
                                 else ColumnarSnapshot(index))
            else:
                self.snapshot = None
            pool: "queue.Queue" = queue.Queue()
            for _ in range(num_workers):
                if self.snapshot is not None:
                    pool.put(ColumnarSearcher(self.snapshot))
                else:
                    pool.put(DesksSearcher(index))
            self._searchers = pool
        # An externally supplied executor lets many engines (e.g. the
        # cluster's per-shard replicas) share one thread pool instead of
        # spawning num_workers threads each; the engine then never shuts
        # it down — its lifecycle belongs to the caller.
        self._owns_executor = executor is None
        self._executor = executor if executor is not None else \
            ThreadPoolExecutor(max_workers=num_workers,
                               thread_name_prefix="desks-worker")
        # Serialises admission against close(): without it a submit that
        # passes the _closed check can race close() and die inside the
        # executor with a less actionable RuntimeError.
        self._lifecycle_lock = make_lock("service.engine")
        self._closed = False
        register_shared(self, "service.engine")

    # -- generation ---------------------------------------------------------

    @property
    def generation(self) -> int:
        """The index's current data generation (0 forever when static)."""
        if self._mutable:
            return self.index.generation
        return 0

    # -- execution ----------------------------------------------------------

    def execute(self, query: DirectionalQuery,
                timeout: Optional[float] = None) -> ServiceResponse:
        """Serve one query on the calling thread (cache, then search).

        With a :class:`~repro.trace.Tracer` active in the calling context
        (or the engine constructed with ``tracing=True``) the request
        records an ``engine.execute`` span — cache hit/miss, pages read,
        deadline slack — with the search's own span tree beneath it.
        """
        tracer = current_tracer()
        if tracer is None and self._trace_sink is not None:
            with Tracer(sink=self._trace_sink).activate():
                return self.execute(query, timeout)
        if tracer is None:
            return self._execute_impl(query, timeout, None)
        with tracer.span("engine.execute") as span:
            return self._execute_impl(query, timeout, span)

    def _execute_impl(self, query: DirectionalQuery,
                      timeout: Optional[float],
                      span) -> ServiceResponse:
        """The untraced serve body (``execute`` wraps it in a span)."""
        started = time.monotonic()
        generation = self.generation
        cached = self.cache.get(query, generation)
        if cached is not None:
            latency = time.monotonic() - started
            self._record(latency, cached=True, partial=False, pages=0)
            if span is not None:
                span.annotate(cache_hit=True, generation=generation,
                              results=len(cached))
            return ServiceResponse(query, cached, True, generation, latency)
        deadline = Deadline.from_timeout(
            timeout if timeout is not None else self.default_timeout)
        stats = SearchStats()
        io_before = self._io_snapshot()
        try:
            result = self._search(query, stats, deadline)
        except PageCorruptionError as exc:
            # Verification failed mid-search: refuse to guess.  The query
            # gets an explicitly degraded, partial, uncached answer — a
            # healthy replica (cluster layer) or a scrub+recover pass is
            # the remedy, not silence.
            latency = time.monotonic() - started
            self.metrics.counter("degraded_results_total").increment()
            self._record(latency, cached=False, partial=True, pages=0)
            if span is not None:
                span.annotate(cache_hit=False, degraded=True,
                              failure_cause=str(exc))
            return ServiceResponse(
                query, QueryResult([], partial=True), False, generation,
                latency, stats, degraded=True, failure_cause=str(exc))
        pages = self._io_snapshot() - io_before
        # The generation captured *before* the search makes late caching
        # safe: if an update landed mid-search, the stored tag is already
        # stale and the entry can never be served.
        self.cache.put(query, result, generation)
        latency = time.monotonic() - started
        self._record(latency, cached=False, partial=result.partial,
                     pages=pages)
        if span is not None:
            span.annotate(cache_hit=False, generation=generation,
                          results=len(result), partial=result.partial,
                          pages_read=pages)
            if not deadline.is_unbounded:
                span.annotate(
                    deadline_slack_seconds=deadline.remaining())
        return ServiceResponse(query, result, False, generation, latency,
                               stats)

    def submit(self, query: DirectionalQuery,
               timeout: Optional[float] = None,
               ) -> "Future[ServiceResponse]":
        """Queue one query on the worker pool; returns its future.

        With a tracer active at submit time the worker-side execution runs
        under the *submitter's* trace context: an ``engine.worker`` span
        (annotated with ``queue_wait_seconds`` — time spent in the pool's
        queue) parents the usual ``engine.execute`` span even though the
        work runs on another thread.
        """
        with self._lifecycle_lock:
            if self._closed:
                raise RuntimeError("engine is closed")
            call = traced("engine.worker", self.execute,
                          record_queue_wait=True)
            return self._executor.submit(call, query, timeout)

    def submit_batch(self, queries: Sequence[DirectionalQuery],
                     timeout: Optional[float] = None,
                     ) -> List["Future[ServiceResponse]"]:
        """Queue many queries; duplicates share a single execution.

        The returned list is index-aligned with ``queries``; entries whose
        canonical key repeats an earlier entry receive the *same* future
        object, so a batch of 100 copies of one query costs one search.

        On a columnar engine the unique queries are chunked into at most
        ``num_workers`` contiguous groups and each group runs as ONE pool
        task instead of one task per query: the batch pays executor
        hand-off once per chunk, and the pool's
        :class:`~repro.kernel.ColumnarSearcher`\\ s — all views over one
        shared snapshot — keep their term-plan caches warm across the
        whole batch.
        """
        futures: List["Future[ServiceResponse]"] = []
        first_seen: Dict[Hashable, "Future[ServiceResponse]"] = {}
        unique: List[Tuple[DirectionalQuery, "Future[ServiceResponse]"]] = []
        for query in queries:
            key = self.cache.key_for(query)
            future = first_seen.get(key)
            if future is None:
                if self.kernel == "columnar":
                    future = Future()
                    unique.append((query, future))
                else:
                    future = self.submit(query, timeout)
                first_seen[key] = future
                self.metrics.counter("batch_unique_total").increment()
            else:
                self.metrics.counter("batch_deduped_total").increment()
            futures.append(future)
        if unique:
            self._submit_chunks(unique, timeout)
        return futures

    def _submit_chunks(
            self,
            pairs: List[Tuple[DirectionalQuery, "Future[ServiceResponse]"]],
            timeout: Optional[float]) -> None:
        """Spread ``pairs`` over the pool as contiguous chunk tasks."""
        chunk_count = min(self.num_workers, len(pairs))
        size, extra = divmod(len(pairs), chunk_count)
        chunks = []
        start = 0
        for i in range(chunk_count):
            end = start + size + (1 if i < extra else 0)
            chunks.append(pairs[start:end])
            start = end
        with self._lifecycle_lock:
            if self._closed:
                raise RuntimeError("engine is closed")
            for chunk in chunks:
                self._executor.submit(self._run_batch_chunk, chunk, timeout)

    def _run_batch_chunk(
            self,
            chunk: List[Tuple[DirectionalQuery, "Future[ServiceResponse]"]],
            timeout: Optional[float]) -> None:
        """Serve one batch chunk sequentially, fulfilling each future."""
        for query, future in chunk:
            if not future.set_running_or_notify_cancel():
                continue
            try:
                future.set_result(self.execute(query, timeout))
            except BaseException as exc:  # desks: noqa-DAL011 - cause delivered via future.set_exception
                future.set_exception(exc)

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Stop accepting work; waits for in-flight queries (owned pool)."""
        with self._lifecycle_lock:
            self._closed = True
        # Shutdown happens outside the lock: with wait=True it blocks on
        # in-flight queries, and nothing they take may be held across that.
        if self._owns_executor:
            self._executor.shutdown(wait=True)

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- internals ----------------------------------------------------------

    def _search(self, query: DirectionalQuery, stats: SearchStats,
                deadline: Deadline) -> QueryResult:
        if self._mutable:
            return self.index.search(query, self.mode, stats,
                                     deadline=deadline)
        searcher = self._searchers.get()
        try:
            return searcher.search(query, self.mode, stats,
                                   deadline=deadline)
        finally:
            self._searchers.put(searcher)

    def _io_snapshot(self) -> int:
        """Logical page reads so far (approximate per-query attribution:
        concurrent queries' pages land in whichever delta is open)."""
        io_stats = getattr(self.index, "io_stats", None)
        return io_stats.logical_reads if io_stats is not None else 0

    def _record(self, latency: float, *, cached: bool, partial: bool,
                pages: int) -> None:
        metrics = self.metrics
        metrics.counter("queries_total").increment()
        metrics.counter("cache_hits_total" if cached
                        else "cache_misses_total").increment()
        if partial:
            metrics.counter("partial_results_total").increment()
        metrics.histogram("query_latency_seconds").observe(latency)
        if not cached:
            metrics.histogram("pages_per_query",
                              PAGES_BUCKETS).observe(float(pages))
