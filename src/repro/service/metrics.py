"""Thread-safe counters and histograms for the serving layer.

The registry is deliberately Prometheus-shaped without the dependency:
monotonic :class:`Counter`\\ s, log-bucketed :class:`Histogram`\\ s with
percentile estimation, and a plain-text :meth:`MetricsRegistry.render`
suitable for printing at the end of a benchmark run or scraping off a
future HTTP endpoint.

Percentiles are estimated from the bucket counts by linear interpolation
inside the winning bucket — the standard trade: O(num_buckets) memory
regardless of sample count, with error bounded by bucket width (~25 % per
step for the default latency buckets, tight enough to tell a p50 from a
tail).
"""

from __future__ import annotations

import bisect
import math
import time

from ..analysis import make_lock, register_shared
from typing import Dict, List, Optional, Sequence, Tuple

#: Default latency buckets (seconds): 50 µs .. ~30 s, ~4 steps per decade.
LATENCY_BUCKETS: Tuple[float, ...] = tuple(
    5e-05 * (10 ** 0.25) ** i for i in range(24))

#: Default buckets for page-I/O-per-query histograms.
PAGES_BUCKETS: Tuple[float, ...] = (
    0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0,
    1024.0, 4096.0)


class Counter:
    """A monotonically increasing, thread-safe counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = make_lock("service.metrics.counter")
        register_shared(self, "service.metrics.counter")

    def increment(self, by: int = 1) -> None:
        """Add ``by`` (non-negative) to the counter."""
        if by < 0:
            raise ValueError(f"counters only go up; got increment {by}")
        with self._lock:
            self._value += by

    @property
    def value(self) -> int:
        """Current count."""
        with self._lock:
            return self._value


class Gauge:
    """A thread-safe value that can go up and down (e.g. token levels)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = make_lock("service.metrics.gauge")
        register_shared(self, "service.metrics.gauge")

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        with self._lock:
            self._value = float(value)

    def add(self, by: float) -> None:
        """Adjust the gauge by ``by`` (may be negative)."""
        with self._lock:
            self._value += by

    @property
    def value(self) -> float:
        """Current value."""
        with self._lock:
            return self._value


class Histogram:
    """Bucketed distribution of observed values, thread-safe.

    ``buckets`` are the *upper* bounds of each bucket, sorted ascending;
    an implicit overflow bucket catches everything beyond the last bound.
    """

    def __init__(self, name: str,
                 buckets: Sequence[float] = LATENCY_BUCKETS) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(
                "histogram buckets must be sorted and non-empty")
        self.name = name
        self._bounds: List[float] = list(buckets)
        self._counts = [0] * (len(self._bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = make_lock("service.metrics.histogram")
        register_shared(self, "service.metrics.histogram")

    def observe(self, value: float) -> None:
        """Record one sample."""
        idx = bisect.bisect_left(self._bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    # -- aggregates ---------------------------------------------------------

    @property
    def count(self) -> int:
        """Number of samples observed."""
        with self._lock:
            return self._count

    @property
    def mean(self) -> float:
        """Arithmetic mean of the samples (0.0 when empty)."""
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def percentile(self, q: float) -> float:
        """Estimated ``q``-th percentile (``q`` in [0, 100]).

        Linear interpolation within the bucket containing the rank; exact
        at the recorded min/max for q=0/100 when they fall in terminal
        buckets.  Returns 0.0 for an empty histogram.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100]: {q}")
        with self._lock:
            if self._count == 0:
                return 0.0
            rank = q / 100.0 * self._count
            seen = 0
            for idx, bucket_count in enumerate(self._counts):
                if bucket_count == 0:
                    continue
                if seen + bucket_count >= rank:
                    lo = self._bounds[idx - 1] if idx > 0 else min(
                        self._min, self._bounds[0] if self._bounds else 0.0)
                    hi = (self._bounds[idx] if idx < len(self._bounds)
                          else self._max)
                    lo = max(lo, self._min)
                    hi = min(hi, self._max) if hi >= lo else lo
                    frac = (rank - seen) / bucket_count
                    return lo + (hi - lo) * min(max(frac, 0.0), 1.0)
                seen += bucket_count
            return self._max  # pragma: no cover - defensive

    def snapshot(self) -> Dict[str, float]:
        """count/mean/min/max/p50/p95/p99 as one dict (for reports)."""
        return {
            "count": float(self.count),
            "mean": self.mean,
            "min": 0.0 if self.count == 0 else self._min,
            "max": 0.0 if self.count == 0 else self._max,
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "p99": self.percentile(99.0),
        }


class MetricsRegistry:
    """Named counters and histograms behind one factory, render-ready."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = make_lock("service.metrics.registry")
        self._started = time.monotonic()
        register_shared(self, "service.metrics")

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created on first use."""
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter(name)
            return counter

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created on first use."""
        with self._lock:
            gauge = self._gauges.get(name)
            if gauge is None:
                gauge = self._gauges[name] = Gauge(name)
            return gauge

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        """The histogram called ``name``, created on first use."""
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram(
                    name, buckets if buckets is not None
                    else LATENCY_BUCKETS)
            return histogram

    @property
    def uptime_seconds(self) -> float:
        """Seconds since this registry was created."""
        return time.monotonic() - self._started

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot: every counter value and histogram summary.

        The machine-readable twin of :meth:`render`, consumed by the
        cluster stats aggregation and the CLI's ``--metrics-json``.
        Values are plain ints/floats so ``json.dump`` works directly.
        """
        with self._lock:
            counters = sorted(self._counters.values(), key=lambda c: c.name)
            gauges = sorted(self._gauges.values(), key=lambda g: g.name)
            histograms = sorted(self._histograms.values(),
                                key=lambda h: h.name)
        return {
            "uptime_seconds": self.uptime_seconds,
            "counters": {c.name: c.value for c in counters},
            "gauges": {g.name: g.value for g in gauges},
            "histograms": {h.name: h.snapshot() for h in histograms},
        }

    def render(self) -> str:
        """Plain-text dump: one line per counter, one block per histogram.

        Latency-style histograms (names ending in ``_seconds``) are shown
        in milliseconds for readability.
        """
        lines: List[str] = [f"# uptime {self.uptime_seconds:.1f}s"]
        with self._lock:
            counters = sorted(self._counters.values(), key=lambda c: c.name)
            gauges = sorted(self._gauges.values(), key=lambda g: g.name)
            histograms = sorted(self._histograms.values(),
                                key=lambda h: h.name)
        for counter in counters:
            lines.append(f"{counter.name} {counter.value}")
        for gauge in gauges:
            lines.append(f"{gauge.name} {gauge.value:.3f}")
        for histogram in histograms:
            snap = histogram.snapshot()
            unit, scale = ("ms", 1e3) if histogram.name.endswith(
                "_seconds") else ("", 1.0)
            lines.append(
                f"{histogram.name} count={int(snap['count'])} "
                f"mean={snap['mean'] * scale:.3f}{unit} "
                f"p50={snap['p50'] * scale:.3f}{unit} "
                f"p95={snap['p95'] * scale:.3f}{unit} "
                f"p99={snap['p99'] * scale:.3f}{unit} "
                f"max={snap['max'] * scale:.3f}{unit}")
        return "\n".join(lines)
