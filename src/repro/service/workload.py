"""Closed-loop load generation against a :class:`QueryEngine`.

N client threads each run the classic closed loop: issue a query, wait for
the answer, *think* for a configurable time, repeat.  Think time is what
makes a closed-loop benchmark scale with clients — while one client
thinks, the engine serves the others — and it mirrors real interactive
traffic (a map user pans, reads, then queries again).  With zero think
time and a pure-Python (GIL-bound) searcher, adding clients mostly adds
queueing; the serve-bench defaults therefore use a small think time so
client-count sweeps show the expected aggregate-QPS scaling.

The loop is deterministic given ``seed``: client ``i`` walks the query
list starting at offset ``i`` with stride ``num_clients``, so a repeated
(cache-warm) workload replays exactly.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core import DirectionalQuery
from .engine import QueryEngine


@dataclass
class WorkloadReport:
    """Aggregate outcome of one closed-loop run."""

    num_clients: int
    elapsed_seconds: float
    total_queries: int
    per_client_queries: List[int]
    cache_hits: int
    cache_lookups: int
    partial_results: int
    errors: int
    first_error: Optional[str] = None
    latency: Dict[str, float] = field(default_factory=dict)

    @property
    def qps(self) -> float:
        """Aggregate completed queries per wall-clock second."""
        return self.total_queries / max(self.elapsed_seconds, 1e-9)

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of cache lookups that hit."""
        return self.cache_hits / max(self.cache_lookups, 1)

    def summary(self) -> str:
        """One human-readable line, serve-bench's table row."""
        p95 = self.latency.get("p95", 0.0) * 1000.0
        return (f"clients={self.num_clients:<3} qps={self.qps:8.1f}  "
                f"hit_rate={self.cache_hit_rate:6.1%}  "
                f"p95={p95:7.2f}ms  partial={self.partial_results}  "
                f"errors={self.errors}")


def run_closed_loop(engine: QueryEngine,
                    queries: Sequence[DirectionalQuery],
                    num_clients: int,
                    requests_per_client: Optional[int] = None,
                    duration_seconds: Optional[float] = None,
                    think_time: float = 0.0,
                    timeout: Optional[float] = None,
                    batch_size: int = 1,
                    ) -> WorkloadReport:
    """Drive ``engine`` with ``num_clients`` synchronous client threads.

    Exactly one of ``requests_per_client`` (deterministic, test-friendly)
    or ``duration_seconds`` (wall-clock bound, bench-friendly) must be
    given.  Each client blocks on its own query's future — the closed
    loop — then sleeps ``think_time`` seconds before the next request.

    ``batch_size > 1`` models batching clients: each loop iteration
    gathers that many consecutive queries from the client's stride and
    issues them as ONE ``engine.submit_batch`` call, blocking until the
    whole batch answers (one think pause per batch).  On a columnar
    engine this is the path that amortises kernel plan construction.
    """
    if not queries:
        raise ValueError("the workload needs at least one query")
    if num_clients <= 0:
        raise ValueError(f"num_clients must be positive: {num_clients}")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1: {batch_size}")
    if (requests_per_client is None) == (duration_seconds is None):
        raise ValueError("give exactly one of requests_per_client or "
                         "duration_seconds")

    stop_at = (time.monotonic() + duration_seconds
               if duration_seconds is not None else None)
    counts = [0] * num_clients
    partials = [0] * num_clients
    errors: List[str] = []
    errors_lock = threading.Lock()
    start_barrier = threading.Barrier(num_clients + 1)

    def client(client_id: int) -> None:
        position = client_id
        issued = 0
        start_barrier.wait()
        while True:
            if requests_per_client is not None and \
                    issued >= requests_per_client:
                break
            if stop_at is not None and time.monotonic() >= stop_at:
                break
            take = batch_size
            if requests_per_client is not None:
                take = min(take, requests_per_client - issued)
            batch = []
            for _ in range(take):
                batch.append(queries[position % len(queries)])
                position += num_clients
            try:
                if take == 1:
                    responses = [engine.submit(batch[0], timeout).result()]
                else:
                    responses = [
                        future.result()
                        for future in engine.submit_batch(batch, timeout)]
            except Exception as exc:  # desks: noqa-DAL011 - cause reported through the errors list
                with errors_lock:
                    errors.append(f"{type(exc).__name__}: {exc}")
                break
            issued += len(responses)
            counts[client_id] = issued
            for response in responses:
                if response.partial:
                    partials[client_id] += 1
            if think_time > 0.0:
                time.sleep(think_time)

    threads = [threading.Thread(target=client, args=(i,),
                                name=f"client-{i}", daemon=True)
               for i in range(num_clients)]
    cache_before = engine.cache.stats
    for thread in threads:
        thread.start()
    start_barrier.wait()
    started = time.monotonic()
    for thread in threads:
        thread.join()
    elapsed = time.monotonic() - started
    cache_after = engine.cache.stats

    latency = engine.metrics.histogram("query_latency_seconds").snapshot()
    return WorkloadReport(
        num_clients=num_clients,
        elapsed_seconds=elapsed,
        total_queries=sum(counts),
        per_client_queries=list(counts),
        cache_hits=cache_after.hits - cache_before.hits,
        cache_lookups=cache_after.lookups - cache_before.lookups,
        partial_results=sum(partials),
        errors=len(errors),
        first_error=errors[0] if errors else None,
        latency=latency,
    )
