"""The serving layer: concurrent query execution over a DESKS index.

The paper evaluates one query at a time; this package is the reproduction's
first step toward the ROADMAP's production north star.  It adds, without
touching the algorithms' answers:

* :class:`QueryEngine` — a thread-pooled front door with ``submit`` /
  ``submit_batch`` (``engine.py``);
* :class:`ResultCache` — canonical-key LRU caching with generation-based
  invalidation against :class:`~repro.core.MutableDesksIndex`
  (``cache.py``);
* :class:`Deadline` — cooperative per-query budgets with graceful
  degradation to partial results (``deadline.py``);
* :class:`MetricsRegistry` — counters and latency/page-I/O histograms
  (``metrics.py``);
* :func:`run_closed_loop` — an N-client closed-loop load generator
  (``workload.py``), driving the ``serve-bench`` CLI command.

See ``docs/SERVICE.md`` for the architecture and the cache-invalidation
and deadline contracts.
"""

from .cache import CacheStats, ResultCache
from .deadline import Deadline
from .engine import QueryEngine, ServiceResponse
from .metrics import (
    LATENCY_BUCKETS,
    PAGES_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .workload import WorkloadReport, run_closed_loop

__all__ = [
    "CacheStats",
    "Counter",
    "Deadline",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "PAGES_BUCKETS",
    "QueryEngine",
    "ResultCache",
    "ServiceResponse",
    "WorkloadReport",
    "run_closed_loop",
]
