"""Query tracing — a structured ``EXPLAIN ANALYZE`` for DESKS searches.

Pass a :class:`QueryTrace` to :meth:`DesksSearcher.search` (``trace=``)
and it fills with the search's actual decisions: which basic sub-queries
the interval decomposed into, every band popped from the region queue with
its Eq. 4 priority, the per-band direction bounds and surviving candidate
sub-regions, and the POI counts fetched/verified.  ``render()`` prints the
whole story.

Tracing exists for humans (debugging an unexpected answer, teaching the
algorithm); it adds overhead, so benchmarks never pass one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class SubqueryTrace:
    """One basic sub-query produced by quadrant decomposition."""

    quadrant: int
    interval_lower: float
    interval_upper: float
    start_band: int
    candidate_subregions: int

    def render(self) -> str:
        return (f"  subquery quadrant={self.quadrant} canonical interval="
                f"[{self.interval_lower:.4f}, {self.interval_upper:.4f}] "
                f"start band={self.start_band} keyword sub-regions="
                f"{self.candidate_subregions}")


@dataclass
class BandTrace:
    """One band popped from Algorithm 2's region queue."""

    quadrant: int
    band_index: int
    priority: float
    action: str  # "scanned" | "terminated" | "exhausted-priority"
    tau_bounds: Optional[Tuple[float, float]] = None
    wedge_window: Optional[Tuple[int, int]] = None
    subregions_kept: int = 0
    subregions_mindist_pruned: int = 0
    pois_fetched: int = 0
    pois_verified: int = 0

    def render(self) -> str:
        parts = [f"  band q{self.quadrant}/R{self.band_index} "
                 f"priority={self.priority:.4f} -> {self.action}"]
        if self.action == "scanned":
            if self.tau_bounds is not None:
                parts.append(
                    f"tau=[{self.tau_bounds[0]:.4f}, "
                    f"{self.tau_bounds[1]:.4f}]")
            if self.wedge_window is not None:
                parts.append(
                    f"wedges[{self.wedge_window[0]}:{self.wedge_window[1]}]")
            parts.append(f"kept={self.subregions_kept}")
            if self.subregions_mindist_pruned:
                parts.append(
                    f"mindist-pruned={self.subregions_mindist_pruned}")
            parts.append(f"pois={self.pois_fetched}")
            parts.append(f"verified={self.pois_verified}")
        return " ".join(parts)


@dataclass
class QueryTrace:
    """Full account of one search; fill via ``searcher.search(trace=...)``."""

    subqueries: List[SubqueryTrace] = field(default_factory=list)
    bands: List[BandTrace] = field(default_factory=list)
    terminated_early: bool = False
    num_results: int = 0

    # -- recording hooks (called by DesksSearcher) ---------------------------

    def record_subquery(self, quadrant: int, lower: float, upper: float,
                        start_band: int, candidates: int) -> None:
        self.subqueries.append(SubqueryTrace(
            quadrant, lower, upper, start_band, candidates))

    def begin_band(self, quadrant: int, band_index: int,
                   priority: float) -> BandTrace:
        band = BandTrace(quadrant, band_index, priority, "scanned")
        self.bands.append(band)
        return band

    def record_termination(self, quadrant: int, band_index: int,
                           priority: float) -> None:
        self.bands.append(BandTrace(quadrant, band_index, priority,
                                    "terminated"))
        self.terminated_early = True

    # -- reporting -------------------------------------------------------------

    @property
    def bands_scanned(self) -> int:
        return sum(1 for b in self.bands if b.action == "scanned")

    @property
    def total_pois_fetched(self) -> int:
        return sum(b.pois_fetched for b in self.bands)

    def render(self) -> str:
        """Human-readable, ``EXPLAIN ANALYZE``-style report."""
        lines = [f"query trace: {len(self.subqueries)} basic sub-quer"
                 f"{'y' if len(self.subqueries) == 1 else 'ies'}, "
                 f"{self.bands_scanned} band(s) scanned, "
                 f"{self.total_pois_fetched} POIs fetched, "
                 f"{self.num_results} answer(s)"
                 + (", early termination" if self.terminated_early else "")]
        for sub in self.subqueries:
            lines.append(sub.render())
        for band in self.bands:
            lines.append(band.render())
        return "\n".join(lines)
