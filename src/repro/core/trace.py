"""Query tracing — a structured ``EXPLAIN ANALYZE`` for DESKS searches.

Pass a :class:`QueryTrace` to :meth:`DesksSearcher.search` (``trace=``)
and it fills with the search's actual decisions: which basic sub-queries
the interval decomposed into, every band popped from the region queue with
its Eq. 4 priority, the per-band direction bounds and surviving candidate
sub-regions, the POI counts fetched/verified, and — per band — wall time
and logical page reads attributed from :class:`~repro.storage.IOStats`
deltas.  ``render()`` prints the whole story.

The cost decomposition mirrors the paper's pruning structure:

* ``start_band`` on a sub-query counts the bands Lemma 1 skipped outright;
* ``subregions_window_pruned`` counts sub-regions discarded by the
  Lemma 3 wedge window (from the Lemma 2/4 tau bounds, Eqs. 5-6);
* ``subregions_mindist_pruned`` counts sub-regions whose Table I MINDIST
  could not beat the current ``d_k``;
* an ``action="terminated"`` band marks Lemma 1's early termination.

Tracing exists for humans (debugging an unexpected answer, teaching the
algorithm) and for the span tracer in :mod:`repro.trace`, which converts a
filled ``QueryTrace`` into its span tree; it adds overhead, so benchmarks
never pass one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class WedgeTrace:
    """One sub-region (wedge) actually scanned inside a band."""

    gid: int
    mindist: float
    seconds: float = 0.0
    pois_fetched: int = 0
    pois_verified: int = 0
    pages_read: int = 0

    def render(self) -> str:
        """One line: wedge id, MINDIST, POI and page counts."""
        return (f"    wedge gid={self.gid} mindist={self.mindist:.4f} "
                f"pois={self.pois_fetched} verified={self.pois_verified}"
                + (f" pages={self.pages_read}" if self.pages_read else ""))


@dataclass
class SubqueryTrace:
    """One basic sub-query produced by quadrant decomposition."""

    quadrant: int
    interval_lower: float
    interval_upper: float
    #: First band the scan considered — bands ``0..start_band-1`` were
    #: skipped by Lemma 1 (region pruning); 0 when region pruning is off.
    start_band: int
    candidate_subregions: int

    def render(self) -> str:
        """One line: quadrant, canonical interval, Lemma 1 skip, candidates."""
        return (f"  subquery quadrant={self.quadrant} canonical interval="
                f"[{self.interval_lower:.4f}, {self.interval_upper:.4f}] "
                f"start band={self.start_band} keyword sub-regions="
                f"{self.candidate_subregions}")


@dataclass
class BandTrace:
    """One band popped from Algorithm 2's region queue."""

    quadrant: int
    band_index: int
    priority: float
    action: str  # "scanned" | "terminated" | "exhausted-priority"
    tau_bounds: Optional[Tuple[float, float]] = None
    wedge_window: Optional[Tuple[int, int]] = None
    subregions_kept: int = 0
    subregions_mindist_pruned: int = 0
    #: Keyword-bearing sub-regions in this band that the Lemma 3 wedge
    #: window (tau bounds, Lemmas 2/4) excluded before any MINDIST work.
    subregions_window_pruned: int = 0
    #: ``subregion_mindist`` (Table I) evaluations this band required.
    mindist_evaluations: int = 0
    pois_fetched: int = 0
    pois_verified: int = 0
    #: Logical page reads attributed to this band's scan (IOStats delta).
    pages_read: int = 0
    #: Wall-clock seconds spent scanning this band.
    seconds: float = 0.0
    #: Per-wedge detail of every sub-region actually scanned.
    wedges: List[WedgeTrace] = field(default_factory=list)

    @property
    def subregions_examined(self) -> int:
        """Sub-regions surviving the wedge window (kept + MINDIST-pruned)."""
        return self.subregions_kept + self.subregions_mindist_pruned

    def render(self) -> str:
        """One line per band (plus wedge lines when detail was recorded)."""
        parts = [f"  band q{self.quadrant}/R{self.band_index} "
                 f"priority={self.priority:.4f} -> {self.action}"]
        if self.action == "scanned":
            if self.tau_bounds is not None:
                parts.append(
                    f"tau=[{self.tau_bounds[0]:.4f}, "
                    f"{self.tau_bounds[1]:.4f}]")
            if self.wedge_window is not None:
                parts.append(
                    f"wedges[{self.wedge_window[0]}:{self.wedge_window[1]}]")
            parts.append(f"kept={self.subregions_kept}")
            if self.subregions_window_pruned:
                parts.append(
                    f"window-pruned={self.subregions_window_pruned}")
            if self.subregions_mindist_pruned:
                parts.append(
                    f"mindist-pruned={self.subregions_mindist_pruned}")
            parts.append(f"pois={self.pois_fetched}")
            parts.append(f"verified={self.pois_verified}")
            if self.pages_read:
                parts.append(f"pages={self.pages_read}")
        lines = [" ".join(parts)]
        lines.extend(wedge.render() for wedge in self.wedges)
        return "\n".join(lines)


@dataclass
class QueryTrace:
    """Full account of one search; fill via ``searcher.search(trace=...)``."""

    subqueries: List[SubqueryTrace] = field(default_factory=list)
    bands: List[BandTrace] = field(default_factory=list)
    terminated_early: bool = False
    num_results: int = 0
    #: Wall-clock seconds spent preparing sub-queries (keyword lookups,
    #: candidate sub-region intersection — the paper's ``L^R_K`` step).
    prepare_seconds: float = 0.0
    #: Logical page reads during preparation (region-list records).
    prepare_pages: int = 0

    # -- recording hooks (called by DesksSearcher) ---------------------------

    def record_subquery(self, quadrant: int, lower: float, upper: float,
                        start_band: int, candidates: int) -> None:
        """Record one basic sub-query the interval decomposed into."""
        self.subqueries.append(SubqueryTrace(
            quadrant, lower, upper, start_band, candidates))

    def begin_band(self, quadrant: int, band_index: int,
                   priority: float) -> BandTrace:
        """Open the trace entry for a band about to be scanned."""
        band = BandTrace(quadrant, band_index, priority, "scanned")
        self.bands.append(band)
        return band

    def record_termination(self, quadrant: int, band_index: int,
                           priority: float) -> None:
        """Record Lemma 1's early termination at this band."""
        self.bands.append(BandTrace(quadrant, band_index, priority,
                                    "terminated"))
        self.terminated_early = True

    # -- reporting -------------------------------------------------------------

    @property
    def bands_scanned(self) -> int:
        """Bands actually popped and scanned (not terminated entries)."""
        return sum(1 for b in self.bands if b.action == "scanned")

    @property
    def total_pois_fetched(self) -> int:
        """POIs fetched from keyword lists across all bands."""
        return sum(b.pois_fetched for b in self.bands)

    @property
    def total_pois_verified(self) -> int:
        """POIs passing the exact direction + keyword verification."""
        return sum(b.pois_verified for b in self.bands)

    @property
    def total_subregions_examined(self) -> int:
        """Sub-regions surviving the wedge window across all bands."""
        return sum(b.subregions_examined for b in self.bands)

    @property
    def total_subregions_window_pruned(self) -> int:
        """Sub-regions pruned by the Lemma 3 wedge window (Lemmas 2-4)."""
        return sum(b.subregions_window_pruned for b in self.bands)

    @property
    def total_subregions_mindist_pruned(self) -> int:
        """Sub-regions pruned by their Table I MINDIST vs ``d_k``."""
        return sum(b.subregions_mindist_pruned for b in self.bands)

    @property
    def total_mindist_evaluations(self) -> int:
        """Table I MINDIST evaluations across all bands."""
        return sum(b.mindist_evaluations for b in self.bands)

    @property
    def total_pages_read(self) -> int:
        """Logical page reads: preparation plus every band scan."""
        return self.prepare_pages + sum(b.pages_read for b in self.bands)

    @property
    def bands_skipped_lemma1(self) -> int:
        """Bands Lemma 1 skipped outright (sum of sub-query start bands)."""
        return sum(s.start_band for s in self.subqueries)

    def render(self) -> str:
        """Human-readable, ``EXPLAIN ANALYZE``-style report."""
        lines = [f"query trace: {len(self.subqueries)} basic sub-quer"
                 f"{'y' if len(self.subqueries) == 1 else 'ies'}, "
                 f"{self.bands_scanned} band(s) scanned, "
                 f"{self.total_pois_fetched} POIs fetched, "
                 f"{self.num_results} answer(s)"
                 + (", early termination" if self.terminated_early else "")]
        for sub in self.subqueries:
            lines.append(sub.render())
        for band in self.bands:
            lines.append(band.render())
        return "\n".join(lines)
