"""Saving and loading a built DESKS index — crash-safely.

Building the index costs four global sorts over the whole collection;
loading a saved one costs only linear passes.  An index directory is
self-contained:

    <dir>/meta.json        version, N, M, anchors, POI count
    <dir>/pois.csv         the collection (library CSV format)
    <dir>/anchor<i>.bin    one region-skeleton blob per anchor
    <dir>/checksums.json   CRC32C + length per file (scrub manifest)

Keyword stores are *not* serialized: their layout is derived from
``poi_order`` by a linear pass at load time (`build_term_layout` works on
already-ordered positions), which measures faster than parsing an
equivalent amount of posting bytes in Python and keeps the format simple.

A *sharded deployment* (``repro.cluster``) is saved as one such index
directory per shard plus a cluster-level manifest:

    <dir>/meta.json        cluster version, shard count, caller metadata
    <dir>/shard<i>/        one saved index per shard (format above)

**Durability.**  Both save paths are atomic at the directory level: files
are written (and fsynced) into a temporary sibling, which is renamed over
the target only once complete — a crash mid-save leaves either the old
save or the new one, never a half-written mix.  Replacing an existing
save takes two renames (target away, staging in); a crash in the window
between them leaves only the ``.displaced``/``.saving`` siblings, which
:func:`repair_interrupted_swap` — run automatically by the load paths and
by the next save — rolls forward (the staging dir is complete by then) or
back.  The parent directory is fsynced after every rename so the swap
also survives power loss, not just process death.  Every data file's CRC32C
lands in ``checksums.json`` so :func:`scrub_saved` can verify a deployment
end to end, and loads raise typed errors — :class:`PersistenceError` /
:class:`MissingPersistenceFile` — instead of bare ``KeyError`` or
``FileNotFoundError`` when handed a damaged directory.
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..datasets import load_csv, save_csv
from ..geometry import Anchor, CanonicalFrame
from ..storage import crc32c
from .index import AnchorIndex, DesksIndex
from .regions import AnchorRegions
from .stores import MemoryKeywordStore

FORMAT_VERSION = 1
CLUSTER_FORMAT_VERSION = 1
CHECKSUMS_FILE = "checksums.json"


class PersistenceError(ValueError):
    """A saved index/deployment is structurally invalid or corrupt."""


class MissingPersistenceFile(PersistenceError, FileNotFoundError):
    """A file the save format promises is absent.

    Subclasses both :class:`PersistenceError` (it is a persistence
    problem) and :class:`FileNotFoundError` (so pre-existing callers that
    caught the untyped error keep working).
    """


# -- saving ---------------------------------------------------------------


def save_index(index: DesksIndex, directory: str,
               extra_files: Optional[dict] = None,
               failpoint: Optional[Callable[[str], None]] = None) -> None:
    """Persist ``index`` (memory-store variant) into ``directory``.

    Atomic: the files are staged in a temporary sibling directory and
    renamed into place, so ``directory`` never holds a partial save.
    ``extra_files`` (name -> bytes) ride along inside the same atomic
    swap and checksum manifest — the durability layer stores its WAL
    op-sequence marker this way so snapshot and marker can never diverge.
    ``failpoint`` (stages ``swap.staged``, ``swap.displaced``,
    ``swap.complete``) lets crash tests kill the process inside the swap
    itself.

    Disk-backed indexes already live in page files tied to their configured
    paths; persisting those means copying the page files, which is the
    caller's business — this helper refuses them to avoid a silent
    half-save.
    """
    _refuse_disk_based(index)
    _atomic_directory_swap(
        directory,
        lambda staging: _write_index_files(index, staging, extra_files),
        failpoint=failpoint)


def save_sharded(indexes: Sequence[DesksIndex], directory: str,
                 meta: Optional[dict] = None) -> None:
    """Persist a sharded deployment: one index per ``<dir>/shard<i>/``.

    ``meta`` is caller-owned, JSON-serializable metadata (the cluster
    layer stores its partitioner name and local-to-global id maps here)
    returned verbatim by :func:`load_sharded`.  All shards are checked
    *before* any file is written, and the whole deployment is staged then
    renamed into place in one step, so a half-written deployment cannot
    appear at ``directory`` — not even on a crash mid-save.
    """
    if not indexes:
        raise ValueError("a sharded deployment needs at least one shard")
    for position, index in enumerate(indexes):
        if index.disk_based:
            raise ValueError(
                f"shard {position} is disk-based; save_sharded() supports "
                "memory-store shards only (disk-based indexes already "
                "persist through their page files)")
    manifest = {
        "version": CLUSTER_FORMAT_VERSION,
        "num_shards": len(indexes),
        "meta": meta if meta is not None else {},
    }

    def write(staging: str) -> None:
        for position, index in enumerate(indexes):
            shard_dir = os.path.join(staging, f"shard{position}")
            os.makedirs(shard_dir)
            _write_index_files(index, shard_dir)
        _write_file(os.path.join(staging, "meta.json"),
                    _json_bytes(manifest))

    _atomic_directory_swap(directory, write)


def _refuse_disk_based(index: DesksIndex) -> None:
    if index.disk_based:
        raise ValueError(
            "save_index() supports memory-store indexes; a disk-based "
            "index already persists through its page files")


def _write_index_files(index: DesksIndex, directory: str,
                       extra_files: Optional[dict] = None) -> None:
    """Write one index's files plus its checksum manifest into
    ``directory`` (which must already exist)."""
    meta = {
        "version": FORMAT_VERSION,
        "num_bands": index.num_bands,
        "num_wedges": index.num_wedges,
        "num_pois": len(index.collection),
        "anchors": index.built_anchors(),
    }
    names = ["meta.json", "pois.csv"]
    _write_file(os.path.join(directory, "meta.json"), _json_bytes(meta))
    save_csv(index.collection, os.path.join(directory, "pois.csv"))
    for quadrant in index.built_anchors():
        name = f"anchor{quadrant}.bin"
        _write_file(os.path.join(directory, name),
                    index.anchors[quadrant].regions.to_blob())
        names.append(name)
    for name, blob in sorted((extra_files or {}).items()):
        _write_file(os.path.join(directory, name), blob)
        names.append(name)
    manifest = {"version": 1, "files": {}}
    for name in names:
        blob = _read_file(os.path.join(directory, name))
        manifest["files"][name] = {"crc32c": crc32c(blob),
                                   "bytes": len(blob)}
    _write_file(os.path.join(directory, CHECKSUMS_FILE),
                _json_bytes(manifest))


def repair_interrupted_swap(directory: str) -> bool:
    """Finish a directory swap a crash interrupted; returns True if it did.

    Replacing an existing save renames the target to ``.displaced`` before
    renaming ``.saving`` into place; a crash between those two renames
    leaves no ``directory`` at all — only the siblings.  The staging dir
    is complete by then (it is only ever renamed after every file in it
    was written and fsynced), so roll *forward* to it; a lone
    ``.displaced`` (which the swap's ordering cannot actually produce)
    rolls back to the old save rather than losing everything.  A lone
    partial ``.saving`` is never adopted — that is a crash mid-write, and
    the old state is whatever ``directory`` already holds.

    The load paths and the next save both call this, so an interrupted
    swap heals on first contact instead of wedging the directory.
    """
    directory = directory.rstrip("/") or directory
    if os.path.isdir(directory):
        return False  # target intact; any siblings are stale leftovers
    staging = directory + ".saving"
    displaced = directory + ".displaced"
    if os.path.isdir(displaced):
        if os.path.isdir(staging):
            os.rename(staging, directory)  # complete new save: roll forward
            shutil.rmtree(displaced)
        else:
            os.rename(displaced, directory)  # roll back to the old save
        _fsync_dir(os.path.dirname(os.path.abspath(directory)))
        return True
    return False


def _atomic_directory_swap(directory: str, write,
                           failpoint: Optional[Callable[[str], None]] = None
                           ) -> None:
    """Run ``write(staging_dir)`` then rename the staging dir over
    ``directory``; the target is at all times either absent, the old
    save, the completed new one, or an interrupted swap that
    :func:`repair_interrupted_swap` rolls forward."""
    directory = directory.rstrip("/") or directory
    parent = os.path.dirname(os.path.abspath(directory))
    os.makedirs(parent, exist_ok=True)
    repair_interrupted_swap(directory)
    staging = directory + ".saving"
    displaced = directory + ".displaced"
    for leftover in (staging, displaced):
        if os.path.isdir(leftover):  # a previous save crashed mid-swap
            shutil.rmtree(leftover)
    os.makedirs(staging)
    try:
        write(staging)
    except BaseException:
        shutil.rmtree(staging, ignore_errors=True)
        raise
    if failpoint is not None:
        failpoint("swap.staged")
    if os.path.exists(directory):
        os.rename(directory, displaced)
        if failpoint is not None:
            failpoint("swap.displaced")
        os.rename(staging, directory)
        _fsync_dir(parent)
        if failpoint is not None:
            failpoint("swap.complete")
        shutil.rmtree(displaced)
    else:
        os.rename(staging, directory)
        _fsync_dir(parent)


def _fsync_dir(path: str) -> None:
    """Make renames/unlinks under ``path`` durable (no-op where
    directories cannot be opened, e.g. Windows)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _write_file(path: str, blob: bytes) -> None:
    with open(path, "wb") as handle:
        handle.write(blob)
        handle.flush()
        os.fsync(handle.fileno())


def _read_file(path: str) -> bytes:
    with open(path, "rb") as handle:
        return handle.read()


def _json_bytes(payload: dict) -> bytes:
    return json.dumps(payload, indent=2).encode("utf-8")


# -- loading --------------------------------------------------------------


def load_index(directory: str, verify: bool = False) -> DesksIndex:
    """Load an index saved by :func:`save_index`.

    With ``verify=True`` every file is first checked against the save's
    checksum manifest, turning silent bit rot into a typed
    :class:`PersistenceError` before any bytes are parsed.  A swap a
    crash interrupted mid-rename is repaired first
    (:func:`repair_interrupted_swap`), so recovery works even when the
    crash landed between the swap's two renames.
    """
    repair_interrupted_swap(directory)
    if verify:
        _require_clean(scrub_saved(directory))
    meta = _load_json(os.path.join(directory, "meta.json"),
                      f"{directory} is not a saved DESKS index")
    version = meta.get("version")
    if version != FORMAT_VERSION:
        raise PersistenceError(
            f"saved index has format version {version!r}; this library "
            f"reads version {FORMAT_VERSION}")
    for key in ("num_bands", "num_wedges", "num_pois", "anchors"):
        if key not in meta:
            raise PersistenceError(
                f"meta.json in {directory} lacks required key {key!r}")
    pois_path = os.path.join(directory, "pois.csv")
    if not os.path.exists(pois_path):
        raise MissingPersistenceFile(
            f"{directory} lacks pois.csv (half-written save?)")
    collection = load_csv(pois_path)
    if len(collection) != meta["num_pois"]:
        raise PersistenceError(
            f"meta.json promises {meta['num_pois']} POIs but pois.csv "
            f"holds {len(collection)}")

    index = _skeleton_index(meta, collection)
    term_ids = [collection.term_ids(i) for i in range(len(collection))]
    for quadrant in meta["anchors"]:
        path = os.path.join(directory, f"anchor{quadrant}.bin")
        try:
            blob = _read_file(path)
        except FileNotFoundError:
            raise MissingPersistenceFile(
                f"{directory} lacks anchor{quadrant}.bin promised by "
                "meta.json") from None
        frame = CanonicalFrame(Anchor(quadrant), collection.mbr)
        regions = AnchorRegions.from_blob(
            frame, [p.location for p in collection], blob)
        store = MemoryKeywordStore(regions, term_ids)
        index.anchors[quadrant] = AnchorIndex(frame, regions, store)
    return index


def load_sharded(directory: str,
                 verify: bool = False) -> Tuple[List[DesksIndex], dict]:
    """Load a deployment saved by :func:`save_sharded`.

    Returns ``(indexes, meta)`` — the per-shard indexes in shard order and
    the caller metadata stored at save time.  The manifest is validated
    against the actual directory contents (shard count, directories
    present) before any shard is parsed, so a half-written deployment
    surfaces as a typed :class:`PersistenceError` rather than a bare
    ``KeyError`` deep inside a shard load.
    """
    repair_interrupted_swap(directory)
    manifest = _load_json(
        os.path.join(directory, "meta.json"),
        f"{directory} is not a saved sharded deployment")
    version = manifest.get("version")
    if version != CLUSTER_FORMAT_VERSION:
        raise PersistenceError(
            f"saved deployment has cluster format version {version!r}; "
            f"this library reads version {CLUSTER_FORMAT_VERSION}")
    num_shards = manifest.get("num_shards")
    if not isinstance(num_shards, int) or num_shards < 1:
        raise PersistenceError(
            f"manifest in {directory} has invalid num_shards "
            f"{num_shards!r}")
    shard_dirs = [os.path.join(directory, f"shard{position}")
                  for position in range(num_shards)]
    missing = [d for d in shard_dirs if not os.path.isdir(d)]
    if missing:
        raise MissingPersistenceFile(
            f"manifest promises {num_shards} shard(s) but "
            f"{os.path.basename(missing[0])} is absent from {directory} "
            "(half-written deployment?)")
    present = sorted(
        name for name in os.listdir(directory)
        if name.startswith("shard")
        and os.path.isdir(os.path.join(directory, name)))
    if len(present) != num_shards:
        raise PersistenceError(
            f"manifest promises {num_shards} shard(s) but {directory} "
            f"holds {len(present)}: {present}")
    meta = manifest.get("meta", {})
    id_lists = meta.get("shard_global_ids") if isinstance(meta, dict) \
        else None
    if id_lists is not None and len(id_lists) != num_shards:
        raise PersistenceError(
            f"manifest lists global ids for {len(id_lists)} shard(s) "
            f"but promises {num_shards}")
    indexes = [load_index(shard_dir, verify=verify)
               for shard_dir in shard_dirs]
    return indexes, meta


def _load_json(path: str, what: str) -> dict:
    try:
        blob = _read_file(path)
    except FileNotFoundError:
        raise MissingPersistenceFile(f"{what} (no meta.json)") from None
    try:
        parsed = json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise PersistenceError(
            f"{what} ({os.path.basename(path)} is not valid JSON: {exc})"
        ) from None
    if not isinstance(parsed, dict):
        raise PersistenceError(
            f"{what} ({os.path.basename(path)} holds {type(parsed).__name__},"
            " not an object)")
    return parsed


# -- scrubbing ------------------------------------------------------------


@dataclass
class SavedScrubReport:
    """Outcome of verifying a saved index/deployment against its
    checksum manifests."""

    files_checked: int = 0
    #: ``(path, reason)`` for every file that failed verification.
    corrupt: List[Tuple[str, str]] = field(default_factory=list)
    #: Directories that predate checksum manifests (unverifiable).
    unverified_dirs: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.corrupt

    def merge(self, other: "SavedScrubReport") -> None:
        self.files_checked += other.files_checked
        self.corrupt.extend(other.corrupt)
        self.unverified_dirs.extend(other.unverified_dirs)

    def summary(self) -> str:
        state = ("clean" if self.clean
                 else f"{len(self.corrupt)} corrupt file(s)")
        extra = (f", {len(self.unverified_dirs)} dir(s) without manifests"
                 if self.unverified_dirs else "")
        return f"verified {self.files_checked} file(s): {state}{extra}"


def scrub_saved(directory: str) -> SavedScrubReport:
    """Verify every file of a saved index *or* sharded deployment.

    Never raises on corruption — the report lists what failed and why, so
    operators (and the CLI ``scrub`` command) can act on the whole picture
    instead of the first bad byte.
    """
    if not os.path.isdir(directory):
        raise MissingPersistenceFile(f"{directory} does not exist")
    manifest_path = os.path.join(directory, "meta.json")
    num_shards = None
    if os.path.exists(manifest_path):
        try:
            parsed = _load_json(manifest_path, directory)
        except PersistenceError:
            parsed = {}
        raw = parsed.get("num_shards")
        num_shards = raw if isinstance(raw, int) else None
    if num_shards is not None:
        report = SavedScrubReport()
        for position in range(num_shards):
            shard_dir = os.path.join(directory, f"shard{position}")
            if not os.path.isdir(shard_dir):
                report.corrupt.append(
                    (shard_dir, "shard directory promised by manifest "
                     "is absent"))
                continue
            report.merge(_scrub_index_dir(shard_dir))
        return report
    return _scrub_index_dir(directory)


def _scrub_index_dir(directory: str) -> SavedScrubReport:
    report = SavedScrubReport()
    manifest_path = os.path.join(directory, CHECKSUMS_FILE)
    if not os.path.exists(manifest_path):
        report.unverified_dirs.append(directory)
        return report
    try:
        manifest = _load_json(manifest_path, directory)
        files = manifest["files"]
    except (PersistenceError, KeyError):
        report.corrupt.append((manifest_path, "unreadable checksum "
                               "manifest"))
        return report
    for name, expected in sorted(files.items()):
        path = os.path.join(directory, name)
        report.files_checked += 1
        if not os.path.exists(path):
            report.corrupt.append((path, "missing"))
            continue
        blob = _read_file(path)
        if len(blob) != expected.get("bytes"):
            report.corrupt.append(
                (path, f"length {len(blob)} != recorded "
                 f"{expected.get('bytes')}"))
        elif crc32c(blob) != expected.get("crc32c"):
            report.corrupt.append((path, "checksum mismatch"))
    return report


def _require_clean(report: SavedScrubReport) -> None:
    if not report.clean:
        path, reason = report.corrupt[0]
        raise PersistenceError(
            f"saved files failed verification ({len(report.corrupt)} "
            f"problem(s); first: {path}: {reason})")


def _skeleton_index(meta: dict, collection) -> DesksIndex:
    """A DesksIndex shell with no anchors built (they are loaded)."""
    index = DesksIndex.__new__(DesksIndex)
    index.collection = collection
    index.num_bands = meta["num_bands"]
    index.num_wedges = meta["num_wedges"]
    index.disk_based = False
    index.build_seconds = 0.0
    index.anchors = [None] * 4
    from ..storage import IOStats

    index.io_stats = IOStats()
    return index
