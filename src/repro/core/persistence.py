"""Saving and loading a built DESKS index.

Building the index costs four global sorts over the whole collection;
loading a saved one costs only linear passes.  An index directory is
self-contained:

    <dir>/meta.json        version, N, M, anchors, POI count
    <dir>/pois.csv         the collection (library CSV format)
    <dir>/anchor<i>.bin    one region-skeleton blob per anchor

Keyword stores are *not* serialized: their layout is derived from
``poi_order`` by a linear pass at load time (`build_term_layout` works on
already-ordered positions), which measures faster than parsing an
equivalent amount of posting bytes in Python and keeps the format simple.

A *sharded deployment* (``repro.cluster``) is saved as one such index
directory per shard plus a cluster-level manifest:

    <dir>/meta.json        cluster version, shard count, caller metadata
    <dir>/shard<i>/        one saved index per shard (format above)
"""

from __future__ import annotations

import json
import os
from typing import List, Optional, Sequence, Tuple

from ..datasets import load_csv, save_csv
from ..geometry import Anchor, CanonicalFrame
from .index import AnchorIndex, DesksIndex
from .regions import AnchorRegions
from .stores import MemoryKeywordStore

FORMAT_VERSION = 1
CLUSTER_FORMAT_VERSION = 1


def save_index(index: DesksIndex, directory: str) -> None:
    """Persist ``index`` (memory-store variant) into ``directory``.

    Disk-backed indexes already live in page files tied to their configured
    paths; persisting those means copying the page files, which is the
    caller's business — this helper refuses them to avoid a silent
    half-save.
    """
    if index.disk_based:
        raise ValueError(
            "save_index() supports memory-store indexes; a disk-based "
            "index already persists through its page files")
    os.makedirs(directory, exist_ok=True)
    meta = {
        "version": FORMAT_VERSION,
        "num_bands": index.num_bands,
        "num_wedges": index.num_wedges,
        "num_pois": len(index.collection),
        "anchors": index.built_anchors(),
    }
    with open(os.path.join(directory, "meta.json"), "w",
              encoding="utf-8") as handle:
        json.dump(meta, handle, indent=2)
    save_csv(index.collection, os.path.join(directory, "pois.csv"))
    for quadrant in index.built_anchors():
        blob = index.anchors[quadrant].regions.to_blob()
        with open(os.path.join(directory, f"anchor{quadrant}.bin"),
                  "wb") as handle:
            handle.write(blob)


def load_index(directory: str) -> DesksIndex:
    """Load an index saved by :func:`save_index`."""
    meta_path = os.path.join(directory, "meta.json")
    try:
        with open(meta_path, encoding="utf-8") as handle:
            meta = json.load(handle)
    except FileNotFoundError:
        raise FileNotFoundError(
            f"{directory} is not a saved DESKS index (no meta.json)"
        ) from None
    version = meta.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"saved index has format version {version!r}; this library "
            f"reads version {FORMAT_VERSION}")
    collection = load_csv(os.path.join(directory, "pois.csv"))
    if len(collection) != meta["num_pois"]:
        raise ValueError(
            f"meta.json promises {meta['num_pois']} POIs but pois.csv "
            f"holds {len(collection)}")

    index = _skeleton_index(meta, collection)
    term_ids = [collection.term_ids(i) for i in range(len(collection))]
    for quadrant in meta["anchors"]:
        path = os.path.join(directory, f"anchor{quadrant}.bin")
        with open(path, "rb") as handle:
            blob = handle.read()
        frame = CanonicalFrame(Anchor(quadrant), collection.mbr)
        regions = AnchorRegions.from_blob(
            frame, [p.location for p in collection], blob)
        store = MemoryKeywordStore(regions, term_ids)
        index.anchors[quadrant] = AnchorIndex(frame, regions, store)
    return index


def save_sharded(indexes: Sequence[DesksIndex], directory: str,
                 meta: Optional[dict] = None) -> None:
    """Persist a sharded deployment: one index per ``<dir>/shard<i>/``.

    ``meta`` is caller-owned, JSON-serializable metadata (the cluster
    layer stores its partitioner name and local-to-global id maps here)
    returned verbatim by :func:`load_sharded`.  All shards are checked
    *before* any file is written, so a disk-based shard — which
    :func:`save_index` refuses — cannot leave a half-saved deployment.
    """
    if not indexes:
        raise ValueError("a sharded deployment needs at least one shard")
    for position, index in enumerate(indexes):
        if index.disk_based:
            raise ValueError(
                f"shard {position} is disk-based; save_sharded() supports "
                "memory-store shards only (disk-based indexes already "
                "persist through their page files)")
    os.makedirs(directory, exist_ok=True)
    manifest = {
        "version": CLUSTER_FORMAT_VERSION,
        "num_shards": len(indexes),
        "meta": meta if meta is not None else {},
    }
    for position, index in enumerate(indexes):
        save_index(index, os.path.join(directory, f"shard{position}"))
    with open(os.path.join(directory, "meta.json"), "w",
              encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)


def load_sharded(directory: str) -> Tuple[List[DesksIndex], dict]:
    """Load a deployment saved by :func:`save_sharded`.

    Returns ``(indexes, meta)`` — the per-shard indexes in shard order and
    the caller metadata stored at save time.
    """
    meta_path = os.path.join(directory, "meta.json")
    try:
        with open(meta_path, encoding="utf-8") as handle:
            manifest = json.load(handle)
    except FileNotFoundError:
        raise FileNotFoundError(
            f"{directory} is not a saved sharded deployment (no meta.json)"
        ) from None
    version = manifest.get("version")
    if version != CLUSTER_FORMAT_VERSION:
        raise ValueError(
            f"saved deployment has cluster format version {version!r}; "
            f"this library reads version {CLUSTER_FORMAT_VERSION}")
    num_shards = manifest["num_shards"]
    indexes = [load_index(os.path.join(directory, f"shard{position}"))
               for position in range(num_shards)]
    return indexes, manifest.get("meta", {})


def _skeleton_index(meta: dict, collection) -> DesksIndex:
    """A DesksIndex shell with no anchors built (they are loaded)."""
    index = DesksIndex.__new__(DesksIndex)
    index.collection = collection
    index.num_bands = meta["num_bands"]
    index.num_wedges = meta["num_wedges"]
    index.disk_based = False
    index.build_seconds = 0.0
    index.anchors = [None] * 4
    from ..storage import IOStats

    index.io_stats = IOStats()
    return index
