"""The direction-aware region structure of one anchor corner.

This is the paper's Section II-B index, built in the anchor's canonical
frame (:mod:`repro.geometry.frames`):

1. sort POIs by distance to the anchor and cut them into ``N`` distance
   *bands* ``R_1..R_N`` (quarter concentric rings); POIs with equal distance
   never straddle a band boundary;
2. inside each band, sort POIs by direction to the anchor and cut them into
   ``M`` angular *sub-regions* ``R_i1..R_iM``; equal directions never
   straddle a sub-region boundary.

The resulting ``poi_order`` — band-major, direction-sorted — is the sort key
for every keyword posting list, which is what makes the paper's
pointer-sliced inverted lists possible.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from ..geometry import HALF_PI, CanonicalFrame, Point
from ..storage import (
    decode_floats,
    decode_uint_list,
    encode_floats,
    encode_uint_list,
)


@dataclass
class Subregion:
    """One angular sub-region ``R_ij`` of a band.

    ``theta_lo`` is the minimal POI direction inside it (the paper's
    ``theta_{ij-1}``); ``theta_hi`` is the next sub-region's ``theta_lo``
    (``theta_ij``), or ``pi/2`` for the band's last sub-region.  ``start``
    and ``end`` slice the anchor's ``poi_order``.
    """

    gid: int
    band_index: int
    theta_lo: float
    theta_hi: float
    start: int
    end: int

    @property
    def size(self) -> int:
        return self.end - self.start


@dataclass
class Band:
    """One distance band ``R_i`` with its angular sub-regions."""

    index: int
    inner_radius: float
    outer_radius: float
    subregions: List[Subregion] = field(default_factory=list)

    @property
    def size(self) -> int:
        return sum(s.size for s in self.subregions)

    @property
    def first_gid(self) -> int:
        return self.subregions[0].gid

    @property
    def theta_breaks(self) -> List[float]:
        """Sub-region lower directions, for binary searching."""
        return [s.theta_lo for s in self.subregions]


class AnchorRegions:
    """Bands, sub-regions, and the canonical per-POI polar coordinates."""

    def __init__(self, frame: CanonicalFrame,
                 locations: Sequence[Point],
                 num_bands: int, num_wedges: int) -> None:
        if num_bands <= 0 or num_wedges <= 0:
            raise ValueError(
                f"need positive band/wedge counts, got {num_bands}/"
                f"{num_wedges}")
        self.frame = frame
        self.num_bands_requested = num_bands
        self.num_wedges_requested = num_wedges

        n = len(locations)
        self.distances, self.thetas = _polar_coordinates(frame, locations)
        by_distance = [int(i) for i in np.argsort(self.distances,
                                                  kind="stable")]
        band_chunks = _partition_with_ties(
            by_distance, num_bands, key=lambda i: self.distances[i])

        self.poi_order: List[int] = []
        self.bands: List[Band] = []
        self.subregions: List[Subregion] = []
        for band_index, chunk in enumerate(band_chunks):
            inner = self.distances[chunk[0]]
            band = Band(band_index, inner, math.inf)
            if self.bands:
                self.bands[-1].outer_radius = inner
            by_theta = sorted(chunk, key=lambda i: self.thetas[i])
            wedge_chunks = _partition_with_ties(
                by_theta, num_wedges, key=lambda i: self.thetas[i])
            for wedge in wedge_chunks:
                start = len(self.poi_order)
                self.poi_order.extend(wedge)
                sub = Subregion(
                    gid=len(self.subregions),
                    band_index=band_index,
                    theta_lo=self.thetas[wedge[0]],
                    theta_hi=HALF_PI,
                    start=start,
                    end=len(self.poi_order),
                )
                if band.subregions:
                    band.subregions[-1].theta_hi = sub.theta_lo
                band.subregions.append(sub)
                self.subregions.append(sub)
            self.bands.append(band)

        # The first band's inner arc is the paper's r_0 (= nearest POI); the
        # last band is unbounded outward (outer_radius stays +inf).
        self.position_of: List[int] = [0] * n
        for position, poi_id in enumerate(self.poi_order):
            self.position_of[poi_id] = position
        self._inner_radii = [b.inner_radius for b in self.bands]

    # -- lookups -----------------------------------------------------------

    @property
    def num_bands(self) -> int:
        return len(self.bands)

    @property
    def num_subregions(self) -> int:
        return len(self.subregions)

    def band_of_distance(self, distance: float) -> int:
        """Index of the band whose radius range holds ``distance``.

        Distances below the first band's inner arc map to band 0 (the query
        then sits inside the inner arc, handled by the MINDIST cases);
        distances beyond every arc map to the last band.
        """
        idx = bisect_right(self._inner_radii, distance) - 1
        return max(idx, 0)

    def band_of_poi(self, poi_id: int) -> int:
        """Band index containing a POI."""
        return self.subregion_of_poi(poi_id).band_index

    def subregion_of_poi(self, poi_id: int) -> Subregion:
        """Sub-region containing a POI (by its position in poi_order)."""
        position = self.position_of[poi_id]
        lo, hi = 0, len(self.subregions) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self.subregions[mid].end <= position:
                lo = mid + 1
            else:
                hi = mid
        return self.subregions[lo]

    def candidate_wedge_range(self, band: Band, tau_lo: float,
                              tau_hi: float) -> Tuple[int, int]:
        """Sub-region index range of ``band`` overlapping ``[tau_lo, tau_hi]``.

        Implements Lemma 3/4's binary searches: a sub-region with direction
        range ``[theta_lo, theta_hi)`` is prunable when ``theta_hi <= tau_lo``
        or ``theta_lo > tau_hi``.  Returns a half-open ``(first, last+1)``
        pair into ``band.subregions``.

        The band's *last* sub-region is the exception to the half-open
        convention: its ``theta_hi`` is pinned to ``pi/2`` but POIs at
        exactly ``pi/2`` live inside it, so it is closed at the top and
        must not be pruned by ``theta_hi <= tau_lo``.
        """
        breaks = band.theta_breaks
        # First sub-region whose *upper* bound exceeds tau_lo: since
        # theta_hi[j] == theta_lo[j+1], that is the last j with
        # theta_lo[j] <= tau_lo, except when its theta_hi == tau_lo.
        first = bisect_right(breaks, tau_lo) - 1
        if first < 0:
            first = 0
        elif (band.subregions[first].theta_hi <= tau_lo
              and first + 1 < len(band.subregions)):
            first += 1
        # Last sub-region whose lower bound is <= tau_hi.
        last = bisect_right(breaks, tau_hi) - 1
        if last < first:
            return (first, first)  # empty range
        return (first, last + 1)


    # -- serialization ---------------------------------------------------------

    def to_blob(self) -> bytes:
        """Serialize the region skeleton (not the POI coordinates).

        The per-POI distances/thetas are recomputed on load — they are
        cheap linear passes; what the blob preserves is the result of the
        two expensive global sorts: ``poi_order`` and the band/sub-region
        boundaries.
        """
        parts = [
            encode_uint_list([self.num_bands_requested,
                              self.num_wedges_requested]),
            encode_uint_list(self.poi_order),
            encode_uint_list([len(b.subregions) for b in self.bands]),
            encode_floats([b.inner_radius for b in self.bands]),
            encode_floats([s.theta_lo for s in self.subregions]),
            encode_uint_list([s.size for s in self.subregions]),
        ]
        return b"".join(parts)

    @classmethod
    def from_blob(cls, frame: CanonicalFrame, locations: Sequence[Point],
                  blob: bytes) -> "AnchorRegions":
        """Reconstruct a structure serialized by :meth:`to_blob`."""
        offset = 0
        requested, offset = decode_uint_list(blob, offset)
        poi_order, offset = decode_uint_list(blob, offset)
        band_counts, offset = decode_uint_list(blob, offset)
        inner_radii, offset = decode_floats(blob, offset)
        theta_los, offset = decode_floats(blob, offset)
        sizes, offset = decode_uint_list(blob, offset)
        if len(requested) != 2 or len(band_counts) != len(inner_radii):
            raise ValueError("malformed anchor-regions blob")
        if len(poi_order) != len(locations):
            raise ValueError(
                f"blob indexes {len(poi_order)} POIs but the collection "
                f"has {len(locations)}")
        if sum(band_counts) != len(theta_los) or len(theta_los) != len(sizes):
            raise ValueError("inconsistent sub-region tables in blob")
        if sum(sizes) != len(poi_order):
            raise ValueError("sub-region sizes do not cover the POI order")

        obj = cls.__new__(cls)
        obj.frame = frame
        obj.num_bands_requested, obj.num_wedges_requested = requested
        obj.distances, obj.thetas = _polar_coordinates(frame, locations)
        obj.poi_order = list(poi_order)
        obj.bands = []
        obj.subregions = []
        cursor = 0
        sub_idx = 0
        for band_index, (count, inner) in enumerate(
                zip(band_counts, inner_radii)):
            band = Band(band_index, inner, math.inf)
            if obj.bands:
                obj.bands[-1].outer_radius = inner
            for _ in range(count):
                sub = Subregion(
                    gid=len(obj.subregions),
                    band_index=band_index,
                    theta_lo=theta_los[sub_idx],
                    theta_hi=HALF_PI,
                    start=cursor,
                    end=cursor + sizes[sub_idx],
                )
                if band.subregions:
                    band.subregions[-1].theta_hi = sub.theta_lo
                band.subregions.append(sub)
                obj.subregions.append(sub)
                cursor = sub.end
                sub_idx += 1
            obj.bands.append(band)
        obj.position_of = [0] * len(poi_order)
        for position, poi_id in enumerate(obj.poi_order):
            obj.position_of[poi_id] = position
        obj._inner_radii = [b.inner_radius for b in obj.bands]
        return obj


def _polar_coordinates(frame: CanonicalFrame, locations: Sequence[Point],
                       ) -> Tuple[List[float], List[float]]:
    """Per-POI (distance, direction) to the anchor, vectorised.

    A POI exactly on the anchor has no direction; it gets 0, the bottom of
    the quadrant.  Results come back as plain Python lists — downstream
    code does scalar indexing, where lists beat numpy scalars.
    """
    xs = np.fromiter((p.x for p in locations), dtype=float,
                     count=len(locations))
    ys = np.fromiter((p.y for p in locations), dtype=float,
                     count=len(locations))
    cx, cy = frame.to_canonical_xy(xs, ys)
    distances = np.hypot(cx, cy)
    thetas = np.where(distances > 0.0, np.arctan2(cy, cx), 0.0)
    return distances.tolist(), thetas.tolist()


def _partition_with_ties(ordered: List[int], buckets: int,
                         key) -> List[List[int]]:
    """Cut ``ordered`` into ~``buckets`` chunks; equal keys stay together.

    The paper's partitioning rule: fill each bucket to the target size, then
    keep absorbing items whose key equals the bucket's last key, so a band
    boundary never falls between equal distances (or a wedge boundary
    between equal directions).
    """
    n = len(ordered)
    if n == 0:
        return []
    target = max(1, round(n / buckets))
    chunks: List[List[int]] = []
    i = 0
    while i < n:
        j = min(i + target, n)
        while j < n and key(ordered[j]) == key(ordered[j - 1]):
            j += 1
        chunks.append(ordered[i:j])
        i = j
    return chunks
