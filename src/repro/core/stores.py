"""Keyword stores: the paper's region and POI inverted lists.

For each keyword ``k`` and anchor, the index keeps (Section II-B):

* the **region list** ``LR_k`` — sorted ids of sub-regions containing ``k``,
  each with a *pointer*: the position in the POI list where that
  sub-region's POIs begin;
* the **POI list** ``LP_k`` — ids of POIs containing ``k``, sorted by
  sub-region order and, within a sub-region, by direction.

The pointers let a query read exactly the slice ``LP_k[l_ij, l_ij+1)`` for
sub-region ``R_ij`` — the paper's key trick for cheap per-sub-region
fetches.  Two implementations share the access protocol: an in-memory store
("if we have large memory") and a disk-backed one ("if we have small
memory") that lays both lists out in a paged record file, with POI ids at
fixed width so a pointer slice maps to a byte range.
"""

from __future__ import annotations

import struct
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..storage import (
    InMemoryPageStore,
    PageStore,
    RecordFile,
    RecordPointer,
    decode_uint_list,
    encode_sorted_ids,
    decode_sorted_ids,
    encode_uint_list,
)
from .regions import AnchorRegions


class TermPostings:
    """Access protocol for one keyword's region and POI lists."""

    #: Sorted sub-region gids containing the keyword.
    region_gids: Sequence[int]

    def pois_in(self, gid: int) -> Sequence[int]:
        """POI ids with this keyword inside sub-region ``gid``."""
        raise NotImplementedError

    def pois_in_gid_range(self, lo_gid: int, hi_gid: int) -> Sequence[int]:
        """POI ids in all owned sub-regions with ``lo_gid <= gid < hi_gid``."""
        raise NotImplementedError


def build_term_layout(regions: AnchorRegions,
                      poi_term_ids: Sequence[Iterable[int]],
                      ) -> Dict[int, Tuple[List[int], List[int], List[int]]]:
    """Compute, per term, ``(region_gids, pointers, poi_list)``.

    ``poi_term_ids[poi_id]`` is the term-id set of each POI.  POI lists are
    sorted by the anchor's ``poi_order`` position, which realises the
    paper's sub-region-major, direction-minor ordering.
    """
    per_term_positions: Dict[int, List[int]] = {}
    for position, poi_id in enumerate(regions.poi_order):
        for term_id in poi_term_ids[poi_id]:
            per_term_positions.setdefault(term_id, []).append(position)
    # Positions were appended in increasing order, so each list is sorted.
    # Resolving a position's sub-region through a precomputed array keeps
    # the hot loop to plain list indexing.
    gid_by_position: List[int] = [0] * len(regions.poi_order)
    for sub in regions.subregions:
        gid_by_position[sub.start:sub.end] = [sub.gid] * sub.size
    poi_order = regions.poi_order
    layout: Dict[int, Tuple[List[int], List[int], List[int]]] = {}
    for term_id, positions in per_term_positions.items():
        region_gids: List[int] = []
        pointers: List[int] = []
        poi_list = [poi_order[p] for p in positions]
        last_gid = -1
        for list_pos, position in enumerate(positions):
            gid = gid_by_position[position]
            if gid != last_gid:
                region_gids.append(gid)
                pointers.append(list_pos)
                last_gid = gid
        layout[term_id] = (region_gids, pointers, poi_list)
    return layout


# -- in-memory store ------------------------------------------------------------


class _MemoryTermPostings(TermPostings):
    def __init__(self, region_gids: List[int], pointers: List[int],
                 poi_list: List[int]) -> None:
        self.region_gids = region_gids
        self._pointers = pointers
        self._poi_list = poi_list

    def _slice_bounds(self, idx: int) -> Tuple[int, int]:
        start = self._pointers[idx]
        end = (self._pointers[idx + 1] if idx + 1 < len(self._pointers)
               else len(self._poi_list))
        return start, end

    def pois_in(self, gid: int) -> Sequence[int]:
        idx = bisect_left(self.region_gids, gid)
        if idx == len(self.region_gids) or self.region_gids[idx] != gid:
            return []
        start, end = self._slice_bounds(idx)
        return self._poi_list[start:end]

    def pois_in_gid_range(self, lo_gid: int, hi_gid: int) -> Sequence[int]:
        lo = bisect_left(self.region_gids, lo_gid)
        hi = bisect_left(self.region_gids, hi_gid)
        if lo >= hi:
            return []
        start = self._pointers[lo]
        end = (self._pointers[hi] if hi < len(self._pointers)
               else len(self._poi_list))
        return self._poi_list[start:end]


class MemoryKeywordStore:
    """All region/POI lists resident in Python memory."""

    def __init__(self, regions: AnchorRegions,
                 poi_term_ids: Sequence[Iterable[int]]) -> None:
        layout = build_term_layout(regions, poi_term_ids)
        self._terms: Dict[int, _MemoryTermPostings] = {
            term_id: _MemoryTermPostings(*parts)
            for term_id, parts in layout.items()
        }

    def term_postings(self, term_id: int) -> Optional[TermPostings]:
        """The postings view for ``term_id``, or ``None`` when absent."""
        return self._terms.get(term_id)

    @property
    def size_bytes(self) -> int:
        """Approximate footprint: 4 bytes per stored integer."""
        total = 0
        for postings in self._terms.values():
            total += 4 * (2 * len(postings.region_gids)
                          + len(postings._poi_list))
        return total


# -- disk-backed store -------------------------------------------------------------


class _DiskTermPostings(TermPostings):
    """Postings view that reads POI slices from the record file.

    The region list (gids + pointers) is decoded eagerly — the paper reads
    ``LR_k`` up front too — while POI slices are fetched lazily by byte
    range, touching only the pages the slice spans.
    """

    def __init__(self, record_file: RecordFile, region_record: RecordPointer,
                 poi_record: RecordPointer) -> None:
        self._file = record_file
        self._poi_record = poi_record
        blob = record_file.read(region_record)
        gids, offset = decode_uint_list(blob)
        pointers, _ = decode_uint_list(blob, offset)
        self.region_gids = gids
        self._pointers = pointers
        self._num_pois = poi_record.length // 4

    def _read_slice(self, start: int, end: int) -> Sequence[int]:
        if start >= end:
            return []
        ptr = RecordPointer(self._poi_record.offset + 4 * start,
                            4 * (end - start))
        blob = self._file.read(ptr)
        return list(struct.unpack(f"<{end - start}I", blob))

    def _slice_bounds(self, idx: int) -> Tuple[int, int]:
        start = self._pointers[idx]
        end = (self._pointers[idx + 1] if idx + 1 < len(self._pointers)
               else self._num_pois)
        return start, end

    def pois_in(self, gid: int) -> Sequence[int]:
        idx = bisect_left(self.region_gids, gid)
        if idx == len(self.region_gids) or self.region_gids[idx] != gid:
            return []
        return self._read_slice(*self._slice_bounds(idx))

    def pois_in_gid_range(self, lo_gid: int, hi_gid: int) -> Sequence[int]:
        lo = bisect_left(self.region_gids, lo_gid)
        hi = bisect_left(self.region_gids, hi_gid)
        if lo >= hi:
            return []
        start = self._pointers[lo]
        end = (self._pointers[hi] if hi < len(self._pointers)
               else self._num_pois)
        return self._read_slice(start, end)


class DiskKeywordStore:
    """Region/POI lists in a paged record file behind a buffer pool.

    The term directory (term id -> two record pointers) stays in memory,
    mirroring the paper's in-memory vocabulary over disk-resident lists.
    """

    def __init__(self, regions: AnchorRegions,
                 poi_term_ids: Sequence[Iterable[int]],
                 store: Optional[PageStore] = None,
                 buffer_capacity: int = 256) -> None:
        if store is None:
            store = InMemoryPageStore()
        self._file = RecordFile(store, buffer_capacity=buffer_capacity)
        self._directory: Dict[int, Tuple[RecordPointer, RecordPointer]] = {}
        layout = build_term_layout(regions, poi_term_ids)
        for term_id in sorted(layout):
            region_gids, pointers, poi_list = layout[term_id]
            region_blob = (encode_uint_list(region_gids)
                           + encode_uint_list(pointers))
            poi_blob = struct.pack(f"<{len(poi_list)}I", *poi_list)
            region_ptr = self._file.append(region_blob)
            poi_ptr = self._file.append(poi_blob)
            self._directory[term_id] = (region_ptr, poi_ptr)
        self._file.flush()

    def term_postings(self, term_id: int) -> Optional[TermPostings]:
        """The postings view for ``term_id``, or ``None`` when absent."""
        pointers = self._directory.get(term_id)
        if pointers is None:
            return None
        return _DiskTermPostings(self._file, *pointers)

    @property
    def io_stats(self):
        """Page-level I/O counters of the backing record file."""
        return self._file.stats

    @property
    def size_bytes(self) -> int:
        """Bytes appended to the record file."""
        return self._file.size_in_bytes

    @property
    def page_store(self):
        """The page store beneath the record file (scrub/injection)."""
        return self._file.page_store

    def flush(self) -> None:
        """Write back dirty buffered pages."""
        self._file.flush()

    def drop_cache(self) -> None:
        """Evict the buffer pool (cold-cache measurements)."""
        self._file.drop_cache()

    def close(self) -> None:
        self._file.close()


# -- compressed disk store (ablation) ---------------------------------------------


class _CompressedTermPostings(TermPostings):
    """Postings view over one delta-compressed record.

    The whole term record — region gids, pointers and the *positions* of
    the POIs in the anchor's ``poi_order`` (sorted, hence delta-friendly)
    — is read and decoded on first access.  Any slice therefore costs the
    full record's pages: this is what the pointer layout of the default
    store is buying.
    """

    def __init__(self, record_file: RecordFile, record: RecordPointer,
                 poi_order: Sequence[int]) -> None:
        blob = record_file.read(record)
        gids, offset = decode_uint_list(blob)
        pointers, offset = decode_uint_list(blob, offset)
        positions, _ = decode_sorted_ids(blob, offset)
        self.region_gids = gids
        self._pointers = pointers
        self._positions = positions
        self._poi_order = poi_order

    def _slice(self, start: int, end: int) -> Sequence[int]:
        return [self._poi_order[p] for p in self._positions[start:end]]

    def pois_in(self, gid: int) -> Sequence[int]:
        idx = bisect_left(self.region_gids, gid)
        if idx == len(self.region_gids) or self.region_gids[idx] != gid:
            return []
        start = self._pointers[idx]
        end = (self._pointers[idx + 1] if idx + 1 < len(self._pointers)
               else len(self._positions))
        return self._slice(start, end)

    def pois_in_gid_range(self, lo_gid: int, hi_gid: int) -> Sequence[int]:
        lo = bisect_left(self.region_gids, lo_gid)
        hi = bisect_left(self.region_gids, hi_gid)
        if lo >= hi:
            return []
        start = self._pointers[lo]
        end = (self._pointers[hi] if hi < len(self._pointers)
               else len(self._positions))
        return self._slice(start, end)


class CompressedDiskKeywordStore:
    """Delta-varint POI lists: smallest on disk, no sliced reads.

    The ablation counterpart of :class:`DiskKeywordStore` (DESIGN.md §4,
    item 4): compression shrinks the index but every sub-region fetch
    reads the keyword's entire posting record.
    """

    def __init__(self, regions: AnchorRegions,
                 poi_term_ids: Sequence[Iterable[int]],
                 store: Optional[PageStore] = None,
                 buffer_capacity: int = 256) -> None:
        if store is None:
            store = InMemoryPageStore()
        self._file = RecordFile(store, buffer_capacity=buffer_capacity)
        self._poi_order = regions.poi_order
        self._directory: Dict[int, RecordPointer] = {}
        position_of = regions.position_of
        layout = build_term_layout(regions, poi_term_ids)
        for term_id in sorted(layout):
            region_gids, pointers, poi_list = layout[term_id]
            positions = [position_of[poi_id] for poi_id in poi_list]
            blob = (encode_uint_list(region_gids)
                    + encode_uint_list(pointers)
                    + encode_sorted_ids(positions))
            self._directory[term_id] = self._file.append(blob)
        self._file.flush()

    def term_postings(self, term_id: int) -> Optional[TermPostings]:
        """The postings view for ``term_id``, or ``None`` when absent."""
        record = self._directory.get(term_id)
        if record is None:
            return None
        return _CompressedTermPostings(self._file, record, self._poi_order)

    @property
    def io_stats(self):
        """Page-level I/O counters of the backing record file."""
        return self._file.stats

    @property
    def size_bytes(self) -> int:
        """Bytes appended to the record file."""
        return self._file.size_in_bytes

    @property
    def page_store(self):
        """The page store beneath the record file (scrub/injection)."""
        return self._file.page_store

    def flush(self) -> None:
        """Write back dirty buffered pages."""
        self._file.flush()

    def drop_cache(self) -> None:
        """Evict the buffer pool (cold-cache measurements)."""
        self._file.drop_cache()

    def close(self) -> None:
        self._file.close()
