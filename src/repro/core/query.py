"""The direction-aware spatial keyword query type.

The paper's query is ``q = <(q.x, q.y); [alpha, beta]; K; k>``: a location,
a direction interval, a conjunctive keyword set, and a result cardinality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import FrozenSet, Iterable, List, Tuple

from ..geometry import TWO_PI, DirectionInterval, Point

#: Decimal places kept when canonicalizing angles.  Directions come out of
#: ``atan2`` with a few ULPs of noise; ten decimals (~1e-10 rad) is far below
#: any meaningful angular width yet collapses that noise so that two
#: mathematically equal intervals produce one cache key.
_ANGLE_DECIMALS = 10


class MatchMode(Enum):
    """Keyword semantics of a query.

    The paper's queries are conjunctive (``ALL``: a POI must contain every
    keyword).  ``ANY`` — a POI matching at least one keyword — is a
    library extension; everything (index, baselines, oracle) supports both.
    """

    ALL = "all"
    ANY = "any"


@dataclass(frozen=True)
class DirectionalQuery:
    """A direction-aware spatial keyword query."""

    location: Point
    interval: DirectionInterval
    keywords: FrozenSet[str]
    k: int = 10
    match_mode: MatchMode = MatchMode.ALL

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ValueError(f"k must be positive, got {self.k}")
        if not self.keywords:
            raise ValueError("a query needs at least one keyword")

    @classmethod
    def make(cls, x: float, y: float, alpha: float, beta: float,
             keywords: Iterable[str], k: int = 10,
             match_mode: MatchMode = MatchMode.ALL) -> "DirectionalQuery":
        """Convenience constructor from raw values."""
        return cls(Point(x, y), DirectionInterval(alpha, beta),
                   frozenset(keywords), k, match_mode)

    @classmethod
    def undirected(cls, x: float, y: float, keywords: Iterable[str],
                   k: int = 10,
                   match_mode: MatchMode = MatchMode.ALL,
                   ) -> "DirectionalQuery":
        """A query with no direction constraint (full circle)."""
        return cls(Point(x, y), DirectionInterval.full(),
                   frozenset(keywords), k, match_mode)

    def with_interval(self, interval: DirectionInterval,
                      ) -> "DirectionalQuery":
        """Same query, different direction interval (incremental updates)."""
        return DirectionalQuery(self.location, interval, self.keywords,
                                self.k, self.match_mode)

    def keywords_match(self, poi_keywords: FrozenSet[str]) -> bool:
        """Keyword predicate under this query's match mode."""
        if self.match_mode is MatchMode.ALL:
            return self.keywords <= poi_keywords
        return not self.keywords.isdisjoint(poi_keywords)

    def basic_subqueries(self) -> List[Tuple[int, DirectionInterval]]:
        """Quadrant decomposition of the interval (paper Sec. IV-B).

        Returns ``(quadrant, piece)`` pairs; each piece is a *basic* query
        answered against the anchor corner of that quadrant.
        """
        return self.interval.decompose_quadrants()

    def accepts_direction(self, theta: float) -> bool:
        """True when a POI at direction ``theta`` satisfies the constraint."""
        return self.interval.contains(theta)

    def matches(self, location: Point, keywords: FrozenSet[str]) -> bool:
        """Full predicate check for one POI (used in verification/oracles)."""
        if not self.keywords_match(keywords):
            return False
        if location.coincides(self.location):
            return True
        return self.accepts_direction(self.location.direction_to(location))

    def canonical_key(self, location_quantum: float = 0.0) -> Tuple:
        """A stable, hashable identity for result caching and batch dedupe.

        Two queries with the same answer set map to the same key even when
        they were built differently: keywords become a sorted tuple, the
        interval is normalized to a ``(lower in [0, 2*pi), width)`` pair
        rounded to collapse float noise, and every full-circle interval
        collapses to the same representation regardless of where its bounds
        sit.  ``location_quantum > 0`` snaps the location onto a grid of
        that cell size, letting a cache trade exactness for hit rate
        (nearby queries share an answer); the default ``0.0`` keys on the
        exact coordinates.
        """
        if location_quantum < 0.0:
            raise ValueError(
                f"location_quantum must be non-negative: {location_quantum}")
        if location_quantum > 0.0:
            loc = (round(self.location.x / location_quantum),
                   round(self.location.y / location_quantum))
        else:
            loc = (self.location.x, self.location.y)
        if self.interval.is_full:
            arc = (0.0, round(TWO_PI, _ANGLE_DECIMALS))
        else:
            arc = (round(self.interval.lower, _ANGLE_DECIMALS),
                   round(self.interval.width, _ANGLE_DECIMALS))
        return (loc, arc, tuple(sorted(self.keywords)), self.k,
                self.match_mode.value)


@dataclass(frozen=True)
class ResultEntry:
    """One answer POI with its distance to the query."""

    poi_id: int
    distance: float

    def __lt__(self, other: "ResultEntry") -> bool:
        return (self.distance, self.poi_id) < (other.distance, other.poi_id)


@dataclass
class QueryResult:
    """The answer list plus the search-effort counters that produced it.

    ``partial`` is set when a deadline expired mid-search: the entries are
    all genuine answers (every one was verified against the query
    predicate), but they are only the best found *so far* — POIs nearer
    than ``kth_distance`` may exist in regions the search never reached.
    """

    entries: List[ResultEntry] = field(default_factory=list)
    partial: bool = False

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def poi_ids(self) -> List[int]:
        """Answer POI ids, nearest first."""
        return [e.poi_id for e in self.entries]

    def distances(self) -> List[float]:
        """Answer distances, non-decreasing."""
        return [e.distance for e in self.entries]

    @property
    def kth_distance(self) -> float:
        """Distance of the farthest returned answer (``inf`` when empty)."""
        return self.entries[-1].distance if self.entries else float("inf")
