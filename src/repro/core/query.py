"""The direction-aware spatial keyword query type.

The paper's query is ``q = <(q.x, q.y); [alpha, beta]; K; k>``: a location,
a direction interval, a conjunctive keyword set, and a result cardinality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import FrozenSet, Iterable, List, Tuple

from ..geometry import DirectionInterval, Point


class MatchMode(Enum):
    """Keyword semantics of a query.

    The paper's queries are conjunctive (``ALL``: a POI must contain every
    keyword).  ``ANY`` — a POI matching at least one keyword — is a
    library extension; everything (index, baselines, oracle) supports both.
    """

    ALL = "all"
    ANY = "any"


@dataclass(frozen=True)
class DirectionalQuery:
    """A direction-aware spatial keyword query."""

    location: Point
    interval: DirectionInterval
    keywords: FrozenSet[str]
    k: int = 10
    match_mode: MatchMode = MatchMode.ALL

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ValueError(f"k must be positive, got {self.k}")
        if not self.keywords:
            raise ValueError("a query needs at least one keyword")

    @classmethod
    def make(cls, x: float, y: float, alpha: float, beta: float,
             keywords: Iterable[str], k: int = 10,
             match_mode: MatchMode = MatchMode.ALL) -> "DirectionalQuery":
        """Convenience constructor from raw values."""
        return cls(Point(x, y), DirectionInterval(alpha, beta),
                   frozenset(keywords), k, match_mode)

    @classmethod
    def undirected(cls, x: float, y: float, keywords: Iterable[str],
                   k: int = 10,
                   match_mode: MatchMode = MatchMode.ALL,
                   ) -> "DirectionalQuery":
        """A query with no direction constraint (full circle)."""
        return cls(Point(x, y), DirectionInterval.full(),
                   frozenset(keywords), k, match_mode)

    def with_interval(self, interval: DirectionInterval,
                      ) -> "DirectionalQuery":
        """Same query, different direction interval (incremental updates)."""
        return DirectionalQuery(self.location, interval, self.keywords,
                                self.k, self.match_mode)

    def keywords_match(self, poi_keywords: FrozenSet[str]) -> bool:
        """Keyword predicate under this query's match mode."""
        if self.match_mode is MatchMode.ALL:
            return self.keywords <= poi_keywords
        return not self.keywords.isdisjoint(poi_keywords)

    def basic_subqueries(self) -> List[Tuple[int, DirectionInterval]]:
        """Quadrant decomposition of the interval (paper Sec. IV-B).

        Returns ``(quadrant, piece)`` pairs; each piece is a *basic* query
        answered against the anchor corner of that quadrant.
        """
        return self.interval.decompose_quadrants()

    def accepts_direction(self, theta: float) -> bool:
        """True when a POI at direction ``theta`` satisfies the constraint."""
        return self.interval.contains(theta)

    def matches(self, location: Point, keywords: FrozenSet[str]) -> bool:
        """Full predicate check for one POI (used in verification/oracles)."""
        if not self.keywords_match(keywords):
            return False
        if location == self.location:
            return True
        return self.accepts_direction(self.location.direction_to(location))


@dataclass(frozen=True)
class ResultEntry:
    """One answer POI with its distance to the query."""

    poi_id: int
    distance: float

    def __lt__(self, other: "ResultEntry") -> bool:
        return (self.distance, self.poi_id) < (other.distance, other.poi_id)


@dataclass
class QueryResult:
    """The answer list plus the search-effort counters that produced it."""

    entries: List[ResultEntry] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def poi_ids(self) -> List[int]:
        """Answer POI ids, nearest first."""
        return [e.poi_id for e in self.entries]

    def distances(self) -> List[float]:
        """Answer distances, non-decreasing."""
        return [e.distance for e in self.entries]

    @property
    def kth_distance(self) -> float:
        """Distance of the farthest returned answer (``inf`` when empty)."""
        return self.entries[-1].distance if self.entries else float("inf")
