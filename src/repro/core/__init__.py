"""DESKS core: the direction-aware index and its search algorithms."""

from .bruteforce import brute_force_search
from .dynamic import MutableDesksIndex
from .estimate import CardinalityEstimator
from .incremental import CachedAnswer, IncrementalSearcher
from .index import (
    AnchorIndex,
    DesksIndex,
    recommended_bands,
    recommended_wedges,
)
from .persistence import (
    MissingPersistenceFile,
    PersistenceError,
    SavedScrubReport,
    load_index,
    load_sharded,
    repair_interrupted_swap,
    save_index,
    save_sharded,
    scrub_saved,
)
from .mindist import (
    BasicQueryGeometry,
    annulus_mindist,
    band_mindist,
    basic_geometry,
    polar_point,
    subregion_mindist,
)
from .query import DirectionalQuery, MatchMode, QueryResult, ResultEntry
from .regions import AnchorRegions, Band, Subregion
from .search import DesksSearcher, PruningMode, SupportsExpired
from .trace import BandTrace, QueryTrace, SubqueryTrace
from .stores import (
    CompressedDiskKeywordStore,
    DiskKeywordStore,
    MemoryKeywordStore,
    build_term_layout,
)

__all__ = [
    "AnchorIndex",
    "AnchorRegions",
    "Band",
    "BasicQueryGeometry",
    "CachedAnswer",
    "CardinalityEstimator",
    "CompressedDiskKeywordStore",
    "DesksIndex",
    "DesksSearcher",
    "DirectionalQuery",
    "DiskKeywordStore",
    "IncrementalSearcher",
    "MatchMode",
    "MemoryKeywordStore",
    "MissingPersistenceFile",
    "MutableDesksIndex",
    "PersistenceError",
    "PruningMode",
    "SavedScrubReport",
    "BandTrace",
    "QueryResult",
    "QueryTrace",
    "SubqueryTrace",
    "ResultEntry",
    "Subregion",
    "SupportsExpired",
    "annulus_mindist",
    "band_mindist",
    "basic_geometry",
    "brute_force_search",
    "load_index",
    "load_sharded",
    "repair_interrupted_swap",
    "save_index",
    "save_sharded",
    "scrub_saved",
    "build_term_layout",
    "polar_point",
    "recommended_bands",
    "recommended_wedges",
    "subregion_mindist",
]
