"""Exact linear-scan oracle for direction-aware spatial keyword queries.

Used as ground truth in the test suite and as the no-index baseline in
benchmarks.  Deliberately written straight from Definition 1, with no
cleverness to share bugs with.
"""

from __future__ import annotations

from typing import List, Optional

from ..datasets import POICollection
from ..storage import SearchStats
from .query import DirectionalQuery, QueryResult, ResultEntry


def brute_force_search(collection: POICollection, query: DirectionalQuery,
                       stats: Optional[SearchStats] = None) -> QueryResult:
    """All-pairs evaluation of Definition 1: scan, filter, sort, take k."""
    matches: List[ResultEntry] = []
    for poi in collection:
        if stats is not None:
            stats.pois_examined += 1
        if not query.keywords_match(poi.keywords):
            continue
        if stats is not None:
            stats.distance_computations += 1
        if not query.matches(poi.location, poi.keywords):
            continue
        matches.append(ResultEntry(
            poi.poi_id, query.location.distance_to(poi.location)))
    matches.sort()
    return QueryResult(matches[:query.k])
