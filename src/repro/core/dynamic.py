"""Dynamic updates — the paper's declared future work.

The DESKS structure is built by global sorts (distance bands, direction
wedges) and densely packed posting lists, so in-place insertion would
shift every slice behind the insertion point.  We instead use the standard
main-plus-delta design databases reach for in this situation:

* inserts land in an unindexed **delta buffer**, scanned linearly at query
  time (cheap while small);
* deletes become **tombstones**, filtered during verification;
* when the delta grows past ``rebuild_threshold`` (a fraction of the
  indexed size), the static index is rebuilt to absorb it.

Queries remain exact at every moment; amortised insert cost is O(1) plus
the periodic rebuild, the classic LSM-style trade.

For the serving layer (:mod:`repro.service`) the index additionally keeps a
monotonically increasing **generation** counter, bumped by every successful
insert, delete, and rebuild.  A result cache tags each cached answer with
the generation it was computed under and refuses to serve it once the
counter has moved — the invalidation contract that makes caching safe over
a mutating index.  ``subscribe()`` registers callbacks fired (with the new
generation) after each mutation, so caches can also purge eagerly.

Updates are serialised by an internal lock; queries take a consistent
snapshot of ``(searcher, delta, tombstones)`` under that lock and then run
lock-free, so concurrent readers never block each other and a rebuild
mid-query simply means that query answers against the pre-rebuild (still
exact) state.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Set

from ..analysis import make_lock
from ..datasets import POI, POICollection
from ..storage import SearchStats
from .index import DesksIndex
from .query import DirectionalQuery, QueryResult, ResultEntry
from .search import DesksSearcher, PruningMode, SupportsExpired


class MutableDesksIndex:
    """A DESKS index that supports insert/delete with exact answers."""

    def __init__(self, collection: POICollection,
                 num_bands: Optional[int] = None,
                 num_wedges: Optional[int] = None,
                 rebuild_threshold: float = 0.25) -> None:
        if not 0.0 < rebuild_threshold <= 1.0:
            raise ValueError(
                f"rebuild_threshold must be in (0, 1]: {rebuild_threshold}")
        self._num_bands = num_bands
        self._num_wedges = num_wedges
        self.rebuild_threshold = rebuild_threshold
        self._delta: List[POI] = []
        self._deleted: Set[int] = set()
        self.rebuild_count = 0
        self._generation = 0
        self._listeners: List[Callable[[int], None]] = []
        self._lock = make_lock("core.mutable_index", reentrant=True)
        self._build(collection)

    def _build(self, collection: POICollection) -> None:
        self._index = DesksIndex(collection, self._num_bands,
                                 self._num_wedges)
        self._searcher = DesksSearcher(self._index)

    @classmethod
    def from_static(cls, index: DesksIndex,
                    rebuild_threshold: float = 0.25) -> "MutableDesksIndex":
        """Adopt an already-built static index (e.g. one loaded from disk)
        without paying the four global sorts a fresh build costs."""
        instance = cls.__new__(cls)
        if not 0.0 < rebuild_threshold <= 1.0:
            raise ValueError(
                f"rebuild_threshold must be in (0, 1]: {rebuild_threshold}")
        instance._num_bands = index.num_bands
        instance._num_wedges = index.num_wedges
        instance.rebuild_threshold = rebuild_threshold
        instance._delta = []
        instance._deleted = set()
        instance.rebuild_count = 0
        instance._generation = 0
        instance._listeners = []
        instance._lock = make_lock("core.mutable_index", reentrant=True)
        instance._index = index
        instance._searcher = DesksSearcher(index)
        return instance

    # -- state -----------------------------------------------------------

    @property
    def collection(self) -> POICollection:
        """The currently indexed (static) collection."""
        return self._index.collection

    @property
    def num_pending(self) -> int:
        """Inserts waiting in the delta buffer."""
        return len(self._delta)

    @property
    def io_stats(self):
        """The current static index's I/O counters (resets on rebuild)."""
        return self._index.io_stats

    @property
    def static_index(self) -> DesksIndex:
        """The current static index (what :func:`~repro.core.save_index`
        persists after :meth:`compact`)."""
        return self._index

    @property
    def generation(self) -> int:
        """Monotonic mutation counter; bumped by insert/delete/rebuild.

        Two searches bracketed by equal generations saw the same data, so
        any answer computed at generation ``g`` may be served from a cache
        while ``generation == g`` still holds.
        """
        return self._generation

    def subscribe(self, listener: Callable[[int], None]) -> None:
        """Register a callback invoked (with the new generation) after
        every mutation.  Callbacks run on the mutating thread and must be
        cheap and non-raising; they exist so result caches can invalidate
        eagerly instead of only on their next lookup."""
        with self._lock:
            self._listeners.append(listener)

    def _bump_generation(self) -> None:
        # Caller holds self._lock.
        self._generation += 1
        for listener in self._listeners:
            listener(self._generation)

    def __len__(self) -> int:
        return (len(self.collection) + len(self._delta)
                - len(self._deleted))

    # -- updates -------------------------------------------------------------

    def insert(self, x: float, y: float, keywords: Iterable[str]) -> int:
        """Insert a POI; returns its (stable) id.

        Delta ids continue the static collection's id space, so ids remain
        unique across rebuilds within this wrapper.
        """
        with self._lock:
            poi_id = len(self.collection) + len(self._delta)
            self._delta.append(POI.make(poi_id, x, y, keywords))
            if len(self._delta) > self.rebuild_threshold * max(
                    len(self.collection), 1):
                self._rebuild()
            self._bump_generation()
            return poi_id

    def delete(self, poi_id: int) -> bool:
        """Tombstone a POI; returns False when the id is unknown/deleted."""
        with self._lock:
            if poi_id in self._deleted:
                return False
            total = len(self.collection) + len(self._delta)
            if not 0 <= poi_id < total:
                return False
            self._deleted.add(poi_id)
            # Tombstones inflate the static index's effective k (see
            # search); absorb them once they pile up, like the insert path.
            if (len(self._deleted) > self.rebuild_threshold
                    * max(len(self.collection), 1) and len(self) > 0):
                self._rebuild()
            self._bump_generation()
            return True

    def compact(self) -> bool:
        """Absorb the delta buffer and tombstones into the static index
        now (checkpointing uses this so a snapshot of the static index
        captures the full visible state).  Returns True when a rebuild
        actually ran.  Counts as a mutation: ids may be re-densified and
        the generation is bumped, exactly as for a threshold rebuild."""
        with self._lock:
            if not self._delta and not self._deleted:
                return False
            self._rebuild()
            self._bump_generation()
            return True

    def _rebuild(self) -> None:
        """Merge delta and tombstones into a fresh static index."""
        # Caller holds self._lock.
        survivors = [
            POI.make(new_id, poi.location.x, poi.location.y, poi.keywords)
            for new_id, poi in enumerate(
                p for p in list(self.collection) + self._delta
                if p.poi_id not in self._deleted)
        ]
        # Rebuilding re-densifies ids: previously returned ids become
        # invalid after a rebuild, which callers can detect via
        # ``rebuild_count`` (documented contract of the delta design).
        self._delta = []
        self._deleted = set()
        self.rebuild_count += 1
        self._build(POICollection(survivors))

    # -- queries ------------------------------------------------------------------

    def search(self, query: DirectionalQuery,
               mode: PruningMode = PruningMode.RD,
               stats: Optional[SearchStats] = None,
               deadline: Optional[SupportsExpired] = None) -> QueryResult:
        """Exact top-k over static index + delta buffer - tombstones.

        Safe to call from many threads at once: the method snapshots the
        searcher/delta/tombstone trio under the update lock, then runs
        against those immutable references.  ``deadline`` is forwarded to
        the indexed search; an expired deadline yields ``partial=True``
        (the delta scan is a cheap linear pass and always completes).
        """
        with self._lock:
            searcher = self._searcher
            delta = self._delta
            deleted = set(self._deleted) if self._deleted else self._deleted
        if deleted:
            # Tombstones may knock answers out of the static top-k; ask the
            # static index for enough extras to guarantee k live results.
            inflated = DirectionalQuery(query.location, query.interval,
                                        query.keywords,
                                        query.k + len(deleted),
                                        query.match_mode)
            indexed = searcher.search(inflated, mode, stats,
                                      deadline=deadline)
        else:
            indexed = searcher.search(query, mode, stats, deadline=deadline)
        merged = [e for e in indexed.entries if e.poi_id not in deleted]
        # len(delta) is captured once: concurrent inserts appending to the
        # same list are simply not part of this query's snapshot.
        for poi in delta[:len(delta)]:
            if poi.poi_id in deleted:
                continue
            if stats is not None:
                stats.pois_examined += 1
            if not query.matches(poi.location, poi.keywords):
                continue
            merged.append(ResultEntry(
                poi.poi_id, query.location.distance_to(poi.location)))
        merged.sort()
        return QueryResult(merged[:query.k], partial=indexed.partial)

    def live_pois(self) -> List[POI]:
        """All currently visible POIs (static + delta, minus tombstones)."""
        out = [p for p in self.collection if p.poi_id not in self._deleted]
        out.extend(p for p in self._delta
                   if p.poi_id not in self._deleted)
        return out

    def get(self, poi_id: int) -> POI:
        """Look up a POI by id (static or delta); raises on deleted ids."""
        if poi_id in self._deleted:
            raise KeyError(f"poi {poi_id} is deleted")
        if poi_id < len(self.collection):
            return self.collection[poi_id]
        delta_pos = poi_id - len(self.collection)
        if delta_pos < len(self._delta):
            return self._delta[delta_pos]
        raise KeyError(f"unknown poi id {poi_id}")
