"""Dynamic updates — the paper's declared future work.

The DESKS structure is built by global sorts (distance bands, direction
wedges) and densely packed posting lists, so in-place insertion would
shift every slice behind the insertion point.  We instead use the standard
main-plus-delta design databases reach for in this situation:

* inserts land in an unindexed **delta buffer**, scanned linearly at query
  time (cheap while small);
* deletes become **tombstones**, filtered during verification;
* when the delta grows past ``rebuild_threshold`` (a fraction of the
  indexed size), the static index is rebuilt to absorb it.

Queries remain exact at every moment; amortised insert cost is O(1) plus
the periodic rebuild, the classic LSM-style trade.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set

from ..datasets import POI, POICollection
from ..storage import SearchStats
from .index import DesksIndex
from .query import DirectionalQuery, QueryResult, ResultEntry
from .search import DesksSearcher, PruningMode


class MutableDesksIndex:
    """A DESKS index that supports insert/delete with exact answers."""

    def __init__(self, collection: POICollection,
                 num_bands: Optional[int] = None,
                 num_wedges: Optional[int] = None,
                 rebuild_threshold: float = 0.25) -> None:
        if not 0.0 < rebuild_threshold <= 1.0:
            raise ValueError(
                f"rebuild_threshold must be in (0, 1]: {rebuild_threshold}")
        self._num_bands = num_bands
        self._num_wedges = num_wedges
        self.rebuild_threshold = rebuild_threshold
        self._delta: List[POI] = []
        self._deleted: Set[int] = set()
        self.rebuild_count = 0
        self._build(collection)

    def _build(self, collection: POICollection) -> None:
        self._index = DesksIndex(collection, self._num_bands,
                                 self._num_wedges)
        self._searcher = DesksSearcher(self._index)

    # -- state -----------------------------------------------------------

    @property
    def collection(self) -> POICollection:
        """The currently indexed (static) collection."""
        return self._index.collection

    @property
    def num_pending(self) -> int:
        """Inserts waiting in the delta buffer."""
        return len(self._delta)

    def __len__(self) -> int:
        return (len(self.collection) + len(self._delta)
                - len(self._deleted))

    # -- updates -------------------------------------------------------------

    def insert(self, x: float, y: float, keywords: Iterable[str]) -> int:
        """Insert a POI; returns its (stable) id.

        Delta ids continue the static collection's id space, so ids remain
        unique across rebuilds within this wrapper.
        """
        poi_id = len(self.collection) + len(self._delta)
        self._delta.append(POI.make(poi_id, x, y, keywords))
        if len(self._delta) > self.rebuild_threshold * max(
                len(self.collection), 1):
            self._rebuild()
        return poi_id

    def delete(self, poi_id: int) -> bool:
        """Tombstone a POI; returns False when the id is unknown/deleted."""
        if poi_id in self._deleted:
            return False
        total = len(self.collection) + len(self._delta)
        if not 0 <= poi_id < total:
            return False
        self._deleted.add(poi_id)
        # Tombstones inflate the static index's effective k (see search);
        # absorb them once they pile up, like the insert path does.
        if (len(self._deleted) > self.rebuild_threshold
                * max(len(self.collection), 1) and len(self) > 0):
            self._rebuild()
        return True

    def _rebuild(self) -> None:
        """Merge delta and tombstones into a fresh static index."""
        survivors = [
            POI.make(new_id, poi.location.x, poi.location.y, poi.keywords)
            for new_id, poi in enumerate(
                p for p in list(self.collection) + self._delta
                if p.poi_id not in self._deleted)
        ]
        # Rebuilding re-densifies ids: previously returned ids become
        # invalid after a rebuild, which callers can detect via
        # ``rebuild_count`` (documented contract of the delta design).
        self._delta = []
        self._deleted = set()
        self.rebuild_count += 1
        self._build(POICollection(survivors))

    # -- queries ------------------------------------------------------------------

    def search(self, query: DirectionalQuery,
               mode: PruningMode = PruningMode.RD,
               stats: Optional[SearchStats] = None) -> QueryResult:
        """Exact top-k over static index + delta buffer - tombstones."""
        if self._deleted:
            # Tombstones may knock answers out of the static top-k; ask the
            # static index for enough extras to guarantee k live results.
            inflated = DirectionalQuery(query.location, query.interval,
                                        query.keywords,
                                        query.k + len(self._deleted),
                                        query.match_mode)
            indexed = self._searcher.search(inflated, mode, stats)
        else:
            indexed = self._searcher.search(query, mode, stats)
        merged = [e for e in indexed.entries
                  if e.poi_id not in self._deleted]
        for poi in self._delta:
            if poi.poi_id in self._deleted:
                continue
            if stats is not None:
                stats.pois_examined += 1
            if not query.matches(poi.location, poi.keywords):
                continue
            merged.append(ResultEntry(
                poi.poi_id, query.location.distance_to(poi.location)))
        merged.sort()
        return QueryResult(merged[:query.k])

    def live_pois(self) -> List[POI]:
        """All currently visible POIs (static + delta, minus tombstones)."""
        out = [p for p in self.collection if p.poi_id not in self._deleted]
        out.extend(p for p in self._delta
                   if p.poi_id not in self._deleted)
        return out

    def get(self, poi_id: int) -> POI:
        """Look up a POI by id (static or delta); raises on deleted ids."""
        if poi_id in self._deleted:
            raise KeyError(f"poi {poi_id} is deleted")
        if poi_id < len(self.collection):
            return self.collection[poi_id]
        delta_pos = poi_id - len(self.collection)
        if delta_pos < len(self._delta):
            return self._delta[delta_pos]
        raise KeyError(f"unknown poi id {poi_id}")
