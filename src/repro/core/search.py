"""DESKS query processing — Algorithms 1 and 2 of the paper.

One engine answers both the basic query (Algorithm 1, interval within one
quadrant) and the general query (Algorithm 2): the interval is decomposed
into per-quadrant basic sub-queries, and a single priority queue of
``(MINDIST, band)`` entries — spanning all participating anchors — drives a
best-first scan sharing one top-k collector, exactly as Algorithm 2's
region queue ``Q_R`` does.

The three pruning configurations evaluated in the paper's Section VI-B map
onto two switches:

========== ===================== =========================
mode        region pruning         direction pruning
            (Lemma 1 + Eq. 4)      (Lemmas 2-4 + Table I)
========== ===================== =========================
``R``       on                     off
``D``       off                    on
``RD``      on                     on
========== ===================== =========================
"""

from __future__ import annotations

import heapq
import math
import time
from bisect import bisect_left
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..storage import SearchStats
from ..text import intersect_sorted, union_sorted
from ..trace.spans import Span, Tracer, current_tracer
from .index import AnchorIndex, DesksIndex
from .mindist import (
    BasicQueryGeometry,
    band_mindist,
    basic_geometry,
    subregion_mindist,
)
from .query import DirectionalQuery, MatchMode, QueryResult, ResultEntry
from .trace import BandTrace, QueryTrace, WedgeTrace
from .regions import Band

INF = math.inf


class SupportsExpired:
    """Structural type for cooperative deadlines.

    Anything with an ``expired() -> bool`` method works (duck-typed; this
    class exists for documentation and isinstance-free annotation).  The
    canonical implementation is :class:`repro.service.Deadline` — core
    stays import-free of the serving layer.
    """

    def expired(self) -> bool:  # pragma: no cover - interface only
        raise NotImplementedError


class PruningMode(Enum):
    """Which pruning techniques the search applies (paper Sec. VI-B)."""

    R = "region"
    D = "direction"
    RD = "region+direction"

    @property
    def region(self) -> bool:
        return self in (PruningMode.R, PruningMode.RD)

    @property
    def direction(self) -> bool:
        return self in (PruningMode.D, PruningMode.RD)


class _TopK:
    """Bounded max-heap collecting the k nearest verified answers."""

    def __init__(self, k: int,
                 seed: Optional[Iterable[ResultEntry]] = None) -> None:
        self.k = k
        self._heap: List[Tuple[float, int]] = []  # (-distance, poi_id)
        self._best: Dict[int, float] = {}
        if seed is not None:
            for entry in seed:
                self.add(entry.poi_id, entry.distance)

    @property
    def kth_distance(self) -> float:
        """Current pruning threshold ``d_k`` (``inf`` until k answers)."""
        if len(self._heap) < self.k:
            return INF
        return -self._heap[0][0]

    def add(self, poi_id: int, distance: float) -> None:
        known = self._best.get(poi_id)
        if known is not None:
            return  # complex-query pieces can rediscover boundary POIs
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, (-distance, poi_id))
            self._best[poi_id] = distance
        elif distance < -self._heap[0][0]:
            _, evicted = heapq.heappushpop(self._heap, (-distance, poi_id))
            del self._best[evicted]
            self._best[poi_id] = distance

    def entries(self) -> List[ResultEntry]:
        return sorted(ResultEntry(pid, dist)
                      for pid, dist in self._best.items())


@dataclass
class _Subquery:
    """Per-anchor state of one basic sub-query."""

    quadrant: int
    anchor: AnchorIndex
    geometry: BasicQueryGeometry
    #: Sub-region gids containing *all* query keywords (sorted).
    candidate_gids: List[int]
    #: Per-keyword postings views for this anchor.
    postings: List[object]
    #: Direction bounds per band are cached (Eqs. 5-6 are pure in the band).
    _bounds_cache: Dict[int, Tuple[float, float]] = field(
        default_factory=dict)

    def band_bounds(self, band: Band) -> Tuple[float, float]:
        cached = self._bounds_cache.get(band.index)
        if cached is None:
            cached = self.geometry.band_direction_bounds(band.outer_radius)
            self._bounds_cache[band.index] = cached
        return cached


class DesksSearcher:
    """Answers direction-aware spatial keyword queries over a DesksIndex."""

    def __init__(self, index: DesksIndex) -> None:
        self.index = index
        self._collection = index.collection

    # -- public API -----------------------------------------------------------

    def search(self, query: DirectionalQuery,
               mode: PruningMode = PruningMode.RD,
               stats: Optional[SearchStats] = None,
               seed_entries: Optional[Iterable[ResultEntry]] = None,
               trace: Optional[QueryTrace] = None,
               deadline: Optional["SupportsExpired"] = None) -> QueryResult:
        """The k nearest POIs satisfying keyword and direction constraints.

        ``seed_entries`` pre-populates the top-k collector — the incremental
        algorithms of Section V pass cached answers here so ``d_k`` starts
        tight.  ``trace`` (a :class:`~repro.core.trace.QueryTrace`) records
        the search's decisions for inspection.

        ``deadline`` is any object with an ``expired() -> bool`` method
        (e.g. :class:`repro.service.Deadline`).  The best-first scan checks
        it cooperatively between bands and between sub-regions; on expiry
        the search stops and returns the best answers found so far with
        ``partial=True`` instead of raising — graceful degradation for the
        serving layer.  Every returned entry is still a verified answer.

        When a :class:`repro.trace.Tracer` is active in the calling context
        the search additionally emits a ``desks.search`` span tree
        (prepare / sub-query / band / wedge stages with page-read and
        pruning attribution); with no active tracer the only cost is one
        ``ContextVar`` lookup.
        """
        tracer = current_tracer()
        if tracer is None:
            return self._search_impl(query, mode, stats, seed_entries,
                                     trace, deadline)
        qtrace = trace if trace is not None else QueryTrace()
        with tracer.span("desks.search", mode=mode.name, k=query.k) as span:
            result = self._search_impl(query, mode, stats, seed_entries,
                                       qtrace, deadline)
            _emit_query_spans(tracer, span, qtrace, result)
        return result

    def _search_impl(self, query: DirectionalQuery,
                     mode: PruningMode,
                     stats: Optional[SearchStats],
                     seed_entries: Optional[Iterable[ResultEntry]],
                     trace: Optional[QueryTrace],
                     deadline: Optional["SupportsExpired"]) -> QueryResult:
        """The untraced search body (``search`` wraps it in a span)."""
        collector = _TopK(query.k, seed=seed_entries)
        conjunctive = query.match_mode is MatchMode.ALL
        term_ids = self._collection.query_term_ids(
            query.keywords, require_all=conjunctive)
        if term_ids is None:
            if trace is not None:
                trace.num_results = len(collector.entries())
            return QueryResult(collector.entries())
        if trace is not None:
            io = self.index.io_stats
            pages_before = io.logical_reads
            tick = time.perf_counter()
        subqueries = self._prepare_subqueries(query, term_ids)
        if trace is not None:
            trace.prepare_seconds = time.perf_counter() - tick
            trace.prepare_pages = io.logical_reads - pages_before
        completed = self._run(query, subqueries, collector, mode, stats,
                              trace, deadline)
        result = QueryResult(collector.entries(), partial=not completed)
        if trace is not None:
            trace.num_results = len(result)
        return result

    def search_basic(self, query: DirectionalQuery,
                     mode: PruningMode = PruningMode.RD,
                     stats: Optional[SearchStats] = None) -> QueryResult:
        """Algorithm 1: requires the interval to fit in one quadrant."""
        pieces = query.basic_subqueries()
        if len(pieces) != 1:
            raise ValueError(
                "search_basic() needs a single-quadrant interval; got "
                f"{len(pieces)} pieces — use search() for complex queries")
        return self.search(query, mode, stats)

    # -- Algorithm 2 ------------------------------------------------------------

    def _prepare_subqueries(self, query: DirectionalQuery,
                            term_ids: Iterable[int]) -> List[_Subquery]:
        conjunctive = query.match_mode is MatchMode.ALL
        subqueries: List[_Subquery] = []
        for quadrant, piece in query.basic_subqueries():
            anchor = self.index.anchor_index(quadrant)
            postings = []
            for term_id in term_ids:
                view = anchor.store.term_postings(term_id)
                if view is None:
                    if conjunctive:
                        postings = None
                        break
                    continue  # ANY: a missing keyword just contributes nothing
                postings.append(view)
            if not postings:
                continue
            # The paper's L^R_K: sub-regions containing every keyword
            # (ALL), or at least one keyword (ANY extension).
            region_lists = [list(v.region_gids) for v in postings]
            gids = (intersect_sorted(region_lists) if conjunctive
                    else union_sorted(region_lists))
            if not gids:
                continue
            geometry = basic_geometry(
                anchor.frame, query.location,
                anchor.frame.basic_interval(piece))
            subqueries.append(_Subquery(quadrant, anchor, geometry,
                                         gids, postings))
        return subqueries

    def _run(self, query: DirectionalQuery, subqueries: List[_Subquery],
             collector: _TopK, mode: PruningMode,
             stats: Optional[SearchStats],
             trace: Optional[QueryTrace] = None,
             deadline: Optional["SupportsExpired"] = None) -> bool:
        """Drive the band queue to exhaustion; False when a deadline cut in."""
        heap: List[Tuple[float, int, int, _Subquery]] = []
        seq = 0

        def push_band(sub: _Subquery, band_idx: int) -> None:
            nonlocal seq
            bands = sub.anchor.regions.bands
            if band_idx >= len(bands):
                return
            heapq.heappush(
                heap,
                (self._band_priority(sub, bands[band_idx], mode),
                 seq, band_idx, sub))
            seq += 1

        for sub in subqueries:
            start = self._initial_band(sub, mode)
            if trace is not None:
                trace.record_subquery(
                    sub.quadrant, sub.geometry.alpha, sub.geometry.beta,
                    start, len(sub.candidate_gids))
            push_band(sub, start)

        while heap:
            if deadline is not None and deadline.expired():
                return False
            priority, _, band_idx, sub = heapq.heappop(heap)
            if priority is INF:
                continue
            if mode.region and priority >= collector.kth_distance:
                # Lemma 1 / Eq. 4 termination: every remaining band is at
                # least this far; no answer can improve the top-k.
                if trace is not None:
                    trace.record_termination(sub.quadrant, band_idx,
                                             priority)
                break
            if stats is not None:
                stats.regions_examined += 1
            band = sub.anchor.regions.bands[band_idx]
            band_trace = (trace.begin_band(sub.quadrant, band_idx, priority)
                          if trace is not None else None)
            if band_trace is not None:
                io = self.index.io_stats
                pages_before = io.logical_reads
                tick = time.perf_counter()
            completed = self._scan_band(query, sub, band, collector, mode,
                                        stats, band_trace, deadline)
            if band_trace is not None:
                band_trace.seconds = time.perf_counter() - tick
                band_trace.pages_read = io.logical_reads - pages_before
            if not completed:
                return False
            push_band(sub, band_idx + 1)
        return True

    def _initial_band(self, sub: _Subquery, mode: PruningMode) -> int:
        """Lemma 1: bands strictly inside the query's radius are skipped."""
        if mode.region and sub.geometry.inside_rect:
            return sub.anchor.regions.band_of_distance(sub.geometry.qd)
        return 0

    def _band_priority(self, sub: _Subquery, band: Band,
                       mode: PruningMode) -> float:
        """Queue key for a band: Eq. 4 under region pruning, else scan order.

        Without region pruning the paper's DESKS+D examines bands in index
        order with no distance-based skipping; encoding the band index as
        the priority reproduces that while reusing the one queue.
        """
        if mode.region:
            return band_mindist(sub.geometry, band.inner_radius,
                                band.outer_radius)
        return float(band.index)

    # -- FindCandRegions + FindCandPOIs ------------------------------------------

    def _scan_band(self, query: DirectionalQuery, sub: _Subquery, band: Band,
                   collector: _TopK, mode: PruningMode,
                   stats: Optional[SearchStats],
                   band_trace: Optional[BandTrace] = None,
                   deadline: Optional["SupportsExpired"] = None) -> bool:
        """Scan one band's sub-regions; False when the deadline cut in."""
        candidates = self._candidate_subregions(sub, band, collector, mode,
                                                stats, band_trace)
        scanned = 0
        completed = True
        for position, (mindist, subregion_gid) in enumerate(candidates):
            if mode.direction and mindist >= collector.kth_distance:
                # Candidates are MINDIST-sorted (Alg. 1 line 9): the whole
                # tail is cut by the tightened d_k bound, i.e. MINDIST-pruned.
                if band_trace is not None:
                    band_trace.subregions_mindist_pruned += \
                        len(candidates) - position
                break
            if deadline is not None and deadline.expired():
                completed = False
                break
            scanned += 1
            if band_trace is not None:
                io = self.index.io_stats
                fetched = band_trace.pois_fetched
                verified = band_trace.pois_verified
                pages = io.logical_reads
                tick = time.perf_counter()
            self._scan_subregion(query, sub, subregion_gid, collector,
                                 stats, band_trace)
            if band_trace is not None:
                band_trace.wedges.append(WedgeTrace(
                    subregion_gid, mindist,
                    time.perf_counter() - tick,
                    band_trace.pois_fetched - fetched,
                    band_trace.pois_verified - verified,
                    io.logical_reads - pages))
        if band_trace is not None:
            band_trace.subregions_kept = scanned
        return completed

    def _candidate_subregions(self, sub: _Subquery, band: Band,
                              collector: _TopK, mode: PruningMode,
                              stats: Optional[SearchStats],
                              band_trace: Optional[BandTrace] = None,
                              ) -> List[Tuple[float, int]]:
        """FINDCANDREGIONS: keyword-bearing sub-regions surviving pruning."""
        regions = sub.anchor.regions
        geo = sub.geometry
        first_gid = band.first_gid
        end_gid = first_gid + len(band.subregions)
        if mode.direction:
            tau_lo, tau_hi = sub.band_bounds(band)
            lo_idx, hi_idx = regions.candidate_wedge_range(band, tau_lo,
                                                           tau_hi)
            gid_lo, gid_hi = first_gid + lo_idx, first_gid + hi_idx
            if band_trace is not None:
                band_trace.tau_bounds = (tau_lo, tau_hi)
                band_trace.wedge_window = (lo_idx, hi_idx)
        else:
            gid_lo, gid_hi = first_gid, end_gid
        selected = _slice_sorted(sub.candidate_gids, gid_lo, gid_hi)
        if band_trace is not None and mode.direction:
            in_band = len(_slice_sorted(sub.candidate_gids, first_gid,
                                        end_gid))
            band_trace.subregions_window_pruned = in_band - len(selected)
            band_trace.mindist_evaluations = len(selected)
        out: List[Tuple[float, int]] = []
        pruned = 0
        for gid in selected:
            if stats is not None:
                stats.subregions_examined += 1
            if mode.direction:
                wedge = regions.subregions[gid]
                mindist = subregion_mindist(
                    geo, band.inner_radius, band.outer_radius,
                    wedge.theta_lo, wedge.theta_hi)
                if mindist >= collector.kth_distance:
                    pruned += 1
                    continue
            else:
                mindist = 0.0  # +R treats the band as one opaque region
            out.append((mindist, gid))
        if band_trace is not None:
            band_trace.subregions_mindist_pruned = pruned
        out.sort()
        return out

    def _scan_subregion(self, query: DirectionalQuery, sub: _Subquery,
                        gid: int, collector: _TopK,
                        stats: Optional[SearchStats],
                        band_trace: Optional[BandTrace] = None) -> None:
        """FINDCANDPOIS: combine POI lists, verify direction + distance."""
        lists = [view.pois_in(gid) for view in sub.postings]
        if query.match_mode is MatchMode.ALL:
            lists.sort(key=len)
            if not lists or not lists[0]:
                return
            survivors = set(lists[0])
            for other in lists[1:]:
                survivors.intersection_update(other)
                if not survivors:
                    return
        else:
            survivors = set()
            for other in lists:
                survivors.update(other)
            if not survivors:
                return
        location = query.location
        if band_trace is not None:
            band_trace.pois_fetched += len(survivors)
        for poi_id in survivors:
            if stats is not None:
                stats.pois_examined += 1
                stats.distance_computations += 1
            poi_location = self._collection.location(poi_id)
            if not poi_location.coincides(location):
                theta = location.direction_to(poi_location)
                if not query.interval.contains(theta):
                    continue
            if stats is not None:
                stats.candidates_verified += 1
            if band_trace is not None:
                band_trace.pois_verified += 1
            distance = location.distance_to(poi_location)
            if distance < collector.kth_distance:
                collector.add(poi_id, distance)


def _slice_sorted(values: Sequence[int], lo: int, hi: int) -> Sequence[int]:
    """Elements of sorted ``values`` in ``[lo, hi)``."""
    start = bisect_left(values, lo)
    end = bisect_left(values, hi, start)
    return values[start:end]


def _emit_query_spans(tracer: Tracer, parent: Span, qtrace: QueryTrace,
                      result: QueryResult) -> None:
    """Convert a filled :class:`QueryTrace` into spans under ``parent``.

    The searcher measures its stages through the (cheap, allocation-light)
    ``QueryTrace`` hooks while running, then converts the measurements into
    a span tree here — one ``desks.prepare`` span, one ``desks.subquery``
    per basic sub-query, one ``desks.band`` per band popped from the
    region queue, one ``desks.wedge`` per sub-region scanned.  Root attrs
    carry the totals that reconcile with
    :class:`~repro.storage.SearchStats` / :class:`~repro.storage.IOStats`.
    """
    parent.annotate(
        results=len(result),
        partial=result.partial,
        terminated_early=qtrace.terminated_early,
        bands_scanned=qtrace.bands_scanned,
        bands_skipped_lemma1=qtrace.bands_skipped_lemma1,
        pages_read=qtrace.total_pages_read,
        pois_fetched=qtrace.total_pois_fetched,
        pois_verified=qtrace.total_pois_verified,
        subregions_examined=qtrace.total_subregions_examined,
        subregions_pruned=(qtrace.total_subregions_window_pruned
                           + qtrace.total_subregions_mindist_pruned),
        mindist_evaluations=qtrace.total_mindist_evaluations,
    )
    tracer.record(
        "desks.prepare", seconds=qtrace.prepare_seconds, parent=parent,
        pages_read=qtrace.prepare_pages, subqueries=len(qtrace.subqueries))
    by_quadrant: Dict[int, Span] = {}
    for sub in qtrace.subqueries:
        quadrant_bands = [b for b in qtrace.bands
                          if b.quadrant == sub.quadrant]
        span = tracer.record(
            "desks.subquery",
            seconds=sum(b.seconds for b in quadrant_bands),
            parent=parent,
            quadrant=sub.quadrant,
            interval_lower=sub.interval_lower,
            interval_upper=sub.interval_upper,
            start_band=sub.start_band,
            candidate_subregions=sub.candidate_subregions,
        )
        by_quadrant[sub.quadrant] = span
    for band in qtrace.bands:
        attrs: Dict[str, object] = {
            "quadrant": band.quadrant,
            "band_index": band.band_index,
            "priority": band.priority,
            "action": band.action,
        }
        if band.action == "scanned":
            attrs.update(
                subregions_kept=band.subregions_kept,
                subregions_window_pruned=band.subregions_window_pruned,
                subregions_mindist_pruned=band.subregions_mindist_pruned,
                subregions_examined=band.subregions_examined,
                mindist_evaluations=band.mindist_evaluations,
                pois_fetched=band.pois_fetched,
                pois_verified=band.pois_verified,
                pages_read=band.pages_read,
            )
            if band.tau_bounds is not None:
                attrs["tau_lower"], attrs["tau_upper"] = band.tau_bounds
            if band.wedge_window is not None:
                attrs["wedge_window"] = list(band.wedge_window)
        band_span = tracer.record(
            "desks.band", seconds=band.seconds,
            parent=by_quadrant.get(band.quadrant, parent), **attrs)
        for wedge in band.wedges:
            tracer.record(
                "desks.wedge", seconds=wedge.seconds, parent=band_span,
                gid=wedge.gid, mindist=wedge.mindist,
                pois_fetched=wedge.pois_fetched,
                pois_verified=wedge.pois_verified,
                pages_read=wedge.pages_read)
