"""Incremental re-querying when the user changes direction (paper Sec. V).

Mobile users sweep or widen their search direction; answering each new
query from scratch wastes the work of the previous one.  The paper caches
the previous query's k answers and supports two updates:

* **increase** — the interval widens to ``[alpha' <= alpha, beta' >= beta]``
  (two-finger spread).  Every old answer remains an answer, and the old
  ``d_k`` upper-bounds the new one, so only the two new wedges
  ``[alpha', alpha]`` and ``[beta, beta']`` need searching, seeded with the
  cached answers.
* **move** — the interval rotates by ``delta`` (compass turn).  Cached
  answers inside the overlap are kept; the newly swept wedge is searched;
  if that already yields k answers within the old ``d_k`` the overlap needs
  no re-examination, otherwise the query is answered from scratch (the
  paper's fallback for large rotations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..geometry import (ANGLE_EPS, TWO_PI, DirectionInterval,
                        normalize_angle)
from ..storage import SearchStats
from .query import DirectionalQuery, QueryResult, ResultEntry
from .search import DesksSearcher, PruningMode


@dataclass
class CachedAnswer:
    """The previous query and its verified top-k answers."""

    query: DirectionalQuery
    entries: List[ResultEntry]

    @property
    def kth_distance(self) -> float:
        return self.entries[-1].distance if self.entries else float("inf")

    @property
    def is_complete(self) -> bool:
        """True when the cache holds a full k answers.

        A cache with fewer than k answers means the old region is exhausted;
        the incremental shortcuts below assume ``d_k`` is meaningful, so an
        incomplete cache forces a fresh search.
        """
        return len(self.entries) >= self.query.k


class IncrementalSearcher:
    """A DESKS searcher that reuses the previous answer across updates."""

    def __init__(self, searcher: DesksSearcher,
                 mode: PruningMode = PruningMode.RD) -> None:
        self.searcher = searcher
        self.mode = mode
        self._cache: Optional[CachedAnswer] = None

    # -- base query ------------------------------------------------------------

    def initial_search(self, query: DirectionalQuery,
                       stats: Optional[SearchStats] = None) -> QueryResult:
        """Answer ``query`` from scratch and prime the cache."""
        result = self.searcher.search(query, self.mode, stats)
        self._cache = CachedAnswer(query, list(result.entries))
        return result

    @property
    def cached(self) -> Optional[CachedAnswer]:
        return self._cache

    # -- Sec. V-A: increasing the direction ---------------------------------------

    def increase_direction(self, new_interval: DirectionInterval,
                           stats: Optional[SearchStats] = None,
                           ) -> QueryResult:
        """Re-answer with a widened interval, reusing cached answers."""
        cache = self._require_cache()
        old = cache.query.interval
        grow_lower, grow_upper = _widening_of(old, new_interval)
        if grow_lower is None:
            raise ValueError(
                f"{new_interval} does not contain the cached interval {old}")
        new_query = cache.query.with_interval(new_interval)
        if not cache.is_complete or new_interval.is_full and old.is_full:
            return self.initial_search(new_query, stats)

        entries = list(cache.entries)
        for wedge in _wedges(old, grow_lower, grow_upper):
            wedge_query = new_query.with_interval(wedge)
            partial = self.searcher.search(
                wedge_query, self.mode, stats, seed_entries=entries)
            entries = list(partial.entries)
        result = QueryResult(entries)
        self._cache = CachedAnswer(new_query, list(entries))
        return result

    # -- Sec. V-B: moving the direction ------------------------------------------

    def move_direction(self, delta: float,
                       stats: Optional[SearchStats] = None) -> QueryResult:
        """Re-answer with the interval rotated by ``delta`` radians."""
        cache = self._require_cache()
        old = cache.query.interval
        new_interval = old.rotate(delta)
        new_query = cache.query.with_interval(new_interval)
        width = old.width
        if (abs(delta) >= width - ANGLE_EPS or not cache.is_complete
                or old.is_full):
            # No usable overlap (or no usable bound): from scratch.
            return self.initial_search(new_query, stats)

        location = cache.query.location
        retained = [
            e for e in cache.entries
            if self._entry_in_interval(e, location, new_interval)]
        # The newly swept wedge: [beta, beta+delta] when rotating CCW,
        # [alpha+delta, alpha] when rotating CW.
        if delta >= 0.0:
            wedge = DirectionInterval(old.upper, old.upper + delta)
        else:
            wedge = DirectionInterval(old.lower + delta, old.lower)
        wedge_result = self.searcher.search(
            new_query.with_interval(wedge), self.mode, stats,
            seed_entries=retained)
        merged = list(wedge_result.entries)
        d_k_old = cache.kth_distance
        complete = (len(merged) >= new_query.k
                    and merged[-1].distance <= d_k_old + ANGLE_EPS)
        if complete:
            # Everything in the overlap nearer than d_k_old was cached, and
            # the merged top-k sits within d_k_old: nothing was missed.
            result = QueryResult(merged)
        else:
            # POIs in the overlap at distance >= d_k_old were never seen by
            # the old query; re-examine the overlap (paper Sec. V-B).  The
            # wedge is already fully answered inside ``merged``, so only
            # the overlap interval needs searching, seeded with ``merged``
            # for a tight d_k from the start.
            if delta >= 0.0:
                overlap = DirectionInterval(old.lower + delta, old.upper)
            else:
                overlap = DirectionInterval(old.lower, old.upper + delta)
            overlap_result = self.searcher.search(
                new_query.with_interval(overlap), self.mode, stats,
                seed_entries=merged)
            result = QueryResult(list(overlap_result.entries))
        self._cache = CachedAnswer(new_query, list(result.entries))
        return result

    # -- extension: moving the *location* ------------------------------------------
    #
    # The paper's footnote excludes moving queries (changing locations);
    # we add the natural extension: cached answers are re-scored from the
    # new location and seed the collector, so a short hop starts with a
    # nearly-tight d_k instead of infinity.  Exactness is unconditional —
    # seeding only prunes, never skips.

    def move_location(self, new_x: float, new_y: float,
                      stats: Optional[SearchStats] = None) -> QueryResult:
        """Re-answer after the user moved, reusing cached answers as seeds."""
        from ..geometry import Point

        cache = self._require_cache()
        new_location = Point(new_x, new_y)
        new_query = DirectionalQuery(new_location, cache.query.interval,
                                     cache.query.keywords, cache.query.k)
        collection = self.searcher.index.collection
        seeds = []
        for entry in cache.entries:
            poi = collection[entry.poi_id]
            if new_query.matches(poi.location, poi.keywords):
                seeds.append(ResultEntry(
                    entry.poi_id, new_location.distance_to(poi.location)))
        result = self.searcher.search(new_query, self.mode, stats,
                                      seed_entries=seeds)
        self._cache = CachedAnswer(new_query, list(result.entries))
        return result

    # -- internals ---------------------------------------------------------------

    def _require_cache(self) -> CachedAnswer:
        if self._cache is None:
            raise RuntimeError(
                "no cached query; call initial_search() first")
        return self._cache

    def _entry_in_interval(self, entry: ResultEntry, location,
                           interval: DirectionInterval) -> bool:
        poi_location = self.searcher.index.collection.location(entry.poi_id)
        if poi_location.coincides(location):
            return True
        return interval.contains(location.direction_to(poi_location))


def _widening_of(old: DirectionInterval, new: DirectionInterval):
    """How far ``new`` extends ``old`` on each side; ``(None, None)`` if it
    is not a widening."""
    if new.is_full:
        # Any interval widens to full; split the growth evenly.
        grow = TWO_PI - old.width
        return (grow / 2.0, grow / 2.0)
    grow_lower = normalize_angle(old.lower - new.lower)
    if grow_lower > TWO_PI - ANGLE_EPS:
        grow_lower = 0.0
    grow_upper = new.width - old.width - grow_lower
    if grow_upper < -ANGLE_EPS:
        return (None, None)
    return (grow_lower, max(grow_upper, 0.0))


def _wedges(old: DirectionInterval, grow_lower: float,
            grow_upper: float) -> List[DirectionInterval]:
    """The new angular wedges created by widening ``old``."""
    wedges = []
    if grow_lower > ANGLE_EPS:
        wedges.append(DirectionInterval(old.lower - grow_lower, old.lower))
    if grow_upper > ANGLE_EPS:
        wedges.append(DirectionInterval(old.upper, old.upper + grow_upper))
    return wedges
