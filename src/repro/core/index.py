"""The DESKS index: four anchor structures plus keyword stores.

As in the paper, the full index is the band/sub-region structure *and* the
keyword lists replicated for all four corners of the dataset MBR — a basic
query in quadrant ``i`` runs entirely against anchor ``i``'s structure, and
a complex query fans out to the anchors its interval touches.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..datasets import POICollection
from ..geometry import Anchor, CanonicalFrame
from ..storage import (
    ChecksummedPageStore,
    FilePageStore,
    IOStats,
    InMemoryPageStore,
    PageStore,
    ScrubReport,
)
from .regions import AnchorRegions
from .stores import (
    CompressedDiskKeywordStore,
    DiskKeywordStore,
    MemoryKeywordStore,
)

#: Paper guidance (Section VI-A): each band is best at ~10,000 POIs and each
#: sub-region at ~100 POIs; these helpers derive N and M that way.
POIS_PER_BAND = 10_000
POIS_PER_SUBREGION = 100


def recommended_bands(num_pois: int) -> int:
    """N from the paper's ~10k-POIs-per-band rule (at least 1)."""
    return max(1, round(num_pois / POIS_PER_BAND))


def recommended_wedges(num_pois: int, num_bands: Optional[int] = None) -> int:
    """M from the paper's ~100-POIs-per-sub-region rule (at least 1)."""
    bands = num_bands if num_bands is not None else recommended_bands(num_pois)
    per_band = num_pois / bands
    return max(1, round(per_band / POIS_PER_SUBREGION))


@dataclass
class AnchorIndex:
    """One anchor's region structure and keyword store."""

    frame: CanonicalFrame
    regions: AnchorRegions
    store: object  # MemoryKeywordStore | DiskKeywordStore


class DesksIndex:
    """The complete direction-aware index over a POI collection.

    Parameters
    ----------
    collection:
        The POIs to index.
    num_bands, num_wedges:
        The paper's ``N`` and ``M``; defaults follow the paper's tuning
        guidance (~10k POIs per band, ~100 per sub-region).
    disk_based:
        Keyword lists in a paged record file (True) or in memory (False).
    disk_path_prefix:
        When disk-based, store pages in real files ``{prefix}.a{i}.bin``;
        ``None`` keeps pages in memory while still counting page I/O.
    disk_format:
        ``"sliced"`` (default) keeps fixed-width POI lists readable by
        pointer slices — the paper's layout; ``"compressed"`` delta-varint
        encodes them (smaller, but every fetch reads the whole posting;
        see the storage ablation benchmark).
    checksums:
        When disk-based, wrap each anchor's page store in a
        :class:`~repro.storage.ChecksummedPageStore`: every page carries a
        CRC32C frame with torn-write detection, reads of damaged pages
        raise :class:`~repro.storage.PageCorruptionError`, and
        :meth:`scrub` can verify the whole index.
    """

    def __init__(self, collection: POICollection,
                 num_bands: Optional[int] = None,
                 num_wedges: Optional[int] = None,
                 disk_based: bool = False,
                 disk_path_prefix: Optional[str] = None,
                 buffer_capacity: int = 256,
                 anchors: Optional[Sequence[Anchor]] = None,
                 disk_format: str = "sliced",
                 page_size: Optional[int] = None,
                 checksums: bool = False) -> None:
        if disk_format not in ("sliced", "compressed"):
            raise ValueError(
                f"disk_format must be 'sliced' or 'compressed', got "
                f"{disk_format!r}")
        page_kwargs = {} if page_size is None else {"page_size": page_size}
        self.collection = collection
        n = len(collection)
        self.num_bands = (num_bands if num_bands is not None
                          else recommended_bands(n))
        self.num_wedges = (num_wedges if num_wedges is not None
                           else recommended_wedges(n, self.num_bands))
        self.disk_based = disk_based
        self.checksums = checksums and disk_based
        self.io_stats = IOStats()
        self.anchors: List[Optional[AnchorIndex]] = [None] * 4

        locations = [p.location for p in collection]
        term_ids = [collection.term_ids(i) for i in range(n)]
        build_anchors = (list(anchors) if anchors is not None
                         else list(Anchor))

        started = time.perf_counter()
        for anchor in build_anchors:
            frame = CanonicalFrame(anchor, collection.mbr)
            regions = AnchorRegions(frame, locations,
                                    self.num_bands, self.num_wedges)
            if disk_based:
                if disk_path_prefix is not None:
                    page_store = FilePageStore(
                        f"{disk_path_prefix}.a{anchor.value}.bin",
                        stats=self.io_stats, **page_kwargs)
                else:
                    page_store = InMemoryPageStore(stats=self.io_stats,
                                                   **page_kwargs)
                if checksums:
                    page_store = ChecksummedPageStore(page_store)
                store_cls = (DiskKeywordStore if disk_format == "sliced"
                             else CompressedDiskKeywordStore)
                store = store_cls(regions, term_ids, page_store,
                                  buffer_capacity=buffer_capacity)
            else:
                store = MemoryKeywordStore(regions, term_ids)
            self.anchors[anchor.value] = AnchorIndex(frame, regions, store)
        self.build_seconds = time.perf_counter() - started

    # -- access ------------------------------------------------------------

    def anchor_index(self, quadrant: int) -> AnchorIndex:
        """The anchor structure serving basic queries in ``quadrant``."""
        anchor = self.anchors[quadrant]
        if anchor is None:
            raise ValueError(
                f"anchor {quadrant} was not built (anchors={self.built_anchors()})")
        return anchor

    def built_anchors(self) -> List[int]:
        """Quadrants whose anchor structures exist."""
        return [i for i, a in enumerate(self.anchors) if a is not None]

    # -- size accounting -------------------------------------------------------

    @property
    def size_bytes(self) -> int:
        """Approximate total index size across all built anchors.

        Counts the keyword stores plus the region skeleton (radii, angles
        and slice bounds at ~8 bytes per value, poi_order at 4 bytes/POI).
        """
        total = 0
        for anchor in self.anchors:
            if anchor is None:
                continue
            total += anchor.store.size_bytes
            regions = anchor.regions
            total += 8 * (regions.num_bands + 4 * regions.num_subregions)
            total += 4 * len(regions.poi_order)
        return total

    def drop_caches(self) -> None:
        """Evict all disk-store buffer pools (cold-cache runs)."""
        for anchor in self.anchors:
            if anchor is not None and hasattr(anchor.store, "drop_cache"):
                anchor.store.drop_cache()

    # -- durability -------------------------------------------------------------

    def page_stores(self) -> List[PageStore]:
        """The page store beneath each disk-backed anchor (empty when the
        index is memory-resident)."""
        stores: List[PageStore] = []
        for anchor in self.anchors:
            if anchor is not None and hasattr(anchor.store, "page_store"):
                stores.append(anchor.store.page_store)
        return stores

    def scrub(self) -> ScrubReport:
        """Verify every page of every checksummed anchor store.

        Dirty buffered pages are flushed first so the verification covers
        what a crash-then-restart would actually read back.  Raises when
        the index was not built with ``checksums=True`` (there is nothing
        trustworthy to verify).
        """
        if not self.checksums:
            raise ValueError(
                "scrub() needs an index built with checksums=True")
        report = ScrubReport()
        for anchor in self.anchors:
            if anchor is None:
                continue
            anchor.store.flush()
            report.merge(anchor.store.page_store.scrub())
        return report

    def close(self) -> None:
        """Close disk-backed stores."""
        for anchor in self.anchors:
            if anchor is not None and hasattr(anchor.store, "close"):
                anchor.store.close()

    def __enter__(self) -> "DesksIndex":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
