"""MINDIST functions and direction bounds for bands and sub-regions.

Everything here operates in the canonical frame of one anchor: the anchor is
the origin, the dataset rectangle is ``[0, L] x [0, H]``, and the basic
query's direction interval satisfies ``0 <= alpha <= beta <= pi/2``.

* :func:`band_mindist` — the paper's Eq. 4, ``MINDIST(q, R_i)``.
* :func:`subregion_mindist` — the paper's Table I, ``MINDIST(q, R_ij)``.
* :meth:`BasicQueryGeometry.band_direction_bounds` — the tighter per-band
  bounds ``tau_l^{R_i}`` / ``tau_u^{R_i}`` of Eqs. 5-6 (Lemma 4), falling
  back to the region-wide bounds of Lemma 2.

All values are *lower bounds* on true distances: when floating-point
degeneracies make one of the paper's intersection points undefined, the code
falls back to the plain annulus bound, which is always valid — a looser
bound costs work, never correctness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from ..geometry import (
    HALF_PI,
    DirectionInterval,
    Point,
    ray_circle_intersection,
    ray_ray_intersection,
    ray_rectangle_exit,
    signed_angle,
    signed_angle_of,
)

INF = math.inf

#: Slack added to the Lemma 2/4 direction windows before pruning.  POI
#: anchor angles and the query geometry's angles are computed by different
#: code paths (vectorised index build vs. per-query ``math`` calls), so two
#: mathematically equal angles can differ by an ulp — enough for an exact
#: window to drop a POI sitting precisely on its edge (e.g. a POI at the
#: query location).  Widening is always sound here: a looser direction
#: window admits extra sub-regions to *verify*, never wrong answers.
TAU_SLACK = 1e-9


def polar_point(radius: float, theta: float) -> Point:
    """The point at polar coordinates ``(radius, theta)`` about the origin."""
    return Point(radius * math.cos(theta), radius * math.sin(theta))


def annulus_mindist(qd: float, inner: float, outer: float) -> float:
    """Distance from a point at radius ``qd`` to the annulus [inner, outer].

    Direction-free and valid for any query position; the universal fallback
    lower bound.
    """
    if qd < inner:
        return inner - qd
    if outer is not INF and qd > outer:
        return qd - outer
    return 0.0


@dataclass
class BasicQueryGeometry:
    """Cached per-(sub)query geometry: q in canonical coordinates + bounds.

    Built once per basic sub-query; every band and sub-region bound below
    reads from it.  ``inside_rect`` records whether the canonical query point
    lies inside the dataset rectangle — the paper's lemmas assume it does,
    and when it does not we keep only the fallback bounds (documented in
    DESIGN.md).
    """

    q: Point
    alpha: float
    beta: float
    length: float
    height: float

    def __post_init__(self) -> None:
        self.qd = math.hypot(self.q.x, self.q.y)
        if self.qd > 0.0:
            self.q_theta = signed_angle_of(self.q.x, self.q.y)
        else:
            # A query on the anchor has no direction; the midpoint keeps
            # every case formula consistent (all rays leave the origin).
            self.q_theta = (self.alpha + self.beta) / 2.0
        self.inside_rect = (
            -1e-9 <= self.q.x <= self.length + 1e-9
            and -1e-9 <= self.q.y <= self.height + 1e-9)
        # Exit points of the alpha/beta rays through the rectangle boundary
        # (the paper's q_alpha^R and q_beta^R, Eq. 3) and their anchor
        # directions, used by Lemma 2 and as the Eq. 5/6 fallback.
        self._exit_alpha = ray_rectangle_exit(
            self.q, self.alpha, self.length, self.height)
        self._exit_beta = ray_rectangle_exit(
            self.q, self.beta, self.length, self.height)
        self.theta_exit_alpha = _anchor_angle(self._exit_alpha)
        self.theta_exit_beta = _anchor_angle(self._exit_beta)

    # -- Lemma 2: region-wide direction bounds ------------------------------

    def region_direction_bounds(self) -> Tuple[float, float]:
        """``(tau_l^R, tau_u^R)``: anchor-angle range of possible answers."""
        if not self.inside_rect:
            return (0.0, HALF_PI)
        lo = self.q_theta
        if self.theta_exit_alpha is not None:
            lo = min(lo, self.theta_exit_alpha)
        hi = self.q_theta
        if self.theta_exit_beta is not None:
            hi = max(hi, self.theta_exit_beta)
        if self.qd <= 0.0:
            # A query at the anchor corner: a POI co-located with it is an
            # answer regardless of direction, but its anchor angle is stored
            # as the atan2(0, 0) = 0 convention — admit it.  (hypot is
            # non-negative, so <= 0 is the exact-zero case without an
            # exact float comparison.)
            lo = 0.0
        return (max(lo - TAU_SLACK, 0.0), min(hi + TAU_SLACK, HALF_PI))

    # -- Eqs. 5-6 / Lemma 4: per-band direction bounds -------------------------

    def band_direction_bounds(self, outer_radius: float,
                              ) -> Tuple[float, float]:
        """``(tau_l^{R_i}, tau_u^{R_i})`` for the band with ``outer_radius``.

        Tighter than Lemma 2 because within the band the alpha/beta rays
        cannot run past the band's outer arc.
        """
        if not self.inside_rect:
            return (0.0, HALF_PI)
        region_lo, region_hi = self.region_direction_bounds()
        if outer_radius is INF:
            return (region_lo, region_hi)

        if self.q_theta <= self.alpha:
            lo = self.q_theta
        else:
            hit = ray_circle_intersection(self.q, self.alpha, outer_radius)
            if hit is not None and self._in_rect(hit):
                lo = _anchor_angle(hit)
                if lo is None:  # hit the origin itself
                    lo = region_lo
                lo = min(lo, self.q_theta)
            else:
                lo = region_lo

        if self.q_theta >= self.beta:
            hi = self.q_theta
        else:
            hit = ray_circle_intersection(self.q, self.beta, outer_radius)
            if hit is not None and self._in_rect(hit):
                hi = _anchor_angle(hit)
                if hi is None:
                    hi = region_hi
                hi = max(hi, self.q_theta)
            else:
                hi = region_hi
        if self.qd <= 0.0:
            lo = 0.0  # anchor-resident POIs carry the theta = 0 convention
        return (max(lo - TAU_SLACK, 0.0), min(hi + TAU_SLACK, HALF_PI))

    def _in_rect(self, p: Point) -> bool:
        return (-1e-9 <= p.x <= self.length + 1e-9
                and -1e-9 <= p.y <= self.height + 1e-9)

    # -- distances to paper intersection points ---------------------------------

    def dist_to_inner_arc_along(self, phi: float, inner: float,
                                ) -> Optional[float]:
        """Distance to ``q_phi^{r_inner}`` (Eq. 1 point), if it exists."""
        hit = ray_circle_intersection(self.q, phi, inner)
        if hit is None:
            return None
        return self.q.distance_to(hit)

    def dist_to_boundary_ray_along(self, phi: float, boundary_theta: float,
                                   ) -> Optional[float]:
        """Distance to ``q_phi^{theta}`` (Eq. 2 point), if it exists."""
        hit = ray_ray_intersection(self.q, phi, boundary_theta)
        if hit is None:
            return None
        return self.q.distance_to(hit)


def _anchor_angle(p: Optional[Point]) -> Optional[float]:
    """Direction of ``p`` from the origin, ``None`` for the origin/missing."""
    if p is None or (p.x == 0.0 and p.y == 0.0):
        return None
    return signed_angle_of(p.x, p.y)


# -- Eq. 4: MINDIST(q, R_i) ------------------------------------------------------


def band_mindist(geo: BasicQueryGeometry, inner: float,
                 outer: float) -> float:
    """The paper's Eq. 4: least distance from q to an answer in band R_i.

    ``inf`` signals Lemma 1: a band wholly inside the query's radius cannot
    contain answers (valid only for the canonical basic-query setting with
    the query inside the rectangle).
    """
    if not geo.inside_rect:
        return annulus_mindist(geo.qd, inner, outer)
    if geo.qd >= outer:
        return INF  # Lemma 1
    if geo.qd >= inner:
        return 0.0
    # q is inside the inner arc.
    if geo.alpha <= geo.q_theta <= geo.beta:
        return inner - geo.qd
    phi = geo.alpha if geo.q_theta < geo.alpha else geo.beta
    d = geo.dist_to_inner_arc_along(phi, inner)
    if d is None:
        return inner - geo.qd  # fallback lower bound
    return d


# -- Table I: MINDIST(q, R_ij) --------------------------------------------------


def subregion_mindist(geo: BasicQueryGeometry, inner: float, outer: float,
                      theta_lo: float, theta_hi: float) -> float:
    """The paper's Table I: least distance from q to an answer in R_ij.

    ``inner``/``outer`` are the band radii, ``theta_lo``/``theta_hi`` the
    sub-region's direction range (``theta_{ij-1}`` / ``theta_ij``).
    """
    fallback = annulus_mindist(geo.qd, inner, outer)
    if not geo.inside_rect:
        return fallback
    if geo.qd >= outer:
        return INF  # q in R_i^>, Lemma 1
    value: Optional[float]
    if geo.qd < inner:
        value = _mindist_from_inside_inner(geo, inner, theta_lo, theta_hi)
    else:
        value = _mindist_from_within_band(geo, theta_lo, theta_hi)
    if value is None:
        return fallback
    return max(value, fallback)


def _mindist_from_inside_inner(geo: BasicQueryGeometry, inner: float,
                               theta_lo: float, theta_hi: float,
                               ) -> Optional[float]:
    """Table I rows for ``q`` inside the inner arc (``R_i^<``)."""
    if geo.q_theta < theta_lo:
        # Row R_i^<[0, theta_{ij-1}): closest corner is the inner/low-angle
        # one, the paper's "bottom-right" p_{i-1,j-1}.
        corner = polar_point(inner, theta_lo)
        return _corner_case(
            geo, corner,
            below=lambda: geo.dist_to_inner_arc_along(geo.alpha, inner),
            above=lambda: geo.dist_to_boundary_ray_along(geo.beta, theta_lo))
    if geo.q_theta < theta_hi:
        # Row R_i^<[theta_{ij-1}, theta_ij): radially below the sub-region.
        if geo.alpha <= geo.q_theta <= geo.beta:
            return inner - geo.qd
        phi = geo.alpha if geo.q_theta < geo.alpha else geo.beta
        return geo.dist_to_inner_arc_along(phi, inner)
    # Row R_i^<[theta_ij, pi/2]: closest corner is the inner/high-angle one,
    # the paper's "bottom-left" p_{i-1,j}.
    corner = polar_point(inner, theta_hi)
    return _corner_case(
        geo, corner,
        below=lambda: geo.dist_to_boundary_ray_along(geo.alpha, theta_hi),
        above=lambda: geo.dist_to_inner_arc_along(geo.beta, inner))


def _mindist_from_within_band(geo: BasicQueryGeometry, theta_lo: float,
                              theta_hi: float) -> Optional[float]:
    """Table I rows for ``q`` inside the band's radius range (``R_i``)."""
    if geo.q_theta < theta_lo:
        # Row R_i[0, theta_{ij-1}): reach the low-angle boundary ray along
        # the beta ray (beta <= pi/2 guarantees this is the nearest point).
        return geo.dist_to_boundary_ray_along(geo.beta, theta_lo)
    if geo.q_theta < theta_hi:
        return 0.0  # q is inside R_ij
    # Row R_i[theta_ij, pi/2]: reach the high-angle boundary ray along alpha.
    return geo.dist_to_boundary_ray_along(geo.alpha, theta_hi)


def _corner_case(geo: BasicQueryGeometry, corner: Point, below, above,
                 ) -> Optional[float]:
    """Shared corner logic of Table I rows 2 and 4.

    When the corner's direction from q falls inside ``[alpha, beta]`` the
    corner itself is nearest; when the sector aims below it (``< alpha``)
    or above it (``> beta``) the nearest point slides along the matching
    query ray, computed by the ``below``/``above`` thunks.
    """
    if corner.coincides(geo.q):
        return 0.0
    # The corner can sit clockwise of the positive x-axis as seen from q
    # (its direction wraps into (3*pi/2, 2*pi)); compared raw against
    # alpha in [0, pi/2] that would masquerade as "above beta".  Signed
    # representation puts it below alpha, where it belongs.
    direction = signed_angle(geo.q.direction_to(corner))
    if direction < geo.alpha:
        return below()
    if direction > geo.beta:
        return above()
    return geo.q.distance_to(corner)


def basic_geometry(frame, world_point: Point,
                   canonical_interval: DirectionInterval,
                   ) -> BasicQueryGeometry:
    """Build the cached geometry for a basic sub-query against ``frame``."""
    return BasicQueryGeometry(
        q=frame.to_canonical(world_point),
        alpha=canonical_interval.lower,
        beta=canonical_interval.upper,
        length=frame.length,
        height=frame.height,
    )
