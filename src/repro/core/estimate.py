"""Cardinality and distance estimation for direction-aware queries.

Classic System-R style estimation adapted to the paper's query class:

* **keyword selectivity** from document frequencies, assuming term
  independence (conjunctive: product of per-term selectivities;
  disjunctive: inclusion-exclusion under independence);
* **direction selectivity** as the interval's fraction of the full circle
  — exact in expectation for a query located where POI directions are
  uniform, an approximation elsewhere;
* **k-th distance** by inverting the expected count in a sector: a sector
  of angle ``w`` and radius ``r`` around the query holds about
  ``density * w * r^2 / 2`` matching POIs, so the k-th nearest is expected
  near ``sqrt(2k / (w * density))``.

Estimates drive nothing in the search algorithms (DESKS's pruning needs no
statistics); they exist for planning-style uses — workload sizing, CLI
hints, sanity checks — and are validated by correlation tests, not by
exactness.
"""

from __future__ import annotations

import math
from typing import Optional

from ..datasets import POICollection
from .query import DirectionalQuery, MatchMode


class CardinalityEstimator:
    """Estimates result counts and k-th distances for a collection."""

    def __init__(self, collection: POICollection) -> None:
        self.collection = collection
        self._num_pois = len(collection)
        mbr = collection.mbr
        # Degenerate extents (collinear data) get a floor so densities
        # remain finite; estimates there are order-of-magnitude at best.
        self._area = max(mbr.width * mbr.height, 1e-9)

    # -- selectivities -------------------------------------------------------

    def keyword_selectivity(self, query: DirectionalQuery) -> float:
        """Fraction of POIs expected to satisfy the keyword predicate."""
        vocabulary = self.collection.vocabulary
        fractions = []
        for keyword in query.keywords:
            term_id = vocabulary.id_of(keyword)
            df = vocabulary.doc_frequency(term_id) if term_id is not None \
                else 0
            fractions.append(df / max(self._num_pois, 1))
        if query.match_mode is MatchMode.ALL:
            out = 1.0
            for f in fractions:
                out *= f
            return out
        miss = 1.0
        for f in fractions:
            miss *= (1.0 - f)
        return 1.0 - miss

    def direction_selectivity(self, query: DirectionalQuery) -> float:
        """Fraction of the plane's directions inside the query interval."""
        return query.interval.width / (2.0 * math.pi)

    # -- counts and distances ------------------------------------------------------

    def estimate_matching_pois(self, query: DirectionalQuery) -> float:
        """Expected number of POIs satisfying keywords *and* direction.

        Ignores boundary clipping of the sector against the dataset MBR;
        good when the query sits well inside the data, optimistic near the
        edges.
        """
        return (self._num_pois * self.keyword_selectivity(query)
                * self.direction_selectivity(query))

    def estimate_kth_distance(self, query: DirectionalQuery,
                              ) -> Optional[float]:
        """Expected distance of the k-th answer; ``None`` when the query
        is expected to run dry (fewer matches than ``k`` in the dataset).
        """
        expected_total = self.estimate_matching_pois(query)
        if expected_total < query.k:
            return None
        density = (self._num_pois * self.keyword_selectivity(query)
                   / self._area)
        if density <= 0.0:
            return None
        width = max(query.interval.width, 1e-9)
        return math.sqrt(2.0 * query.k / (width * density))

    def summary(self, query: DirectionalQuery) -> str:
        """One-line human summary for CLI/debug output."""
        matches = self.estimate_matching_pois(query)
        kth = self.estimate_kth_distance(query)
        kth_text = f"~{kth:.1f}" if kth is not None else "beyond dataset"
        return (f"estimated in-direction matches: {matches:.1f} "
                f"(keyword selectivity "
                f"{self.keyword_selectivity(query):.4f}); "
                f"expected {query.k}-th distance: {kth_text}")
