"""The versioned wire format: length-prefixed, CRC-checked binary frames.

Every message on a DESKS network connection — client to front door, front
door to shard server — is one *frame*::

    [magic u16][version u8][type u8][payload length u32][crc32 u32] payload

The 12-byte header is ``struct`` format :data:`HEADER_FORMAT`; the CRC
is seeded with the frame's type byte and then covers the payload, so a
flipped bit anywhere in the body — or a type byte flipped to another
*valid* type, which magic/version/length checks cannot see — surfaces as
a typed :class:`ChecksumMismatch` before any field is parsed.  The
header is validated *before* the payload is read: a bad magic, an unknown
version, or a length beyond :data:`MAX_PAYLOAD` (a corrupted or hostile
length prefix must not make a peer allocate gigabytes) each raise their
own :class:`ProtocolError` subclass, and the connection is the unit of
damage — both ends drop it and reconnect; neither ever hangs or crashes.

Payloads are hand-rolled ``struct`` encodings (no pickle — unpickling
network bytes is code execution; no JSON — floats must round-trip
bit-exactly for the cluster's answers to equal the unsharded index's):

* :func:`encode_search_request` — a :class:`~repro.core.DirectionalQuery`
  plus the request's *remaining deadline budget* in seconds, so the
  cooperative deadline from :mod:`repro.service` propagates across the
  wire and a shard server stops searching when the caller's budget is
  gone;
* :func:`encode_search_response` — result entries (id + f64 distance),
  partial/cached/degraded flags, the data generation, server-side
  latency, and the :class:`~repro.storage.SearchStats` counters;
* health and stats payloads for probes and scraping;
* :func:`encode_statement_request` — a DQL statement (:mod:`repro.lang`)
  as opaque text plus the same deadline budget, answered by a
  :func:`encode_statement_response` frame that nests the existing search
  or stats payloads so the text path can never drift from the binary
  one;
* :func:`encode_error` — a typed :class:`ErrorCode` (``OVERLOAD``,
  ``BAD_REQUEST``, ...) plus a human message; ``OVERLOAD`` is how a
  loaded server sheds work instead of queueing it unboundedly.
"""

from __future__ import annotations

import math
import struct
import zlib
from dataclasses import dataclass
from enum import IntEnum
from typing import Callable, List, Optional, Sequence, Tuple

from ..core import DirectionalQuery, MatchMode, QueryResult, ResultEntry
from ..storage import SearchStats

#: First two bytes of every frame; chosen to be invalid UTF-8 so an HTTP
#: or text client poking the port fails fast with :class:`BadMagic`.
MAGIC = 0xD35C

#: Wire format version.  Bump on any incompatible payload change; peers
#: refuse mismatched versions with a typed error instead of misparsing.
#: Version 2 seeds the CRC with the type byte (v1 left the type the only
#: header byte a single bit-flip could silently change to a valid frame).
WIRE_VERSION = 2

#: Frame header layout: magic, version, message type, payload length,
#: payload CRC32.  Network byte order throughout.
HEADER_FORMAT = "!HBBII"

#: Bytes in an encoded frame header.
HEADER_SIZE = struct.calcsize(HEADER_FORMAT)

#: Hard ceiling on payload size.  A length prefix beyond this is treated
#: as corruption (or hostility), never as an allocation request.
MAX_PAYLOAD = 8 * 1024 * 1024

#: Budget sentinel for "no deadline" (budgets are non-negative seconds).
_UNBOUNDED_BUDGET = -1.0

_ENTRY = struct.Struct("!qd")
_STATS = struct.Struct("!6Q")
_F64 = struct.Struct("!d")
_U32 = struct.Struct("!I")
_U16 = struct.Struct("!H")


class MessageType(IntEnum):
    """Frame types; requests are odd, their responses even."""

    SEARCH_REQUEST = 1
    SEARCH_RESPONSE = 2
    HEALTH_REQUEST = 3
    HEALTH_RESPONSE = 4
    STATS_REQUEST = 5
    STATS_RESPONSE = 6
    ERROR = 7
    STATEMENT_REQUEST = 9
    STATEMENT_RESPONSE = 10


class ErrorCode(IntEnum):
    """Typed failure causes carried by :attr:`MessageType.ERROR` frames."""

    #: Admission control refused the request; retry elsewhere or later.
    OVERLOAD = 1
    #: The request frame parsed but its payload was malformed.
    BAD_REQUEST = 2
    #: The server hit an unexpected error executing the request.
    INTERNAL = 3
    #: The server is draining connections for shutdown.
    SHUTTING_DOWN = 4


class ProtocolError(RuntimeError):
    """Base for wire-format violations; the connection must be dropped."""


class BadMagic(ProtocolError):
    """The stream does not start with a DESKS frame."""


class VersionMismatch(ProtocolError):
    """The peer speaks a different wire version."""


class FrameTooLarge(ProtocolError):
    """Length prefix beyond :data:`MAX_PAYLOAD` (corrupt or hostile)."""


class ChecksumMismatch(ProtocolError):
    """Payload bytes do not match the header's CRC32."""


class TruncatedFrame(ProtocolError):
    """The connection ended mid-frame."""


class RpcError(RuntimeError):
    """A well-formed :attr:`MessageType.ERROR` response from the peer."""

    def __init__(self, code: ErrorCode, message: str) -> None:
        self.code = code
        super().__init__(f"{code.name}: {message}")


class OverloadError(RpcError):
    """The peer shed this request under admission control."""

    def __init__(self, message: str = "server over capacity") -> None:
        super().__init__(ErrorCode.OVERLOAD, message)


# -- framing -----------------------------------------------------------------


def _frame_crc(msg_type: MessageType, payload: bytes) -> int:
    """The frame CRC: seeded with the type byte, then over the payload.

    Folding the type into the CRC closes the one header gap the field
    checks leave open: a bit-flip turning one valid :class:`MessageType`
    into another passes magic/version/length validation, and misparsing
    a payload under the wrong type is exactly the silent damage the CRC
    exists to prevent.
    """
    return zlib.crc32(payload, zlib.crc32(bytes([int(msg_type)]))) \
        & 0xFFFFFFFF


def encode_frame(msg_type: MessageType, payload: bytes = b"") -> bytes:
    """One complete frame: header (with type-seeded CRC) plus payload."""
    if len(payload) > MAX_PAYLOAD:
        raise FrameTooLarge(
            f"payload of {len(payload)} bytes exceeds the "
            f"{MAX_PAYLOAD}-byte frame limit")
    header = struct.pack(HEADER_FORMAT, MAGIC, WIRE_VERSION, int(msg_type),
                         len(payload), _frame_crc(msg_type, payload))
    return header + payload


def parse_header(header: bytes) -> Tuple[MessageType, int, int]:
    """Validate a 12-byte header; returns ``(type, length, crc32)``.

    Raises :class:`BadMagic` / :class:`VersionMismatch` /
    :class:`FrameTooLarge` / :class:`ProtocolError` (unknown type) so a
    peer can refuse a stream *before* reading its payload.
    """
    if len(header) != HEADER_SIZE:
        raise TruncatedFrame(
            f"frame header is {len(header)} bytes, need {HEADER_SIZE}")
    magic, version, raw_type, length, crc = struct.unpack(HEADER_FORMAT,
                                                          header)
    if magic != MAGIC:
        raise BadMagic(f"bad frame magic 0x{magic:04X} "
                       f"(expected 0x{MAGIC:04X})")
    if version != WIRE_VERSION:
        raise VersionMismatch(
            f"peer speaks wire version {version}, this library speaks "
            f"{WIRE_VERSION}")
    if length > MAX_PAYLOAD:
        raise FrameTooLarge(
            f"length prefix of {length} bytes exceeds the "
            f"{MAX_PAYLOAD}-byte frame limit")
    try:
        msg_type = MessageType(raw_type)
    except ValueError:
        raise ProtocolError(f"unknown message type {raw_type}") from None
    return msg_type, length, crc


def check_payload(payload: bytes, crc: int,
                  msg_type: MessageType) -> bytes:
    """Verify ``payload`` (and the type byte) against the header CRC.

    Returns the payload unchanged.  ``msg_type`` must be the frame's own
    type field — the CRC is seeded with it, so a frame whose type byte
    was corrupted to another valid type fails here rather than being
    dispatched as the wrong message.
    """
    actual = _frame_crc(msg_type, payload)
    if actual != crc:
        raise ChecksumMismatch(
            f"frame CRC 0x{actual:08X} != header CRC 0x{crc:08X}")
    return payload


def read_frame(recv_exactly: Callable[[int], bytes],
               ) -> Tuple[MessageType, bytes]:
    """Read and validate one frame via ``recv_exactly(n) -> n bytes``.

    ``recv_exactly`` must raise :class:`TruncatedFrame` (or return short)
    on EOF; both surface as typed protocol errors here, never as a hang
    or a misparse.
    """
    header = recv_exactly(HEADER_SIZE)
    if len(header) != HEADER_SIZE:
        raise TruncatedFrame(
            f"connection closed after {len(header)} header byte(s)")
    msg_type, length, crc = parse_header(header)
    payload = recv_exactly(length) if length else b""
    if len(payload) != length:
        raise TruncatedFrame(
            f"connection closed {length - len(payload)} byte(s) short of "
            "the frame payload")
    return msg_type, check_payload(payload, crc, msg_type)


# -- primitive encoders ------------------------------------------------------


def _pack_str(value: str) -> bytes:
    blob = value.encode("utf-8")
    if len(blob) > 0xFFFF:
        raise ProtocolError(f"string of {len(blob)} bytes too long to "
                            "encode (65535-byte limit)")
    return _U16.pack(len(blob)) + blob


class _Reader:
    """Cursor over a payload; every read is bounds-checked."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def take(self, count: int) -> bytes:
        end = self.pos + count
        if end > len(self.data):
            raise ProtocolError(
                f"payload truncated: wanted {count} byte(s) at offset "
                f"{self.pos}, have {len(self.data) - self.pos}")
        out = self.data[self.pos:end]
        self.pos = end
        return out

    def unpack(self, fmt: struct.Struct) -> tuple:
        return fmt.unpack(self.take(fmt.size))

    def take_str(self) -> str:
        (length,) = self.unpack(_U16)
        try:
            return self.take(length).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"invalid UTF-8 in string field: {exc}") \
                from None

    def done(self) -> None:
        """Assert the payload was consumed exactly."""
        if self.pos != len(self.data):
            raise ProtocolError(
                f"{len(self.data) - self.pos} trailing byte(s) after "
                "payload")


# -- search request ----------------------------------------------------------

_QUERY_FIXED = struct.Struct("!ddddIBB")


def encode_search_request(query: DirectionalQuery,
                          budget: Optional[float] = None) -> bytes:
    """Encode a query plus its remaining deadline budget in seconds.

    ``budget=None`` (or ``inf``) means unbounded.  The budget is the
    *remaining* time at send — the sender's :class:`~repro.service.Deadline`
    keeps draining while the request is in flight, and the receiver
    restarts its own deadline from this number, so clock skew between the
    hosts never matters (only one-way latency eats budget untracked).
    """
    if budget is None or math.isinf(budget):
        wire_budget = _UNBOUNDED_BUDGET
    elif budget < 0.0:
        wire_budget = 0.0
    else:
        wire_budget = budget
    parts = [_QUERY_FIXED.pack(
        query.location.x, query.location.y,
        query.interval.lower, query.interval.upper,
        query.k,
        1 if query.match_mode is MatchMode.ANY else 0,
        len(query.keywords) if len(query.keywords) <= 0xFF else 0xFF)]
    keywords = sorted(query.keywords)
    if len(keywords) > 0xFF:
        raise ProtocolError(f"{len(keywords)} keywords exceed the "
                            "255-keyword frame limit")
    parts.extend(_pack_str(keyword) for keyword in keywords)
    parts.append(_F64.pack(wire_budget))
    return b"".join(parts)


def decode_search_request(payload: bytes,
                          ) -> Tuple[DirectionalQuery, Optional[float]]:
    """Decode :func:`encode_search_request`; returns (query, budget)."""
    reader = _Reader(payload)
    x, y, lower, upper, k, match_any, num_keywords = \
        reader.unpack(_QUERY_FIXED)
    keywords = [reader.take_str() for _ in range(num_keywords)]
    (wire_budget,) = reader.unpack(_F64)
    reader.done()
    try:
        query = DirectionalQuery.make(
            x, y, lower, upper, keywords, k,
            match_mode=MatchMode.ANY if match_any else MatchMode.ALL)
    except ValueError as exc:
        raise ProtocolError(f"invalid query field: {exc}") from None
    budget = None if wire_budget < 0.0 else wire_budget
    return query, budget


# -- search response ---------------------------------------------------------

_RESPONSE_FIXED = struct.Struct("!IBQd")
_FLAG_PARTIAL = 0x01
_FLAG_CACHED = 0x02
_FLAG_DEGRADED = 0x04
_FLAG_HAS_STATS = 0x08
_FLAG_HAS_UNAVAILABLE = 0x10


@dataclass
class RemoteSearchResult:
    """A decoded search response: what crossed the wire, typed."""

    result: QueryResult
    cached: bool = False
    generation: int = 0
    #: Seconds the *server* spent on the request (its own clock).
    server_latency: float = 0.0
    stats: Optional[SearchStats] = None
    degraded: bool = False
    failure_cause: Optional[str] = None
    #: Shard ids whose replicas were all unreachable when a frontend
    #: answered with a brownout partial (empty for full answers and for
    #: single-shard servers).  The typed twin of ``failure_cause``.
    unavailable_shards: Tuple[int, ...] = ()

    @property
    def partial(self) -> bool:
        """True when a deadline or failure truncated the answer."""
        return self.result.partial


def encode_search_response(result: QueryResult, *,
                           cached: bool = False,
                           generation: int = 0,
                           server_latency: float = 0.0,
                           stats: Optional[SearchStats] = None,
                           degraded: bool = False,
                           failure_cause: Optional[str] = None,
                           unavailable_shards: Sequence[int] = ()) -> bytes:
    """Encode an answer: entries, flags, generation, latency, stats.

    ``unavailable_shards`` names the shards a scatter-gather frontend
    lost (brownout degradation); it is flag-gated so responses without
    it are byte-identical to the pre-brownout encoding.
    """
    flags = 0
    if result.partial:
        flags |= _FLAG_PARTIAL
    if cached:
        flags |= _FLAG_CACHED
    if degraded:
        flags |= _FLAG_DEGRADED
    if stats is not None:
        flags |= _FLAG_HAS_STATS
    if unavailable_shards:
        flags |= _FLAG_HAS_UNAVAILABLE
    parts = [_RESPONSE_FIXED.pack(len(result.entries), flags,
                                  generation, server_latency)]
    parts.extend(_ENTRY.pack(entry.poi_id, entry.distance)
                 for entry in result.entries)
    if stats is not None:
        parts.append(_STATS.pack(
            stats.regions_examined, stats.subregions_examined,
            stats.nodes_examined, stats.pois_examined,
            stats.distance_computations, stats.candidates_verified))
    parts.append(_pack_str(failure_cause or ""))
    if unavailable_shards:
        if len(unavailable_shards) > 0xFFFF:
            raise ProtocolError(
                f"{len(unavailable_shards)} unavailable shards exceed "
                "the 65535-shard frame limit")
        parts.append(_U16.pack(len(unavailable_shards)))
        parts.extend(_U32.pack(int(shard))
                     for shard in unavailable_shards)
    return b"".join(parts)


def decode_search_response(payload: bytes) -> RemoteSearchResult:
    """Decode :func:`encode_search_response`."""
    reader = _Reader(payload)
    num_entries, flags, generation, server_latency = \
        reader.unpack(_RESPONSE_FIXED)
    entries: List[ResultEntry] = []
    for _ in range(num_entries):
        poi_id, distance = reader.unpack(_ENTRY)
        entries.append(ResultEntry(poi_id, distance))
    stats = None
    if flags & _FLAG_HAS_STATS:
        (regions, subregions, nodes, pois, dists, verified) = \
            reader.unpack(_STATS)
        stats = SearchStats(
            regions_examined=regions, subregions_examined=subregions,
            nodes_examined=nodes, pois_examined=pois,
            distance_computations=dists, candidates_verified=verified)
    failure_cause = reader.take_str() or None
    unavailable: Tuple[int, ...] = ()
    if flags & _FLAG_HAS_UNAVAILABLE:
        (num_unavailable,) = reader.unpack(_U16)
        unavailable = tuple(reader.unpack(_U32)[0]
                            for _ in range(num_unavailable))
    reader.done()
    return RemoteSearchResult(
        result=QueryResult(entries, partial=bool(flags & _FLAG_PARTIAL)),
        cached=bool(flags & _FLAG_CACHED),
        generation=generation,
        server_latency=server_latency,
        stats=stats,
        degraded=bool(flags & _FLAG_DEGRADED),
        failure_cause=failure_cause,
        unavailable_shards=unavailable,
    )


# -- health ------------------------------------------------------------------

_HEALTH_FIXED = struct.Struct("!BIQQQd")


@dataclass
class HealthReport:
    """A shard server's answer to a health probe."""

    ok: bool
    shard_id: int
    generation: int
    num_pois: int
    requests_total: int
    uptime_seconds: float


def encode_health_response(report: HealthReport) -> bytes:
    """Encode a :class:`HealthReport`."""
    return _HEALTH_FIXED.pack(
        1 if report.ok else 0, report.shard_id, report.generation,
        report.num_pois, report.requests_total, report.uptime_seconds)


def decode_health_response(payload: bytes) -> HealthReport:
    """Decode :func:`encode_health_response`."""
    reader = _Reader(payload)
    ok, shard_id, generation, num_pois, requests, uptime = \
        reader.unpack(_HEALTH_FIXED)
    reader.done()
    return HealthReport(bool(ok), shard_id, generation, num_pois,
                        requests, uptime)


# -- stats -------------------------------------------------------------------


def encode_stats_response(values: dict) -> bytes:
    """Encode a flat ``name -> number`` mapping (server counters)."""
    parts = [_U32.pack(len(values))]
    for name in sorted(values):
        parts.append(_pack_str(name))
        parts.append(_F64.pack(float(values[name])))
    return b"".join(parts)


def decode_stats_response(payload: bytes) -> dict:
    """Decode :func:`encode_stats_response`."""
    reader = _Reader(payload)
    (count,) = reader.unpack(_U32)
    out = {}
    for _ in range(count):
        name = reader.take_str()
        (value,) = reader.unpack(_F64)
        out[name] = value
    reader.done()
    return out


# -- statements --------------------------------------------------------------

#: ``kind`` codes inside a :attr:`MessageType.STATEMENT_RESPONSE` frame.
_STMT_SEARCH = 1
_STMT_TABLE = 2
_STMT_TEXT = 3

_STMT_KIND_NAMES = {_STMT_SEARCH: "search", _STMT_TABLE: "table",
                    _STMT_TEXT: "text"}


def _pack_long_str(value: str) -> bytes:
    """A u32-length-prefixed UTF-8 string (EXPLAIN reports beat 64 KiB)."""
    blob = value.encode("utf-8")
    return _U32.pack(len(blob)) + blob


def _take_long_str(reader: _Reader) -> str:
    (length,) = reader.unpack(_U32)
    try:
        return reader.take(length).decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"invalid UTF-8 in text field: {exc}") \
            from None


@dataclass
class RemoteStatementResult:
    """A decoded statement response: the canonical text plus one payload.

    Exactly one of ``search``/``table``/``text`` is populated, matching
    ``kind`` (``"search"``/``"table"``/``"text"`` — a ``SELECT`` answer,
    a ``SHOW`` table, or an ``EXPLAIN`` report).  ``statement`` is the
    *server's* canonical rendering of what it executed, so a client can
    verify the statement survived the wire intact.
    """

    statement: str
    kind: str
    search: Optional[RemoteSearchResult] = None
    table: Optional[dict] = None
    text: Optional[str] = None


def encode_statement_request(statement: str,
                             budget: Optional[float] = None) -> bytes:
    """Encode one DQL statement plus its remaining deadline budget.

    The budget carries the same semantics as
    :func:`encode_search_request`: remaining seconds at send time, with
    ``None``/``inf`` meaning unbounded.  The statement itself is opaque
    text here — the *server* parses it, so client and server can
    disagree about grammar versions and still fail with a typed,
    caret-annotated ``BAD_REQUEST`` instead of a misparse.
    """
    if budget is None or math.isinf(budget):
        wire_budget = _UNBOUNDED_BUDGET
    elif budget < 0.0:
        wire_budget = 0.0
    else:
        wire_budget = budget
    return _pack_long_str(statement) + _F64.pack(wire_budget)


def decode_statement_request(payload: bytes,
                             ) -> Tuple[str, Optional[float]]:
    """Decode :func:`encode_statement_request` → (statement, budget)."""
    reader = _Reader(payload)
    statement = _take_long_str(reader)
    (wire_budget,) = reader.unpack(_F64)
    reader.done()
    budget = None if wire_budget < 0.0 else wire_budget
    return statement, budget


def encode_statement_response(statement: str, kind: str, *,
                              search: Optional[bytes] = None,
                              table: Optional[dict] = None,
                              text: Optional[str] = None) -> bytes:
    """Encode one statement outcome.

    ``kind`` selects the body: ``"search"`` nests a complete
    :func:`encode_search_response` payload (``search``), ``"table"``
    nests :func:`encode_stats_response` (``table``), ``"text"`` carries
    a u32-prefixed UTF-8 report (``text``).  Nesting the existing
    payloads means a statement answer can never drift from what the
    binary query path would have said.
    """
    parts = [_pack_long_str(statement)]
    if kind == "search":
        if search is None:
            raise ProtocolError("search statement response without a "
                                "nested search payload")
        parts.append(bytes([_STMT_SEARCH]))
        parts.append(search)
    elif kind == "table":
        parts.append(bytes([_STMT_TABLE]))
        parts.append(encode_stats_response(table or {}))
    elif kind == "text":
        parts.append(bytes([_STMT_TEXT]))
        parts.append(_pack_long_str(text or ""))
    else:
        raise ProtocolError(f"unknown statement outcome kind {kind!r}")
    return b"".join(parts)


def encode_statement_outcome(outcome) -> bytes:
    """Encode a ``repro.lang.StatementOutcome``-shaped object (duck-typed).

    Shared by the shard server and the cluster front door so both
    surfaces answer statement frames identically; taking the envelope by
    duck type keeps this module import-free of :mod:`repro.lang`.
    """
    if outcome.kind == "search":
        search = encode_search_response(
            QueryResult(list(outcome.entries), partial=outcome.partial),
            cached=outcome.cached,
            generation=outcome.generation,
            server_latency=outcome.latency_seconds)
        return encode_statement_response(outcome.statement, "search",
                                         search=search)
    if outcome.kind == "table":
        return encode_statement_response(outcome.statement, "table",
                                         table=outcome.table)
    return encode_statement_response(outcome.statement, "text",
                                     text=outcome.text)


def decode_statement_response(payload: bytes) -> RemoteStatementResult:
    """Decode :func:`encode_statement_response`."""
    reader = _Reader(payload)
    statement = _take_long_str(reader)
    raw_kind = reader.take(1)[0]
    kind = _STMT_KIND_NAMES.get(raw_kind)
    if kind is None:
        raise ProtocolError(f"unknown statement outcome kind {raw_kind}")
    tail = reader.data[reader.pos:]
    if kind == "search":
        return RemoteStatementResult(
            statement, kind, search=decode_search_response(tail))
    if kind == "table":
        return RemoteStatementResult(
            statement, kind, table=decode_stats_response(tail))
    inner = _Reader(tail)
    text = _take_long_str(inner)
    inner.done()
    return RemoteStatementResult(statement, kind, text=text)


# -- errors ------------------------------------------------------------------


def encode_error(code: ErrorCode, message: str) -> bytes:
    """Encode a typed error payload."""
    return bytes([int(code)]) + _pack_str(message)


def decode_error(payload: bytes) -> RpcError:
    """Decode an error payload into the matching typed exception."""
    reader = _Reader(payload)
    raw_code = reader.take(1)[0]
    message = reader.take_str()
    reader.done()
    try:
        code = ErrorCode(raw_code)
    except ValueError:
        raise ProtocolError(f"unknown error code {raw_code}") from None
    if code is ErrorCode.OVERLOAD:
        return OverloadError(message)
    return RpcError(code, message)


__all__ = [
    "MAGIC", "WIRE_VERSION", "HEADER_FORMAT", "HEADER_SIZE", "MAX_PAYLOAD",
    "MessageType", "ErrorCode",
    "ProtocolError", "BadMagic", "VersionMismatch", "FrameTooLarge",
    "ChecksumMismatch", "TruncatedFrame", "RpcError", "OverloadError",
    "encode_frame", "parse_header", "check_payload", "read_frame",
    "encode_search_request", "decode_search_request",
    "encode_search_response", "decode_search_response",
    "RemoteSearchResult", "HealthReport",
    "encode_health_response", "decode_health_response",
    "encode_stats_response", "decode_stats_response",
    "RemoteStatementResult",
    "encode_statement_request", "decode_statement_request",
    "encode_statement_response", "decode_statement_response",
    "encode_statement_outcome",
    "encode_error", "decode_error",
]
