"""A deterministic fault-injecting TCP proxy for the shard protocol.

:class:`ChaosProxy` sits between any :class:`~repro.net.RemoteShardClient`
and a :class:`~repro.net.ShardServer` and executes a declarative
:class:`FaultPlan`: added latency with jitter, bandwidth throttling,
blackhole/accept-then-silence half-opens, connection reset mid-frame,
payload byte corruption (which the CRC layer must catch), and slow-loris
partial writes.  Every stochastic choice comes from a ``random.Random``
seeded from ``(plan.seed, connection_index)``, so a given plan against a
given connection order injects exactly the same faults on every run.

The proxy is *frame-aware* in the server→client direction: it parses the
12-byte frame headers (:data:`~repro.net.protocol.HEADER_FORMAT`) so that
per-frame faults land deterministically on whole protocol frames rather
than on arbitrary TCP segment boundaries.  The client→server direction is
relayed verbatim (except under blackhole, where bytes are swallowed).

Fault counters in :class:`FaultLog` are incremented at *activation* time —
when a fault actually fires against traffic — never at plan-assignment
time, which is what lets the chaos acceptance suite reconcile the client's
failure counters exactly against the proxy's injected-fault counts.

This module is test/benchmark infrastructure: lint rule DAL009 keeps it
out of production import paths (only ``repro.net.chaos`` itself may be
imported by tests, benchmarks, and tooling — never by ``src/repro``
production modules).
"""

from __future__ import annotations

import random
import socket
import struct
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analysis import make_lock
from .protocol import HEADER_FORMAT, HEADER_SIZE, MAX_PAYLOAD

Address = Tuple[str, int]

__all__ = ["ChaosProxy", "FaultLog", "FaultPlan"]

#: Relay buffer for the raw client→server direction.
_RELAY_CHUNK = 65536

#: Accept-loop poll interval; bounds shutdown latency.
_ACCEPT_POLL = 0.2


@dataclass(frozen=True)
class FaultPlan:
    """Declarative description of what the proxy does to traffic.

    All probabilities are per-draw in ``[0, 1]``; a plan with every
    field at its default is a transparent relay.  ``seed`` plus the
    connection index fully determine every draw.
    """

    name: str
    seed: int = 0
    #: Fixed extra delay applied to every server→client frame, plus a
    #: uniform jitter in ``[0, latency_jitter_seconds)``.
    latency_seconds: float = 0.0
    latency_jitter_seconds: float = 0.0
    #: Probability of XOR-flipping one payload byte per frame.  The CRC
    #: layer must turn every one of these into a typed ChecksumMismatch.
    corrupt_probability: float = 0.0
    #: Probability of cutting the connection mid-frame: the first
    #: ``reset_after_bytes`` of the frame are forwarded, then both sides
    #: are closed (an RST when ``reset_rst``, a clean FIN otherwise —
    #: the client sees ECONNRESET or a truncated frame respectively).
    reset_probability: float = 0.0
    reset_after_bytes: int = 6
    reset_rst: bool = False
    #: Probability that a *connection* is accepted and then silenced:
    #: bytes from the client are swallowed, nothing is ever answered,
    #: and the upstream is never dialed (a half-open / partitioned peer).
    #: Only the client's deadline can end such a request.
    blackhole_probability: float = 0.0
    #: Pace server→client frames to this many bytes per second.
    bandwidth_bytes_per_second: Optional[float] = None
    #: Slow-loris: write each server→client frame in chunks of this many
    #: bytes with ``slowloris_delay_seconds`` between chunks.
    slowloris_chunk_bytes: Optional[int] = None
    slowloris_delay_seconds: float = 0.01

    def __post_init__(self) -> None:
        for name in ("corrupt_probability", "reset_probability",
                     "blackhole_probability"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]: {p}")
        if self.reset_after_bytes < 0:
            raise ValueError(
                f"reset_after_bytes must be >= 0: {self.reset_after_bytes}")


@dataclass
class FaultLog:
    """Thread-safe activation counters, one per fault kind."""

    connections: int = 0
    frames_forwarded: int = 0
    latencies_injected: int = 0
    corruptions_injected: int = 0
    resets_injected: int = 0
    blackholes_activated: int = 0
    frames_throttled: int = 0
    frames_slowlorised: int = 0
    connections_dropped: int = 0
    _lock: threading.Lock = field(
        default_factory=lambda: make_lock("net.chaos_log"), repr=False)

    def bump(self, counter: str, by: int = 1) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + by)

    def to_dict(self) -> Dict[str, int]:
        with self._lock:
            return {
                "connections": self.connections,
                "frames_forwarded": self.frames_forwarded,
                "latencies_injected": self.latencies_injected,
                "corruptions_injected": self.corruptions_injected,
                "resets_injected": self.resets_injected,
                "blackholes_activated": self.blackholes_activated,
                "frames_throttled": self.frames_throttled,
                "frames_slowlorised": self.frames_slowlorised,
                "connections_dropped": self.connections_dropped,
            }


class ChaosProxy:
    """A seeded fault-injecting TCP proxy in front of one server address.

    ::

        proxy = ChaosProxy(server.address, FaultPlan("latency",
                                                     latency_seconds=0.05))
        proxy.start()
        client = RemoteShardClient(proxy.address)

    ``set_plan`` swaps the plan live (new draws use the new plan);
    ``drop_connections`` severs every in-flight connection at once — the
    partition lever for tests that cut a replica off mid-stream.
    """

    def __init__(self, upstream: Address,
                 plan: Optional[FaultPlan] = None,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.upstream = (upstream[0], int(upstream[1]))
        self._plan = plan if plan is not None else FaultPlan("transparent")
        self.log = FaultLog()
        self._lock = make_lock("net.chaos_proxy")
        self._closed = False
        self._conn_seq = 0
        self._live: List[socket.socket] = []
        self._listener = socket.create_server((host, port), backlog=32)
        self._listener.settimeout(_ACCEPT_POLL)
        self.address: Address = self._listener.getsockname()[:2]
        self._accept_thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ChaosProxy":
        self._accept_thread = threading.Thread(
            target=self._accept_loop,
            name=f"chaos-proxy-{self.address[1]}", daemon=True)
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        _close_quietly(self._listener)
        self.drop_connections(count=False)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)

    def __enter__(self) -> "ChaosProxy":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def plan(self) -> FaultPlan:
        with self._lock:
            return self._plan

    def set_plan(self, plan: FaultPlan) -> None:
        """Swap the live plan; subsequent draws use the new plan."""
        with self._lock:
            self._plan = plan

    def drop_connections(self, count: bool = True) -> int:
        """Sever every in-flight connection (a hard partition)."""
        with self._lock:
            live, self._live = self._live, []
        for conn in live:
            _shutdown_quietly(conn)
            _close_quietly(conn)
        if count and live:
            self.log.bump("connections_dropped", len(live))
        return len(live)

    # -- accept loop ---------------------------------------------------------

    def _accept_loop(self) -> None:
        while True:
            with self._lock:
                if self._closed:
                    return
            try:
                downstream, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed under us
            with self._lock:
                if self._closed:
                    _close_quietly(downstream)
                    return
                index = self._conn_seq
                self._conn_seq += 1
                plan = self._plan
                self._live.append(downstream)
            self.log.bump("connections")
            threading.Thread(
                target=self._serve_connection,
                args=(downstream, index, plan),
                name=f"chaos-conn-{self.address[1]}-{index}",
                daemon=True).start()

    def _forget(self, conn: socket.socket) -> None:
        with self._lock:
            if conn in self._live:
                self._live.remove(conn)

    # -- one proxied connection ----------------------------------------------

    def _serve_connection(self, downstream: socket.socket, index: int,
                          plan: FaultPlan) -> None:
        rng = random.Random((plan.seed << 20) ^ index)
        downstream.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        if rng.random() < plan.blackhole_probability:
            self._blackhole(downstream)
            return
        try:
            upstream = socket.create_connection(self.upstream, timeout=5.0)
        except OSError:
            self._forget(downstream)
            _close_quietly(downstream)
            return
        upstream.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        with self._lock:
            if self._closed:
                _close_quietly(upstream)
                _close_quietly(downstream)
                return
            self._live.append(upstream)
        relay = threading.Thread(
            target=self._relay_downstream, args=(downstream, upstream),
            name=f"chaos-relay-{self.address[1]}-{index}", daemon=True)
        relay.start()
        try:
            self._pump_frames(upstream, downstream, rng)
        finally:
            self._forget(upstream)
            self._forget(downstream)
            # shutdown() before close(): the relay thread blocked in
            # recv() on these sockets holds a kernel file reference, so a
            # bare close() would not send the FIN until that thread woke
            # up — which it never would, since the FIN is what wakes it.
            _shutdown_quietly(upstream)
            _shutdown_quietly(downstream)
            _close_quietly(upstream)
            _close_quietly(downstream)

    def _blackhole(self, downstream: socket.socket) -> None:
        """Accept-then-silence: swallow everything, answer nothing."""
        activated = False
        try:
            while True:
                chunk = downstream.recv(_RELAY_CHUNK)
                if not chunk:
                    return
                if not activated:
                    activated = True
                    self.log.bump("blackholes_activated")
        except OSError:
            return
        finally:
            self._forget(downstream)
            _close_quietly(downstream)

    def _relay_downstream(self, downstream: socket.socket,
                          upstream: socket.socket) -> None:
        """client → server: verbatim relay until either side dies."""
        try:
            while True:
                chunk = downstream.recv(_RELAY_CHUNK)
                if not chunk:
                    break
                upstream.sendall(chunk)
        except OSError:
            pass
        try:
            upstream.shutdown(socket.SHUT_WR)
        except OSError:
            pass

    def _pump_frames(self, upstream: socket.socket,
                     downstream: socket.socket,
                     rng: random.Random) -> None:
        """server → client: whole frames, with per-frame fault draws."""
        while True:
            header = _recv_exactly(upstream, HEADER_SIZE)
            if len(header) < HEADER_SIZE:
                # Upstream EOF (possibly mid-header): forward the
                # remnant verbatim so the client sees the same
                # truncation the server produced, then hang up.
                if header:
                    _send_quietly(downstream, header)
                return
            try:
                length = struct.unpack(HEADER_FORMAT, header)[3]
            except struct.error:  # pragma: no cover - header is 12 bytes
                return
            if length > MAX_PAYLOAD:
                # Not a DESKS frame; relay the rest of the stream raw.
                _send_quietly(downstream, header)
                self._relay_downstream(upstream, downstream)
                return
            payload = _recv_exactly(upstream, length)
            frame = bytearray(header + payload)
            truncated = len(payload) < length
            plan = self.plan
            if plan.latency_seconds > 0 or plan.latency_jitter_seconds > 0:
                delay = (plan.latency_seconds
                         + plan.latency_jitter_seconds * rng.random())
                time.sleep(delay)
                self.log.bump("latencies_injected")
            if (plan.corrupt_probability > 0 and length > 0
                    and not truncated
                    and rng.random() < plan.corrupt_probability):
                pos = HEADER_SIZE + rng.randrange(length)
                frame[pos] ^= 0xFF
                self.log.bump("corruptions_injected")
            if (plan.reset_probability > 0
                    and rng.random() < plan.reset_probability):
                # Never forward the whole frame before cutting — a reset
                # must leave the client's request visibly damaged so
                # injected resets reconcile 1:1 with observed failures.
                cut = min(plan.reset_after_bytes, len(frame) - 1)
                _send_quietly(downstream, bytes(frame[:cut]))
                if plan.reset_rst:
                    _arm_rst(downstream)
                self.log.bump("resets_injected")
                return
            if not self._write_frame(downstream, bytes(frame), plan):
                return
            self.log.bump("frames_forwarded")
            if truncated:
                return

    def _write_frame(self, downstream: socket.socket, frame: bytes,
                     plan: FaultPlan) -> bool:
        """Write one frame honoring slow-loris/bandwidth pacing."""
        try:
            if plan.slowloris_chunk_bytes:
                for offset in range(0, len(frame),
                                    plan.slowloris_chunk_bytes):
                    if offset:
                        time.sleep(plan.slowloris_delay_seconds)
                    downstream.sendall(
                        frame[offset:offset + plan.slowloris_chunk_bytes])
                self.log.bump("frames_slowlorised")
            elif plan.bandwidth_bytes_per_second:
                chunk = max(1, int(plan.bandwidth_bytes_per_second * 0.01))
                for offset in range(0, len(frame), chunk):
                    if offset:
                        time.sleep(0.01)
                    downstream.sendall(frame[offset:offset + chunk])
                self.log.bump("frames_throttled")
            else:
                downstream.sendall(frame)
        except OSError:
            return False
        return True


def _recv_exactly(conn: socket.socket, count: int) -> bytes:
    """Read exactly ``count`` bytes; short return on EOF or error."""
    chunks = []
    remaining = count
    while remaining:
        try:
            chunk = conn.recv(remaining)
        except OSError:
            break
        if not chunk:
            break
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _shutdown_quietly(conn: socket.socket) -> None:
    """Send the FIN now, even if another thread is blocked in recv()."""
    try:
        conn.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass


def _send_quietly(conn: socket.socket, blob: bytes) -> None:
    try:
        conn.sendall(blob)
    except OSError:
        pass


def _arm_rst(conn: socket.socket) -> None:
    """Make ``close`` send an RST instead of a clean FIN."""
    try:
        conn.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                        struct.pack("ii", 1, 0))
    except OSError:  # pragma: no cover - best-effort
        pass


def _close_quietly(conn: socket.socket) -> None:
    try:
        conn.close()
    except OSError:  # pragma: no cover - close is best-effort
        pass
