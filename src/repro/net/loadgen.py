"""Closed-loop load generation against a network (or in-process) target.

The :func:`~repro.service.run_closed_loop` generator drives one engine's
thread pool; this one drives *any* issue function — a
:class:`~repro.net.RemoteShardClient` pointed at a front door, or the
router called in-process — so the serve benchmarks can compare the two
transports with the same workload, client count, and bookkeeping.

Differences from the in-process generator, both forced by the network:

* a shed request (:class:`~repro.net.protocol.OverloadError`) is an
  *expected* outcome under overdrive, counted separately rather than
  aborting the client — measuring the shed rate is the point;
* latency percentiles are computed exactly from every recorded sample
  (the in-process path reads the engine's bucketed histogram; here the
  server's histogram is remote, and the client-observed latency —
  including the wire — is the number that matters).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..core import DirectionalQuery
from .client import TransportError
from .protocol import OverloadError


@dataclass
class NetworkLoadReport:
    """Aggregate outcome of one closed-loop run against a transport."""

    transport: str
    num_clients: int
    elapsed_seconds: float
    completed: int
    overloaded: int
    transport_errors: int
    partial_results: int
    errors: int
    first_error: Optional[str] = None
    #: Exact client-observed latency stats (seconds): mean/p50/p95/p99/max.
    latency: Dict[str, float] = field(default_factory=dict)

    @property
    def attempts(self) -> int:
        """Requests issued, whatever their outcome."""
        return (self.completed + self.overloaded + self.transport_errors
                + self.errors)

    @property
    def qps(self) -> float:
        """Completed queries per wall-clock second."""
        return self.completed / max(self.elapsed_seconds, 1e-9)

    @property
    def overload_rate(self) -> float:
        """Fraction of issued requests shed with a typed OVERLOAD."""
        return self.overloaded / max(self.attempts, 1)

    def summary(self) -> str:
        """One human-readable line, the network bench's table row."""
        p95 = self.latency.get("p95", 0.0) * 1000.0
        return (f"{self.transport:<7} clients={self.num_clients:<3} "
                f"qps={self.qps:8.1f}  p95={p95:7.2f}ms  "
                f"overload={self.overload_rate:6.1%}  "
                f"partial={self.partial_results}  errors={self.errors}")

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form for ``results/BENCH_network.json``."""
        return {
            "transport": self.transport,
            "num_clients": self.num_clients,
            "elapsed_seconds": self.elapsed_seconds,
            "completed": self.completed,
            "qps": self.qps,
            "overloaded": self.overloaded,
            "overload_rate": self.overload_rate,
            "transport_errors": self.transport_errors,
            "partial_results": self.partial_results,
            "errors": self.errors,
            "latency": dict(self.latency),
        }


def _exact_percentile(samples: List[float], q: float) -> float:
    """Nearest-rank percentile over pre-sorted ``samples``."""
    if not samples:
        return 0.0
    rank = -(-q * len(samples) // 100)  # ceil(q/100 * n) via floor-div
    rank = min(len(samples), max(1, int(rank)))
    return samples[rank - 1]


def run_network_closed_loop(
        issue: Callable[[DirectionalQuery], Any],
        queries: Sequence[DirectionalQuery],
        num_clients: int,
        requests_per_client: Optional[int] = None,
        duration_seconds: Optional[float] = None,
        think_time: float = 0.0,
        transport: str = "socket") -> NetworkLoadReport:
    """Drive ``issue`` with ``num_clients`` synchronous client threads.

    ``issue(query)`` is typically ``client.search`` bound to a budget, or
    ``router.execute`` for the in-process baseline; its return value only
    needs a truthy/falsy ``partial`` attribute (both
    :class:`~repro.net.protocol.RemoteSearchResult` and
    :class:`~repro.service.ServiceResponse` qualify).  Client ``i`` walks
    the query list from offset ``i`` with stride ``num_clients`` — the
    same deterministic walk as the in-process generator, so the two
    transports see identical workloads.
    """
    if not queries:
        raise ValueError("the workload needs at least one query")
    if num_clients <= 0:
        raise ValueError(f"num_clients must be positive: {num_clients}")
    if (requests_per_client is None) == (duration_seconds is None):
        raise ValueError("give exactly one of requests_per_client or "
                         "duration_seconds")

    stop_at = (time.monotonic() + duration_seconds
               if duration_seconds is not None else None)
    completed = [0] * num_clients
    overloaded = [0] * num_clients
    transport_errors = [0] * num_clients
    partials = [0] * num_clients
    samples: List[List[float]] = [[] for _ in range(num_clients)]
    errors: List[str] = []
    errors_lock = threading.Lock()
    start_barrier = threading.Barrier(num_clients + 1)

    def client(client_id: int) -> None:
        position = client_id
        issued = 0
        start_barrier.wait()
        while True:
            if requests_per_client is not None and \
                    issued >= requests_per_client:
                break
            if stop_at is not None and time.monotonic() >= stop_at:
                break
            query = queries[position % len(queries)]
            position += num_clients
            issued += 1
            started = time.monotonic()
            try:
                result = issue(query)
            except OverloadError:
                overloaded[client_id] += 1
                continue
            except TransportError:
                transport_errors[client_id] += 1
                continue
            except Exception as exc:  # desks: noqa-DAL011 - cause reported through the errors list
                with errors_lock:
                    errors.append(f"{type(exc).__name__}: {exc}")
                break
            samples[client_id].append(time.monotonic() - started)
            completed[client_id] += 1
            if getattr(result, "partial", False):
                partials[client_id] += 1
            if think_time > 0.0:
                time.sleep(think_time)

    threads = [threading.Thread(target=client, args=(i,),
                                name=f"net-client-{i}", daemon=True)
               for i in range(num_clients)]
    for thread in threads:
        thread.start()
    start_barrier.wait()
    started = time.monotonic()
    for thread in threads:
        thread.join()
    elapsed = time.monotonic() - started

    merged = sorted(s for per_client in samples for s in per_client)
    latency = {
        "mean": sum(merged) / len(merged) if merged else 0.0,
        "p50": _exact_percentile(merged, 50),
        "p95": _exact_percentile(merged, 95),
        "p99": _exact_percentile(merged, 99),
        "max": merged[-1] if merged else 0.0,
    }
    return NetworkLoadReport(
        transport=transport,
        num_clients=num_clients,
        elapsed_seconds=elapsed,
        completed=sum(completed),
        overloaded=sum(overloaded),
        transport_errors=sum(transport_errors),
        partial_results=sum(partials),
        errors=len(errors),
        first_error=errors[0] if errors else None,
        latency=latency,
    )
