"""Out-of-process shard serving over a length-prefixed binary protocol.

Everything below :mod:`repro.cluster` runs in one Python process behind
one GIL; this package is the network boundary that lets each shard (or
replica) own an OS process — the substrate the ROADMAP's scaling work
ships traffic through:

* :mod:`~repro.net.protocol` — the versioned wire format:
  ``[magic][version][type][len][crc32]`` frames, hand-rolled struct
  payloads (bit-exact floats, no pickle), typed errors, and the
  remaining-deadline budget that carries per-request deadlines across
  hosts;
* :mod:`~repro.net.server` — :class:`ShardServer`: one shard's index
  behind a blocking accept loop, engine worker pool, and admission
  control that sheds with typed ``OVERLOAD`` instead of queueing;
* :mod:`~repro.net.client` — :class:`RemoteShardClient` (persistent
  connections, reconnect/backoff, deadline-derived timeouts) and
  :class:`RemoteReplicaSet`, the drop-in
  :class:`~repro.cluster.ShardTransport` that gives the router failover
  across server processes;
* :mod:`~repro.net.frontend` — :class:`ClusterFrontend`: the asyncio
  front door with bounded in-flight admission and deadline enforcement;
* :mod:`~repro.net.launcher` — :class:`ClusterLauncher` (spawn/probe/
  kill/stop server processes) and :func:`connect_router`;
* :mod:`~repro.net.loadgen` — the closed-loop generator the network
  benchmarks drive both transports with;
* :mod:`~repro.net.resilience` — the client-side resilience layer:
  per-replica circuit breakers, the process-wide retry token budget,
  and hedged-request policy that :class:`RemoteReplicaSet` executes;
* :mod:`~repro.net.chaos` — the seeded fault-injecting TCP proxy the
  acceptance suite drives all of the above with.  Deliberately *not*
  re-exported here: lint rule DAL009 confines chaos imports to tests,
  benchmarks, and tooling so fault injection can never reach a
  production import path.

This package is the only place in the tree allowed to touch raw
``socket``/``asyncio`` transport (lint rule DAL007) — every other layer
stays deterministic, testable, and transport-agnostic.

See ``docs/NETWORK.md`` for the wire format, the life of a remote
query, and the failure-mode matrix.
"""

from .client import (
    Address,
    RemoteReplica,
    RemoteReplicaSet,
    RemoteShardClient,
    TransportError,
)
from .frontend import ClusterFrontend
from .launcher import ClusterLauncher, LaunchError, ServerProcess, connect_router
from .loadgen import NetworkLoadReport, run_network_closed_loop
from .resilience import (
    BreakerOpenError,
    BreakerState,
    CircuitBreaker,
    HedgePolicy,
    ResilienceConfig,
    RetryBudget,
)
from .protocol import (
    HEADER_SIZE,
    MAGIC,
    MAX_PAYLOAD,
    WIRE_VERSION,
    BadMagic,
    ChecksumMismatch,
    ErrorCode,
    FrameTooLarge,
    HealthReport,
    MessageType,
    OverloadError,
    ProtocolError,
    RemoteSearchResult,
    RemoteStatementResult,
    RpcError,
    TruncatedFrame,
    VersionMismatch,
)
from .server import ShardServer, load_shard, run_shard_server

__all__ = [
    "Address",
    "BadMagic",
    "BreakerOpenError",
    "BreakerState",
    "ChecksumMismatch",
    "CircuitBreaker",
    "ClusterFrontend",
    "ClusterLauncher",
    "ErrorCode",
    "HedgePolicy",
    "ResilienceConfig",
    "RetryBudget",
    "FrameTooLarge",
    "HEADER_SIZE",
    "HealthReport",
    "LaunchError",
    "MAGIC",
    "MAX_PAYLOAD",
    "MessageType",
    "NetworkLoadReport",
    "OverloadError",
    "ProtocolError",
    "RemoteReplica",
    "RemoteReplicaSet",
    "RemoteSearchResult",
    "RemoteShardClient",
    "RemoteStatementResult",
    "RpcError",
    "ServerProcess",
    "ShardServer",
    "TransportError",
    "TruncatedFrame",
    "VersionMismatch",
    "WIRE_VERSION",
    "connect_router",
    "load_shard",
    "run_network_closed_loop",
    "run_shard_server",
]
