"""Client side of the shard protocol: connection pool and failover set.

:class:`RemoteShardClient` speaks :mod:`repro.net.protocol` to one server
address over a small pool of persistent TCP connections — reconnect with
exponential backoff, retry-once when a pooled (possibly stale) connection
dies mid-request, socket timeouts derived from the request's deadline
budget so a dead server can never hang a caller.

:class:`RemoteReplicaSet` stacks R clients (one per replica server) behind
the *exact* surface :class:`~repro.cluster.ReplicaSet` exposes to
:class:`~repro.cluster.ShardRouter` — ``execute(query, timeout) ->
(response, retries)``, rotation over healthy replicas, sticky quarantine
on degraded answers, :class:`~repro.cluster.ShardUnavailableError` when
every replica fails — which is what lets the router's scatter-gather,
pruning, and merge logic run unchanged over processes instead of threads.
"""

from __future__ import annotations

import socket
import time
from typing import Callable, List, Optional, Sequence, Tuple

from ..analysis import make_lock
from ..core import DirectionalQuery
from ..service import MetricsRegistry, ServiceResponse
from . import protocol
from .protocol import HealthReport, MessageType, RemoteSearchResult

Address = Tuple[str, int]


class TransportError(RuntimeError):
    """The connection to a server failed (connect, send, or receive)."""

    def __init__(self, address: Address, detail: str) -> None:
        self.address = address
        super().__init__(f"{address[0]}:{address[1]}: {detail}")


class RemoteShardClient:
    """A pooled, reconnecting client for one shard server address."""

    def __init__(self, address: Address,
                 connect_timeout: float = 5.0,
                 request_timeout: float = 30.0,
                 deadline_grace: float = 2.0,
                 connect_attempts: int = 3,
                 backoff: float = 0.05) -> None:
        if connect_attempts < 1:
            raise ValueError(
                f"connect_attempts must be >= 1: {connect_attempts}")
        self.address = (address[0], int(address[1]))
        self.connect_timeout = connect_timeout
        self.request_timeout = request_timeout
        #: Extra seconds past the deadline budget before the socket times
        #: out: the server answers an expired budget immediately, so only
        #: a dead/wedged server is ever caught by the socket timeout.
        self.deadline_grace = deadline_grace
        self.connect_attempts = connect_attempts
        self.backoff = backoff
        self._idle: List[socket.socket] = []
        self._lock = make_lock("net.client")
        self._closed = False
        self.reconnects = 0

    # -- connection pool ----------------------------------------------------

    def _connect(self) -> socket.socket:
        """Dial the server, with exponential backoff between attempts."""
        last: Optional[OSError] = None
        for attempt in range(self.connect_attempts):
            if attempt:
                time.sleep(self.backoff * (2 ** (attempt - 1)))
            try:
                conn = socket.create_connection(
                    self.address, timeout=self.connect_timeout)
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                with self._lock:
                    self.reconnects += 1
                return conn
            except OSError as exc:
                last = exc
        raise TransportError(
            self.address,
            f"connect failed after {self.connect_attempts} attempts: {last}")

    def _acquire(self) -> Tuple[socket.socket, bool]:
        """A pooled connection (``reused=True``) or a fresh one."""
        with self._lock:
            if self._closed:
                raise TransportError(self.address, "client is closed")
            if self._idle:
                return self._idle.pop(), True
        return self._connect(), False

    def _release(self, conn: socket.socket) -> None:
        with self._lock:
            if not self._closed:
                self._idle.append(conn)
                return
        _close_quietly(conn)

    def close(self) -> None:
        """Drop every pooled connection; subsequent requests fail fast."""
        with self._lock:
            self._closed = True
            idle, self._idle = self._idle, []
        for conn in idle:
            _close_quietly(conn)

    def __enter__(self) -> "RemoteShardClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- request/response ---------------------------------------------------

    def _roundtrip(self, frame: bytes, timeout: float,
                   ) -> Tuple[MessageType, bytes]:
        """Send one frame, read one frame; retry once on a stale socket.

        A pooled connection may have been closed by the server (restart,
        idle reap) since its last use — that failure mode is retried once
        on a fresh connection.  A fresh connection's failure is the
        server's, and surfaces as :class:`TransportError`.
        """
        for _ in range(2):
            conn, reused = self._acquire()
            conn.settimeout(timeout)
            try:
                conn.sendall(frame)
                msg_type, payload = protocol.read_frame(
                    lambda count: _recv_exactly(conn, count))
            except protocol.TruncatedFrame as exc:
                _close_quietly(conn)
                if reused:
                    continue
                raise TransportError(self.address, str(exc)) from None
            except socket.timeout:
                _close_quietly(conn)
                raise TransportError(
                    self.address,
                    f"no response within {timeout:.3f}s") from None
            except OSError as exc:
                _close_quietly(conn)
                if reused:
                    continue
                raise TransportError(self.address, str(exc)) from None
            except protocol.ProtocolError:
                # The stream is desynchronized or the peer is not a DESKS
                # server; the connection is poisoned either way.
                _close_quietly(conn)
                raise
            self._release(conn)
            return msg_type, payload
        raise TransportError(  # pragma: no cover - loop always returns/raises
            self.address, "request failed on a fresh connection")

    def _expect(self, frame: bytes, want: MessageType,
                timeout: float) -> bytes:
        msg_type, payload = self._roundtrip(frame, timeout)
        if msg_type is MessageType.ERROR:
            raise protocol.decode_error(payload)
        if msg_type is not want:
            raise protocol.ProtocolError(
                f"expected {want.name}, server sent {msg_type.name}")
        return payload

    def search(self, query: DirectionalQuery,
               budget: Optional[float] = None) -> RemoteSearchResult:
        """Execute ``query`` remotely under ``budget`` remaining seconds.

        Raises :class:`~repro.net.protocol.OverloadError` when the server
        sheds the request, :class:`~repro.net.protocol.RpcError` for other
        typed server errors, :class:`TransportError` when the server is
        unreachable or silent past the budget plus grace.
        """
        timeout = (self.request_timeout if budget is None
                   else budget + self.deadline_grace)
        frame = protocol.encode_frame(
            MessageType.SEARCH_REQUEST,
            protocol.encode_search_request(query, budget))
        payload = self._expect(frame, MessageType.SEARCH_RESPONSE, timeout)
        return protocol.decode_search_response(payload)

    def execute_statement(self, statement: str,
                          budget: Optional[float] = None,
                          ) -> "protocol.RemoteStatementResult":
        """Execute one DQL statement remotely; decode its typed outcome.

        The server parses, plans, and executes; a statement the server
        cannot parse comes back as :class:`~repro.net.protocol.RpcError`
        (``BAD_REQUEST``) whose message carries the caret rendering.
        """
        timeout = (self.request_timeout if budget is None
                   else budget + self.deadline_grace)
        frame = protocol.encode_frame(
            MessageType.STATEMENT_REQUEST,
            protocol.encode_statement_request(statement, budget))
        payload = self._expect(frame, MessageType.STATEMENT_RESPONSE,
                               timeout)
        return protocol.decode_statement_response(payload)

    def health(self, timeout: float = 5.0) -> HealthReport:
        """Probe the server's health endpoint."""
        frame = protocol.encode_frame(MessageType.HEALTH_REQUEST)
        payload = self._expect(frame, MessageType.HEALTH_RESPONSE, timeout)
        return protocol.decode_health_response(payload)

    def stats(self, timeout: float = 5.0) -> dict:
        """Scrape the server's counter snapshot."""
        frame = protocol.encode_frame(MessageType.STATS_REQUEST)
        payload = self._expect(frame, MessageType.STATS_RESPONSE, timeout)
        return protocol.decode_stats_response(payload)


def _recv_exactly(conn: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = conn.recv(remaining)
        if not chunk:
            break
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _close_quietly(conn: socket.socket) -> None:
    try:
        conn.close()
    except OSError:  # pragma: no cover - close is best-effort
        pass


class RemoteReplica:
    """One replica server address plus its client-side health state."""

    def __init__(self, shard_id: int, replica_id: int,
                 client: RemoteShardClient, health_threshold: int) -> None:
        self.shard_id = shard_id
        self.replica_id = replica_id
        self.client = client
        self.health_threshold = health_threshold
        self.healthy = True
        self.consecutive_failures = 0
        self.total_failures = 0
        self.quarantined = False
        self.quarantine_cause: Optional[str] = None
        self._lock = make_lock("net.remote_replica")

    def mark_success(self) -> None:
        """A request succeeded; an unhealthy replica recovers."""
        with self._lock:
            self.consecutive_failures = 0
            self.healthy = True

    def mark_failure(self) -> None:
        """A request failed; ``health_threshold`` in a row → unhealthy."""
        with self._lock:
            self.consecutive_failures += 1
            self.total_failures += 1
            if self.consecutive_failures >= self.health_threshold:
                self.healthy = False

    def quarantine(self, cause: str) -> None:
        """Sticky exclusion after a degraded (corruption) answer."""
        with self._lock:
            self.quarantined = True
            self.quarantine_cause = cause
            self.healthy = False


class RemoteReplicaSet:
    """R remote replicas of one shard, behind the ReplicaSet surface.

    Drop-in for :class:`~repro.cluster.ReplicaSet` from the router's
    point of view: same ``execute`` contract, same rotation and
    healthy-first failover order, same sticky quarantine on degraded
    answers, same :class:`~repro.cluster.ShardUnavailableError` when the
    whole shard is gone — except attempts cross process (and eventually
    machine) boundaries instead of calling a local engine.
    """

    def __init__(self, shard_id: int, addresses: Sequence[Address],
                 health_threshold: int = 3,
                 metrics: Optional[MetricsRegistry] = None,
                 request_timeout: float = 30.0,
                 client_factory: Optional[
                     Callable[[Address], RemoteShardClient]] = None) -> None:
        if not addresses:
            raise ValueError(f"shard {shard_id} needs >= 1 server address")
        if health_threshold < 1:
            raise ValueError(
                f"health_threshold must be >= 1: {health_threshold}")
        if client_factory is None:
            def client_factory(address: Address) -> RemoteShardClient:
                return RemoteShardClient(address,
                                         request_timeout=request_timeout)
        self.shard_id = shard_id
        self.metrics = metrics
        self.replicas: List[RemoteReplica] = [
            RemoteReplica(shard_id, replica_id, client_factory(address),
                          health_threshold)
            for replica_id, address in enumerate(addresses)
        ]
        self._rotation = 0
        self._lock = make_lock("net.remote_replica_set")

    def __len__(self) -> int:
        return len(self.replicas)

    def _attempt_order(self) -> List[RemoteReplica]:
        """Healthy first from a rotating start; quarantined excluded."""
        with self._lock:
            start = self._rotation
            self._rotation = (self._rotation + 1) % len(self.replicas)
        rotated = [r for r in (self.replicas[start:] + self.replicas[:start])
                   if not r.quarantined]
        return ([r for r in rotated if r.healthy]
                + [r for r in rotated if not r.healthy])

    def execute(self, query: DirectionalQuery,
                timeout: Optional[float] = None,
                ) -> Tuple[ServiceResponse, int]:
        """Serve ``query`` remotely, failing over across replica servers.

        Returns ``(response, retries)``; raises
        :class:`~repro.cluster.ShardUnavailableError` when every replica
        fails (dead process, shed under overload, protocol violation).
        """
        from ..cluster import ShardUnavailableError

        last_error: Optional[BaseException] = None
        attempts = 0
        for replica in self._attempt_order():
            attempts += 1
            started = time.monotonic()
            try:
                remote = replica.client.search(query, budget=timeout)
            except (TransportError, protocol.ProtocolError,
                    protocol.RpcError) as exc:
                replica.mark_failure()
                last_error = exc
                if self.metrics is not None:
                    self.metrics.counter(
                        "cluster_replica_failures_total").increment()
                continue
            if remote.degraded:
                # The remote engine hit corruption and refused to answer:
                # park this replica exactly as the in-process set would.
                cause = remote.failure_cause or "degraded response"
                replica.quarantine(cause)
                if self.metrics is not None:
                    self.metrics.counter(
                        "cluster_replicas_quarantined_total").increment()
                last_error = RuntimeError(
                    f"replica {replica.replica_id} degraded: {cause}")
                continue
            replica.mark_success()
            response = ServiceResponse(
                query=query,
                result=remote.result,
                cached=remote.cached,
                generation=remote.generation,
                latency_seconds=time.monotonic() - started,
                stats=remote.stats)
            return response, attempts - 1
        raise ShardUnavailableError(self.shard_id, attempts, last_error)

    def quarantined_replicas(self) -> List[int]:
        """Replica ids parked for corruption (sticky)."""
        return [r.replica_id for r in self.replicas if r.quarantined]

    def health_summary(self) -> List[dict]:
        """Per-replica health for stats/CLI output."""
        return [
            {
                "replica_id": r.replica_id,
                "healthy": r.healthy,
                "consecutive_failures": r.consecutive_failures,
                "total_failures": r.total_failures,
                "address": f"{r.client.address[0]}:{r.client.address[1]}",
            }
            for r in self.replicas
        ]

    def close(self) -> None:
        """Close every replica's connection pool."""
        for replica in self.replicas:
            replica.client.close()
